//! Reproduction of *"Optimizing Irregular Communication with Neighborhood
//! Collectives and Locality-Aware Parallelism"* (Collom, Li, Bienz —
//! EuroMPI '23, arXiv:2306.01876).
//!
//! This umbrella crate re-exports the workspace libraries:
//!
//! * [`mpi_advance`] — the paper's contribution: persistent neighborhood
//!   collectives with locality-aware aggregation and duplicate removal;
//! * [`mpisim`] — the in-process MPI runtime the collectives execute on;
//! * [`locality`] / [`perfmodel`] — machine model and communication cost
//!   models;
//! * [`sparse`] / [`amg`] — the sparse linear algebra and BoomerAMG
//!   substrate generating the evaluation workloads;
//! * [`service`] — the async solve service: a multi-tenant job
//!   scheduler driving futures-based solves on one warm world pool.
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for
//! the full system inventory.

pub use amg;
pub use locality;
pub use mpi_advance;
pub use mpisim;
pub use perfmodel;
pub use service;
pub use sparse;

// The paper's single-call contract, surfaced at the crate root.
pub use mpi_advance::{Backend, NeighborAlltoallv, NeighborRequest, Protocol};
