//! Partitioned locality-aware aggregation — the paper's §5 combination.
//!
//! Runs the fully optimized neighborhood collective in its plain and
//! partitioned forms on the simulated runtime with the virtual clock
//! attached, and reports both end-to-end iteration time and
//! time-to-first-partition at the receiving leaders.
//!
//! Run with: `cargo run --release --example partitioned_aggregation`

use locality::Topology;
use mpi_advance::{Backend, CommPattern, NeighborAlltoallv, Protocol};
use mpisim::World;
use perfmodel::LocalityModel;
use std::sync::Arc;

fn staggered_pattern() -> CommPattern {
    // region 0 stages very uneven contributions toward region 1
    let idx = |base: usize, n: usize| (base..base + n).collect::<Vec<usize>>();
    CommPattern::new(
        8,
        vec![
            vec![(4, idx(0, 2_000))],
            vec![(5, idx(100_000, 6_000))],
            vec![(6, idx(200_000, 10_000))],
            vec![(7, idx(300_000, 30_000))],
            vec![],
            vec![],
            vec![],
            vec![],
        ],
    )
}

fn run(pattern: &CommPattern, topo: &Topology, partitioned: bool) -> f64 {
    let backend = if partitioned {
        Backend::Partitioned(Protocol::FullNeighbor)
    } else {
        Backend::Protocol(Protocol::FullNeighbor)
    };
    let coll = NeighborAlltoallv::new(pattern, topo).backend(backend);
    let mut m = LocalityModel::lassen();
    m.queue_coeff = 0.0;
    let model = Arc::new(m);
    let clocks = World::run_modeled(topo.clone(), model, |ctx| {
        let comm = ctx.comm_world();
        let input = vec![1.0f64; pattern.src_indices(ctx.rank()).len()];
        let mut output = vec![0.0; pattern.dst_indices(ctx.rank()).len()];
        ctx.barrier(&comm);
        let t0 = ctx.clock();
        let mut nb = coll.init(ctx, &comm);
        for _ in 0..10 {
            nb.start_wait(ctx, &input, &mut output);
        }
        ctx.clock() - t0
    });
    clocks.into_iter().fold(0.0, f64::max) / 10.0
}

fn main() {
    let pattern = staggered_pattern();
    let topo = Topology::block_nodes(8, 4);

    println!("staggered large-message aggregation, 8 ranks, 2 regions:");
    let plain = run(&pattern, &topo, false);
    let parted = run(&pattern, &topo, true);
    println!("  plain aggregated iteration:        {plain:.3e} s");
    println!("  partitioned aggregated iteration:  {parted:.3e} s");
    println!(
        "  delta: {:+.1}% (per-partition handshakes vs hidden staging)",
        100.0 * (parted - plain) / plain
    );

    // Time-to-first-data at the raw partitioned-transport level.
    let model = Arc::new({
        let mut m = LocalityModel::lassen();
        m.queue_coeff = 0.0;
        m
    });
    const N: usize = 400_000;
    const PARTS: usize = 16;
    let out = World::run_modeled(Topology::block_nodes(2, 1), model, |ctx| {
        use mpisim::persistent::shared_buf;
        let comm = ctx.comm_world();
        if ctx.rank() == 0 {
            let data = vec![1.0f64; N];
            ctx.send(&comm, 1, 0, &data);
            let buf = shared_buf(vec![1.0f64; N]);
            let mut req = ctx.psend_init(&comm, 1, 1, buf, PARTS);
            req.start();
            for p in 0..PARTS {
                req.pready(ctx, p);
            }
            req.wait();
            (0.0, 0.0)
        } else {
            use mpisim::persistent::shared_buf;
            let t0 = ctx.clock();
            let _: Vec<f64> = ctx.recv(&comm, 0, 0);
            let t_full = ctx.clock() - t0;
            let buf = shared_buf(vec![0.0f64; N]);
            let mut req = ctx.precv_init(&comm, 0, 1, buf, PARTS);
            req.start();
            let t1 = ctx.clock();
            while !req.parrived(ctx, 0) {
                std::thread::yield_now();
            }
            let t_first = ctx.clock() - t1;
            req.wait(ctx);
            (t_full, t_first)
        }
    });
    let (t_full, t_first) = out[1];
    println!("\n3.2 MB message, {PARTS} partitions (raw transport):");
    println!("  whole-message arrival:  {t_full:.3e} s");
    println!(
        "  first-partition arrival:{t_first:.3e} s ({:.0}x earlier)",
        t_full / t_first
    );
}
