//! Quickstart: the paper's Example 2.1, end to end.
//!
//! Builds the 8-process, two-region communication pattern of Figure 2,
//! plans it with all four protocols, prints the message statistics that
//! Figures 3–5 illustrate, and then *executes* each protocol on the
//! simulated MPI runtime to show identical results.
//!
//! Two entry points appear below. [`NeighborAlltoallv`] is the
//! single-collective builder — right when exactly one pattern is live.
//! The front door for real workloads is [`NeighborBatch`]: an application
//! like AMG keeps one persistent collective live *per level*, and the
//! batch plans, tags, and stages all of them as one session (one routing
//! sweep, one tag lease, one staging arena, one registration pass).
//!
//! Run with: `cargo run --release --example quickstart`

use locality::Topology;
use mpi_advance::{Backend, CommPattern, NeighborAlltoallv, NeighborBatch, PlanStats, Protocol};
use mpisim::World;
use perfmodel::LocalityModel;

fn main() {
    // Figure 2: two regions of four processes; region 0 owns 8 values that
    // processes in region 1 need.
    let pattern = CommPattern::example_2_1();
    let topo = Topology::block_nodes(8, 4);
    let model = LocalityModel::lassen();

    println!(
        "Example 2.1: {} demands, {} point-to-point messages\n",
        pattern.total_slots(),
        pattern.total_msgs()
    );

    println!(
        "{:<30} {:>8} {:>8} {:>10} {:>12}",
        "protocol", "global", "local", "g-values", "modeled s"
    );
    for protocol in Protocol::ALL {
        let plan = protocol.plan(&pattern, &topo);
        let stats = PlanStats::of(&plan);
        let t = mpi_advance::analytic::iteration_time(&plan, &topo, &model, protocol.is_wrapped());
        println!(
            "{:<30} {:>8} {:>8} {:>10} {:>12.2e}",
            protocol.label(),
            stats.total_global_msgs,
            stats.total_local_msgs,
            plan.global_values(),
            t.total,
        );
    }
    println!();
    println!("Figure 3: standard sends 15 inter-region messages.");
    println!("Figure 4: aggregation needs only 1 inter-region message (17 values).");
    println!("Figure 5: duplicate removal shrinks it to 8 values.\n");

    // Execute each protocol for real on 8 simulated ranks, through the
    // unified NeighborAlltoallv entry point.
    for protocol in Protocol::ALL {
        let coll = NeighborAlltoallv::new(&pattern, &topo).protocol(protocol);
        let ok = World::run(8, |ctx| {
            let comm = ctx.comm_world();
            let mut nb = coll.init(ctx, &comm);
            // each rank contributes value 100 + index for the indices it owns
            let input: Vec<f64> = nb.input_index().iter().map(|&i| 100.0 + i as f64).collect();
            let mut output = vec![0.0; nb.output_index().len()];
            nb.start_wait(ctx, &input, &mut output);
            nb.output_index()
                .iter()
                .zip(&output)
                .all(|(&i, &v)| v == 100.0 + i as f64)
        });
        assert!(ok.iter().all(|&b| b));
        println!(
            "executed {:<30} -> every ghost value delivered correctly",
            protocol.label()
        );
    }

    // ... or let the model pick: Backend::Auto selects at init time (§5).
    let auto = NeighborAlltoallv::new(&pattern, &topo).cost_model(&model);
    let (winner, _) = auto.plan();
    println!("\nBackend::Auto selects: {}", winner.label());

    // Real workloads keep many collectives live at once (one per AMG
    // level): NeighborBatch is the session that owns all of them —
    // mixed backends included — and init_all registers the whole set in
    // one pass, returning a BatchRequest. Its completion-driven verbs
    // drive the set as one: start_all posts every entry's iteration, and
    // wait_any retires whichever entry's traffic lands first — so the
    // compute for a fast entry never waits behind a slow one.
    let second = CommPattern::example_2_1();
    let batch = NeighborBatch::new(&topo)
        .entry(&pattern, Backend::Protocol(Protocol::FullNeighbor))
        .entry(&second, Backend::Auto);
    let ok = World::run(8, |ctx| {
        let comm = ctx.comm_world();
        let mut session = batch.init_all(ctx, &comm);
        let inputs: Vec<Vec<f64>> = session
            .requests()
            .iter()
            .map(|req| {
                req.input_index()
                    .iter()
                    .map(|&i| 100.0 + i as f64)
                    .collect()
            })
            .collect();
        let mut outputs: Vec<Vec<f64>> = session
            .requests()
            .iter()
            .map(|req| vec![0.0; req.output_index().len()])
            .collect();
        session.start_all(ctx, &inputs); // MPI_Startall over whole collectives
        let mut ok = true;
        while session.in_flight() > 0 {
            // MPI_Waitany over whole collectives: entries retire in
            // delivery order; per-entry compute goes right here
            let e = session.wait_any(ctx, &mut outputs);
            ok &= session
                .entry(e)
                .output_index()
                .iter()
                .zip(&outputs[e])
                .all(|(&i, &v)| v == 100.0 + i as f64);
        }
        ok
    });
    assert!(ok.iter().all(|&b| b));
    println!("batched 2 live collectives through one start_all/wait_any session ✓");
}
