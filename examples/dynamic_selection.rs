//! Dynamic protocol selection across an AMG hierarchy.
//!
//! The paper's future-work proposal (§5): "a simple performance measure is
//! needed within the neighborhood collective to dynamically select the
//! optimal communication strategy". This example implements it — on every
//! level of a rotated anisotropic diffusion hierarchy the model-driven
//! selector picks the cheapest protocol, and the summed cost is compared
//! against committing to any single protocol everywhere.
//!
//! Run with: `cargo run --release --example dynamic_selection`

use amg::{DistributedHierarchy, Hierarchy, HierarchyOptions};
use locality::Topology;
use mpi_advance::analytic::iteration_time;
use mpi_advance::{NeighborAlltoallv, Protocol};
use perfmodel::LocalityModel;
use sparse::gen::diffusion::paper_problem;

const RANKS: usize = 128;
const PPN: usize = 16;

fn main() {
    let a = paper_problem(256, 128);
    let h = Hierarchy::setup(a, HierarchyOptions::default());
    let dist = DistributedHierarchy::build(&h, RANKS);
    let topo = Topology::block_nodes(RANKS, PPN);
    let model = LocalityModel::lassen();

    println!(
        "{:<6} {:>9} {:>10} {:>12}  selected protocol",
        "level", "rows", "msgs", "time s"
    );
    let mut committed = [0.0f64; 4];
    let mut selected_total = 0.0;
    for dlvl in &dist.levels {
        let pattern = dlvl.pattern();
        for (i, p) in Protocol::ALL.into_iter().enumerate() {
            committed[i] +=
                iteration_time(&p.plan(&pattern, &topo), &topo, &model, p.is_wrapped()).total;
        }
        if pattern.total_msgs() == 0 {
            println!(
                "{:<6} {:>9} {:>10} {:>12}  (idle)",
                dlvl.level, dlvl.n_rows, 0, "-"
            );
            continue;
        }
        // Backend::Auto resolves exactly this selection at init time.
        let coll = NeighborAlltoallv::new(&pattern, &topo).cost_model(&model);
        let (winner, plan) = coll.plan();
        let t = iteration_time(&plan, &topo, &model, winner.is_wrapped()).total;
        selected_total += t;
        println!(
            "{:<6} {:>9} {:>10} {:>12.3e}  {}",
            dlvl.level,
            dlvl.n_rows,
            pattern.total_msgs(),
            t,
            winner.label()
        );
    }

    println!("\ntotal per-iteration cost committing to one protocol everywhere:");
    for (i, p) in Protocol::ALL.into_iter().enumerate() {
        println!("  {:<30} {:.3e} s", p.label(), committed[i]);
    }
    println!("  {:<30} {:.3e} s", "dynamic selection", selected_total);
    let best_committed = committed.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "\ndynamic selection is {:.1}% better than the best single protocol",
        100.0 * (best_committed - selected_total) / best_committed
    );
    assert!(selected_total <= best_committed + 1e-12);
}
