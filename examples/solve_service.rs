//! The async solve service, end to end (DESIGN.md §12).
//!
//! The paper's collectives amortize setup across the iterations of one
//! solver; [`SolveService`] amortizes the *world* across many solvers.
//! This example stands up a warm 8-rank pool, submits six AMG relaxation
//! tenants with distinct right-hand sides, and drives them all in ONE
//! epoch — each job on its own dup'd communicator, each rank parking
//! once on the union of every tenant's wake set. It then shows the two
//! properties that make that safe to rely on:
//!
//! 1. the pool is warm — a second round of submissions reuses it, and
//!    job ids (hence communicator streams) never collide across epochs;
//! 2. failures are per tenant — a seeded `kill=` fault takes down one
//!    job with an attributed error while every other tenant's result
//!    stays byte-identical to the fault-free run.
//!
//! Run with: `cargo run --release --example solve_service`

use std::f64::consts::FRAC_PI_4;
use std::sync::Arc;

use amg::{Hierarchy, HierarchyOptions, JacobiJob};
use locality::Topology;
use mpisim::{FaultPlan, World};
use service::{JobLogic, JobSpec, SolveService};
use sparse::gen::diffusion_2d_7pt;

const RANKS: usize = 8;
const TENANTS: usize = 6;

fn main() {
    // One shared AMG hierarchy (a 24x12 diffusion problem), six tenants
    // that each relax a different right-hand side on it.
    let a = diffusion_2d_7pt(24, 12, 0.001, FRAC_PI_4);
    let n = a.n_rows();
    let hier = Hierarchy::setup(a, HierarchyOptions::default());
    let topo = Topology::block_nodes(RANKS, 4);
    let jobs: Vec<Arc<JacobiJob>> = (0..TENANTS)
        .map(|j| {
            let seed = 0.11 + 0.17 * j as f64;
            let rhs: Vec<f64> = (0..n).map(|i| (seed * i as f64).cos()).collect();
            Arc::new(JacobiJob::relaxation(&hier, RANKS, &rhs, 0.8, 4))
        })
        .collect();
    let submit_all = |svc: &mut SolveService| {
        for (k, j) in jobs.iter().enumerate() {
            svc.submit(JobSpec::new(
                format!("tenant-{k}"),
                topo.clone(),
                Arc::clone(j) as Arc<dyn JobLogic>,
            ));
        }
    };

    // -- round 1: six tenants, one epoch, one park per rank ------------
    let mut svc = SolveService::new(RANKS).max_concurrent(3);
    submit_all(&mut svc);
    let round1 = svc.run_pending();
    for (k, rep) in round1.iter().enumerate() {
        let got = rep.outcome.as_ref().expect("fault-free tenant");
        assert_eq!(got, &jobs[k].reference_results());
        println!(
            "round 1  {:<10} ok: {} ranks, byte-identical to the serial reference",
            rep.name,
            got.len()
        );
    }

    // -- round 2: the pool is warm, the id space is not reused ---------
    submit_all(&mut svc);
    let round2 = svc.run_pending();
    assert!(round2.iter().all(|r| r.outcome.is_ok()));
    println!("\nround 2  same warm pool, {TENANTS} fresh jobs, all ok\n");

    // -- fault round: one tenant dies, the rest are untouched ----------
    // Rank 1 is killed at its 60th transport operation — mid-epoch, in
    // the middle of some tenant's traffic. The scheduler absorbs the
    // death, cancels exactly the jobs that rank was carrying (with the
    // failing rank named in the error), and every surviving tenant
    // still matches the reference byte for byte.
    let plan = FaultPlan::seeded(7).kill(1, 60);
    let mut faulty = SolveService::with_pool(World::pool_with_faults(RANKS, plan));
    submit_all(&mut faulty);
    let reports = faulty.run_pending();
    let mut survivors = 0;
    for (k, rep) in reports.iter().enumerate() {
        match &rep.outcome {
            Ok(got) => {
                assert_eq!(got, &jobs[k].reference_results());
                survivors += 1;
            }
            Err(e) => println!("faulted  {:<10} failed (isolated): {e}", rep.name),
        }
    }
    println!("faulted  {survivors}/{TENANTS} tenants survived, byte-identical to fault-free runs");
    assert!(survivors > 0, "the kill should not take every tenant down");
}
