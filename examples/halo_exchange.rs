//! Halo exchange beyond AMG: a structured 9-point stencil ghost exchange.
//!
//! The paper notes the optimized collectives "are not limited to AMG and
//! can be used to reduce the cost of irregular communication within other
//! solvers and simulations" (§2) — but also that they "are capable of
//! greatly increasing communication costs, particularly for patterns with
//! fewer communication requirements" (§5). This example shows both sides:
//! a 2-D domain-decomposed halo exchange is cheap and regular, so standard
//! communication usually wins at low process counts, while the aggregated
//! collectives catch up as the process grid (and therefore the number of
//! small boundary messages per node) grows.
//!
//! Run with: `cargo run --release --example halo_exchange`

use locality::Topology;
use mpi_advance::analytic::iteration_time;
use mpi_advance::{choose_protocol, CommPattern, NeighborAlltoallv, Protocol};
use mpisim::World;
use perfmodel::LocalityModel;

/// Build the halo-exchange pattern of a `px × py` process grid, each rank
/// owning a `tile × tile` block of a global 2-D mesh with one ghost layer
/// (9-point stencil: edges + corners).
fn halo_pattern(px: usize, py: usize, tile: usize) -> CommPattern {
    let n = px * py;
    let rank = |x: usize, y: usize| y * px + x;
    // global cell index of local cell (cx, cy) of rank (x, y)
    let cell =
        |x: usize, y: usize, cx: usize, cy: usize| ((y * tile + cy) * (px * tile)) + x * tile + cx;
    let mut sends: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); n];
    for y in 0..py {
        for x in 0..px {
            let me = rank(x, y);
            let mut push = |dx: i64, dy: i64, cells: Vec<usize>| {
                let (nx, ny) = (x as i64 + dx, y as i64 + dy);
                if nx >= 0 && nx < px as i64 && ny >= 0 && ny < py as i64 {
                    sends[me].push((rank(nx as usize, ny as usize), cells));
                }
            };
            let edge_x: Vec<usize> = (0..tile).collect();
            // four edges
            push(-1, 0, edge_x.iter().map(|&cy| cell(x, y, 0, cy)).collect());
            push(
                1,
                0,
                edge_x.iter().map(|&cy| cell(x, y, tile - 1, cy)).collect(),
            );
            push(0, -1, edge_x.iter().map(|&cx| cell(x, y, cx, 0)).collect());
            push(
                0,
                1,
                edge_x.iter().map(|&cx| cell(x, y, cx, tile - 1)).collect(),
            );
            // four corners
            push(-1, -1, vec![cell(x, y, 0, 0)]);
            push(1, -1, vec![cell(x, y, tile - 1, 0)]);
            push(-1, 1, vec![cell(x, y, 0, tile - 1)]);
            push(1, 1, vec![cell(x, y, tile - 1, tile - 1)]);
        }
    }
    CommPattern::new(n, sends)
}

fn main() {
    let model = LocalityModel::lassen();
    println!(
        "{:<10} {:>6} {:>12} {:>12} {:>12}  model picks",
        "grid", "ranks", "standard s", "partial s", "full s"
    );
    for (px, py, tile, ppn) in [(2, 2, 16, 4), (4, 4, 8, 4), (8, 8, 4, 8), (16, 8, 4, 16)] {
        let pattern = halo_pattern(px, py, tile);
        let topo = Topology::block_nodes(px * py, ppn);
        let times: Vec<f64> = Protocol::ALL
            .iter()
            .map(|&p| iteration_time(&p.plan(&pattern, &topo), &topo, &model, p.is_wrapped()).total)
            .collect();
        let (winner, _) = choose_protocol(&pattern, &topo, &model);
        println!(
            "{:<10} {:>6} {:>12.3e} {:>12.3e} {:>12.3e}  {}",
            format!("{px}x{py}x{tile}"),
            px * py,
            times[0],
            times[2],
            times[3],
            winner.label()
        );
    }

    // Execute the largest case for real and verify delivery.
    let (px, py, tile) = (8, 8, 4);
    let pattern = halo_pattern(px, py, tile);
    let topo = Topology::block_nodes(px * py, 8);
    let coll = NeighborAlltoallv::new(&pattern, &topo).protocol(Protocol::FullNeighbor);
    let ok = World::run(px * py, |ctx| {
        let comm = ctx.comm_world();
        let mut nb = coll.init(ctx, &comm);
        let input: Vec<f64> = nb.input_index().iter().map(|&i| i as f64 * 0.5).collect();
        let mut ghost = vec![0.0; nb.output_index().len()];
        // ten "time steps" with evolving values
        let mut ok = true;
        for step in 0..10 {
            let scaled: Vec<f64> = input.iter().map(|v| v + step as f64).collect();
            nb.start_wait(ctx, &scaled, &mut ghost);
            ok &= nb
                .output_index()
                .iter()
                .zip(&ghost)
                .all(|(&i, &v)| v == i as f64 * 0.5 + step as f64);
        }
        ok
    });
    assert!(ok.iter().all(|&b| b));
    println!("\nexecuted 10 halo-exchange steps on 64 ranks: all ghosts correct ✓");
}
