//! BoomerAMG SpMV halo exchange with ranks as **real OS processes**.
//!
//! The same application scenario as `amg_solve`, deployed on the
//! cross-process shared-memory fabric: `World::spawn_processes` re-execs
//! this binary once per rank, every rank attaches to one `/dev/shm`
//! segment, and all halo traffic crosses true process boundaries over the
//! fabric's SPSC rings — plain mailbox sends, pre-matched persistent
//! channels, and futex parking included. Every process builds the
//! hierarchy, the batch, and the serial reference deterministically, so
//! each rank verifies its own slice of every level's distributed SpMV
//! against the serial operator *inside* an epoch: any divergence aborts
//! the whole world loudly.
//!
//! Transport selection: `spawn_processes` always uses the shm fabric —
//! that is its point. For the thread-deployment shapes, setting
//! `MPISIM_TRANSPORT=shm` routes `World::run` / `World::pool` over the
//! same fabric with ranks as threads (see `amg_solve`), which is how the
//! wire path is exercised without process management.
//!
//! Run with: `cargo run --release --example amg_proc`

use amg::{DistributedHierarchy, Hierarchy, HierarchyOptions};
use locality::Topology;
use mpi_advance::{Backend, NeighborBatch, Protocol};
use mpisim::World;
use sparse::gen::diffusion::paper_problem;
use sparse::vector::random_vec;
use sparse::ParCsr;

const RANKS: usize = 8;
const PPN: usize = 4;

fn main() {
    // worker processes re-enter this main before `spawn_processes` turns
    // them into ranks: only the original process narrates
    let chatty = std::env::var_os("MPISIM_WORKER_RANK").is_none();

    // identical deterministic setup in every process (the batch's tag
    // lease comes from each process's fresh tag space, so all ranks carve
    // the same namespaces)
    let a = paper_problem(128, 64);
    let h = Hierarchy::setup(a, HierarchyOptions::default());
    let dist = DistributedHierarchy::build(&h, RANKS);
    let topo = Topology::block_nodes(RANKS, PPN);
    let patterns = dist.patterns();
    let mut batch = NeighborBatch::new(&topo);
    for pattern in &patterns {
        batch = batch.entry(pattern, Backend::Protocol(Protocol::FullNeighbor));
    }
    let xs: Vec<Vec<f64>> = dist
        .levels
        .iter()
        .map(|dlvl| random_vec(dlvl.n_rows, dlvl.level as u64))
        .collect();
    let serial: Vec<Vec<f64>> = dist
        .levels
        .iter()
        .enumerate()
        .map(|(lvl, dlvl)| h.levels[dlvl.level].a.spmv(&xs[lvl]))
        .collect();
    if chatty {
        println!(
            "hierarchy: {} levels {:?}; spawning {RANKS} rank processes",
            h.n_levels(),
            h.level_sizes()
        );
    }

    let world = World::spawn_processes(RANKS);
    let me = world.rank();
    let errs = world.run(|ctx| {
        let me = ctx.rank();
        let pars: Vec<ParCsr> = dist
            .levels
            .iter()
            .map(|dlvl| ParCsr::split_all(&h.levels[dlvl.level].a, &dlvl.part).swap_remove(me))
            .collect();
        let comm = ctx.comm_world();
        let mut session = batch.init_all(ctx, &comm);
        let inputs: Vec<Vec<f64>> = session
            .requests()
            .iter()
            .enumerate()
            .map(|(lvl, req)| req.input_index().iter().map(|&i| xs[lvl][i]).collect())
            .collect();
        let mut ghosts: Vec<Vec<f64>> = session
            .requests()
            .iter()
            .map(|req| vec![0.0; req.output_index().len()])
            .collect();
        // one start_all posts every level's exchange across the process
        // fabric; wait_any retires levels in delivery order, each level's
        // SpMV overlapping the slower levels' in-flight traffic
        session.start_all(ctx, &inputs);
        let mut errs = vec![f64::NAN; session.len()];
        while session.in_flight() > 0 {
            let lvl = session.wait_any(ctx, &mut ghosts);
            let range = dist.levels[lvl].part.range(me);
            let y = pars[lvl].spmv(&xs[lvl][range.clone()], &ghosts[lvl]);
            let err = y
                .iter()
                .zip(&serial[lvl][range])
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            assert!(
                err < 1e-12,
                "rank {me} level {lvl}: distributed SpMV diverged ({err:.3e})"
            );
            errs[lvl] = err;
        }
        errs
    });

    if me == 0 {
        for (lvl, (dlvl, err)) in dist.levels.iter().zip(&errs).enumerate() {
            println!(
                "level {lvl:<2} {:>8} rows  rank-0 max |err| = {err:.3e}",
                dlvl.n_rows
            );
        }
        println!(
            "\nall {} levels exchanged across {RANKS} OS processes and verified",
            dist.n_levels()
        );
    }
}
