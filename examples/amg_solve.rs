//! BoomerAMG solve with neighborhood-collective SpMV communication.
//!
//! Reproduces the paper's application scenario in miniature: a rotated
//! anisotropic diffusion system is solved with AMG, and the SpMV
//! halo exchange on every level runs through a persistent neighborhood
//! collective on the simulated MPI runtime. The distributed SpMV results
//! are checked against the serial operator, and the per-level
//! communication statistics are reported.
//!
//! Run with: `cargo run --release --example amg_solve`

use amg::{solve, DistributedHierarchy, Hierarchy, HierarchyOptions, SolveOptions};
use locality::Topology;
use mpi_advance::{NeighborAlltoallv, PlanStats, Protocol};
use mpisim::World;
use sparse::gen::diffusion::paper_problem;
use sparse::vector::random_vec;
use sparse::ParCsr;

const RANKS: usize = 16;
const PPN: usize = 4;

fn main() {
    // The paper's PDE at a laptop-friendly size.
    let (nx, ny) = (128, 64);
    let a = paper_problem(nx, ny);
    println!(
        "rotated anisotropic diffusion: {} rows, {} nnz",
        a.n_rows(),
        a.nnz()
    );

    // --- serial AMG solve (the solver whose SpMVs we distribute) --------
    let h = Hierarchy::setup(a.clone(), HierarchyOptions::default());
    println!("hierarchy: {} levels {:?}", h.n_levels(), h.level_sizes());
    let x_true = random_vec(a.n_rows(), 42);
    let b = a.spmv(&x_true);
    let result = solve(&h, &b, &SolveOptions::default());
    println!(
        "AMG solve: converged = {}, cycles = {}, avg residual reduction = {:.3}\n",
        result.converged,
        result.residual_history.len() - 1,
        result.avg_convergence_factor()
    );

    // --- distributed SpMV on every level via neighborhood collectives ---
    // One pooled world serves every level: the rank threads (and each
    // level's pre-matched channels) stay warm across the whole hierarchy,
    // the shape a real AMG solve has — one MPI world, many collectives.
    let dist = DistributedHierarchy::build(&h, RANKS);
    let topo = Topology::block_nodes(RANKS, PPN);
    let pool = World::pool(RANKS);

    println!(
        "{:<6} {:>8} {:>10} {:>12} {:>12} {:>14}",
        "level", "rows", "std msgs", "opt global", "opt local", "dedup save"
    );
    for (lvl, dlvl) in dist.levels.iter().enumerate() {
        let pattern = dlvl.pattern();
        if pattern.total_msgs() == 0 {
            println!("{lvl:<6} {:>8} (no communication)", dlvl.n_rows);
            continue;
        }
        let st = PlanStats::of(&Protocol::StandardHypre.plan(&pattern, &topo));
        let pa = PlanStats::of(&Protocol::PartialNeighbor.plan(&pattern, &topo));
        let fu = PlanStats::of(&Protocol::FullNeighbor.plan(&pattern, &topo));
        let save = if pa.total_global_bytes > 0 {
            100.0 * (pa.total_global_bytes - fu.total_global_bytes) as f64
                / pa.total_global_bytes as f64
        } else {
            0.0
        };
        println!(
            "{lvl:<6} {:>8} {:>10} {:>12} {:>12} {:>13.1}%",
            dlvl.n_rows, st.total_global_msgs, fu.total_global_msgs, fu.total_local_msgs, save
        );

        // execute the level's SpMV with the fully optimized collective and
        // verify against the serial product
        let x = random_vec(dlvl.n_rows, lvl as u64);
        let serial = h.levels[lvl].a.spmv(&x);
        let coll = NeighborAlltoallv::new(&pattern, &topo).protocol(Protocol::FullNeighbor);
        let pars: Vec<ParCsr> = ParCsr::split_all(&h.levels[lvl].a, &dlvl.part);
        let results = pool.run(|ctx| {
            let comm = ctx.comm_world();
            let me = ctx.rank();
            let par = &pars[me];
            let range = dlvl.part.range(me);
            let mut nb = coll.init(ctx, &comm);
            // input: my owned values the pattern exports
            let input: Vec<f64> = nb.input_index().iter().map(|&i| x[i]).collect();
            let mut ghost = vec![0.0; nb.output_index().len()];
            nb.start_wait(ctx, &input, &mut ghost);
            // ghosts arrive ordered by global index = col_map_offd order
            par.spmv(&x[range], &ghost)
        });
        let mut y = Vec::with_capacity(dlvl.n_rows);
        for r in results {
            y.extend(r);
        }
        let max_err = y
            .iter()
            .zip(&serial)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-12, "level {lvl} SpMV mismatch: {max_err}");
    }
    println!("\nall distributed SpMVs match the serial operator bit-for-bit ✓");
}
