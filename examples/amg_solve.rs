//! BoomerAMG solve with neighborhood-collective SpMV communication.
//!
//! Reproduces the paper's application scenario in miniature: a rotated
//! anisotropic diffusion system is solved with AMG, and the SpMV
//! halo exchange on every level runs through a persistent neighborhood
//! collective on the simulated MPI runtime. The whole hierarchy is driven
//! the way a real solve drives it — **one warm `WorldPool`, one
//! `NeighborBatch` holding every level's collective**: the batch plans all
//! levels up front, carves each a private tag namespace, derives every
//! rank's routing in one fused sweep, and registers all levels' channels
//! in a single pass; one **`start_all`** posts every level's exchange and
//! a **`wait_any`** loop retires each level the moment its traffic lands,
//! running its SpMV while slower levels are still in flight. The
//! distributed SpMV results are checked against the serial operator, and
//! the per-level communication statistics are reported.
//!
//! Run with: `cargo run --release --example amg_solve`

use amg::{solve, DistributedHierarchy, Hierarchy, HierarchyOptions, SolveOptions};
use locality::Topology;
use mpi_advance::{Backend, NeighborBatch, PlanStats, Protocol};
use mpisim::World;
use sparse::gen::diffusion::paper_problem;
use sparse::vector::random_vec;
use sparse::ParCsr;

const RANKS: usize = 16;
const PPN: usize = 4;

fn main() {
    // The paper's PDE at a laptop-friendly size.
    let (nx, ny) = (128, 64);
    let a = paper_problem(nx, ny);
    println!(
        "rotated anisotropic diffusion: {} rows, {} nnz",
        a.n_rows(),
        a.nnz()
    );

    // --- serial AMG solve (the solver whose SpMVs we distribute) --------
    let h = Hierarchy::setup(a.clone(), HierarchyOptions::default());
    println!("hierarchy: {} levels {:?}", h.n_levels(), h.level_sizes());
    let x_true = random_vec(a.n_rows(), 42);
    let b = a.spmv(&x_true);
    let result = solve(&h, &b, &SolveOptions::default());
    println!(
        "AMG solve: converged = {}, cycles = {}, avg residual reduction = {:.3}\n",
        result.converged,
        result.residual_history.len() - 1,
        result.avg_convergence_factor()
    );

    // --- per-level communication statistics ------------------------------
    let dist = DistributedHierarchy::build(&h, RANKS);
    let topo = Topology::block_nodes(RANKS, PPN);
    let patterns = dist.patterns();

    println!(
        "{:<6} {:>8} {:>10} {:>12} {:>12} {:>14}",
        "level", "rows", "std msgs", "opt global", "opt local", "dedup save"
    );
    for (lvl, (dlvl, pattern)) in dist.levels.iter().zip(&patterns).enumerate() {
        if pattern.total_msgs() == 0 {
            println!("{lvl:<6} {:>8} (no communication)", dlvl.n_rows);
            continue;
        }
        let st = PlanStats::of(&Protocol::StandardHypre.plan(pattern, &topo));
        let pa = PlanStats::of(&Protocol::PartialNeighbor.plan(pattern, &topo));
        let fu = PlanStats::of(&Protocol::FullNeighbor.plan(pattern, &topo));
        let save = if pa.total_global_bytes > 0 {
            100.0 * (pa.total_global_bytes - fu.total_global_bytes) as f64
                / pa.total_global_bytes as f64
        } else {
            0.0
        };
        println!(
            "{lvl:<6} {:>8} {:>10} {:>12} {:>12} {:>13.1}%",
            dlvl.n_rows, st.total_global_msgs, fu.total_global_msgs, fu.total_local_msgs, save
        );
    }

    // --- every level's SpMV through ONE batch on ONE pooled world --------
    // One session owns the hierarchy: all levels planned/tagged/staged
    // together, all simultaneously live, registered in a single pass over
    // the warm world's channel registry.
    let mut batch = NeighborBatch::new(&topo);
    for pattern in &patterns {
        batch = batch.entry(pattern, Backend::Protocol(Protocol::FullNeighbor));
    }
    let xs: Vec<Vec<f64>> = dist
        .levels
        .iter()
        .map(|dlvl| random_vec(dlvl.n_rows, dlvl.level as u64))
        .collect();
    let pars: Vec<Vec<ParCsr>> = dist
        .levels
        .iter()
        .map(|dlvl| ParCsr::split_all(&h.levels[dlvl.level].a, &dlvl.part))
        .collect();

    let pool = World::pool(RANKS);
    let results = pool.run(|ctx| {
        let comm = ctx.comm_world();
        let me = ctx.rank();
        // MPI_Neighbor_alltoallv_init × n_levels, as one operation
        let mut session = batch.init_all(ctx, &comm);
        // post every level's exchange with ONE call, then retire levels as
        // their traffic lands: wait_any completes whichever level's halo
        // finishes first, and its SpMV runs while slower levels' messages
        // are still in flight — the overlap the paper's persistent
        // collectives exist to expose. No level's compute ever waits on a
        // level it does not depend on.
        let inputs: Vec<Vec<f64>> = session
            .requests()
            .iter()
            .enumerate()
            .map(|(lvl, req)| req.input_index().iter().map(|&i| xs[lvl][i]).collect())
            .collect();
        let mut ghosts: Vec<Vec<f64>> = session
            .requests()
            .iter()
            .map(|req| vec![0.0; req.output_index().len()])
            .collect();
        session.start_all(ctx, &inputs);
        let mut ys: Vec<Vec<f64>> = vec![Vec::new(); session.len()];
        while session.in_flight() > 0 {
            let lvl = session.wait_any(ctx, &mut ghosts);
            let range = dist.levels[lvl].part.range(me);
            // ghosts arrive ordered by global index = col_map_offd order
            ys[lvl] = pars[lvl][me].spmv(&xs[lvl][range], &ghosts[lvl]);
        }
        ys
    });

    for (lvl, dlvl) in dist.levels.iter().enumerate() {
        let serial = h.levels[lvl].a.spmv(&xs[lvl]);
        let mut y = Vec::with_capacity(dlvl.n_rows);
        for rank_results in &results {
            y.extend(&rank_results[lvl]);
        }
        let max_err = y
            .iter()
            .zip(&serial)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-12, "level {lvl} SpMV mismatch: {max_err}");
    }
    println!(
        "\nall {} levels posted with one start_all and retired by wait_any in",
        dist.n_levels()
    );
    println!("delivery order, each level's SpMV overlapping the others' traffic;");
    println!("every distributed SpMV matches the serial operator bit-for-bit ✓");
}
