//! No-op derive macros for the offline `serde` stand-in: the shim's
//! `Serialize`/`Deserialize` traits carry blanket impls, so the derives
//! have nothing to emit. They exist so `#[derive(Serialize, Deserialize)]`
//! keeps compiling unchanged.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
