//! Minimal stand-in for `criterion` (offline build; see vendor/README.md).
//!
//! Provides the harness subset the workspace's benches use: `Criterion`,
//! `benchmark_group`/`bench_function`/`bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!`/`criterion_main!` macros. Timing is
//! wall-clock with an adaptive inner loop (fast bodies are batched until a
//! sample lasts ≥ ~5 ms); reported statistics are min/median/mean over the
//! samples.
//!
//! Set `BENCH_JSON=<path>` to additionally write all results of the run as
//! a JSON array — used to produce the committed `BENCH_*.json` baselines.
//!
//! Passing `--test` on the command line (real criterion's smoke mode, e.g.
//! `cargo bench -- --test`) executes every benchmark body exactly once
//! with no warmup or batching — compile-and-run verification for CI, not
//! a measurement.
//!
//! A positional argument is a substring filter on the `group/name` label
//! (real criterion's filter), e.g. `cargo bench --bench protocols --
//! steady_state` runs only the steady-state group.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// True when the binary was invoked with `--test` (smoke mode).
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Substring filter on benchmark labels: the first positional argument.
fn name_filter() -> Option<String> {
    std::env::args().skip(1).find(|a| !a.starts_with('-'))
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Per-benchmark measurement passed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
    /// Smoke mode: run the body once, skip warmup and batching.
    quick: bool,
}

impl Bencher {
    /// Measure `f`, batching calls so one sample lasts at least ~5 ms.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.quick {
            let t = Instant::now();
            std::hint::black_box(f());
            self.samples.clear();
            self.samples.push(t.elapsed());
            return;
        }
        // warmup + batch sizing
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed();
        let batch = if once < Duration::from_millis(5) {
            (Duration::from_millis(5).as_nanos() / once.as_nanos().max(1)).clamp(1, 1_000_000)
                as usize
        } else {
            1
        };
        self.samples.clear();
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            self.samples.push(t.elapsed() / batch as u32);
        }
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub group: String,
    pub name: String,
    pub min_ns: f64,
    pub median_ns: f64,
    pub mean_ns: f64,
    pub samples: usize,
}

/// Entry point, shared across all groups of a bench binary.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id: BenchmarkId = name.into();
        run_one(self, String::new(), id.id, 20, f);
        self
    }

    /// Write the run's results as JSON when `BENCH_JSON` is set.
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("BENCH_JSON") else {
            return;
        };
        if test_mode() {
            eprintln!("bench smoke mode (--test): not writing {path}");
            return;
        }
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"group\": \"{}\", \"name\": \"{}\", \"min_ns\": {:.1}, \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": {}}}{}\n",
                r.group,
                r.name,
                r.min_ns,
                r.median_ns,
                r.mean_ns,
                r.samples,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("]\n");
        std::fs::write(&path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("bench results written to {path}");
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    c: &mut Criterion,
    group: String,
    name: String,
    sample_size: usize,
    mut f: F,
) {
    let full_label = if group.is_empty() {
        name.clone()
    } else {
        format!("{group}/{name}")
    };
    if let Some(f) = name_filter() {
        if !full_label.contains(&f) {
            return;
        }
    }
    let quick = test_mode();
    let mut b = Bencher {
        samples: Vec::new(),
        sample_count: if quick { 1 } else { sample_size },
        quick,
    };
    f(&mut b);
    let mut ns: Vec<f64> = b.samples.iter().map(|d| d.as_nanos() as f64).collect();
    ns.sort_by(|a, b| a.total_cmp(b));
    let label = full_label;
    if ns.is_empty() {
        eprintln!("{label}: no samples (Bencher::iter never called)");
        return;
    }
    let min = ns[0];
    let median = ns[ns.len() / 2];
    let mean = ns.iter().sum::<f64>() / ns.len() as f64;
    eprintln!(
        "{label}: min {} median {} mean {} ({} samples)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        ns.len()
    );
    c.results.push(BenchResult {
        group,
        name,
        min_ns: min,
        median_ns: median,
        mean_ns: mean,
        samples: ns.len(),
    });
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        run_one(self.c, self.name.clone(), id.id, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(self.c, self.name.clone(), id.id, self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_record_results() {
        let mut c = Criterion::default();
        c.bench_function("trivial", |b| b.iter(|| 1 + 1));
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::from_parameter("x"), &5usize, |b, &n| {
                b.iter(|| n * 2)
            });
            g.finish();
        }
        assert_eq!(c.results.len(), 2);
        assert_eq!(c.results[1].group, "g");
        assert!(c.results[0].min_ns >= 0.0);
    }
}
