//! Minimal stand-in for `proptest` (offline build; see vendor/README.md).
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait over ranges/tuples with `prop_map`/`prop_flat_map`,
//! `prop::collection::vec`, [`any`], [`Just`], [`ProptestConfig`], and the
//! `proptest!`/`prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! deterministic seed instead), and case generation derives from a fixed
//! per-test seed, so runs are exactly reproducible without a
//! `proptest-regressions` directory.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Error produced by a failing or rejected test case.
#[derive(Debug)]
pub struct TestCaseError {
    reject: bool,
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        Self { reject: false, msg }
    }

    pub fn reject() -> Self {
        Self {
            reject: true,
            msg: String::new(),
        }
    }

    pub fn is_reject(&self) -> bool {
        self.reject
    }

    pub fn message(&self) -> &str {
        &self.msg
    }
}

/// Runner configuration. Only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the shim trims to keep tier-1 fast
        // while still exercising a meaningful sample of the input space.
        Self { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: rand::UniformSample> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = Range<$t>;
            fn arbitrary() -> Range<$t> {
                <$t>::MIN..<$t>::MAX
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection size specification: a count or a half-open/inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    pub min: usize,
    /// Exclusive upper bound.
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, Strategy};
        use rand::rngs::StdRng;
        use rand::Rng;

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// A vector whose length is drawn from `size` and whose elements
        /// are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.min..self.size.max);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    pub use super::{any, prop, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Deterministic per-test seed: FNV-1a over the fully qualified test name.
pub fn test_seed(module: &str, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in module.bytes().chain(name.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one proptest-style test: samples inputs `cases` times and runs
/// the body, skipping rejected cases (up to a retry budget).
pub fn run_cases<F>(config: &ProptestConfig, module: &str, name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let base = test_seed(module, name);
    let mut passed = 0u32;
    let mut attempt = 0u64;
    let budget = config.cases as u64 * 16;
    while passed < config.cases {
        assert!(
            attempt < budget,
            "proptest {name}: too many rejected cases ({attempt} attempts for {passed} passes)"
        );
        let seed = base.wrapping_add(attempt);
        attempt += 1;
        let mut rng = StdRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(e) if e.is_reject() => continue,
            Err(e) => panic!(
                "proptest {name} failed at case {passed} (seed {seed}): {}",
                e.message()
            ),
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&config, module_path!(), stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} ({:?} vs {:?})",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 3usize..17, x in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0usize..5, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn flat_map_composes(v in (1usize..6).prop_flat_map(|n| prop::collection::vec(0usize..10, n..=n))) {
            prop_assert!(!v.is_empty() && v.len() < 6);
        }

        #[test]
        fn assume_rejects(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        assert_eq!(super::test_seed("a::b", "t"), super::test_seed("a::b", "t"));
        assert_ne!(super::test_seed("a::b", "t"), super::test_seed("a::b", "u"));
    }
}
