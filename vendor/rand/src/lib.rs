//! Minimal stand-in for the `rand` crate (offline build; see
//! vendor/README.md). Provides [`rngs::StdRng`], [`SeedableRng`] and the
//! [`Rng`] trait with `gen_range` over half-open numeric ranges — the
//! subset the workspace uses. The generator is xoshiro256++ seeded through
//! SplitMix64, so streams are deterministic and high-quality, though not
//! byte-identical to upstream `rand`'s ChaCha-based `StdRng`.

use std::ops::Range;

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_f64(&mut self) -> f64 {
        // 53 uniformly random mantissa bits in [0, 1)
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `gen_range` can produce, with uniform sampling over `lo..hi`.
pub trait UniformSample: Copy + PartialOrd {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Lemire-style widening multiply avoids modulo bias well
                // enough for test workloads while staying branch-free.
                let r = rng.next_u64() as u128;
                let v = (r * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + (hi - lo) * rng.next_f64()
    }
}

impl UniformSample for f32 {
    fn sample(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        f64::sample(rng, lo as f64, hi as f64) as f32
    }
}

pub trait Rng: RngCore {
    fn gen_range<T: UniformSample>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range.start, range.end)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
        }
    }

    #[test]
    fn integers_cover_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
