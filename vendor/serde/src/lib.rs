//! Minimal stand-in for `serde` (offline build; see vendor/README.md).
//!
//! Nothing in the workspace serializes at runtime — the derives exist so
//! the public types advertise serializability for downstream users. The
//! shim therefore provides `Serialize`/`Deserialize` as marker traits with
//! blanket impls, and re-exports no-op derive macros under the same names
//! (real serde does the same trait/macro name-space sharing).

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
