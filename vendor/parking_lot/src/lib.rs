//! Minimal stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny API subset it actually uses: [`Mutex`]/[`MutexGuard`]
//! with panic-free `lock()`, [`RwLock`] with `read()`/`write()`, and a
//! [`Condvar`] whose `wait`/`wait_for` take `&mut MutexGuard`. Lock
//! poisoning is deliberately ignored (parking_lot has no poisoning): a
//! panicking rank thread must not deadlock the simulated world's other
//! ranks.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Non-blocking [`Mutex::lock`] (parking_lot's `try_lock`): `None`
    /// when the lock is held elsewhere. Lock-free forensic sampling
    /// depends on this never parking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Lock-free access through exclusive ownership.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// Result of [`Condvar::wait_for`] (mirrors parking_lot's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Block until notified, releasing the guard's mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Block until notified or `timeout` elapses (parking_lot's
    /// `wait_for`), releasing the guard's mutex while parked.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = Arc::new(Mutex::new(0u32));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while *g == 0 {
                cv2.wait(&mut g);
            }
            *g
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *m.lock() = 7;
        cv.notify_all();
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read()[3], 4);
    }
}
