//! Coordinate-format builder.

/// A matrix under construction as `(row, col, value)` triplets. Duplicate
/// entries are summed on conversion to CSR.
#[derive(Debug, Clone, Default)]
pub struct Coo {
    pub n_rows: usize,
    pub n_cols: usize,
    pub entries: Vec<(usize, usize, f64)>,
}

impl Coo {
    pub fn new(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            entries: Vec::new(),
        }
    }

    /// Add `value` at `(row, col)` (accumulates with other pushes to the
    /// same position).
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        debug_assert!(row < self.n_rows, "row {row} out of {}", self.n_rows);
        debug_assert!(col < self.n_cols, "col {col} out of {}", self.n_cols);
        self.entries.push((row, col, value));
    }

    pub fn nnz_entries(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;

    #[test]
    fn duplicates_sum_in_csr() {
        let mut c = Coo::new(2, 2);
        c.push(0, 0, 1.0);
        c.push(0, 0, 2.0);
        c.push(1, 1, 5.0);
        let m = Csr::from_coo(&c);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(1, 1), 5.0);
        assert_eq!(m.get(0, 1), 0.0);
    }
}
