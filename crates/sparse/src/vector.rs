//! Dense vector helpers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Euclidean inner product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// 2-norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y ⟵ y + alpha·x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ⟵ alpha·x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Deterministic pseudo-random vector in [-1, 1), seeded for
/// reproducibility.
pub fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, -2.0]);
    }

    #[test]
    fn random_vec_is_deterministic() {
        assert_eq!(random_vec(16, 7), random_vec(16, 7));
        assert_ne!(random_vec(16, 7), random_vec(16, 8));
        assert!(random_vec(100, 1).iter().all(|v| (-1.0..1.0).contains(v)));
    }
}
