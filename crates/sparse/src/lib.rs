//! Sparse linear algebra substrate.
//!
//! Provides everything the AMG solver and the communication experiments
//! need: CSR matrices with SpMV/SpGEMM/transpose, contiguous row
//! partitions, the Hypre-style distributed matrix view
//! ([`ParCsr`]: local `diag` block + `offd` block with a global column map),
//! the communication package derived from a partitioned matrix
//! ([`CommPkg`] — who needs which vector entries, mirroring
//! `hypre_ParCSRCommPkg`), and the problem generators used in the paper's
//! evaluation (rotated anisotropic diffusion).

pub mod commpkg;
pub mod coo;
pub mod csr;
pub mod gen;
pub mod parcsr;
pub mod partition;
pub mod spgemm;
pub mod vector;

pub use commpkg::{build_comm_pkgs, CommPkg};
pub use coo::Coo;
pub use csr::Csr;
pub use parcsr::ParCsr;
pub use partition::Partition;
pub use spgemm::spgemm;

#[cfg(test)]
mod proptests;
