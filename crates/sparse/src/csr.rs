//! Compressed sparse row matrices.

use crate::coo::Coo;

/// A CSR matrix with `f64` values. Column indices within each row are kept
/// sorted and unique (enforced by the constructors).
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    n_rows: usize,
    n_cols: usize,
    rowptr: Vec<usize>,
    colind: Vec<usize>,
    vals: Vec<f64>,
}

impl Csr {
    /// Build from raw arrays, validating the invariants.
    pub fn new(
        n_rows: usize,
        n_cols: usize,
        rowptr: Vec<usize>,
        colind: Vec<usize>,
        vals: Vec<f64>,
    ) -> Self {
        assert_eq!(
            rowptr.len(),
            n_rows + 1,
            "rowptr must have n_rows+1 entries"
        );
        assert_eq!(rowptr[0], 0, "rowptr must start at 0");
        assert_eq!(
            *rowptr.last().unwrap(),
            colind.len(),
            "rowptr end must equal nnz"
        );
        assert_eq!(colind.len(), vals.len(), "colind/vals length mismatch");
        for r in 0..n_rows {
            assert!(rowptr[r] <= rowptr[r + 1], "rowptr must be non-decreasing");
            let cols = &colind[rowptr[r]..rowptr[r + 1]];
            for w in cols.windows(2) {
                assert!(w[0] < w[1], "row {r}: columns must be sorted and unique");
            }
            if let Some(&last) = cols.last() {
                assert!(last < n_cols, "row {r}: column {last} out of {n_cols}");
            }
        }
        Self {
            n_rows,
            n_cols,
            rowptr,
            colind,
            vals,
        }
    }

    /// An empty (all-zero) matrix.
    pub fn zero(n_rows: usize, n_cols: usize) -> Self {
        Self {
            n_rows,
            n_cols,
            rowptr: vec![0; n_rows + 1],
            colind: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// The identity of size `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            n_rows: n,
            n_cols: n,
            rowptr: (0..=n).collect(),
            colind: (0..n).collect(),
            vals: vec![1.0; n],
        }
    }

    /// Convert from COO, sorting columns and summing duplicates. Entries
    /// that sum to exactly zero are kept (structural nonzeros).
    pub fn from_coo(coo: &Coo) -> Self {
        let mut per_row: Vec<usize> = vec![0; coo.n_rows + 1];
        for &(r, _, _) in &coo.entries {
            per_row[r + 1] += 1;
        }
        for i in 0..coo.n_rows {
            per_row[i + 1] += per_row[i];
        }
        // bucket entries by row
        let mut cols = vec![0usize; coo.entries.len()];
        let mut vals = vec![0.0f64; coo.entries.len()];
        let mut cursor = per_row.clone();
        for &(r, c, v) in &coo.entries {
            let p = cursor[r];
            cols[p] = c;
            vals[p] = v;
            cursor[r] += 1;
        }
        // sort each row and merge duplicates
        let mut rowptr = Vec::with_capacity(coo.n_rows + 1);
        rowptr.push(0);
        let mut out_cols = Vec::with_capacity(cols.len());
        let mut out_vals = Vec::with_capacity(vals.len());
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..coo.n_rows {
            scratch.clear();
            scratch.extend(
                cols[per_row[r]..per_row[r + 1]]
                    .iter()
                    .copied()
                    .zip(vals[per_row[r]..per_row[r + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let c = scratch[i].0;
                let mut v = scratch[i].1;
                i += 1;
                while i < scratch.len() && scratch[i].0 == c {
                    v += scratch[i].1;
                    i += 1;
                }
                out_cols.push(c);
                out_vals.push(v);
            }
            rowptr.push(out_cols.len());
        }
        Self {
            n_rows: coo.n_rows,
            n_cols: coo.n_cols,
            rowptr,
            colind: out_cols,
            vals: out_vals,
        }
    }

    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    pub fn nnz(&self) -> usize {
        self.colind.len()
    }

    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    pub fn colind(&self) -> &[usize] {
        &self.colind
    }

    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Columns and values of row `r`.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let (a, b) = (self.rowptr[r], self.rowptr[r + 1]);
        (&self.colind[a..b], &self.vals[a..b])
    }

    pub fn row_nnz(&self, r: usize) -> usize {
        self.rowptr[r + 1] - self.rowptr[r]
    }

    /// Value at `(r, c)` (0.0 when structurally zero). O(log row nnz).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&c) {
            Ok(i) => vals[i],
            Err(_) => 0.0,
        }
    }

    /// `y = A x`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n_rows];
        self.spmv_into(x, &mut y);
        y
    }

    /// `y = A x` into a caller-provided buffer.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "x length mismatch");
        assert_eq!(y.len(), self.n_rows, "y length mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in self.rowptr[r]..self.rowptr[r + 1] {
                acc += self.vals[i] * x[self.colind[i]];
            }
            *yr = acc;
        }
    }

    /// `y += A x` (used by the distributed diag/offd split).
    pub fn spmv_add_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n_cols, "x length mismatch");
        assert_eq!(y.len(), self.n_rows, "y length mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in self.rowptr[r]..self.rowptr[r + 1] {
                acc += self.vals[i] * x[self.colind[i]];
            }
            *yr += acc;
        }
    }

    /// `y = Aᵀ x` without materializing the transpose (the restriction
    /// operation of multigrid).
    pub fn spmv_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_rows, "x length mismatch");
        let mut y = vec![0.0; self.n_cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for i in self.rowptr[r]..self.rowptr[r + 1] {
                y[self.colind[i]] += self.vals[i] * xr;
            }
        }
        y
    }

    /// Transpose (counting sort; O(nnz + n)).
    pub fn transpose(&self) -> Csr {
        let mut rowptr = vec![0usize; self.n_cols + 1];
        for &c in &self.colind {
            rowptr[c + 1] += 1;
        }
        for i in 0..self.n_cols {
            rowptr[i + 1] += rowptr[i];
        }
        let mut colind = vec![0usize; self.nnz()];
        let mut vals = vec![0.0f64; self.nnz()];
        let mut cursor = rowptr.clone();
        for r in 0..self.n_rows {
            for i in self.rowptr[r]..self.rowptr[r + 1] {
                let c = self.colind[i];
                let p = cursor[c];
                colind[p] = r;
                vals[p] = self.vals[i];
                cursor[c] += 1;
            }
        }
        // rows of the transpose come out sorted because we sweep r ascending
        Csr {
            n_rows: self.n_cols,
            n_cols: self.n_rows,
            rowptr,
            colind,
            vals,
        }
    }

    /// The diagonal as a dense vector (square or rectangular; missing
    /// diagonal entries are 0).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.n_rows.min(self.n_cols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Extract a sub-matrix of the given row range with all columns.
    pub fn row_slice(&self, rows: std::ops::Range<usize>) -> Csr {
        assert!(rows.end <= self.n_rows);
        let base = self.rowptr[rows.start];
        let rowptr: Vec<usize> = self.rowptr[rows.start..=rows.end]
            .iter()
            .map(|&p| p - base)
            .collect();
        let colind = self.colind[base..self.rowptr[rows.end]].to_vec();
        let vals = self.vals[base..self.rowptr[rows.end]].to_vec();
        Csr {
            n_rows: rows.len(),
            n_cols: self.n_cols,
            rowptr,
            colind,
            vals,
        }
    }

    /// Dense representation (test helper; avoid on large matrices).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.n_cols]; self.n_rows];
        for (r, dr) in d.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                dr[c] = v;
            }
        }
        d
    }

    /// Frobenius-norm distance to another matrix (test helper).
    pub fn frob_distance(&self, other: &Csr) -> f64 {
        assert_eq!(self.n_rows, other.n_rows);
        assert_eq!(self.n_cols, other.n_cols);
        let mut acc = 0.0;
        for r in 0..self.n_rows {
            let (c1, v1) = self.row(r);
            let (c2, v2) = other.row(r);
            let mut i = 0;
            let mut j = 0;
            while i < c1.len() || j < c2.len() {
                if j >= c2.len() || (i < c1.len() && c1[i] < c2[j]) {
                    acc += v1[i] * v1[i];
                    i += 1;
                } else if i >= c1.len() || c2[j] < c1[i] {
                    acc += v2[j] * v2[j];
                    j += 1;
                } else {
                    let d = v1[i] - v2[j];
                    acc += d * d;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // [1 0 2]
        // [0 3 0]
        let mut coo = Coo::new(2, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(1, 1, 3.0);
        Csr::from_coo(&coo)
    }

    #[test]
    fn basic_accessors() {
        let m = sample();
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0), (&[0usize, 2][..], &[1.0, 2.0][..]));
        assert_eq!(m.get(1, 1), 3.0);
        assert_eq!(m.get(1, 0), 0.0);
        assert_eq!(m.row_nnz(0), 2);
    }

    #[test]
    fn spmv_matches_dense() {
        let m = sample();
        let x = vec![1.0, 10.0, 100.0];
        assert_eq!(m.spmv(&x), vec![201.0, 30.0]);
    }

    #[test]
    fn spmv_add_accumulates() {
        let m = sample();
        let x = vec![1.0, 1.0, 1.0];
        let mut y = vec![100.0, 100.0];
        m.spmv_add_into(&x, &mut y);
        assert_eq!(y, vec![103.0, 103.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.get(2, 0), 2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn identity_spmv_is_noop() {
        let i = Csr::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.spmv(&x), x);
    }

    #[test]
    fn row_slice_extracts() {
        let m = sample();
        let s = m.row_slice(1..2);
        assert_eq!(s.n_rows(), 1);
        assert_eq!(s.get(0, 1), 3.0);
    }

    #[test]
    fn diagonal_of_rectangular() {
        let m = sample();
        assert_eq!(m.diagonal(), vec![1.0, 3.0]);
    }

    #[test]
    fn frob_distance_zero_for_equal() {
        let m = sample();
        assert_eq!(m.frob_distance(&m.clone()), 0.0);
        let z = Csr::zero(2, 3);
        assert!((m.frob_distance(&z) - (1.0f64 + 4.0 + 9.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sorted and unique")]
    fn unsorted_columns_rejected() {
        Csr::new(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_column_rejected() {
        Csr::new(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }
}
