//! Sparse matrix-matrix multiplication (Gustavson's row-wise algorithm
//! with a dense accumulator), used for the Galerkin triple product in AMG.

use crate::csr::Csr;

/// `C = A · B`.
///
/// Uses a generation-stamped dense accumulator of width `B.n_cols()`, so the
/// workspace is allocated once and never cleared between rows.
pub fn spgemm(a: &Csr, b: &Csr) -> Csr {
    assert_eq!(a.n_cols(), b.n_rows(), "inner dimensions must agree");
    let n_rows = a.n_rows();
    let n_cols = b.n_cols();

    let mut acc = vec![0.0f64; n_cols];
    let mut stamp = vec![u32::MAX; n_cols];
    let mut row_cols: Vec<usize> = Vec::new();

    let mut rowptr = Vec::with_capacity(n_rows + 1);
    rowptr.push(0usize);
    let mut colind = Vec::new();
    let mut vals = Vec::new();

    for r in 0..n_rows {
        let generation = r as u32;
        row_cols.clear();
        let (a_cols, a_vals) = a.row(r);
        for (&k, &av) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k);
            for (&c, &bv) in b_cols.iter().zip(b_vals) {
                if stamp[c] != generation {
                    stamp[c] = generation;
                    acc[c] = av * bv;
                    row_cols.push(c);
                } else {
                    acc[c] += av * bv;
                }
            }
        }
        row_cols.sort_unstable();
        for &c in &row_cols {
            colind.push(c);
            vals.push(acc[c]);
        }
        rowptr.push(colind.len());
    }

    Csr::new(n_rows, n_cols, rowptr, colind, vals)
}

/// `Pᵀ · A · P` — the Galerkin coarse-grid product.
pub fn rap(a: &Csr, p: &Csr) -> Csr {
    let ap = spgemm(a, p);
    spgemm(&p.transpose(), &ap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn from_dense(d: &[&[f64]]) -> Csr {
        let mut coo = Coo::new(d.len(), d[0].len());
        for (r, row) in d.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    coo.push(r, c, v);
                }
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn small_product_matches_dense() {
        let a = from_dense(&[&[1.0, 2.0, 0.0], &[0.0, 0.0, 3.0]]);
        let b = from_dense(&[&[1.0, 0.0], &[0.0, 1.0], &[2.0, 2.0]]);
        let c = spgemm(&a, &b);
        assert_eq!(c.to_dense(), vec![vec![1.0, 2.0], vec![6.0, 6.0]]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = from_dense(&[&[1.0, 2.0], &[3.0, 0.0]]);
        let i = Csr::identity(2);
        assert_eq!(spgemm(&a, &i), a);
        assert_eq!(spgemm(&i, &a), a);
    }

    #[test]
    fn cancellation_keeps_structural_zero() {
        // (1)(1) + (-1)(1) = 0 — entry stays structurally present.
        let a = from_dense(&[&[1.0, -1.0]]);
        let b = from_dense(&[&[1.0], &[1.0]]);
        let c = spgemm(&a, &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), 0.0);
    }

    #[test]
    fn rap_galerkin_symmetry() {
        // A symmetric → PᵀAP symmetric
        let a = from_dense(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]]);
        let p = from_dense(&[&[1.0, 0.0], &[0.5, 0.5], &[0.0, 1.0]]);
        let c = rap(&a, &p);
        assert_eq!(c.n_rows(), 2);
        assert_eq!(c.n_cols(), 2);
        assert!((c.get(0, 1) - c.get(1, 0)).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn dimension_mismatch_panics() {
        let a = from_dense(&[&[1.0, 2.0]]);
        spgemm(&a, &a);
    }
}
