//! Communication packages: the irregular communication pattern of a
//! distributed SpMV, mirroring `hypre_ParCSRCommPkg`.
//!
//! For a matrix partitioned over ranks, each rank must *receive* the vector
//! entries for its ghost columns (grouped by owner) and *send* the entries
//! other ranks need from its owned range. This is exactly the communication
//! the paper replaces with persistent neighborhood collectives.

use crate::csr::Csr;
use crate::parcsr::ParCsr;
use crate::partition::Partition;
use serde::{Deserialize, Serialize};

/// One rank's send/recv lists for a SpMV halo exchange.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommPkg {
    pub rank: usize,
    /// `(source rank, global indices received from it)`, sources ascending,
    /// indices ascending within each source.
    pub recvs: Vec<(usize, Vec<usize>)>,
    /// `(destination rank, global indices sent to it)`, destinations
    /// ascending, indices ascending within each destination.
    pub sends: Vec<(usize, Vec<usize>)>,
}

impl CommPkg {
    /// Total number of vector values received.
    pub fn recv_size(&self) -> usize {
        self.recvs.iter().map(|(_, v)| v.len()).sum()
    }

    /// Total number of vector values sent.
    pub fn send_size(&self) -> usize {
        self.sends.iter().map(|(_, v)| v.len()).sum()
    }

    /// Number of distinct communication partners (union of send/recv).
    pub fn n_partners(&self) -> usize {
        let mut p: Vec<usize> = self
            .sends
            .iter()
            .map(|&(r, _)| r)
            .chain(self.recvs.iter().map(|&(r, _)| r))
            .collect();
        p.sort_unstable();
        p.dedup();
        p.len()
    }
}

/// Build the communication packages of **all** ranks for the global matrix
/// `a` under `part`.
///
/// The recv side of rank `r` comes from its ghost columns grouped by owner;
/// the send side is the transpose of everyone's recv side. (In a real MPI
/// setting each rank derives its send side through communication — see
/// `mpisim::topology`; building them centrally here is equivalent and lets
/// the analytic harness evaluate paper-scale patterns quickly.)
pub fn build_comm_pkgs(a: &Csr, part: &Partition) -> Vec<CommPkg> {
    let p = part.n_parts();
    let pars = ParCsr::split_all(a, part);
    build_comm_pkgs_from_parts(&pars, p)
}

/// Build communication packages from per-rank `ParCsr` views.
pub fn build_comm_pkgs_from_parts(pars: &[ParCsr], p: usize) -> Vec<CommPkg> {
    let mut pkgs: Vec<CommPkg> = (0..p)
        .map(|rank| CommPkg {
            rank,
            ..Default::default()
        })
        .collect();

    // sends[dst][src] accumulated while walking receives
    let mut send_accum: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); p];

    for (rank, par) in pars.iter().enumerate() {
        let mut cur_owner = usize::MAX;
        let mut cur_list: Vec<usize> = Vec::new();
        let flush = |owner: usize,
                     list: &mut Vec<usize>,
                     pkgs: &mut Vec<CommPkg>,
                     send_accum: &mut Vec<Vec<(usize, Vec<usize>)>>| {
            if !list.is_empty() {
                pkgs[rank].recvs.push((owner, list.clone()));
                send_accum[owner].push((rank, std::mem::take(list)));
            }
        };
        // col_map_offd ascending ⇒ owners appear in ascending runs
        for &gc in &par.col_map_offd {
            let owner = par.part.owner(gc);
            debug_assert_ne!(owner, rank, "ghost column owned locally");
            if owner != cur_owner {
                flush(cur_owner, &mut cur_list, &mut pkgs, &mut send_accum);
                cur_owner = owner;
            }
            cur_list.push(gc);
        }
        flush(cur_owner, &mut cur_list, &mut pkgs, &mut send_accum);
    }

    for (owner, sends) in send_accum.into_iter().enumerate() {
        let mut sends = sends;
        sends.sort_by_key(|&(dst, _)| dst);
        pkgs[owner].sends = sends;
    }
    pkgs
}

/// Check global consistency: every send matches the corresponding recv
/// (test/diagnostic helper).
pub fn validate_comm_pkgs(pkgs: &[CommPkg]) {
    for pkg in pkgs {
        for (dst, idx) in &pkg.sends {
            let peer = &pkgs[*dst];
            let (_, recv_idx) = peer
                .recvs
                .iter()
                .find(|(src, _)| *src == pkg.rank)
                .unwrap_or_else(|| {
                    panic!("rank {} sends to {dst} but {dst} has no recv", pkg.rank)
                });
            assert_eq!(
                idx, recv_idx,
                "send/recv index mismatch {} -> {dst}",
                pkg.rank
            );
        }
        for (src, _) in &pkg.recvs {
            assert!(
                pkgs[*src].sends.iter().any(|(d, _)| *d == pkg.rank),
                "rank {} expects recv from {src} but {src} does not send",
                pkg.rank
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn tridiag(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn tridiag_neighbors_only() {
        let a = tridiag(12);
        let part = Partition::block(12, 4);
        let pkgs = build_comm_pkgs(&a, &part);
        validate_comm_pkgs(&pkgs);
        // middle rank talks to both neighbors
        assert_eq!(pkgs[1].recvs.len(), 2);
        assert_eq!(pkgs[1].sends.len(), 2);
        assert_eq!(pkgs[1].recvs[0], (0, vec![2]));
        assert_eq!(pkgs[1].recvs[1], (2, vec![6]));
        // end ranks talk to one neighbor
        assert_eq!(pkgs[0].n_partners(), 1);
        assert_eq!(pkgs[3].n_partners(), 1);
    }

    #[test]
    fn send_recv_sizes_balance_globally() {
        let a = tridiag(30);
        let part = Partition::block(30, 7);
        let pkgs = build_comm_pkgs(&a, &part);
        let total_sent: usize = pkgs.iter().map(CommPkg::send_size).sum();
        let total_recvd: usize = pkgs.iter().map(CommPkg::recv_size).sum();
        assert_eq!(total_sent, total_recvd);
        assert!(total_sent > 0);
    }

    #[test]
    fn sends_contain_only_owned_indices() {
        let a = tridiag(20);
        let part = Partition::block(20, 5);
        let pkgs = build_comm_pkgs(&a, &part);
        for pkg in &pkgs {
            let range = part.range(pkg.rank);
            for (_, idx) in &pkg.sends {
                assert!(idx.iter().all(|i| range.contains(i)));
            }
        }
    }

    #[test]
    fn empty_ranks_have_empty_pkgs() {
        let a = tridiag(3);
        let part = Partition::block(3, 6);
        let pkgs = build_comm_pkgs(&a, &part);
        validate_comm_pkgs(&pkgs);
        for pkg in &pkgs[3..] {
            assert_eq!(pkg.recv_size() + pkg.send_size(), 0);
        }
    }
}
