//! Hypre-style distributed matrix view: `diag` + `offd` blocks.
//!
//! Each rank owns a contiguous block of rows. Columns inside the owned
//! range go in the `diag` block (indexed by local column); all others go in
//! the `offd` block, whose compressed columns map to global columns via
//! `col_map_offd`. A distributed SpMV multiplies `diag` by the local vector
//! and `offd` by ghost values received from the owners of the
//! `col_map_offd` entries — this receive set *is* the irregular
//! communication pattern the paper optimizes.

use crate::csr::Csr;
use crate::partition::Partition;

/// One rank's portion of a distributed CSR matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ParCsr {
    /// The global row partition (shared by all ranks).
    pub part: Partition,
    /// This rank.
    pub rank: usize,
    /// Local rows × local columns (owned range), local column indices.
    pub diag: Csr,
    /// Local rows × ghost columns, compressed column indices.
    pub offd: Csr,
    /// Global column of each compressed offd column, ascending.
    pub col_map_offd: Vec<usize>,
    /// Number of global columns.
    pub global_cols: usize,
}

impl ParCsr {
    /// Extract rank `rank`'s portion of the square global matrix `a`
    /// partitioned by `part` (rows and columns partitioned identically).
    pub fn from_global(a: &Csr, part: &Partition, rank: usize) -> Self {
        assert_eq!(a.n_rows(), part.n_rows(), "partition must cover all rows");
        assert_eq!(
            a.n_rows(),
            a.n_cols(),
            "ParCsr::from_global expects square matrices"
        );
        let range = part.range(rank);
        let first = range.start;
        let local_n = range.len();

        // Collect ghost (off-range) global columns.
        let mut ghost: Vec<usize> = Vec::new();
        for r in range.clone() {
            let (cols, _) = a.row(r);
            for &c in cols {
                if !range.contains(&c) {
                    ghost.push(c);
                }
            }
        }
        ghost.sort_unstable();
        ghost.dedup();

        let ghost_idx = |c: usize| ghost.binary_search(&c).expect("ghost column present");

        let mut d_rowptr = Vec::with_capacity(local_n + 1);
        let mut o_rowptr = Vec::with_capacity(local_n + 1);
        d_rowptr.push(0usize);
        o_rowptr.push(0usize);
        let mut d_cols = Vec::new();
        let mut d_vals = Vec::new();
        let mut o_cols = Vec::new();
        let mut o_vals = Vec::new();

        for r in range.clone() {
            let (cols, vals) = a.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                if range.contains(&c) {
                    d_cols.push(c - first);
                    d_vals.push(v);
                } else {
                    o_cols.push(ghost_idx(c));
                    o_vals.push(v);
                }
            }
            d_rowptr.push(d_cols.len());
            o_rowptr.push(o_cols.len());
        }

        let diag = Csr::new(local_n, local_n, d_rowptr, d_cols, d_vals);
        let offd = Csr::new(local_n, ghost.len(), o_rowptr, o_cols, o_vals);
        Self {
            part: part.clone(),
            rank,
            diag,
            offd,
            col_map_offd: ghost,
            global_cols: a.n_cols(),
        }
    }

    /// All ranks' portions at once.
    pub fn split_all(a: &Csr, part: &Partition) -> Vec<ParCsr> {
        (0..part.n_parts())
            .map(|r| Self::from_global(a, part, r))
            .collect()
    }

    /// Number of locally owned rows.
    pub fn local_rows(&self) -> usize {
        self.diag.n_rows()
    }

    /// Number of ghost columns (off-process vector entries needed).
    pub fn n_ghost(&self) -> usize {
        self.col_map_offd.len()
    }

    /// `y = A_local · [x_local ; x_ghost]`, where `x_ghost[i]` is the value
    /// of global column `col_map_offd[i]`.
    pub fn spmv(&self, x_local: &[f64], x_ghost: &[f64]) -> Vec<f64> {
        assert_eq!(x_local.len(), self.local_rows());
        assert_eq!(x_ghost.len(), self.n_ghost());
        let mut y = self.diag.spmv(x_local);
        self.offd.spmv_add_into(x_ghost, &mut y);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::vector::random_vec;

    fn tridiag(n: usize) -> Csr {
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0);
            if i > 0 {
                coo.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                coo.push(i, i + 1, -1.0);
            }
        }
        Csr::from_coo(&coo)
    }

    #[test]
    fn split_shapes() {
        let a = tridiag(10);
        let part = Partition::block(10, 3);
        let p1 = ParCsr::from_global(&a, &part, 1);
        assert_eq!(p1.local_rows(), 3);
        // rank 1 owns rows 4..7; ghosts are columns 3 and 7
        assert_eq!(p1.col_map_offd, vec![3, 7]);
        assert_eq!(p1.diag.n_cols(), 3);
        assert_eq!(p1.offd.n_cols(), 2);
    }

    #[test]
    fn distributed_spmv_matches_serial() {
        let n = 37;
        let a = tridiag(n);
        let part = Partition::block(n, 5);
        let x = random_vec(n, 3);
        let serial = a.spmv(&x);
        for rank in 0..5 {
            let p = ParCsr::from_global(&a, &part, rank);
            let range = part.range(rank);
            let x_local = &x[range.clone()];
            let x_ghost: Vec<f64> = p.col_map_offd.iter().map(|&c| x[c]).collect();
            let y = p.spmv(x_local, &x_ghost);
            // diag-then-offd accumulation reorders the row sum relative to
            // the serial global-column-order sum (exactly as Hypre's split
            // does), so boundary rows can differ by rounding — compare to
            // a tight tolerance, not bit-for-bit.
            for (got, want) in y.iter().zip(&serial[range]) {
                assert!(
                    (got - want).abs() <= 1e-14 * want.abs().max(1.0),
                    "{got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn empty_rank_is_fine() {
        let a = tridiag(3);
        let part = Partition::block(3, 6);
        let p = ParCsr::from_global(&a, &part, 5);
        assert_eq!(p.local_rows(), 0);
        assert_eq!(p.n_ghost(), 0);
        assert!(p.spmv(&[], &[]).is_empty());
    }

    #[test]
    fn single_rank_has_no_ghosts() {
        let a = tridiag(8);
        let part = Partition::block(8, 1);
        let p = ParCsr::from_global(&a, &part, 0);
        assert_eq!(p.n_ghost(), 0);
        assert_eq!(p.diag, a);
    }
}
