//! Rotated anisotropic diffusion — the paper's evaluation problem.
//!
//! Discretizes `-∇·(K ∇u)` with
//! `K = Q diag(1, ε) Qᵀ`, `Q` the rotation by `θ`, i.e. the operator
//! `a·u_xx + 2b·u_xy + c·u_yy` with
//!
//! ```text
//! a = cos²θ + ε sin²θ
//! b = (1 − ε) sinθ cosθ
//! c = ε cos²θ + sin²θ
//! ```
//!
//! The paper uses θ = 45°, ε = 0.001 ("rotated of 45 degrees and anisotropy
//! of 0.001") with a 7-point stencil: the mixed derivative is discretized
//! with the one-sided 7-point formula that keeps the operator an M-matrix,
//! putting the strong coupling on the NE/SW (or NW/SE) diagonal.

use super::stencil::{apply_stencil_2d, Stencil2d};
use crate::csr::Csr;

/// The 7-point finite-difference stencil for rotated anisotropic diffusion.
///
/// For `b ≥ 0` (θ in the first quadrant) the mixed derivative uses the
/// NE/SW corners:
///
/// ```text
///        [  ·     b−c    −b ]
/// (1/h²) [ b−a  2a+2c−2b  b−a ]
///        [ −b     b−c     · ]
/// ```
///
/// For `b < 0` the NW/SE corners are used instead (mirror image).
pub fn diffusion_stencil_7pt(eps: f64, theta: f64) -> Stencil2d {
    assert!(eps > 0.0, "anisotropy must be positive");
    let (s, c) = theta.sin_cos();
    let a = c * c + eps * s * s;
    let cc = eps * c * c + s * s;
    let b = (1.0 - eps) * s * c;

    let center = 2.0 * a + 2.0 * cc - 2.0 * b.abs();
    let ew = b.abs() - a; // east/west
    let ns = b.abs() - cc; // north/south
    let diag = -b.abs(); // the two kept corners

    let mut entries = vec![
        (0, 0, center),
        (-1, 0, ew),
        (1, 0, ew),
        (0, -1, ns),
        (0, 1, ns),
    ];
    if b >= 0.0 {
        entries.push((1, 1, diag));
        entries.push((-1, -1, diag));
    } else {
        entries.push((-1, 1, diag));
        entries.push((1, -1, diag));
    }
    Stencil2d::new(entries)
}

/// The standard 9-point bilinear-FE-style stencil for the same operator
/// (central differencing of the mixed derivative).
pub fn diffusion_stencil_9pt(eps: f64, theta: f64) -> Stencil2d {
    assert!(eps > 0.0, "anisotropy must be positive");
    let (s, c) = theta.sin_cos();
    let a = c * c + eps * s * s;
    let cc = eps * c * c + s * s;
    let b = (1.0 - eps) * s * c;
    Stencil2d::new(vec![
        (0, 0, 2.0 * a + 2.0 * cc),
        (-1, 0, -a),
        (1, 0, -a),
        (0, -1, -cc),
        (0, 1, -cc),
        (1, 1, -b / 2.0),
        (-1, -1, -b / 2.0),
        (-1, 1, b / 2.0),
        (1, -1, b / 2.0),
    ])
}

/// The paper's problem: rotated anisotropic diffusion, 7-point stencil, on
/// an `nx × ny` grid. With `nx = 1024, ny = 512` this gives the 524 288-row
/// system of Figures 6–13.
pub fn diffusion_2d_7pt(nx: usize, ny: usize, eps: f64, theta: f64) -> Csr {
    apply_stencil_2d(&diffusion_stencil_7pt(eps, theta), nx, ny)
}

/// The paper's exact parameters: θ = 45°, ε = 0.001.
pub fn paper_problem(nx: usize, ny: usize) -> Csr {
    diffusion_2d_7pt(nx, ny, 0.001, std::f64::consts::FRAC_PI_4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_is_conservative() {
        // Row sum zero: constant vectors are in the operator's null space
        // away from boundaries.
        let st = diffusion_stencil_7pt(0.001, std::f64::consts::FRAC_PI_4);
        assert!(st.row_sum().abs() < 1e-12);
        let st9 = diffusion_stencil_9pt(0.001, std::f64::consts::FRAC_PI_4);
        assert!(st9.row_sum().abs() < 1e-12);
    }

    #[test]
    fn stencil_has_7_points() {
        let st = diffusion_stencil_7pt(0.001, std::f64::consts::FRAC_PI_4);
        assert_eq!(st.entries.len(), 7);
    }

    #[test]
    fn m_matrix_property_at_45_degrees() {
        // Off-diagonal entries non-positive, diagonal positive.
        let st = diffusion_stencil_7pt(0.001, std::f64::consts::FRAC_PI_4);
        for &(dx, dy, c) in &st.entries {
            if (dx, dy) == (0, 0) {
                assert!(c > 0.0);
            } else {
                assert!(c <= 1e-12, "off-diagonal ({dx},{dy}) = {c} must be ≤ 0");
            }
        }
    }

    #[test]
    fn strong_coupling_on_ne_sw_diagonal() {
        let st = diffusion_stencil_7pt(0.001, std::f64::consts::FRAC_PI_4);
        let coef = |dx: i32, dy: i32| {
            st.entries
                .iter()
                .find(|e| e.0 == dx && e.1 == dy)
                .map(|e| e.2)
                .unwrap_or(0.0)
        };
        // |NE| >> |E| for the rotated anisotropic problem at 45°.
        assert!(coef(1, 1).abs() > 100.0 * coef(1, 0).abs());
        assert!(coef(-1, -1).abs() > 100.0 * coef(0, 1).abs());
        // corners NW/SE absent
        assert_eq!(coef(-1, 1), 0.0);
        assert_eq!(coef(1, -1), 0.0);
    }

    #[test]
    fn negative_b_mirrors_corners() {
        let st = diffusion_stencil_7pt(0.001, -std::f64::consts::FRAC_PI_4);
        let has = |dx: i32, dy: i32| st.entries.iter().any(|e| e.0 == dx && e.1 == dy);
        assert!(has(-1, 1) && has(1, -1));
        assert!(!has(1, 1) && !has(-1, -1));
    }

    #[test]
    fn paper_problem_size() {
        let a = paper_problem(64, 32);
        assert_eq!(a.n_rows(), 2048);
        // symmetric positive definite-ish: diagonal positive
        assert!(a.diagonal().iter().all(|&d| d > 0.0));
    }

    #[test]
    fn matrix_is_symmetric() {
        let a = paper_problem(16, 12);
        assert!(a.frob_distance(&a.transpose()) < 1e-12);
    }
}
