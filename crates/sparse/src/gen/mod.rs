//! Problem generators for the paper's evaluation workloads.

pub mod diffusion;
pub mod laplace;
pub mod random;
pub mod stencil;

pub use diffusion::{diffusion_2d_7pt, diffusion_stencil_7pt, diffusion_stencil_9pt};
pub use laplace::{laplace_2d_5pt, laplace_2d_9pt, laplace_3d_27pt};
pub use random::random_spd;
pub use stencil::{apply_stencil_2d, apply_stencil_3d, Stencil2d};
