//! Random sparse test matrices.

use crate::coo::Coo;
use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random symmetric diagonally-dominant matrix with roughly
/// `avg_row_nnz` off-diagonal entries per row. Deterministic per seed.
/// Used as an irregular (non-grid) communication workload and for property
/// tests of the solver stack.
pub fn random_spd(n: usize, avg_row_nnz: usize, seed: u64) -> Csr {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n, n);
    // symmetric off-diagonal pattern
    let target = n * avg_row_nnz / 2;
    for _ in 0..target {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        let v = -rng.gen_range(0.1..1.0);
        coo.push(i, j, v);
        coo.push(j, i, v);
    }
    // make strictly diagonally dominant
    let tmp = Csr::from_coo(&coo);
    let mut coo2 = Coo::new(n, n);
    for r in 0..n {
        let (cols, vals) = tmp.row(r);
        let mut absum = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            if c != r {
                coo2.push(r, c, v);
                absum += v.abs();
            }
        }
        coo2.push(r, r, absum + 1.0);
    }
    Csr::from_coo(&coo2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_symmetric() {
        let a = random_spd(50, 6, 42);
        let b = random_spd(50, 6, 42);
        assert_eq!(a, b);
        assert!(a.frob_distance(&a.transpose()) < 1e-13);
    }

    #[test]
    fn diagonally_dominant() {
        let a = random_spd(80, 8, 7);
        for r in 0..80 {
            let (cols, vals) = a.row(r);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c == r {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "row {r} not dominant");
        }
    }
}
