//! Stencil application on regular grids (Dirichlet boundaries).

use crate::coo::Coo;
use crate::csr::Csr;

/// A 2-D stencil: offsets `(dx, dy)` with coefficients.
#[derive(Debug, Clone)]
pub struct Stencil2d {
    pub entries: Vec<(i32, i32, f64)>,
}

impl Stencil2d {
    pub fn new(entries: Vec<(i32, i32, f64)>) -> Self {
        assert!(!entries.is_empty());
        Self { entries }
    }

    /// Sum of all coefficients (≈0 for conservative operators away from
    /// boundaries).
    pub fn row_sum(&self) -> f64 {
        self.entries.iter().map(|e| e.2).sum()
    }
}

/// Apply a 2-D stencil on an `nx × ny` grid (row-major: index = y·nx + x),
/// dropping entries that fall outside the grid (homogeneous Dirichlet).
pub fn apply_stencil_2d(st: &Stencil2d, nx: usize, ny: usize) -> Csr {
    let n = nx * ny;
    let mut coo = Coo::new(n, n);
    coo.entries.reserve(n * st.entries.len());
    for y in 0..ny as i64 {
        for x in 0..nx as i64 {
            let row = (y * nx as i64 + x) as usize;
            for &(dx, dy, c) in &st.entries {
                let xx = x + dx as i64;
                let yy = y + dy as i64;
                if xx >= 0 && xx < nx as i64 && yy >= 0 && yy < ny as i64 {
                    coo.push(row, (yy * nx as i64 + xx) as usize, c);
                }
            }
        }
    }
    Csr::from_coo(&coo)
}

/// Apply a 3-D stencil (offsets `(dx, dy, dz)`) on an `nx × ny × nz` grid,
/// index = (z·ny + y)·nx + x.
pub fn apply_stencil_3d(entries: &[(i32, i32, i32, f64)], nx: usize, ny: usize, nz: usize) -> Csr {
    let n = nx * ny * nz;
    let mut coo = Coo::new(n, n);
    coo.entries.reserve(n * entries.len());
    for z in 0..nz as i64 {
        for y in 0..ny as i64 {
            for x in 0..nx as i64 {
                let row = ((z * ny as i64 + y) * nx as i64 + x) as usize;
                for &(dx, dy, dz, c) in entries {
                    let xx = x + dx as i64;
                    let yy = y + dy as i64;
                    let zz = z + dz as i64;
                    if xx >= 0
                        && xx < nx as i64
                        && yy >= 0
                        && yy < ny as i64
                        && zz >= 0
                        && zz < nz as i64
                    {
                        coo.push(row, ((zz * ny as i64 + yy) * nx as i64 + xx) as usize, c);
                    }
                }
            }
        }
    }
    Csr::from_coo(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_row_has_full_stencil() {
        let st = Stencil2d::new(vec![
            (0, 0, 4.0),
            (-1, 0, -1.0),
            (1, 0, -1.0),
            (0, -1, -1.0),
            (0, 1, -1.0),
        ]);
        let a = apply_stencil_2d(&st, 5, 5);
        // center row (2,2) = index 12 has 5 entries
        assert_eq!(a.row_nnz(12), 5);
        // corner row has 3 entries
        assert_eq!(a.row_nnz(0), 3);
        assert_eq!(a.get(12, 12), 4.0);
        assert_eq!(a.get(12, 11), -1.0);
        assert_eq!(a.get(12, 7), -1.0);
    }

    #[test]
    fn grid_shape() {
        let st = Stencil2d::new(vec![(0, 0, 1.0)]);
        let a = apply_stencil_2d(&st, 3, 7);
        assert_eq!(a.n_rows(), 21);
        assert_eq!(a.nnz(), 21);
    }

    #[test]
    fn stencil_3d_interior_count() {
        let mut entries = Vec::new();
        for dz in -1..=1 {
            for dy in -1..=1 {
                for dx in -1..=1 {
                    let c = if (dx, dy, dz) == (0, 0, 0) {
                        26.0
                    } else {
                        -1.0
                    };
                    entries.push((dx, dy, dz, c));
                }
            }
        }
        let a = apply_stencil_3d(&entries, 4, 4, 4);
        assert_eq!(a.n_rows(), 64);
        // fully interior point (1..3 in each dim): 27 entries
        let idx = (4 + 1) * 4 + 1;
        assert_eq!(a.row_nnz(idx), 27);
        // corner: 8 entries
        assert_eq!(a.row_nnz(0), 8);
    }
}
