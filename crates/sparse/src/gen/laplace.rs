//! Laplacian model problems (additional workloads for examples/benches).

use super::stencil::{apply_stencil_2d, apply_stencil_3d, Stencil2d};
use crate::csr::Csr;

/// Standard 5-point 2-D Laplacian on an `nx × ny` grid.
pub fn laplace_2d_5pt(nx: usize, ny: usize) -> Csr {
    let st = Stencil2d::new(vec![
        (0, 0, 4.0),
        (-1, 0, -1.0),
        (1, 0, -1.0),
        (0, -1, -1.0),
        (0, 1, -1.0),
    ]);
    apply_stencil_2d(&st, nx, ny)
}

/// 9-point 2-D Laplacian (Mehrstellen).
pub fn laplace_2d_9pt(nx: usize, ny: usize) -> Csr {
    let mut entries = Vec::with_capacity(9);
    for dy in -1..=1 {
        for dx in -1..=1 {
            let c = if (dx, dy) == (0, 0) { 8.0 } else { -1.0 };
            entries.push((dx, dy, c));
        }
    }
    apply_stencil_2d(&Stencil2d::new(entries), nx, ny)
}

/// 27-point 3-D Laplacian on an `nx × ny × nz` grid.
pub fn laplace_3d_27pt(nx: usize, ny: usize, nz: usize) -> Csr {
    let mut entries = Vec::with_capacity(27);
    for dz in -1..=1 {
        for dy in -1..=1 {
            for dx in -1..=1 {
                let c = if (dx, dy, dz) == (0, 0, 0) {
                    26.0
                } else {
                    -1.0
                };
                entries.push((dx, dy, dz, c));
            }
        }
    }
    apply_stencil_3d(&entries, nx, ny, nz)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplace_5pt_interior() {
        let a = laplace_2d_5pt(4, 4);
        assert_eq!(a.n_rows(), 16);
        assert_eq!(a.get(5, 5), 4.0);
        assert_eq!(a.row_nnz(5), 5);
    }

    #[test]
    fn laplace_9pt_interior() {
        let a = laplace_2d_9pt(5, 5);
        assert_eq!(a.row_nnz(12), 9);
        assert_eq!(a.get(12, 12), 8.0);
    }

    #[test]
    fn laplace_27pt_shape() {
        let a = laplace_3d_27pt(3, 3, 3);
        assert_eq!(a.n_rows(), 27);
        assert_eq!(a.row_nnz(13), 27); // center voxel
        assert_eq!(a.get(13, 13), 26.0);
    }

    #[test]
    fn laplacians_symmetric() {
        for a in [
            laplace_2d_5pt(6, 5),
            laplace_2d_9pt(6, 5),
            laplace_3d_27pt(3, 4, 2),
        ] {
            assert!(a.frob_distance(&a.transpose()) < 1e-13);
        }
    }
}
