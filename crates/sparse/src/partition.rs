//! Contiguous row partitions over ranks.

use serde::{Deserialize, Serialize};

/// A partition of `0..n` rows into `P` contiguous blocks, one per rank —
/// the distribution Hypre's IJ interface produces and the paper's
/// experiments use.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// `starts[p] .. starts[p+1]` is rank `p`'s row range; length P+1.
    starts: Vec<usize>,
}

impl Partition {
    /// Balanced block partition of `n` rows over `p` ranks: the first
    /// `n % p` ranks get one extra row. Ranks may own zero rows when
    /// `p > n` (as happens on the coarsest AMG levels — paper §4.1 notes
    /// few processes participate there).
    pub fn block(n: usize, p: usize) -> Self {
        assert!(p > 0, "need at least one rank");
        let base = n / p;
        let extra = n % p;
        let mut starts = Vec::with_capacity(p + 1);
        let mut acc = 0;
        starts.push(0);
        for r in 0..p {
            acc += base + usize::from(r < extra);
            starts.push(acc);
        }
        Self { starts }
    }

    /// From explicit boundaries (`starts[0]=0`, non-decreasing).
    pub fn from_starts(starts: Vec<usize>) -> Self {
        assert!(starts.len() >= 2, "need at least one rank");
        assert_eq!(starts[0], 0);
        for w in starts.windows(2) {
            assert!(w[0] <= w[1], "starts must be non-decreasing");
        }
        Self { starts }
    }

    /// Number of ranks.
    pub fn n_parts(&self) -> usize {
        self.starts.len() - 1
    }

    /// Total number of rows.
    pub fn n_rows(&self) -> usize {
        *self.starts.last().unwrap()
    }

    /// Rank `p`'s row range.
    pub fn range(&self, p: usize) -> std::ops::Range<usize> {
        self.starts[p]..self.starts[p + 1]
    }

    /// First row of rank `p`.
    pub fn first_row(&self, p: usize) -> usize {
        self.starts[p]
    }

    /// Number of rows owned by rank `p`.
    pub fn local_size(&self, p: usize) -> usize {
        self.starts[p + 1] - self.starts[p]
    }

    /// The rank owning `row` (binary search).
    pub fn owner(&self, row: usize) -> usize {
        assert!(row < self.n_rows(), "row {row} out of {}", self.n_rows());
        // partition_point returns the count of starts <= row; the owner is
        // that index minus one. Empty blocks share a boundary; skip them by
        // searching for the last start not exceeding `row`.
        let idx = self.starts.partition_point(|&s| s <= row) - 1;
        debug_assert!(self.range(idx).contains(&row));
        idx
    }

    /// Ranks owning at least one row.
    pub fn active_ranks(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n_parts()).filter(|&p| self.local_size(p) > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_balanced() {
        let p = Partition::block(10, 3);
        assert_eq!(p.local_size(0), 4);
        assert_eq!(p.local_size(1), 3);
        assert_eq!(p.local_size(2), 3);
        assert_eq!(p.n_rows(), 10);
        assert_eq!(p.range(1), 4..7);
    }

    #[test]
    fn owner_consistent_with_range() {
        let p = Partition::block(23, 5);
        for row in 0..23 {
            let o = p.owner(row);
            assert!(p.range(o).contains(&row));
        }
    }

    #[test]
    fn more_ranks_than_rows() {
        let p = Partition::block(3, 8);
        assert_eq!(p.active_ranks().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(p.owner(2), 2);
        assert_eq!(p.local_size(7), 0);
    }

    #[test]
    fn single_rank_owns_everything() {
        let p = Partition::block(100, 1);
        assert_eq!(p.owner(99), 0);
        assert_eq!(p.local_size(0), 100);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn owner_out_of_range_panics() {
        Partition::block(4, 2).owner(4);
    }
}
