//! Property-based tests for the sparse substrate.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::partition::Partition;
use crate::spgemm::spgemm;
use crate::vector::random_vec;
use crate::{build_comm_pkgs, commpkg::validate_comm_pkgs, ParCsr};
use proptest::prelude::*;

/// Strategy: a random COO matrix with bounded shape.
fn arb_coo(max_n: usize, max_nnz: usize) -> impl Strategy<Value = Coo> {
    (1..max_n, 1..max_n).prop_flat_map(move |(r, c)| {
        prop::collection::vec((0..r, 0..c, -10.0f64..10.0), 0..max_nnz).prop_map(move |entries| {
            let mut coo = Coo::new(r, c);
            for (i, j, v) in entries {
                coo.push(i, j, v);
            }
            coo
        })
    })
}

proptest! {
    /// CSR from COO agrees with a dense accumulation.
    #[test]
    fn from_coo_matches_dense(coo in arb_coo(12, 60)) {
        let m = Csr::from_coo(&coo);
        let mut dense = vec![vec![0.0f64; coo.n_cols]; coo.n_rows];
        for &(r, c, v) in &coo.entries {
            dense[r][c] += v;
        }
        let md = m.to_dense();
        for r in 0..coo.n_rows {
            for c in 0..coo.n_cols {
                prop_assert!((md[r][c] - dense[r][c]).abs() < 1e-10);
            }
        }
    }

    /// Double transpose is the identity.
    #[test]
    fn transpose_involution(coo in arb_coo(15, 80)) {
        let m = Csr::from_coo(&coo);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    /// Adjoint identity: ⟨A x, y⟩ = ⟨x, Aᵀ y⟩, with Aᵀy computed both ways.
    #[test]
    fn spmv_transpose_adjoint(coo in arb_coo(12, 60), sx in 0u64..100, sy in 0u64..100) {
        let m = Csr::from_coo(&coo);
        let x = random_vec(m.n_cols(), sx);
        let y = random_vec(m.n_rows(), sy);
        let ax_y: f64 = m.spmv(&x).iter().zip(&y).map(|(a, b)| a * b).sum();
        let aty = m.spmv_transpose(&y);
        let x_aty: f64 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        prop_assert!((ax_y - x_aty).abs() < 1e-9 * (1.0 + ax_y.abs()));
        // and agrees with materialized transpose
        let aty2 = m.transpose().spmv(&y);
        for (a, b) in aty.iter().zip(&aty2) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    /// SpMV agrees with the dense product.
    #[test]
    fn spmv_matches_dense(coo in arb_coo(10, 50), seed in 0u64..1000) {
        let m = Csr::from_coo(&coo);
        let x = random_vec(m.n_cols(), seed);
        let y = m.spmv(&x);
        let d = m.to_dense();
        for r in 0..m.n_rows() {
            let expect: f64 = d[r].iter().zip(&x).map(|(a, b)| a * b).sum();
            prop_assert!((y[r] - expect).abs() < 1e-9);
        }
    }

    /// SpGEMM agrees with the dense product.
    #[test]
    fn spgemm_matches_dense(a in arb_coo(8, 40), b_entries in prop::collection::vec((0usize..8, 0usize..8, -5.0f64..5.0), 0..40)) {
        let ma = Csr::from_coo(&a);
        let mut bcoo = Coo::new(ma.n_cols(), 8);
        for (i, j, v) in b_entries {
            if i < ma.n_cols() {
                bcoo.push(i, j, v);
            }
        }
        let mb = Csr::from_coo(&bcoo);
        let mc = spgemm(&ma, &mb);
        let da = ma.to_dense();
        let db = mb.to_dense();
        let dc = mc.to_dense();
        for r in 0..ma.n_rows() {
            for c in 0..mb.n_cols() {
                let expect: f64 = (0..ma.n_cols()).map(|k| da[r][k] * db[k][c]).sum();
                prop_assert!((dc[r][c] - expect).abs() < 1e-9, "mismatch at ({r},{c})");
            }
        }
    }

    /// Partition owner is consistent and blocks tile the row space.
    #[test]
    fn partition_tiles(n in 1usize..200, p in 1usize..40) {
        let part = Partition::block(n, p);
        prop_assert_eq!(part.n_rows(), n);
        let total: usize = (0..p).map(|r| part.local_size(r)).sum();
        prop_assert_eq!(total, n);
        for row in 0..n {
            prop_assert!(part.range(part.owner(row)).contains(&row));
        }
    }

    /// Distributed SpMV over ParCsr pieces equals the serial SpMV, and the
    /// comm packages are globally consistent, for random square matrices.
    #[test]
    fn parcsr_spmv_and_pkgs_consistent(coo in arb_coo(16, 100), p in 1usize..7, seed in 0u64..100) {
        // square-ify
        let n = coo.n_rows.max(coo.n_cols);
        let mut sq = Coo::new(n, n);
        for &(r, c, v) in &coo.entries {
            sq.push(r, c, v);
        }
        // ensure nonzero diagonal so every row exists
        for i in 0..n {
            sq.push(i, i, 1.0);
        }
        let a = Csr::from_coo(&sq);
        let part = Partition::block(n, p);
        let pkgs = build_comm_pkgs(&a, &part);
        validate_comm_pkgs(&pkgs);
        let x = random_vec(n, seed);
        let serial = a.spmv(&x);
        for rank in 0..p {
            let par = ParCsr::from_global(&a, &part, rank);
            let xl = &x[part.range(rank)];
            let xg: Vec<f64> = par.col_map_offd.iter().map(|&c| x[c]).collect();
            let y = par.spmv(xl, &xg);
            let expect = &serial[part.range(rank)];
            for (a, b) in y.iter().zip(expect) {
                prop_assert!((a - b).abs() < 1e-9);
            }
            // ghost columns of the ParCsr are exactly the union of recv idx
            let mut recv_all: Vec<usize> =
                pkgs[rank].recvs.iter().flat_map(|(_, v)| v.iter().copied()).collect();
            recv_all.sort_unstable();
            prop_assert_eq!(recv_all, par.col_map_offd.clone());
        }
    }
}
