//! Property-based tests of the AMG construction invariants.

use crate::coarsen::{count_coarse, pmis, CfMarker};
use crate::hierarchy::{Hierarchy, HierarchyOptions};
use crate::interp::direct_interpolation;
use crate::strength::strength_matrix;
use proptest::prelude::*;
use sparse::gen::random_spd;
use sparse::vector::random_vec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// PMIS on random strength graphs always yields a valid C/F splitting:
    /// independent C set, and every connected F point sees a strong C
    /// neighbor.
    #[test]
    fn pmis_splitting_valid(n in 10usize..120, nnz in 2usize..10, seed in 0u64..500) {
        let a = random_spd(n, nnz, seed);
        let s = strength_matrix(&a, 0.25);
        let cf = pmis(&s, seed);
        let st = s.transpose();
        for i in 0..n {
            match cf[i] {
                CfMarker::Coarse => {
                    for &j in s.row(i).0 {
                        prop_assert!(cf[j] != CfMarker::Coarse, "C-C strong edge {i}-{j}");
                    }
                }
                CfMarker::Fine => {
                    if s.row_nnz(i) > 0 {
                        let covered = s
                            .row(i)
                            .0
                            .iter()
                            .chain(st.row(i).0)
                            .any(|&j| cf[j] == CfMarker::Coarse);
                        prop_assert!(covered, "F point {i} uncovered");
                    }
                }
            }
        }
    }

    /// Interpolation columns are exactly the C points, weights are finite,
    /// and C rows inject.
    #[test]
    fn interpolation_structurally_sound(n in 10usize..100, seed in 0u64..300) {
        let a = random_spd(n, 6, seed);
        let s = strength_matrix(&a, 0.25);
        let cf = pmis(&s, seed);
        let (p, cidx) = direct_interpolation(&a, &s, &cf);
        prop_assert_eq!(p.n_cols(), count_coarse(&cf));
        for i in 0..n {
            let (cols, vals) = p.row(i);
            prop_assert!(vals.iter().all(|v| v.is_finite()));
            if cf[i] == CfMarker::Coarse {
                prop_assert_eq!(cols, &[cidx[i].unwrap()][..]);
                prop_assert_eq!(vals, &[1.0][..]);
            }
        }
    }

    /// Hierarchies on random SPD matrices terminate, strictly shrink, and
    /// the V-cycle solver reduces the residual.
    #[test]
    fn hierarchy_solves_random_spd(n in 30usize..150, seed in 0u64..200) {
        let a = random_spd(n, 5, seed);
        let h = Hierarchy::setup(a.clone(), HierarchyOptions { max_coarse: 12, ..Default::default() });
        let sizes = h.level_sizes();
        for w in sizes.windows(2) {
            prop_assert!(w[1] < w[0], "levels must shrink: {sizes:?}");
        }
        let x_true = random_vec(n, seed);
        let b = a.spmv(&x_true);
        let res = crate::cycle::solve(
            &a_hierarchy(h),
            &b,
            &crate::cycle::SolveOptions { max_iters: 60, rel_tol: 1e-6, ..Default::default() },
        );
        let h0 = res.residual_history[0];
        let hl = *res.residual_history.last().unwrap();
        // diagonally dominant systems must at least contract substantially
        prop_assert!(hl < h0 * 1e-3 || h0 == 0.0, "no progress: {h0} -> {hl}");
    }
}

/// identity helper so the closure above reads naturally
fn a_hierarchy(h: Hierarchy) -> Hierarchy {
    h
}
