//! V-cycles and the iterative solve.

use crate::hierarchy::Hierarchy;
use crate::smoother::{smooth, smooth_directional, Smoother};
use sparse::vector::norm2;

/// Multigrid cycling strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CycleType {
    /// One coarse-grid visit per level.
    V,
    /// Two coarse-grid visits per level (stronger, costlier).
    W,
    /// Full-multigrid style: an F recursion followed by a V recursion.
    F,
}

/// Solve options for [`solve`].
#[derive(Debug, Clone, Copy)]
pub struct SolveOptions {
    pub max_iters: usize,
    /// Stop when ‖r‖ / ‖b‖ falls below this.
    pub rel_tol: f64,
    pub pre_sweeps: usize,
    pub post_sweeps: usize,
    pub smoother: Smoother,
    pub cycle: CycleType,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            max_iters: 100,
            rel_tol: 1e-8,
            pre_sweeps: 1,
            post_sweeps: 1,
            smoother: Smoother::GaussSeidel,
            cycle: CycleType::V,
        }
    }
}

/// Outcome of an AMG solve.
#[derive(Debug, Clone)]
pub struct SolveResult {
    pub x: Vec<f64>,
    /// ‖r‖₂ after each V-cycle (index 0 = initial residual).
    pub residual_history: Vec<f64>,
    pub converged: bool,
}

impl SolveResult {
    /// Geometric-mean residual reduction per cycle.
    pub fn avg_convergence_factor(&self) -> f64 {
        let h = &self.residual_history;
        if h.len() < 2 || h[0] == 0.0 {
            return 0.0;
        }
        let last = *h.last().unwrap();
        (last / h[0]).powf(1.0 / (h.len() - 1) as f64)
    }
}

/// One V-cycle on level `lvl`, improving `x` for `A_lvl x = b`.
pub fn vcycle(h: &Hierarchy, lvl: usize, b: &[f64], x: &mut [f64], opts: &SolveOptions) {
    cycle(h, lvl, b, x, opts, CycleType::V);
}

/// One multigrid cycle of the given type on level `lvl`.
pub fn cycle(
    h: &Hierarchy,
    lvl: usize,
    b: &[f64],
    x: &mut [f64],
    opts: &SolveOptions,
    kind: CycleType,
) {
    let level = &h.levels[lvl];
    let a = &level.a;
    if level.p.is_none() {
        // coarsest level: direct solve
        let sol = h.coarse_solver.solve(b);
        x.copy_from_slice(&sol);
        return;
    }
    let p = level.p.as_ref().unwrap();
    let mut work = Vec::new();

    for _ in 0..opts.pre_sweeps {
        smooth(a, b, x, opts.smoother, &mut work);
    }

    // residual r = b - A x
    let ax = a.spmv(x);
    let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();

    // restrict: rc = Pᵀ r (without forming Pᵀ)
    let rc = p.spmv_transpose(&r);

    let mut ec = vec![0.0f64; p.n_cols()];
    match kind {
        CycleType::V => cycle(h, lvl + 1, &rc, &mut ec, opts, CycleType::V),
        CycleType::W => {
            cycle(h, lvl + 1, &rc, &mut ec, opts, CycleType::W);
            cycle(h, lvl + 1, &rc, &mut ec, opts, CycleType::W);
        }
        CycleType::F => {
            cycle(h, lvl + 1, &rc, &mut ec, opts, CycleType::F);
            cycle(h, lvl + 1, &rc, &mut ec, opts, CycleType::V);
        }
    }

    // prolong and correct: x += P ec
    for (row, xr) in x.iter_mut().enumerate() {
        let (cols, vals) = p.row(row);
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * ec[c];
        }
        *xr += acc;
    }

    for _ in 0..opts.post_sweeps {
        smooth_directional(a, b, x, opts.smoother, &mut work, true);
    }
}

/// Iterative AMG solve of `A x = b` (A is `h.levels[0].a`).
pub fn solve(h: &Hierarchy, b: &[f64], opts: &SolveOptions) -> SolveResult {
    let a = &h.levels[0].a;
    assert_eq!(b.len(), a.n_rows());
    let mut x = vec![0.0f64; b.len()];
    let b_norm = norm2(b).max(f64::MIN_POSITIVE);
    let mut history = vec![norm2(b)];
    let mut converged = false;
    for _ in 0..opts.max_iters {
        cycle(h, 0, b, &mut x, opts, opts.cycle);
        let ax = a.spmv(&x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        let rn = norm2(&r);
        history.push(rn);
        if rn / b_norm < opts.rel_tol {
            converged = true;
            break;
        }
    }
    SolveResult {
        x,
        residual_history: history,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyOptions;
    use sparse::gen::{diffusion_2d_7pt, laplace_2d_5pt};
    use sparse::vector::random_vec;

    #[test]
    fn laplacian_converges_fast() {
        let a = laplace_2d_5pt(32, 32);
        let h = Hierarchy::setup(a.clone(), HierarchyOptions::default());
        let x_true = random_vec(a.n_rows(), 4);
        let b = a.spmv(&x_true);
        let res = solve(&h, &b, &SolveOptions::default());
        assert!(res.converged, "history: {:?}", res.residual_history);
        // PMIS-coarsened classical AMG converges at ~0.5-0.6 per V(1,1)
        // cycle on the 2-D Laplacian (De Sterck & Yang 2004 report the
        // same range); bound it away from stagnation rather than at the
        // Ruge-Stüben-coarsening factor the seed assumed.
        assert!(
            res.avg_convergence_factor() < 0.65,
            "slow convergence: {}",
            res.avg_convergence_factor()
        );
        // extra smoothing must recover a strong factor
        let strong = solve(
            &h,
            &b,
            &SolveOptions {
                pre_sweeps: 2,
                post_sweeps: 2,
                ..Default::default()
            },
        );
        assert!(
            strong.avg_convergence_factor() < 0.5,
            "V(2,2) convergence: {}",
            strong.avg_convergence_factor()
        );
    }

    #[test]
    fn rotated_anisotropic_converges() {
        let a = diffusion_2d_7pt(32, 32, 0.001, std::f64::consts::FRAC_PI_4);
        let h = Hierarchy::setup(a.clone(), HierarchyOptions::default());
        let x_true = random_vec(a.n_rows(), 5);
        let b = a.spmv(&x_true);
        let opts = SolveOptions {
            max_iters: 200,
            ..Default::default()
        };
        let res = solve(&h, &b, &opts);
        assert!(
            res.converged,
            "history tail: {:?}",
            &res.residual_history[res.residual_history.len().saturating_sub(3)..]
        );
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let a = laplace_2d_5pt(8, 8);
        let h = Hierarchy::setup(a, HierarchyOptions::default());
        let res = solve(&h, &vec![0.0; 64], &SolveOptions::default());
        assert!(res.converged);
        assert!(res.x.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn w_cycle_converges_at_least_as_fast_as_v() {
        let a = diffusion_2d_7pt(24, 24, 0.001, std::f64::consts::FRAC_PI_4);
        let h = Hierarchy::setup(a.clone(), HierarchyOptions::default());
        let b = a.spmv(&random_vec(a.n_rows(), 7));
        let v = solve(
            &h,
            &b,
            &SolveOptions {
                cycle: CycleType::V,
                ..Default::default()
            },
        );
        let w = solve(
            &h,
            &b,
            &SolveOptions {
                cycle: CycleType::W,
                ..Default::default()
            },
        );
        assert!(w.converged);
        assert!(
            w.residual_history.len() <= v.residual_history.len(),
            "W ({}) should need no more cycles than V ({})",
            w.residual_history.len(),
            v.residual_history.len()
        );
    }

    #[test]
    fn f_cycle_converges() {
        let a = laplace_2d_5pt(20, 20);
        let h = Hierarchy::setup(a.clone(), HierarchyOptions::default());
        let b = a.spmv(&random_vec(400, 8));
        let f = solve(
            &h,
            &b,
            &SolveOptions {
                cycle: CycleType::F,
                ..Default::default()
            },
        );
        assert!(f.converged);
        assert!(f.avg_convergence_factor() < 0.5);
    }

    #[test]
    fn symmetric_smoother_in_cycle_converges() {
        use crate::smoother::Smoother;
        let a = laplace_2d_5pt(16, 16);
        let h = Hierarchy::setup(a.clone(), HierarchyOptions::default());
        let b = a.spmv(&random_vec(256, 9));
        let res = solve(
            &h,
            &b,
            &SolveOptions {
                smoother: Smoother::SymGaussSeidel,
                ..Default::default()
            },
        );
        assert!(res.converged);
    }

    #[test]
    fn residual_history_monotone_for_spd() {
        let a = laplace_2d_5pt(16, 16);
        let h = Hierarchy::setup(a.clone(), HierarchyOptions::default());
        let b = random_vec(256, 6);
        let res = solve(&h, &b, &SolveOptions::default());
        for w in res.residual_history.windows(2) {
            assert!(w[1] <= w[0] * 1.001, "history not decreasing: {w:?}");
        }
    }
}
