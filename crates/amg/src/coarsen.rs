//! PMIS coarsening (parallel modified independent set), Hypre's default
//! family of coarseners.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse::Csr;

/// Coarse/fine marker of each point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfMarker {
    Coarse,
    Fine,
}

/// PMIS coarsening on the strength matrix `s`.
///
/// Each point gets weight `|Sᵀ_i| + rand[0,1)` (the number of points it
/// strongly influences plus a random tiebreaker). Rounds of independent-set
/// selection follow: an undecided point whose weight beats all undecided
/// strength-graph neighbors becomes Coarse; undecided points strongly
/// influenced by a new Coarse point become Fine.
///
/// Points with no strong connections at all become Fine (they interpolate
/// from nothing and smooth out by relaxation alone — matching Hypre, which
/// drops isolated points from coarse grids).
///
/// Deterministic for a given `seed`.
pub fn pmis(s: &Csr, seed: u64) -> Vec<CfMarker> {
    let n = s.n_rows();
    let st = s.transpose();
    let mut rng = StdRng::seed_from_u64(seed);

    // Undirected neighborhood = S ∪ Sᵀ (needed for the independent set).
    let weight: Vec<f64> = (0..n)
        .map(|i| st.row_nnz(i) as f64 + rng.gen_range(0.0..1.0))
        .collect();

    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Undecided,
        Coarse,
        Fine,
    }
    let mut state = vec![State::Undecided; n];

    // Isolated points (no strong connections either way) are Fine.
    for (i, st_i) in state.iter_mut().enumerate() {
        if s.row_nnz(i) == 0 && st.row_nnz(i) == 0 {
            *st_i = State::Fine;
        }
    }

    let mut undecided: Vec<usize> = (0..n).filter(|&i| state[i] == State::Undecided).collect();

    while !undecided.is_empty() {
        // Select: weight strictly greater than every undecided neighbor
        // (strict inequality is safe: random tiebreakers are a.s. unique).
        let mut new_coarse = Vec::new();
        for &i in &undecided {
            let mut is_max = true;
            for &j in s.row(i).0.iter().chain(st.row(i).0) {
                if state[j] == State::Undecided && weight[j] >= weight[i] && j != i {
                    is_max = false;
                    break;
                }
            }
            if is_max {
                new_coarse.push(i);
            }
        }
        assert!(
            !new_coarse.is_empty(),
            "PMIS stalled with {} undecided points",
            undecided.len()
        );
        for &c in &new_coarse {
            state[c] = State::Coarse;
        }
        // Undecided strength-graph neighbors of a new C point become F.
        // Marking over S ∪ Sᵀ (not just Sᵀ) keeps the C set independent in
        // the symmetrized strength graph even when per-row thresholds make
        // S non-symmetric — otherwise a point an existing C point depends
        // on could itself become C in a later round.
        for &c in &new_coarse {
            for &i in st.row(c).0.iter().chain(s.row(c).0) {
                if state[i] == State::Undecided {
                    state[i] = State::Fine;
                }
            }
        }
        undecided.retain(|&i| state[i] == State::Undecided);
    }

    state
        .into_iter()
        .map(|s| match s {
            State::Coarse => CfMarker::Coarse,
            State::Fine => CfMarker::Fine,
            State::Undecided => unreachable!("all points decided"),
        })
        .collect()
}

/// Number of coarse points in a marker vector.
pub fn count_coarse(cf: &[CfMarker]) -> usize {
    cf.iter().filter(|&&m| m == CfMarker::Coarse).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strength::strength_matrix;
    use sparse::gen::{diffusion_2d_7pt, laplace_2d_5pt};

    /// Every F point with strong connections has a strong C neighbor
    /// (in S or Sᵀ) — the property interpolation relies on.
    fn check_f_points_covered(s: &Csr, cf: &[CfMarker]) {
        let st = s.transpose();
        for i in 0..s.n_rows() {
            if cf[i] == CfMarker::Fine && s.row_nnz(i) > 0 {
                let covered = s
                    .row(i)
                    .0
                    .iter()
                    .chain(st.row(i).0)
                    .any(|&j| cf[j] == CfMarker::Coarse);
                assert!(covered, "F point {i} has no strong C neighbor");
            }
        }
    }

    /// No two C points are strength-graph neighbors (independent set).
    fn check_independent(s: &Csr, cf: &[CfMarker]) {
        for i in 0..s.n_rows() {
            if cf[i] != CfMarker::Coarse {
                continue;
            }
            for &j in s.row(i).0 {
                assert!(
                    cf[j] != CfMarker::Coarse,
                    "C points {i} and {j} are strongly connected"
                );
            }
        }
    }

    #[test]
    fn laplacian_coarsening_valid() {
        let a = laplace_2d_5pt(12, 12);
        let s = strength_matrix(&a, 0.25);
        let cf = pmis(&s, 1);
        check_independent(&s, &cf);
        check_f_points_covered(&s, &cf);
        let nc = count_coarse(&cf);
        // 5-point Laplacian PMIS coarsens by roughly 2-4x
        assert!(nc > 144 / 8 && nc < 144 / 2, "coarse count {nc}");
    }

    #[test]
    fn anisotropic_coarsening_valid() {
        let a = diffusion_2d_7pt(16, 16, 0.001, std::f64::consts::FRAC_PI_4);
        let s = strength_matrix(&a, 0.25);
        let cf = pmis(&s, 7);
        check_independent(&s, &cf);
        check_f_points_covered(&s, &cf);
        // strong coupling is 1-D (along the diagonal) → ~2x coarsening
        let nc = count_coarse(&cf);
        assert!(nc >= 256 / 4, "semicoarsening expected, got {nc}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = laplace_2d_5pt(10, 10);
        let s = strength_matrix(&a, 0.25);
        assert_eq!(pmis(&s, 3), pmis(&s, 3));
    }

    #[test]
    fn isolated_points_become_fine() {
        let s = Csr::zero(5, 5);
        let cf = pmis(&s, 0);
        assert!(cf.iter().all(|&m| m == CfMarker::Fine));
    }
}
