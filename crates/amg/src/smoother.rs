//! Pointwise smoothers.

use sparse::Csr;

/// Which smoother the cycle uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Smoother {
    /// Weighted Jacobi with the given damping factor.
    Jacobi(f64),
    /// Forward Gauss-Seidel (Hypre's default "hybrid" smoother reduces to
    /// this in a serial setting).
    GaussSeidel,
    /// Symmetric Gauss-Seidel: a forward then a backward sweep — the
    /// symmetric smoother needed when AMG preconditions CG.
    SymGaussSeidel,
}

/// One smoothing sweep on `A x = b`, updating `x` in place.
pub fn smooth(a: &Csr, b: &[f64], x: &mut [f64], kind: Smoother, work: &mut Vec<f64>) {
    smooth_directional(a, b, x, kind, work, false);
}

/// Like [`smooth`], with an explicit sweep direction for Gauss-Seidel.
/// BoomerAMG's default relaxation runs forward on the down-leg of the
/// cycle and backward on the up-leg (`relax_type` 13/14), which is what
/// makes the V-cycle iteration symmetric; Jacobi and symmetric GS are
/// direction-free.
pub fn smooth_directional(
    a: &Csr,
    b: &[f64],
    x: &mut [f64],
    kind: Smoother,
    work: &mut Vec<f64>,
    backward: bool,
) {
    match kind {
        Smoother::Jacobi(omega) => jacobi_sweep(a, b, x, omega, work),
        Smoother::GaussSeidel => gauss_seidel_sweep(a, b, x, backward),
        Smoother::SymGaussSeidel => {
            gauss_seidel_sweep(a, b, x, false);
            gauss_seidel_sweep(a, b, x, true);
        }
    }
}

fn jacobi_sweep(a: &Csr, b: &[f64], x: &mut [f64], omega: f64, work: &mut Vec<f64>) {
    let n = a.n_rows();
    work.resize(n, 0.0);
    a.spmv_into(x, work);
    for i in 0..n {
        let d = a.get(i, i);
        if d != 0.0 {
            x[i] += omega * (b[i] - work[i]) / d;
        }
    }
}

fn gauss_seidel_sweep(a: &Csr, b: &[f64], x: &mut [f64], backward: bool) {
    let n = a.n_rows();
    let mut update = |i: usize| {
        let (cols, vals) = a.row(i);
        let mut acc = b[i];
        let mut diag = 0.0;
        for (&j, &v) in cols.iter().zip(vals) {
            if j == i {
                diag = v;
            } else {
                acc -= v * x[j];
            }
        }
        if diag != 0.0 {
            x[i] = acc / diag;
        }
    };
    if backward {
        for i in (0..n).rev() {
            update(i);
        }
    } else {
        for i in 0..n {
            update(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen::laplace_2d_5pt;
    use sparse::vector::{norm2, random_vec};

    fn residual(a: &Csr, b: &[f64], x: &[f64]) -> f64 {
        let ax = a.spmv(x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        norm2(&r)
    }

    #[test]
    fn jacobi_reduces_residual() {
        let a = laplace_2d_5pt(8, 8);
        let b = random_vec(64, 1);
        let mut x = vec![0.0; 64];
        let mut work = Vec::new();
        let r0 = residual(&a, &b, &x);
        for _ in 0..10 {
            smooth(&a, &b, &mut x, Smoother::Jacobi(2.0 / 3.0), &mut work);
        }
        assert!(residual(&a, &b, &x) < r0 * 0.9);
    }

    #[test]
    fn gauss_seidel_beats_jacobi() {
        let a = laplace_2d_5pt(8, 8);
        let b = random_vec(64, 2);
        let mut work = Vec::new();
        let mut xj = vec![0.0; 64];
        let mut xg = vec![0.0; 64];
        for _ in 0..10 {
            smooth(&a, &b, &mut xj, Smoother::Jacobi(2.0 / 3.0), &mut work);
            smooth(&a, &b, &mut xg, Smoother::GaussSeidel, &mut work);
        }
        assert!(residual(&a, &b, &xg) < residual(&a, &b, &xj));
    }

    #[test]
    fn exact_solution_is_fixed_point() {
        let a = laplace_2d_5pt(5, 5);
        let x_true = random_vec(25, 3);
        let b = a.spmv(&x_true);
        let mut work = Vec::new();
        for kind in [
            Smoother::GaussSeidel,
            Smoother::SymGaussSeidel,
            Smoother::Jacobi(0.8),
        ] {
            let mut x = x_true.clone();
            smooth(&a, &b, &mut x, kind, &mut work);
            let diff: Vec<f64> = x.iter().zip(&x_true).map(|(a, b)| a - b).collect();
            assert!(
                norm2(&diff) < 1e-12,
                "{kind:?} moved away from the solution"
            );
        }
    }

    #[test]
    fn symmetric_gs_beats_single_sweep() {
        let a = laplace_2d_5pt(10, 10);
        let b = random_vec(100, 4);
        let mut work = Vec::new();
        let mut xf = vec![0.0; 100];
        let mut xs = vec![0.0; 100];
        for _ in 0..5 {
            smooth(&a, &b, &mut xf, Smoother::GaussSeidel, &mut work);
            smooth(&a, &b, &mut xs, Smoother::SymGaussSeidel, &mut work);
        }
        assert!(residual(&a, &b, &xs) < residual(&a, &b, &xf));
    }
}
