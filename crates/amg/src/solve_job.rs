//! Job-shaped solve entry: the AMG solve phase packaged for a
//! multi-tenant scheduler (`crates/service`).
//!
//! A *job* is one tenant's unit of work on a shared warm world: here,
//! weighted-Jacobi relaxation sweeps over **every** level of one AMG
//! hierarchy against that tenant's right-hand side. Each level is one
//! batch entry (its halo-exchange pattern); each sweep posts all levels'
//! exchanges at once and runs a level's relaxation the moment its ghost
//! values land — the paper's all-levels-as-one-session communication
//! shape, with the smoother as the per-entry compute.
//!
//! The struct is deliberately framework-free: it exposes the pieces a
//! scheduler needs (`patterns`, `sweeps`, `rank_state`) as inherent
//! methods and leaves the scheduler's job trait to the service crate, so
//! `amg` keeps depending only on `sparse` + `mpi-advance`.
//!
//! Determinism contract: levels share no state, so the per-rank update is
//! independent of the order entries retire within a sweep, and every
//! arithmetic step matches [`JacobiJob::reference_results`] — the same
//! sweeps computed serially on the same per-rank split matrices. A job's
//! distributed result is therefore byte-identical run to run, alone or
//! next to other tenants, which is what the service's equivalence and
//! fault-isolation suites assert.

use crate::distributed::{split_level, DistributedHierarchy};
use crate::hierarchy::Hierarchy;
use mpi_advance::{CommPattern, NeighborRequest};
use sparse::ParCsr;
use std::collections::HashMap;

/// One level's shared (rank-independent) data.
struct JobLevel {
    /// Rank `r`'s split of the level matrix.
    mats: Vec<ParCsr>,
    /// Halo-exchange pattern for `y = A_l x`.
    pattern: CommPattern,
    /// Global right-hand side for the level.
    rhs: Vec<f64>,
}

/// All-levels weighted-Jacobi relaxation over one hierarchy, shaped as a
/// schedulable job: N batch entries (one per level), `sweeps` iterations,
/// per-rank state machines built on the rank threads.
pub struct JacobiJob {
    levels: Vec<JobLevel>,
    n_ranks: usize,
    omega: f64,
    sweeps: usize,
}

impl JacobiJob {
    /// Package `sweeps` damped-Jacobi sweeps over every level of `h`,
    /// partitioned over `n_ranks` balanced row blocks. The fine level
    /// relaxes against `rhs_fine` (the tenant's right-hand side); coarser
    /// levels get a deterministic synthetic right-hand side so their
    /// exchanges carry meaningful data too.
    pub fn relaxation(
        h: &Hierarchy,
        n_ranks: usize,
        rhs_fine: &[f64],
        omega: f64,
        sweeps: usize,
    ) -> Self {
        assert!(sweeps > 0, "a job must run at least one sweep");
        assert_eq!(
            rhs_fine.len(),
            h.levels[0].a.n_rows(),
            "rhs length must match the fine level"
        );
        let dist = DistributedHierarchy::build(h, n_ranks);
        let levels = h
            .levels
            .iter()
            .zip(&dist.levels)
            .map(|(l, d)| {
                let rhs = if d.level == 0 {
                    rhs_fine.to_vec()
                } else {
                    // deterministic, level-dependent, nonzero
                    (0..l.a.n_rows())
                        .map(|i| (0.37 * i as f64 + d.level as f64).sin())
                        .collect()
                };
                JobLevel {
                    mats: split_level(&l.a, &d.part),
                    pattern: d.pattern(),
                    rhs,
                }
            })
            .collect();
        Self {
            levels,
            n_ranks,
            omega,
            sweeps,
        }
    }

    /// One halo pattern per level — the job's batch entries, finest first.
    pub fn patterns(&self) -> Vec<CommPattern> {
        self.levels.iter().map(|l| l.pattern.clone()).collect()
    }

    /// Whole-batch iterations the job runs.
    pub fn sweeps(&self) -> usize {
        self.sweeps
    }

    /// Ranks the job was partitioned for.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Levels (= batch entries).
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Build rank `rank`'s worker state (call on the rank's own thread).
    pub fn rank_state(&self, rank: usize) -> JacobiRankState {
        let levels = self
            .levels
            .iter()
            .map(|l| LevelState::new(&l.mats[rank], &l.rhs))
            .collect();
        JacobiRankState {
            levels,
            omega: self.omega,
        }
    }

    /// The same sweeps computed without any fabric: per rank, the result
    /// `finish` would return — ghost values read straight out of the
    /// global iterate. Arithmetic matches the distributed path exactly
    /// (same split matrices, same accumulation order), so distributed
    /// results must be **byte-identical** to this, not merely close.
    pub fn reference_results(&self) -> Vec<Vec<f64>> {
        let per_level: Vec<Vec<Vec<f64>>> = self
            .levels
            .iter()
            .map(|l| {
                let n = l.rhs.len();
                let mut x = vec![0.0; n];
                let states: Vec<LevelState> = (0..self.n_ranks)
                    .map(|r| LevelState::new(&l.mats[r], &l.rhs))
                    .collect();
                for _ in 0..self.sweeps {
                    let x_old = x.clone();
                    for (r, st) in states.iter().enumerate() {
                        let range = st.mat.part.range(r);
                        let ghost: Vec<f64> =
                            st.mat.col_map_offd.iter().map(|&g| x_old[g]).collect();
                        let y = st.mat.spmv(&x_old[range.clone()], &ghost);
                        for (i, gi) in range.enumerate() {
                            x[gi] = x_old[gi] + self.omega * st.inv_diag[i] * (st.b[i] - y[i]);
                        }
                    }
                }
                // split the converged-by-sweeps iterate back per rank
                (0..self.n_ranks)
                    .map(|r| x[l.mats[r].part.range(r)].to_vec())
                    .collect()
            })
            .collect();
        (0..self.n_ranks)
            .map(|r| {
                per_level
                    .iter()
                    .flat_map(|lv| lv[r].iter().copied())
                    .collect()
            })
            .collect()
    }
}

/// One level's per-rank Jacobi state.
struct LevelState {
    mat: ParCsr,
    /// Local iterate (owned rows).
    x: Vec<f64>,
    /// Local right-hand side.
    b: Vec<f64>,
    /// 1 / A_ii per owned row.
    inv_diag: Vec<f64>,
    /// For ghost column `j`: its position in the entry's `output_index`
    /// (built on first absorb — the index only exists on the request).
    ghost_pos: Option<Vec<usize>>,
    /// Ghost values of the current sweep, in `col_map_offd` order.
    ghost: Vec<f64>,
}

impl LevelState {
    fn new(mat: &ParCsr, rhs: &[f64]) -> Self {
        let range = mat.part.range(mat.rank);
        let inv_diag = (0..range.len())
            .map(|i| {
                let d = mat.diag.get(i, i);
                assert!(d != 0.0, "Jacobi needs a nonzero diagonal");
                1.0 / d
            })
            .collect();
        Self {
            mat: mat.clone(),
            x: vec![0.0; range.len()],
            b: rhs[range].to_vec(),
            inv_diag,
            ghost_pos: None,
            ghost: vec![0.0; mat.col_map_offd.len()],
        }
    }
}

/// Rank-local worker: produces each entry's send values and folds each
/// entry's arrived ghost values into one damped-Jacobi sweep of that
/// level. Entries are independent, so absorb order within a sweep does
/// not affect the result.
pub struct JacobiRankState {
    levels: Vec<LevelState>,
    omega: f64,
}

impl JacobiRankState {
    /// Entry `e`'s send values for the current sweep, aligned with
    /// `req.input_index()` (global row ids owned by this rank).
    pub fn input(&mut self, e: usize, req: &dyn NeighborRequest) -> Vec<f64> {
        let st = &self.levels[e];
        let first = st.mat.part.first_row(st.mat.rank);
        req.input_index().iter().map(|&g| st.x[g - first]).collect()
    }

    /// Entry `e`'s ghost values landed (aligned with
    /// `req.output_index()`): run one damped-Jacobi update of the level.
    pub fn absorb(&mut self, e: usize, req: &dyn NeighborRequest, output: &[f64]) {
        let st = &mut self.levels[e];
        let pos = st.ghost_pos.get_or_insert_with(|| {
            let by_global: HashMap<usize, usize> = req
                .output_index()
                .iter()
                .enumerate()
                .map(|(p, &g)| (g, p))
                .collect();
            st.mat
                .col_map_offd
                .iter()
                .map(|g| {
                    *by_global
                        .get(g)
                        .expect("entry output_index must cover every ghost column")
                })
                .collect()
        });
        for (j, &p) in pos.iter().enumerate() {
            st.ghost[j] = output[p];
        }
        let y = st.mat.spmv(&st.x, &st.ghost);
        for (i, x) in st.x.iter_mut().enumerate() {
            *x += self.omega * st.inv_diag[i] * (st.b[i] - y[i]);
        }
    }

    /// The rank's result: every level's local iterate, finest first.
    pub fn finish(self) -> Vec<f64> {
        self.levels.into_iter().flat_map(|l| l.x).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{Hierarchy, HierarchyOptions};
    use sparse::gen::diffusion_2d_7pt;
    use std::f64::consts::FRAC_PI_4;

    fn small_job(n_ranks: usize, sweeps: usize) -> JacobiJob {
        let a = diffusion_2d_7pt(16, 8, 0.001, FRAC_PI_4);
        let n = a.n_rows();
        let h = Hierarchy::setup(a, HierarchyOptions::default());
        let rhs: Vec<f64> = (0..n).map(|i| (0.11 * i as f64).cos()).collect();
        JacobiJob::relaxation(&h, n_ranks, &rhs, 0.8, sweeps)
    }

    #[test]
    fn reference_sweeps_reduce_the_fine_residual() {
        let job = small_job(4, 8);
        let per_rank = job.reference_results();
        // reassemble the fine-level iterate
        let fine_len = job.levels[0].rhs.len();
        let mut x = Vec::with_capacity(fine_len);
        for (r, res) in per_rank.iter().enumerate() {
            let local = job.levels[0].mats[r].part.range(r).len();
            x.extend_from_slice(&res[..local]);
        }
        assert_eq!(x.len(), fine_len);
        // one serial residual check against the assembled fine matrix
        let l = &job.levels[0];
        let mut r2 = 0.0;
        let mut b2 = 0.0;
        for (rank, mat) in l.mats.iter().enumerate() {
            let range = mat.part.range(rank);
            let ghost: Vec<f64> = mat.col_map_offd.iter().map(|&g| x[g]).collect();
            let y = mat.spmv(&x[range.clone()], &ghost);
            for (i, gi) in range.enumerate() {
                r2 += (l.rhs[gi] - y[i]) * (l.rhs[gi] - y[i]);
                b2 += l.rhs[gi] * l.rhs[gi];
            }
        }
        assert!(
            r2.sqrt() < 0.9 * b2.sqrt(),
            "8 damped-Jacobi sweeps should shrink the residual: \
             ||r|| = {} vs ||b|| = {}",
            r2.sqrt(),
            b2.sqrt()
        );
    }

    #[test]
    fn rank_states_cover_all_levels_and_rows() {
        let job = small_job(4, 2);
        let total: usize = (0..4)
            .map(|r| {
                let st = job.rank_state(r);
                st.levels.iter().map(|l| l.x.len()).sum::<usize>()
            })
            .sum();
        let expect: usize = job.levels.iter().map(|l| l.rhs.len()).sum();
        assert_eq!(total, expect);
        assert_eq!(job.patterns().len(), job.n_levels());
    }
}
