//! BoomerAMG-style algebraic multigrid.
//!
//! The paper evaluates its neighborhood collectives inside the sparse
//! matrix-vector multiplies of the *solve phase* of Hypre BoomerAMG. This
//! crate builds the same kind of hierarchy — classical strength of
//! connection, PMIS coarsening, direct (classical) interpolation, Galerkin
//! `PᵀAP` coarse operators — and provides the V-cycle solver plus
//! per-level distributed views ([`distributed`]) whose communication
//! patterns drive every figure in the evaluation.

pub mod coarsen;
pub mod cycle;
pub mod dense;
pub mod distributed;
pub mod hierarchy;
pub mod interp;
pub mod pcg;
pub mod smoother;
pub mod solve_job;
pub mod strength;

pub use pcg::{pcg, PcgResult};

#[cfg(test)]
mod proptests;

pub use coarsen::{pmis, CfMarker};
pub use cycle::{solve, SolveOptions, SolveResult};
pub use distributed::{DistLevel, DistributedHierarchy};
pub use hierarchy::{Hierarchy, HierarchyOptions, Level};
pub use interp::{classical_interpolation, direct_interpolation};
pub use solve_job::{JacobiJob, JacobiRankState};
pub use strength::strength_matrix;
