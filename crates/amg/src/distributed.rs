//! Distributed views of the hierarchy: the per-level communication
//! patterns that the paper's experiments measure.
//!
//! The solve-phase SpMV communication on level ℓ is fully determined by
//! `A_ℓ`'s sparsity structure and the row partition. Each level is
//! block-partitioned over `P` ranks exactly as Hypre's ParCSR does; the
//! resulting [`CommPkg`]s are what the neighborhood collectives in
//! `mpi-advance` are initialized from.

use crate::hierarchy::Hierarchy;
use mpi_advance::CommPattern;
use sparse::{build_comm_pkgs, CommPkg, Csr, ParCsr, Partition};

/// One level's distributed structure.
pub struct DistLevel {
    /// Level index (0 = finest).
    pub level: usize,
    /// Global rows on this level.
    pub n_rows: usize,
    /// Row partition over the ranks.
    pub part: Partition,
    /// Per-rank halo-exchange pattern for `y = A_ℓ x`.
    pub pkgs: Vec<CommPkg>,
}

impl DistLevel {
    /// Max over ranks of the number of messages sent.
    pub fn max_send_msgs(&self) -> usize {
        self.pkgs.iter().map(|p| p.sends.len()).max().unwrap_or(0)
    }

    /// Max over ranks of values sent.
    pub fn max_send_values(&self) -> usize {
        self.pkgs.iter().map(CommPkg::send_size).max().unwrap_or(0)
    }

    /// Number of ranks owning at least one row.
    pub fn active_ranks(&self) -> usize {
        self.part.active_ranks().count()
    }

    /// The level's halo-exchange pattern, ready for
    /// `mpi_advance::NeighborAlltoallv`.
    pub fn pattern(&self) -> CommPattern {
        CommPattern::from_comm_pkgs(&self.pkgs)
    }
}

/// The whole hierarchy partitioned over `P` ranks.
pub struct DistributedHierarchy {
    pub n_ranks: usize,
    pub levels: Vec<DistLevel>,
}

impl DistributedHierarchy {
    /// Partition every level of `h` over `n_ranks` ranks (balanced blocks)
    /// and derive each level's communication package.
    pub fn build(h: &Hierarchy, n_ranks: usize) -> Self {
        let levels = h
            .levels
            .iter()
            .enumerate()
            .map(|(level, l)| {
                let part = Partition::block(l.a.n_rows(), n_ranks);
                let pkgs = build_comm_pkgs(&l.a, &part);
                DistLevel {
                    level,
                    n_rows: l.a.n_rows(),
                    part,
                    pkgs,
                }
            })
            .collect();
        Self { n_ranks, levels }
    }

    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Every level's halo-exchange pattern, in level order — the entry
    /// list for one `mpi_advance::NeighborBatch` serving the whole
    /// hierarchy (the solve keeps one persistent collective live per
    /// level, so they should be planned, tagged, and staged as one
    /// session).
    pub fn patterns(&self) -> Vec<CommPattern> {
        self.levels.iter().map(DistLevel::pattern).collect()
    }
}

/// Per-rank matrix pieces of one level, for executing distributed SpMVs on
/// the simulator (built on demand — storing them for every rank at paper
/// scale would be wasteful).
pub fn split_level(a: &Csr, part: &Partition) -> Vec<ParCsr> {
    ParCsr::split_all(a, part)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{Hierarchy, HierarchyOptions};
    use sparse::commpkg::validate_comm_pkgs;
    use sparse::gen::diffusion_2d_7pt;

    fn small_hierarchy() -> Hierarchy {
        let a = diffusion_2d_7pt(32, 16, 0.001, std::f64::consts::FRAC_PI_4);
        Hierarchy::setup(a, HierarchyOptions::default())
    }

    #[test]
    fn all_levels_have_valid_pkgs() {
        let h = small_hierarchy();
        let d = DistributedHierarchy::build(&h, 8);
        assert_eq!(d.n_levels(), h.n_levels());
        for lvl in &d.levels {
            validate_comm_pkgs(&lvl.pkgs);
            assert_eq!(lvl.pkgs.len(), 8);
        }
    }

    #[test]
    fn coarse_levels_have_fewer_active_ranks() {
        let h = small_hierarchy();
        let d = DistributedHierarchy::build(&h, 64);
        let first = &d.levels[0];
        let last = d.levels.last().unwrap();
        assert_eq!(first.active_ranks(), 64);
        // the coarsest level has fewer rows than ranks
        assert!(last.n_rows < 64, "coarsest has {} rows", last.n_rows);
        assert!(last.active_ranks() <= last.n_rows);
    }

    #[test]
    fn message_counts_grow_toward_middle_levels() {
        // The paper's motivating observation: communication requirements
        // are largest near the middle of the hierarchy (coarser = denser
        // rows, but coarsest = too few rows to need many partners).
        let h = small_hierarchy();
        let d = DistributedHierarchy::build(&h, 16);
        let counts: Vec<usize> = d.levels.iter().map(DistLevel::max_send_msgs).collect();
        let fine = counts[0];
        let mid_max = *counts.iter().max().unwrap();
        assert!(
            mid_max >= fine,
            "expected a middle level to need at least as many messages: {counts:?}"
        );
    }

    #[test]
    fn whole_hierarchy_exchanges_as_one_batch_on_one_pool() {
        // the solve-phase shape: one warm pooled world, one NeighborBatch
        // holding every level's collective, all levels posted with ONE
        // start_all and retired by wait_any as their traffic lands — each
        // level's "smoothing" (here: the delivery check) runs the moment
        // its halo completes, never behind a slower level's
        use locality::Topology;
        use mpi_advance::{Backend, NeighborBatch, Protocol};
        use mpisim::World;

        const RANKS: usize = 8;
        let h = small_hierarchy();
        let d = DistributedHierarchy::build(&h, RANKS);
        let patterns = d.patterns();
        assert_eq!(patterns.len(), d.n_levels());
        let topo = Topology::block_nodes(RANKS, 4);
        let mut batch = NeighborBatch::new(&topo);
        for p in &patterns {
            batch = batch.entry(p, Backend::Protocol(Protocol::FullNeighbor));
        }
        let pool = World::pool(RANKS);
        let ok = pool.run(|ctx| {
            let comm = ctx.comm_world();
            let mut session = batch.init_all(ctx, &comm);
            let inputs: Vec<Vec<f64>> = session
                .requests()
                .iter()
                .map(|r| r.input_index().iter().map(|&i| i as f64).collect())
                .collect();
            let mut ghosts: Vec<Vec<f64>> = session
                .requests()
                .iter()
                .map(|r| vec![f64::NAN; r.output_index().len()])
                .collect();
            session.start_all(ctx, &inputs);
            let mut ok = true;
            let mut retired = 0;
            while session.in_flight() > 0 {
                let lvl = session.wait_any(ctx, &mut ghosts);
                retired += 1;
                ok &= session
                    .entry(lvl)
                    .output_index()
                    .iter()
                    .zip(&ghosts[lvl])
                    .all(|(&i, &v)| v == i as f64);
            }
            ok && retired == d.n_levels()
        });
        assert!(ok.into_iter().all(|b| b), "a level's halo exchange failed");
    }

    #[test]
    fn more_ranks_mean_no_fewer_partners_at_fine_level() {
        let h = small_hierarchy();
        let d4 = DistributedHierarchy::build(&h, 4);
        let d16 = DistributedHierarchy::build(&h, 16);
        assert!(
            d16.levels[0].max_send_msgs() >= d4.levels[0].max_send_msgs(),
            "strong scaling should not reduce per-rank message counts"
        );
    }
}
