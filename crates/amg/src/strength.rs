//! Classical strength of connection.

use sparse::Csr;

/// Classical (Ruge-Stüben) strength matrix: `j` strongly influences `i`
/// when `-a_ij ≥ θ · max_{k≠i}(-a_ik)`. Positive off-diagonals are weak.
///
/// Returns a pattern matrix (values 1.0) with no diagonal. Rows with no
/// negative off-diagonal entries have no strong connections.
pub fn strength_matrix(a: &Csr, theta: f64) -> Csr {
    assert!((0.0..=1.0).contains(&theta), "theta must be in [0, 1]");
    assert_eq!(a.n_rows(), a.n_cols(), "strength needs a square matrix");
    let n = a.n_rows();
    let mut rowptr = Vec::with_capacity(n + 1);
    rowptr.push(0usize);
    let mut colind = Vec::new();
    let mut vals = Vec::new();
    for i in 0..n {
        let (cols, avals) = a.row(i);
        let mut max_neg = 0.0f64;
        for (&j, &v) in cols.iter().zip(avals) {
            if j != i && -v > max_neg {
                max_neg = -v;
            }
        }
        if max_neg > 0.0 {
            let threshold = theta * max_neg;
            for (&j, &v) in cols.iter().zip(avals) {
                if j != i && -v >= threshold && -v > 0.0 {
                    colind.push(j);
                    vals.push(1.0);
                }
            }
        }
        rowptr.push(colind.len());
    }
    Csr::new(n, n, rowptr, colind, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen::{diffusion_2d_7pt, laplace_2d_5pt};

    #[test]
    fn laplacian_all_neighbors_strong() {
        let a = laplace_2d_5pt(4, 4);
        let s = strength_matrix(&a, 0.25);
        // every off-diagonal is -1 → all strong; interior row has 4
        assert_eq!(s.row_nnz(5), 4);
        // no diagonal in S
        assert_eq!(s.get(5, 5), 0.0);
    }

    #[test]
    fn anisotropy_keeps_only_strong_direction() {
        let a = diffusion_2d_7pt(8, 8, 0.001, std::f64::consts::FRAC_PI_4);
        let s = strength_matrix(&a, 0.25);
        // interior point: strong only along the NE/SW diagonal (2 entries)
        let idx = 3 * 8 + 3;
        assert_eq!(s.row_nnz(idx), 2);
        let (cols, _) = s.row(idx);
        assert_eq!(cols, &[idx - 9, idx + 9]); // SW and NE neighbors
    }

    #[test]
    fn theta_one_keeps_only_max() {
        let a = diffusion_2d_7pt(6, 6, 0.1, 0.3);
        let s = strength_matrix(&a, 1.0);
        for i in 0..a.n_rows() {
            // with θ=1 only entries equal to the row max survive
            assert!(s.row_nnz(i) >= 1 || a.row_nnz(i) <= 1);
        }
    }

    #[test]
    fn row_with_no_negative_offdiag_has_no_strong() {
        use sparse::Coo;
        let mut coo = Coo::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 0.5); // positive off-diagonal
        coo.push(1, 1, 1.0);
        let a = Csr::from_coo(&coo);
        let s = strength_matrix(&a, 0.25);
        assert_eq!(s.nnz(), 0);
    }
}
