//! Small dense direct solver for the coarsest grid.

use sparse::Csr;

/// LU factorization with partial pivoting of a small dense matrix.
pub struct DenseLu {
    n: usize,
    /// Row-major combined L\U factors.
    lu: Vec<f64>,
    /// Row permutation.
    piv: Vec<usize>,
    /// Rows that are exactly zero (singular systems from zero-row-sum
    /// operators); their solution components are pinned to zero.
    null_rows: Vec<bool>,
}

// The textbook triple-indexed LU formulation is clearer than iterator chains.
#[allow(clippy::needless_range_loop)]
impl DenseLu {
    /// Factor the (small) sparse matrix densely. Tolerates singular
    /// matrices by pinning fully-dependent rows to zero — adequate for the
    /// coarsest AMG level, where the residual lies in the operator's range.
    pub fn factor(a: &Csr) -> Self {
        let n = a.n_rows();
        assert_eq!(n, a.n_cols());
        let mut lu = vec![0.0f64; n * n];
        for r in 0..n {
            let (cols, vals) = a.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                lu[r * n + c] = v;
            }
        }
        let mut piv: Vec<usize> = (0..n).collect();
        let mut null_rows = vec![false; n];
        for k in 0..n {
            // partial pivot
            let (mut best, mut best_abs) = (k, lu[piv[k] * n + k].abs());
            for r in k + 1..n {
                let v = lu[piv[r] * n + k].abs();
                if v > best_abs {
                    best = r;
                    best_abs = v;
                }
            }
            piv.swap(k, best);
            let pk = piv[k];
            let pivot = lu[pk * n + k];
            if pivot.abs() < 1e-13 {
                null_rows[k] = true;
                continue;
            }
            for r in k + 1..n {
                let pr = piv[r];
                let f = lu[pr * n + k] / pivot;
                lu[pr * n + k] = f;
                for c in k + 1..n {
                    lu[pr * n + c] -= f * lu[pk * n + c];
                }
            }
        }
        Self {
            n,
            lu,
            piv,
            null_rows,
        }
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        // forward
        let mut y = vec![0.0f64; n];
        for k in 0..n {
            let pk = self.piv[k];
            let mut acc = b[pk];
            for c in 0..k {
                acc -= self.lu[pk * n + c] * y[c];
            }
            y[k] = acc;
        }
        // backward
        let mut x = vec![0.0f64; n];
        for k in (0..n).rev() {
            if self.null_rows[k] {
                x[k] = 0.0;
                continue;
            }
            let pk = self.piv[k];
            let mut acc = y[k];
            for c in k + 1..n {
                acc -= self.lu[pk * n + c] * x[c];
            }
            x[k] = acc / self.lu[pk * n + k];
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen::laplace_2d_5pt;
    use sparse::vector::{norm2, random_vec};
    use sparse::Coo;

    #[test]
    fn solves_spd_system() {
        let a = laplace_2d_5pt(5, 5);
        let lu = DenseLu::factor(&a);
        let x_true = random_vec(25, 11);
        let b = a.spmv(&x_true);
        let x = lu.solve(&b);
        let diff: Vec<f64> = x.iter().zip(&x_true).map(|(a, b)| a - b).collect();
        assert!(norm2(&diff) < 1e-10);
    }

    #[test]
    fn permutation_handles_zero_leading_pivot() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a = sparse::Csr::from_coo(&coo);
        let lu = DenseLu::factor(&a);
        let x = lu.solve(&[3.0, 4.0]);
        assert!((x[0] - 4.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn singular_matrix_pins_null_component() {
        // all-zero 1x1 matrix: solution pinned to 0 rather than NaN
        let a = sparse::Csr::zero(1, 1);
        let lu = DenseLu::factor(&a);
        assert_eq!(lu.solve(&[0.0]), vec![0.0]);
    }
}
