//! Conjugate gradient preconditioned by one AMG V-cycle — the standard way
//! Hypre's BoomerAMG is driven in production solves.

use crate::cycle::{vcycle, SolveOptions};
use crate::hierarchy::Hierarchy;
use sparse::vector::{axpy, dot, norm2};

/// Result of a PCG solve.
#[derive(Debug, Clone)]
pub struct PcgResult {
    pub x: Vec<f64>,
    pub residual_history: Vec<f64>,
    pub converged: bool,
}

/// Solve `A x = b` by CG with one AMG V-cycle as the preconditioner.
pub fn pcg(h: &Hierarchy, b: &[f64], max_iters: usize, rel_tol: f64) -> PcgResult {
    let a = &h.levels[0].a;
    assert_eq!(b.len(), a.n_rows());
    let n = b.len();
    // CG requires a symmetric positive-definite preconditioner: use
    // symmetric Gauss-Seidel smoothing so the V-cycle operator is symmetric.
    let opts = SolveOptions {
        smoother: crate::smoother::Smoother::SymGaussSeidel,
        ..SolveOptions::default()
    };

    let precond = |r: &[f64]| -> Vec<f64> {
        let mut z = vec![0.0; n];
        vcycle(h, 0, r, &mut z, &opts);
        z
    };

    let mut x = vec![0.0f64; n];
    let mut r = b.to_vec();
    let b_norm = norm2(b).max(f64::MIN_POSITIVE);
    let mut history = vec![norm2(&r)];
    if history[0] / b_norm < rel_tol {
        return PcgResult {
            x,
            residual_history: history,
            converged: true,
        };
    }

    let mut z = precond(&r);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut converged = false;

    for _ in 0..max_iters {
        let ap = a.spmv(&p);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            break; // lost positive-definiteness (numerical breakdown)
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rn = norm2(&r);
        history.push(rn);
        if rn / b_norm < rel_tol {
            converged = true;
            break;
        }
        z = precond(&r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    PcgResult {
        x,
        residual_history: history,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyOptions;
    use crate::Hierarchy;
    use sparse::gen::{diffusion_2d_7pt, laplace_2d_5pt};
    use sparse::vector::random_vec;

    #[test]
    fn pcg_converges_faster_than_plain_vcycles() {
        let a = diffusion_2d_7pt(32, 32, 0.001, std::f64::consts::FRAC_PI_4);
        let h = Hierarchy::setup(a.clone(), HierarchyOptions::default());
        let x_true = random_vec(a.n_rows(), 8);
        let b = a.spmv(&x_true);
        let pcg_res = pcg(&h, &b, 100, 1e-8);
        assert!(pcg_res.converged);
        let amg_res = crate::cycle::solve(
            &h,
            &b,
            &crate::cycle::SolveOptions {
                max_iters: 100,
                ..Default::default()
            },
        );
        assert!(
            pcg_res.residual_history.len() <= amg_res.residual_history.len(),
            "PCG ({}) should need no more cycles than stationary AMG ({})",
            pcg_res.residual_history.len(),
            amg_res.residual_history.len()
        );
    }

    #[test]
    fn pcg_solution_accuracy() {
        let a = laplace_2d_5pt(20, 20);
        let h = Hierarchy::setup(a.clone(), HierarchyOptions::default());
        let x_true = random_vec(400, 9);
        let b = a.spmv(&x_true);
        let res = pcg(&h, &b, 50, 1e-10);
        assert!(res.converged);
        let err: Vec<f64> = res.x.iter().zip(&x_true).map(|(a, b)| a - b).collect();
        assert!(norm2(&err) / norm2(&x_true) < 1e-7);
    }

    #[test]
    fn zero_rhs_is_immediate() {
        let a = laplace_2d_5pt(8, 8);
        let h = Hierarchy::setup(a, HierarchyOptions::default());
        let res = pcg(&h, &vec![0.0; 64], 10, 1e-8);
        assert!(res.converged);
        assert!(res.x.iter().all(|&v| v == 0.0));
    }
}
