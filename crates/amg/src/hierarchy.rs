//! Hierarchy construction (the AMG setup phase).

use crate::coarsen::{count_coarse, pmis};
use crate::dense::DenseLu;
use crate::interp::classical_interpolation;
use crate::strength::strength_matrix;
use sparse::spgemm::rap;
use sparse::Csr;

/// Setup options.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyOptions {
    /// Strength threshold θ (Hypre default 0.25).
    pub theta: f64,
    /// Stop coarsening below this many rows.
    pub max_coarse: usize,
    /// Hard cap on the number of levels.
    pub max_levels: usize,
    /// Seed for the PMIS random tiebreakers.
    pub seed: u64,
}

impl Default for HierarchyOptions {
    fn default() -> Self {
        Self {
            theta: 0.25,
            max_coarse: 40,
            max_levels: 25,
            seed: 0,
        }
    }
}

/// One level of the hierarchy: its operator and the interpolation down to
/// it (absent on the coarsest level).
pub struct Level {
    /// The level operator `A_ℓ`.
    pub a: Csr,
    /// Interpolation from level ℓ+1 up to level ℓ (`P_ℓ`), if ℓ is not the
    /// coarsest.
    pub p: Option<Csr>,
}

/// A complete AMG hierarchy.
pub struct Hierarchy {
    pub levels: Vec<Level>,
    /// Direct solver for the coarsest operator.
    pub coarse_solver: DenseLu,
    pub options: HierarchyOptions,
}

impl Hierarchy {
    /// BoomerAMG-style setup: strength → PMIS → direct interpolation →
    /// Galerkin RAP, repeated until the operator is small.
    pub fn setup(a: Csr, options: HierarchyOptions) -> Self {
        assert_eq!(a.n_rows(), a.n_cols(), "AMG needs a square operator");
        let mut levels: Vec<Level> = Vec::new();
        let mut current = a;
        while current.n_rows() > options.max_coarse && levels.len() + 1 < options.max_levels {
            let s = strength_matrix(&current, options.theta);
            let cf = pmis(&s, options.seed.wrapping_add(levels.len() as u64));
            let nc = count_coarse(&cf);
            if nc == 0 || nc == current.n_rows() {
                break; // coarsening stalled
            }
            let (p, _) = classical_interpolation(&current, &s, &cf);
            let coarse = rap(&current, &p);
            levels.push(Level {
                a: current,
                p: Some(p),
            });
            current = coarse;
        }
        let coarse_solver = DenseLu::factor(&current);
        levels.push(Level {
            a: current,
            p: None,
        });
        Self {
            levels,
            coarse_solver,
            options,
        }
    }

    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Rows per level, fine to coarse.
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.a.n_rows()).collect()
    }

    /// Operator complexity: Σ nnz(A_ℓ) / nnz(A_0).
    pub fn operator_complexity(&self) -> f64 {
        let total: usize = self.levels.iter().map(|l| l.a.nnz()).sum();
        total as f64 / self.levels[0].a.nnz() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::gen::{diffusion_2d_7pt, laplace_2d_5pt};

    #[test]
    fn laplacian_hierarchy_shrinks() {
        let a = laplace_2d_5pt(32, 32);
        let h = Hierarchy::setup(a, HierarchyOptions::default());
        let sizes = h.level_sizes();
        assert!(sizes.len() >= 3, "expected multiple levels, got {sizes:?}");
        for w in sizes.windows(2) {
            assert!(w[1] < w[0], "levels must shrink: {sizes:?}");
        }
        assert!(*sizes.last().unwrap() <= 40);
        // reasonable operator complexity for classical AMG
        assert!(h.operator_complexity() < 5.0);
    }

    #[test]
    fn anisotropic_hierarchy_has_many_levels() {
        // 1-D strong coupling ⇒ slow (factor ~2) coarsening ⇒ deep
        // hierarchy, matching the ~17 levels of the paper's 524k problem.
        let a = diffusion_2d_7pt(64, 32, 0.001, std::f64::consts::FRAC_PI_4);
        let h = Hierarchy::setup(a, HierarchyOptions::default());
        assert!(
            h.n_levels() >= 5,
            "got {} levels: {:?}",
            h.n_levels(),
            h.level_sizes()
        );
    }

    #[test]
    fn galerkin_operator_is_symmetric() {
        let a = laplace_2d_5pt(16, 16);
        let h = Hierarchy::setup(a, HierarchyOptions::default());
        for l in &h.levels[1..] {
            assert!(l.a.frob_distance(&l.a.transpose()) < 1e-9);
        }
    }

    #[test]
    fn tiny_matrix_single_level() {
        let a = laplace_2d_5pt(3, 3);
        let h = Hierarchy::setup(a, HierarchyOptions::default());
        assert_eq!(h.n_levels(), 1);
        assert!(h.levels[0].p.is_none());
    }
}
