//! Direct (classical) interpolation.

use crate::coarsen::CfMarker;
use sparse::{Coo, Csr};

/// Direct interpolation from the C points of `cf`.
///
/// C points inject; an F point `i` interpolates from its strong C
/// neighbors `C_i` with weights
///
/// ```text
/// w_ij = -(a_ij / a_ii) · (Σ_{k≠i} a_ik) / (Σ_{k∈C_i} a_ik)
/// ```
///
/// which preserves row sums of the constant vector for M-matrices. F points
/// with strong connections but no strong C neighbor are not interpolated
/// (zero row — they are handled by relaxation); isolated F points likewise.
///
/// Returns `(P, coarse_index)` where `coarse_index[i]` is the coarse-grid
/// column of point `i` if it is a C point.
pub fn direct_interpolation(a: &Csr, s: &Csr, cf: &[CfMarker]) -> (Csr, Vec<Option<usize>>) {
    let n = a.n_rows();
    assert_eq!(cf.len(), n);
    assert_eq!(s.n_rows(), n);

    // Coarse-grid numbering.
    let mut coarse_index = vec![None; n];
    let mut nc = 0usize;
    for i in 0..n {
        if cf[i] == CfMarker::Coarse {
            coarse_index[i] = Some(nc);
            nc += 1;
        }
    }

    let mut coo = Coo::new(n, nc);
    for i in 0..n {
        match cf[i] {
            CfMarker::Coarse => {
                coo.push(i, coarse_index[i].unwrap(), 1.0);
            }
            CfMarker::Fine => {
                let (s_cols, _) = s.row(i);
                let (a_cols, a_vals) = a.row(i);
                let a_ii = a.get(i, i);
                if a_ii == 0.0 {
                    continue;
                }
                // strong C neighbors of i
                let strong_c: Vec<usize> = s_cols
                    .iter()
                    .copied()
                    .filter(|&j| cf[j] == CfMarker::Coarse)
                    .collect();
                if strong_c.is_empty() {
                    continue;
                }
                let mut sum_all = 0.0; // Σ_{k≠i} a_ik
                let mut sum_c = 0.0; // Σ_{k∈C_i} a_ik
                for (&k, &v) in a_cols.iter().zip(a_vals) {
                    if k == i {
                        continue;
                    }
                    sum_all += v;
                    if strong_c.binary_search(&k).is_ok() {
                        sum_c += v;
                    }
                }
                if sum_c == 0.0 {
                    continue;
                }
                let alpha = sum_all / sum_c;
                for &j in &strong_c {
                    let w = -alpha * a.get(i, j) / a_ii;
                    coo.push(i, coarse_index[j].unwrap(), w);
                }
            }
        }
    }
    (Csr::from_coo(&coo), coarse_index)
}

/// Classical (Ruge-Stüben) interpolation with the modified F-F handling
/// Hypre pairs with PMIS.
///
/// Like [`direct_interpolation`], but a strong F neighbor `k` of an F
/// point `i` is distributed through the C points `C_i` it connects to:
///
/// ```text
/// w_ij = -( a_ij + Σ_{k∈F_i^s} a_ik·a_kj / Σ_{m∈C_i} a_km ) / d_i
/// d_i  = a_ii + Σ_{k weak, k∉C_i} a_ik
/// ```
///
/// Only entries `a_kj` whose sign opposes `a_kk` participate in the
/// distribution (Hypre's "modified classical" rule): restricting to one
/// sign keeps the denominator away from cancellation, which would
/// otherwise blow up the weights on rows with positive off-diagonals.
/// When `k` shares no opposite-sign C point with `i` (possible under
/// PMIS, which does not enforce the strong F-F condition), the connection
/// is lumped into the diagonal `d_i` instead. This distribution is what
/// makes classical interpolation noticeably stronger than direct
/// interpolation on PMIS grids.
pub fn classical_interpolation(a: &Csr, s: &Csr, cf: &[CfMarker]) -> (Csr, Vec<Option<usize>>) {
    let n = a.n_rows();
    assert_eq!(cf.len(), n);
    assert_eq!(s.n_rows(), n);

    let mut coarse_index = vec![None; n];
    let mut nc = 0usize;
    for i in 0..n {
        if cf[i] == CfMarker::Coarse {
            coarse_index[i] = Some(nc);
            nc += 1;
        }
    }

    let mut coo = Coo::new(n, nc);
    // scratch: position of each C neighbor of i in its weight row
    let mut w_pos: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        match cf[i] {
            CfMarker::Coarse => {
                coo.push(i, coarse_index[i].unwrap(), 1.0);
            }
            CfMarker::Fine => {
                let a_ii = a.get(i, i);
                if a_ii == 0.0 {
                    continue;
                }
                let (s_cols, _) = s.row(i);
                let strong: Vec<usize> = s_cols.to_vec();
                let strong_c: Vec<usize> = strong
                    .iter()
                    .copied()
                    .filter(|&j| cf[j] == CfMarker::Coarse)
                    .collect();
                if strong_c.is_empty() {
                    continue;
                }
                // numerators per strong C neighbor, diagonal accumulator
                let mut num: Vec<f64> = vec![0.0; strong_c.len()];
                for (p, &j) in strong_c.iter().enumerate() {
                    w_pos[j] = Some(p);
                    num[p] = a.get(i, j);
                }
                let mut diag = a_ii;
                let (a_cols, a_vals) = a.row(i);
                for (&k, &a_ik) in a_cols.iter().zip(a_vals) {
                    if k == i || strong_c.binary_search(&k).is_ok() {
                        continue;
                    }
                    if cf[k] == CfMarker::Fine && strong.binary_search(&k).is_ok() {
                        // strong F-F: distribute a_ik over the C points of i
                        // that k also connects to, weighted by a_kj — using
                        // only entries opposing a_kk's sign, so the
                        // denominator is a same-sign sum and cannot cancel
                        let (k_cols, k_vals) = a.row(k);
                        let a_kk = a.get(k, k);
                        let distributes = |j: usize, v: f64| w_pos[j].is_some() && v * a_kk < 0.0;
                        let denom: f64 = k_cols
                            .iter()
                            .zip(k_vals)
                            .filter(|(&j, &v)| distributes(j, v))
                            .map(|(_, &v)| v)
                            .sum();
                        if denom != 0.0 {
                            for (&j, &a_kj) in k_cols.iter().zip(k_vals) {
                                if distributes(j, a_kj) {
                                    num[w_pos[j].expect("filtered")] += a_ik * a_kj / denom;
                                }
                            }
                        } else {
                            // no opposite-sign common C point: lump into
                            // the diagonal
                            diag += a_ik;
                        }
                    } else {
                        // weak connection: lump into the diagonal
                        diag += a_ik;
                    }
                }
                if diag != 0.0 {
                    for (p, &j) in strong_c.iter().enumerate() {
                        let w = -num[p] / diag;
                        if w != 0.0 {
                            coo.push(i, coarse_index[j].unwrap(), w);
                        }
                    }
                }
                for &j in &strong_c {
                    w_pos[j] = None;
                }
            }
        }
    }
    (Csr::from_coo(&coo), coarse_index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coarsen::pmis;
    use crate::strength::strength_matrix;
    use sparse::gen::laplace_2d_5pt;

    #[test]
    fn c_points_inject() {
        let a = laplace_2d_5pt(8, 8);
        let s = strength_matrix(&a, 0.25);
        let cf = pmis(&s, 2);
        let (p, cidx) = direct_interpolation(&a, &s, &cf);
        for (i, &m) in cf.iter().enumerate() {
            if m == CfMarker::Coarse {
                let (cols, vals) = p.row(i);
                assert_eq!(cols, &[cidx[i].unwrap()]);
                assert_eq!(vals, &[1.0]);
            }
        }
    }

    #[test]
    fn rows_sum_to_one_for_mmatrix_interior() {
        // For a zero-row-sum M-matrix row, direct interpolation preserves
        // constants: row sums of P are 1 for F rows with strong C nbrs.
        let a = laplace_2d_5pt(10, 10);
        let s = strength_matrix(&a, 0.25);
        let cf = pmis(&s, 5);
        let (p, _) = direct_interpolation(&a, &s, &cf);
        for i in 0..p.n_rows() {
            let (_, vals) = p.row(i);
            if vals.is_empty() {
                continue;
            }
            let rs: f64 = vals.iter().sum();
            // Boundary rows of the Dirichlet Laplacian have nonzero row
            // sums in A, so P row sums deviate below 1 there; interior F
            // rows must hit 1 exactly.
            assert!(rs <= 1.0 + 1e-12, "row {i} sums to {rs}");
            assert!(rs > 0.0, "row {i} sums to {rs}");
        }
    }

    #[test]
    fn shapes_consistent() {
        let a = laplace_2d_5pt(6, 6);
        let s = strength_matrix(&a, 0.25);
        let cf = pmis(&s, 9);
        let (p, cidx) = direct_interpolation(&a, &s, &cf);
        let nc = cidx.iter().flatten().count();
        assert_eq!(p.n_rows(), 36);
        assert_eq!(p.n_cols(), nc);
        // coarse indices are a bijection 0..nc
        let mut seen: Vec<usize> = cidx.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..nc).collect::<Vec<_>>());
    }
}
