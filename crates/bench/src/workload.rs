//! The paper's evaluation workload.
//!
//! All experiments run on a 7-point rotated anisotropic diffusion system
//! (θ = 45°, ε = 0.001) with 524 288 rows (1024 × 512 grid), solved by
//! BoomerAMG, on a Lassen-like machine using 16 ranks per node (§4).

use amg::{DistributedHierarchy, Hierarchy, HierarchyOptions};
use locality::Topology;
use mpi_advance::CommPattern;

/// Grid dimensions of the 524 288-row paper problem.
pub const PAPER_NX: usize = 1024;
pub const PAPER_NY: usize = 512;
/// Total rows of the strong-scaled problem.
pub const PAPER_ROWS: usize = PAPER_NX * PAPER_NY;
/// Ranks per node in all paper experiments.
pub const PAPER_PPN: usize = 16;

/// Build the AMG hierarchy for an `nx × ny` rotated anisotropic diffusion
/// problem with the paper's parameters.
pub fn paper_hierarchy(nx: usize, ny: usize) -> Hierarchy {
    let a = sparse::gen::diffusion::paper_problem(nx, ny);
    Hierarchy::setup(a, HierarchyOptions::default())
}

/// The paper's machine topology for `n_ranks` ranks (16 per node, node
/// regions).
pub fn paper_topology(n_ranks: usize) -> Topology {
    Topology::block_nodes(n_ranks, PAPER_PPN.min(n_ranks))
}

/// One level's communication workload.
pub struct LevelPattern {
    pub level: usize,
    pub n_rows: usize,
    pub pattern: CommPattern,
}

/// The SpMV halo-exchange pattern of every level of `h` when partitioned
/// over `n_ranks` ranks.
pub fn level_patterns(h: &Hierarchy, n_ranks: usize) -> Vec<LevelPattern> {
    let dist = DistributedHierarchy::build(h, n_ranks);
    dist.levels
        .iter()
        .map(|lvl| LevelPattern {
            level: lvl.level,
            n_rows: lvl.n_rows,
            pattern: lvl.pattern(),
        })
        .collect()
}

/// Rows per process in the weak-scaling study: the smallest strong-scaling
/// configuration (524 288 rows on 64 processes) held constant per process,
/// which reproduces Figure 13's magnitudes (its communication times are
/// ~4× the strong-scaled ones at 2048 processes).
pub const WEAK_ROWS_PER_PROC: usize = 8192;

/// Grid sizes for the weak-scaling study (Figure 13).
pub fn weak_scaling_grid(n_ranks: usize) -> (usize, usize) {
    let rows = WEAK_ROWS_PER_PROC * n_ranks;
    // keep the 2:1 aspect ratio of the strong-scaled problem, rounding to
    // a grid that covers the requested rows exactly
    let ny = ((rows / 2) as f64).sqrt().round() as usize;
    let ny = ny.max(2);
    let nx = rows / ny;
    (nx, ny)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workload_builds() {
        let h = paper_hierarchy(64, 32);
        assert!(h.n_levels() >= 4);
        let lp = level_patterns(&h, 8);
        assert_eq!(lp.len(), h.n_levels());
        assert!(lp[0].pattern.total_msgs() > 0);
        assert_eq!(lp[0].n_rows, 2048);
    }

    #[test]
    fn weak_scaling_sizes() {
        // 64 procs × 8192 rows/proc = the strong-scaled 524 288-row system
        let (nx, ny) = weak_scaling_grid(64);
        assert_eq!(nx * ny, PAPER_ROWS);
        let (nx, ny) = weak_scaling_grid(32);
        assert!((nx * ny).abs_diff(WEAK_ROWS_PER_PROC * 32) < 1024);
    }

    #[test]
    fn topology_matches_paper_config() {
        let t = paper_topology(2048);
        assert_eq!(t.n_regions(), 128);
        assert_eq!(t.region_members(0).len(), 16);
        // small runs use one node
        assert_eq!(paper_topology(2).n_regions(), 1);
    }
}
