//! Shared evaluation helpers for the figure binaries.

use crate::workload::{level_patterns, LevelPattern};
use amg::Hierarchy;
use locality::Topology;
use mpi_advance::analytic::{graph_creation_time, init_time, iteration_time};
use mpi_advance::collective::select::choose_among;
use mpi_advance::{AssignStrategy, CommPattern, PlanStats, Protocol};
use perfmodel::LocalityModel;

/// The model every figure uses (Lassen-like, see `perfmodel::params`).
pub fn paper_model() -> LocalityModel {
    LocalityModel::lassen()
}

/// Per-level Start+Wait times of `protocol` (Figure 11's series).
pub fn per_level_times(
    levels: &[LevelPattern],
    topo: &Topology,
    protocol: Protocol,
    model: &LocalityModel,
) -> Vec<f64> {
    levels
        .iter()
        .map(|lp| {
            let plan = protocol.plan(&lp.pattern, topo);
            iteration_time(&plan, topo, model, protocol.is_wrapped()).total
        })
        .collect()
}

/// Per-level init costs of `protocol` (Figure 7's intercepts).
pub fn per_level_init(
    levels: &[LevelPattern],
    topo: &Topology,
    protocol: Protocol,
    model: &LocalityModel,
) -> Vec<f64> {
    levels
        .iter()
        .map(|lp| init_time(&protocol.plan(&lp.pattern, topo), topo, model))
        .collect()
}

/// Per-level plan statistics (Figures 8–10).
pub fn per_level_stats(
    levels: &[LevelPattern],
    topo: &Topology,
    protocol: Protocol,
) -> Vec<PlanStats> {
    levels
        .iter()
        .map(|lp| PlanStats::of(&protocol.plan(&lp.pattern, topo)))
        .collect()
}

/// Sum over levels of the best of {standard, `optimized`} per level — the
/// paper's scaling methodology (§4.2: "summing up the least expensive of
/// standard communication and the given optimized neighbor collective at
/// each step").
pub fn best_of_total(
    levels: &[LevelPattern],
    topo: &Topology,
    optimized: Protocol,
    model: &LocalityModel,
) -> f64 {
    levels
        .iter()
        .map(|lp| {
            choose_among(
                &[Protocol::StandardHypre, optimized],
                &lp.pattern,
                topo,
                model,
                AssignStrategy::LoadBalanced,
            )
            .1
        })
        .sum()
}

/// Sum over levels of one protocol's iteration time (the standard lines of
/// Figures 12–13).
pub fn plain_total(
    levels: &[LevelPattern],
    topo: &Topology,
    protocol: Protocol,
    model: &LocalityModel,
) -> f64 {
    per_level_times(levels, topo, protocol, model).iter().sum()
}

/// Total graph-creation cost: one `MPI_Dist_graph_create_adjacent` per
/// level (Figure 6's series).
pub fn graph_creation_total(
    levels: &[LevelPattern],
    topo: &Topology,
    model: &LocalityModel,
    spectrum_like: bool,
) -> f64 {
    levels
        .iter()
        .map(|lp| {
            let plan = Protocol::StandardNeighbor.plan(&lp.pattern, topo);
            graph_creation_time(&plan, topo, model, spectrum_like)
        })
        .sum()
}

/// Find where line `a0 + iters·a1` crosses below `b0 + iters·b1`
/// (fractional iterations; `None` if it never does).
pub fn crossover(init_a: f64, iter_a: f64, init_b: f64, iter_b: f64) -> Option<f64> {
    // a = expensive-init/cheap-iteration candidate, b = baseline
    if iter_a >= iter_b {
        return None;
    }
    Some((init_a - init_b) / (iter_b - iter_a))
}

/// Convenience: hierarchy → level patterns + the topology used.
pub fn build_levels(h: &Hierarchy, n_ranks: usize) -> (Vec<LevelPattern>, Topology) {
    (
        level_patterns(h, n_ranks),
        crate::workload::paper_topology(n_ranks),
    )
}

/// Markdown/CSV row printing helper: pad-free comma-separated values.
pub fn print_csv_row(cols: &[String]) {
    println!("{}", cols.join(","));
}

/// Empty-pattern guard: levels whose pattern has no traffic contribute 0.
pub fn has_traffic(p: &CommPattern) -> bool {
    p.total_msgs() > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::paper_hierarchy;

    #[test]
    fn per_level_series_have_hierarchy_length() {
        let h = paper_hierarchy(64, 32);
        let (levels, topo) = build_levels(&h, 16);
        let model = paper_model();
        for p in Protocol::ALL {
            assert_eq!(
                per_level_times(&levels, &topo, p, &model).len(),
                h.n_levels()
            );
        }
    }

    #[test]
    fn crossover_math() {
        // a: init 10, slope 1; b: init 0, slope 2 → crossover at 10
        assert_eq!(crossover(10.0, 1.0, 0.0, 2.0), Some(10.0));
        assert_eq!(crossover(10.0, 2.0, 0.0, 1.0), None);
    }

    #[test]
    fn graph_creation_scaling_shapes() {
        // Figure 6's defining property at test scale: the spectrum-like
        // cost grows with process count much faster than the mvapich-like
        // cost on a strong-scaled problem.
        let h = paper_hierarchy(64, 32);
        let model = paper_model();
        let cost = |p: usize, spectrum: bool| {
            let (levels, topo) = build_levels(&h, p);
            graph_creation_total(&levels, &topo, &model, spectrum)
        };
        let spectrum_growth = cost(64, true) / cost(8, true);
        let mvapich_growth = cost(64, false) / cost(8, false);
        assert!(
            spectrum_growth > 2.0 * mvapich_growth,
            "spectrum {spectrum_growth}x vs mvapich {mvapich_growth}x"
        );
    }

    #[test]
    fn init_totals_follow_figure_7_ordering() {
        let h = paper_hierarchy(64, 32);
        let (levels, topo) = build_levels(&h, 32);
        let model = paper_model();
        let total = |p: Protocol| {
            per_level_init(&levels, &topo, p, &model)
                .iter()
                .sum::<f64>()
        };
        let std_n = total(Protocol::StandardNeighbor);
        let partial = total(Protocol::PartialNeighbor);
        let full = total(Protocol::FullNeighbor);
        assert!(std_n < full && full < partial, "{std_n} {full} {partial}");
    }

    #[test]
    fn stats_series_match_figures_8_9_shape() {
        let h = paper_hierarchy(64, 32);
        let (levels, topo) = build_levels(&h, 32);
        let st = per_level_stats(&levels, &topo, Protocol::StandardHypre);
        let fu = per_level_stats(&levels, &topo, Protocol::FullNeighbor);
        let peak_std_global = st.iter().map(|s| s.max_global_msgs).max().unwrap();
        let peak_opt_global = fu.iter().map(|s| s.max_global_msgs).max().unwrap();
        let peak_std_local = st.iter().map(|s| s.max_local_msgs).max().unwrap();
        let peak_opt_local = fu.iter().map(|s| s.max_local_msgs).max().unwrap();
        assert!(peak_opt_global < peak_std_global);
        assert!(peak_opt_local > peak_std_local);
    }

    #[test]
    fn best_of_never_exceeds_plain_standard() {
        let h = paper_hierarchy(64, 32);
        let (levels, topo) = build_levels(&h, 32);
        let model = paper_model();
        let std_total = plain_total(&levels, &topo, Protocol::StandardHypre, &model);
        let best = best_of_total(&levels, &topo, Protocol::FullNeighbor, &model);
        assert!(best <= std_total + 1e-12);
    }
}
