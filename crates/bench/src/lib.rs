//! Figure-regeneration harness.
//!
//! One binary per table/figure of the paper (see DESIGN.md §4); this
//! library holds the shared workload construction and evaluation helpers.
//! All binaries print CSV-style rows plus a comparison against the paper's
//! reported numbers, and are collected in EXPERIMENTS.md.

pub mod figures;
pub mod workload;

pub use workload::{
    level_patterns, paper_hierarchy, paper_topology, LevelPattern, PAPER_NX, PAPER_NY, PAPER_PPN,
    PAPER_ROWS,
};
