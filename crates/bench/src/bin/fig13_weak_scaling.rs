//! Figure 13: weak scaling of the total SpMV communication over every
//! level of the hierarchy, 256 rows per process (524 288 rows at 2048
//! processes), 32–2048 processes.
//!
//! Paper reference points: at 2048 cores, locality-aware aggregation gives
//! 1.96× and duplicate removal a further 0.21×.

use bench_suite::figures::{best_of_total, build_levels, paper_model, plain_total};
use bench_suite::workload::{paper_hierarchy, weak_scaling_grid};
use mpi_advance::Protocol;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let procs: Vec<usize> = if small {
        vec![8, 16, 32]
    } else {
        vec![32, 64, 128, 256, 512, 1024, 2048]
    };
    let model = paper_model();

    println!("figure,procs,rows,standard_hypre_s,standard_neighbor_s,partial_s,full_s,partial_speedup,full_speedup");
    let mut last = (0.0, 0.0, 0.0);
    for &p in &procs {
        let (nx, ny) = weak_scaling_grid(p);
        eprintln!("# {p} procs: building hierarchy for {nx}x{ny}...");
        let h = paper_hierarchy(nx, ny);
        let (levels, topo) = build_levels(&h, p);
        let std_h = plain_total(&levels, &topo, Protocol::StandardHypre, &model);
        let std_n = plain_total(&levels, &topo, Protocol::StandardNeighbor, &model);
        let partial = best_of_total(&levels, &topo, Protocol::PartialNeighbor, &model);
        let full = best_of_total(&levels, &topo, Protocol::FullNeighbor, &model);
        last = (std_h, partial, full);
        println!(
            "fig13,{p},{},{std_h:.7},{std_n:.7},{partial:.7},{full:.7},{:.2},{:.2}",
            nx * ny,
            std_h / partial,
            std_h / full
        );
    }
    let (std_h, partial, full) = last;
    println!(
        "# paper at 2048: partial 1.96x, full adds +0.21x; measured: partial {:.2}x, full {:.2}x",
        std_h / partial,
        std_h / full
    );
    assert!(full <= partial + 1e-12 && partial <= std_h);
}
