//! Figure 7: initialization + per-iteration cost over iteration counts at
//! 2048 processes; crossover iterations against Standard Hypre.
//!
//! Paper reference points: the partially optimized implementation pays off
//! after ≈ 40 iterations, the fully optimized one after ≈ 22; standard
//! neighbor init is minimal; partial init exceeds full init (partial wraps
//! full).

use bench_suite::figures::{build_levels, crossover, paper_model, per_level_init, per_level_times};
use bench_suite::workload::{paper_hierarchy, PAPER_NX, PAPER_NY};
use mpi_advance::Protocol;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let (nx, ny, p) = if small {
        (128, 64, 64)
    } else {
        (PAPER_NX, PAPER_NY, 2048)
    };

    eprintln!("# building hierarchy for {}x{}...", nx, ny);
    let h = paper_hierarchy(nx, ny);
    let (levels, topo) = build_levels(&h, p);
    let model = paper_model();

    // totals over the hierarchy: init once per level, Start+Wait per level
    // per iteration
    let mut init = Vec::new();
    let mut per_iter = Vec::new();
    for proto in Protocol::ALL {
        init.push(
            per_level_init(&levels, &topo, proto, &model)
                .iter()
                .sum::<f64>(),
        );
        per_iter.push(
            per_level_times(&levels, &topo, proto, &model)
                .iter()
                .sum::<f64>(),
        );
    }

    println!("figure,iterations,standard_hypre_s,standard_neighbor_s,partial_s,full_s");
    for iters in (0..=60).step_by(5) {
        let cost: Vec<String> = (0..4)
            .map(|i| format!("{:.6}", init[i] + iters as f64 * per_iter[i]))
            .collect();
        println!("fig7,{iters},{}", cost.join(","));
    }

    let x_partial = crossover(init[2], per_iter[2], init[0], per_iter[0]);
    let x_full = crossover(init[3], per_iter[3], init[0], per_iter[0]);
    println!(
        "# init costs (s): {:?}",
        init.iter().map(|v| format!("{v:.5}")).collect::<Vec<_>>()
    );
    println!(
        "# per-iter costs (s): {:?}",
        per_iter
            .iter()
            .map(|v| format!("{v:.6}"))
            .collect::<Vec<_>>()
    );
    println!(
        "# crossover vs Standard Hypre: partial = {} iters (paper: 40), full = {} iters (paper: 22)",
        x_partial.map_or("never".into(), |v| format!("{v:.0}")),
        x_full.map_or("never".into(), |v| format!("{v:.0}")),
    );
    assert!(
        init[1] < init[3] && init[3] < init[2],
        "expected standard < full < partial init ordering"
    );
}
