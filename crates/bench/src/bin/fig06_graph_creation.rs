//! Figure 6: cost of calling `MPI_Dist_graph_create_adjacent` once per
//! level of the AMG hierarchy, strong-scaled 524 288-row rotated
//! anisotropic diffusion, Spectrum-like vs MVAPICH-like implementations.
//!
//! Paper reference points: MVAPICH is 8.6× faster than Spectrum at 2048
//! cores; Spectrum's cost grows toward ~0.07 s while MVAPICH stays below
//! ~0.02 s and strong-scales.

use bench_suite::figures::{build_levels, graph_creation_total, paper_model};
use bench_suite::workload::{paper_hierarchy, PAPER_NX, PAPER_NY};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let (nx, ny, procs): (usize, usize, &[usize]) = if small {
        (128, 64, &[2, 8, 16, 32, 64])
    } else {
        (PAPER_NX, PAPER_NY, &[2, 256, 512, 1024, 2048])
    };

    eprintln!(
        "# building hierarchy for {}x{} ({} rows)...",
        nx,
        ny,
        nx * ny
    );
    let h = paper_hierarchy(nx, ny);
    eprintln!("# {} levels: {:?}", h.n_levels(), h.level_sizes());
    let model = paper_model();

    println!("figure,procs,spectrum_like_s,mvapich_like_s,ratio");
    let mut last_ratio = 0.0;
    for &p in procs {
        let (levels, topo) = build_levels(&h, p);
        let spectrum = graph_creation_total(&levels, &topo, &model, true);
        let mvapich = graph_creation_total(&levels, &topo, &model, false);
        last_ratio = spectrum / mvapich;
        println!("fig6,{p},{spectrum:.6},{mvapich:.6},{last_ratio:.2}");
    }
    println!("# paper: spectrum ≈ 0.069 s and mvapich 8.6x faster at 2048 procs");
    println!("# measured: ratio {last_ratio:.1}x at the largest scale");
}
