//! Ablation: round-robin vs load-balanced leader assignment (§3.2's
//! "load balancing while determining which intra-region process
//! communicates with each region").
//!
//! Reports, per AMG level at paper scale, the max per-rank inter-region
//! volume under both strategies and the modeled iteration time — showing
//! what the amortized load-balancing work inside
//! `MPI_Neighbor_alltoallv_init` buys.

use bench_suite::figures::paper_model;
use bench_suite::workload::{level_patterns, paper_hierarchy, paper_topology, PAPER_NX, PAPER_NY};
use mpi_advance::agg::{AssignStrategy, Plan};
use mpi_advance::analytic::iteration_time;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let (nx, ny, p) = if small {
        (128, 64, 64)
    } else {
        (PAPER_NX, PAPER_NY, 2048)
    };

    eprintln!("# building hierarchy for {}x{}...", nx, ny);
    let h = paper_hierarchy(nx, ny);
    let levels = level_patterns(&h, p);
    let topo = paper_topology(p);
    let model = paper_model();

    let max_vol = |plan: &Plan| {
        let mut v = vec![0usize; p];
        for m in &plan.g_step {
            v[m.src] += m.n_values();
        }
        v.into_iter().max().unwrap_or(0)
    };

    println!("ablation,level,rr_max_vol,lb_max_vol,rr_time_s,lb_time_s");
    let mut rr_total = 0.0;
    let mut lb_total = 0.0;
    for lp in &levels {
        if lp.pattern.total_msgs() == 0 {
            continue;
        }
        let rr = Plan::aggregated(&lp.pattern, &topo, true, AssignStrategy::RoundRobin);
        let lb = Plan::aggregated(&lp.pattern, &topo, true, AssignStrategy::LoadBalanced);
        let t_rr = iteration_time(&rr, &topo, &model, true).total;
        let t_lb = iteration_time(&lb, &topo, &model, true).total;
        rr_total += t_rr;
        lb_total += t_lb;
        println!(
            "assign,{},{},{},{:.7},{:.7}",
            lp.level,
            max_vol(&rr),
            max_vol(&lb),
            t_rr,
            t_lb
        );
    }
    println!(
        "# totals: round-robin {rr_total:.6}s, load-balanced {lb_total:.6}s ({:.1}% better)",
        100.0 * (rr_total - lb_total) / rr_total
    );
    assert!(lb_total <= rr_total * 1.001, "load balancing must not lose");
}
