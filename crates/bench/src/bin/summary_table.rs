//! Headline results table: the paper's abstract/§4 claims side by side with
//! the reproduction's measurements at the paper's scale.

use bench_suite::figures::{
    best_of_total, build_levels, crossover, paper_model, per_level_init, per_level_stats,
    per_level_times, plain_total,
};
use bench_suite::workload::{paper_hierarchy, weak_scaling_grid, PAPER_NX, PAPER_NY};
use mpi_advance::stats::VALUE_BYTES;
use mpi_advance::Protocol;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let (nx, ny, p) = if small {
        (128, 64, 64)
    } else {
        (PAPER_NX, PAPER_NY, 2048)
    };
    let model = paper_model();

    eprintln!("# building strong-scaled hierarchy {}x{}...", nx, ny);
    let h = paper_hierarchy(nx, ny);
    let (levels, topo) = build_levels(&h, p);

    // strong-scaling speedups at the largest scale
    let std_total = plain_total(&levels, &topo, Protocol::StandardHypre, &model);
    let partial = best_of_total(&levels, &topo, Protocol::PartialNeighbor, &model);
    let full = best_of_total(&levels, &topo, Protocol::FullNeighbor, &model);

    // crossovers (Figure 7)
    let init: Vec<f64> = Protocol::ALL
        .iter()
        .map(|&pr| per_level_init(&levels, &topo, pr, &model).iter().sum())
        .collect();
    let iter: Vec<f64> = Protocol::ALL
        .iter()
        .map(|&pr| per_level_times(&levels, &topo, pr, &model).iter().sum())
        .collect();
    let x_partial = crossover(init[2], iter[2], init[0], iter[0]);
    let x_full = crossover(init[3], iter[3], init[0], iter[0]);

    // dedup reduction (Figure 10)
    let pa = per_level_stats(&levels, &topo, Protocol::PartialNeighbor);
    let fu = per_level_stats(&levels, &topo, Protocol::FullNeighbor);
    let best_cut = pa
        .iter()
        .zip(&fu)
        .filter(|(a, _)| a.max_global_bytes > 0)
        .map(|(a, b)| {
            100.0 * (a.max_global_bytes - b.max_global_bytes) as f64 / a.max_global_bytes as f64
        })
        .fold(0.0f64, f64::max);
    let _ = VALUE_BYTES;

    // weak scaling at the largest scale
    let (wnx, wny) = weak_scaling_grid(p);
    eprintln!("# building weak-scaled hierarchy {}x{}...", wnx, wny);
    let hw = paper_hierarchy(wnx, wny);
    let (wlevels, wtopo) = build_levels(&hw, p);
    let w_std = plain_total(&wlevels, &wtopo, Protocol::StandardHypre, &model);
    let w_partial = best_of_total(&wlevels, &wtopo, Protocol::PartialNeighbor, &model);
    let w_full = best_of_total(&wlevels, &wtopo, Protocol::FullNeighbor, &model);

    println!("claim,paper,measured");
    println!(
        "strong scaling partial speedup @{p},1.32x,{:.2}x",
        std_total / partial
    );
    println!(
        "strong scaling full extra speedup @{p},+0.07x,+{:.2}x",
        std_total / full - std_total / partial
    );
    println!(
        "weak scaling partial speedup @{p},1.96x,{:.2}x",
        w_std / w_partial
    );
    println!(
        "weak scaling full extra speedup @{p},+0.21x,+{:.2}x",
        w_std / w_full - w_std / w_partial
    );
    println!(
        "crossover iterations partial,40,{}",
        x_partial.map_or("never".into(), |v| format!("{v:.0}"))
    );
    println!(
        "crossover iterations full,22,{}",
        x_full.map_or("never".into(), |v| format!("{v:.0}"))
    );
    println!("max dedup volume reduction,35%,{best_cut:.0}%");
}
