//! Figure 12: strong scaling of the total SpMV communication over every
//! level of the hierarchy, 524 288-row system, 32–2048 processes.
//!
//! The partially/fully optimized series use the standard protocol on any
//! level where it is faster (the paper's per-level selection methodology).
//!
//! Paper reference points: partial achieves 1.32× over standard at 2048
//! processes; full adds another 0.07×.

use bench_suite::figures::{best_of_total, build_levels, paper_model, plain_total};
use bench_suite::workload::{paper_hierarchy, PAPER_NX, PAPER_NY};
use mpi_advance::Protocol;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let (nx, ny, procs): (usize, usize, Vec<usize>) = if small {
        (128, 64, vec![8, 16, 32, 64])
    } else {
        (PAPER_NX, PAPER_NY, vec![32, 64, 128, 256, 512, 1024, 2048])
    };

    eprintln!("# building hierarchy for {}x{}...", nx, ny);
    let h = paper_hierarchy(nx, ny);
    let model = paper_model();

    println!("figure,procs,standard_hypre_s,standard_neighbor_s,partial_s,full_s,partial_speedup,full_speedup");
    let mut last = (0.0, 0.0, 0.0);
    for &p in &procs {
        let (levels, topo) = build_levels(&h, p);
        let std_h = plain_total(&levels, &topo, Protocol::StandardHypre, &model);
        let std_n = plain_total(&levels, &topo, Protocol::StandardNeighbor, &model);
        let partial = best_of_total(&levels, &topo, Protocol::PartialNeighbor, &model);
        let full = best_of_total(&levels, &topo, Protocol::FullNeighbor, &model);
        let sp = std_h / partial;
        let sf = std_h / full;
        last = (std_h, partial, full);
        println!("fig12,{p},{std_h:.7},{std_n:.7},{partial:.7},{full:.7},{sp:.2},{sf:.2}");
    }
    let (std_h, partial, full) = last;
    println!(
        "# paper at 2048: partial speedup 1.32x, full adds +0.07x; measured: partial {:.2}x, full {:.2}x",
        std_h / partial,
        std_h / full
    );
    assert!(partial <= std_h && full <= partial + 1e-12);
}
