//! Ablation: plain vs partitioned locality-aware aggregation (§5's
//! "partitioning locality-aware messages").
//!
//! Compares, per AMG level at paper scale, the modeled iteration time of
//! the fully optimized collective against its partitioned variant, where
//! inter-region injection overlaps the intra-region staging step.

use bench_suite::figures::paper_model;
use bench_suite::workload::{level_patterns, paper_hierarchy, paper_topology, PAPER_NX, PAPER_NY};
use mpi_advance::analytic::{iteration_time, iteration_time_partitioned};
use mpi_advance::Protocol;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let (nx, ny, p) = if small {
        (128, 64, 64)
    } else {
        (PAPER_NX, PAPER_NY, 2048)
    };

    eprintln!("# building hierarchy for {}x{}...", nx, ny);
    let h = paper_hierarchy(nx, ny);
    let levels = level_patterns(&h, p);
    let topo = paper_topology(p);
    let model = paper_model();

    println!("ablation,level,full_s,partitioned_s,gain_pct");
    let mut totals = (0.0f64, 0.0f64);
    for lp in &levels {
        if lp.pattern.total_msgs() == 0 {
            continue;
        }
        let plan = Protocol::FullNeighbor.plan(&lp.pattern, &topo);
        let plain = iteration_time(&plan, &topo, &model, true).total;
        let parted = iteration_time_partitioned(&plan, &topo, &model).total;
        totals.0 += plain;
        totals.1 += parted;
        println!(
            "partitioned,{},{:.7},{:.7},{:.1}",
            lp.level,
            plain,
            parted,
            100.0 * (plain - parted) / plain
        );
    }
    println!(
        "# totals: plain {:.6}s, partitioned {:.6}s ({:.1}% of the s-step hidden)",
        totals.0,
        totals.1,
        100.0 * (totals.0 - totals.1) / totals.0
    );
    assert!(
        totals.1 <= totals.0 + 1e-12,
        "overlap cannot make the model slower"
    );
}
