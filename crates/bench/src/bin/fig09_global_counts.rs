//! Figure 9: per-level max inter-region (global) message counts, standard
//! vs optimized, SpMV on each level at 2048 processes.
//!
//! Paper reference: the optimized collective reduces inter-region counts
//! roughly as much as it increased intra-region counts (peaks ~60 → ~10).

use bench_suite::figures::{build_levels, per_level_stats};
use bench_suite::workload::{paper_hierarchy, PAPER_NX, PAPER_NY};
use mpi_advance::Protocol;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let (nx, ny, p) = if small {
        (128, 64, 64)
    } else {
        (PAPER_NX, PAPER_NY, 2048)
    };

    eprintln!("# building hierarchy for {}x{}...", nx, ny);
    let h = paper_hierarchy(nx, ny);
    let (levels, topo) = build_levels(&h, p);

    let std_stats = per_level_stats(&levels, &topo, Protocol::StandardHypre);
    let opt_stats = per_level_stats(&levels, &topo, Protocol::FullNeighbor);

    println!("figure,level,rows,standard_global,optimized_global");
    for (lp, (s, o)) in levels.iter().zip(std_stats.iter().zip(&opt_stats)) {
        println!(
            "fig9,{},{},{},{}",
            lp.level, lp.n_rows, s.max_global_msgs, o.max_global_msgs
        );
    }
    let peak_std = std_stats.iter().map(|s| s.max_global_msgs).max().unwrap();
    let peak_opt = opt_stats.iter().map(|s| s.max_global_msgs).max().unwrap();
    println!("# paper: optimization reduces the peak inter-region count several-fold");
    println!("# measured peaks: standard {peak_std}, optimized {peak_opt}");
    assert!(
        peak_opt < peak_std,
        "aggregation must reduce global messages"
    );
}
