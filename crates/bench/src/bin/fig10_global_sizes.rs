//! Figure 10: per-level max inter-region message volume per process,
//! partially vs fully optimized, SpMV on each level at 2048 processes.
//!
//! Paper reference: deduplication reduces the max global volume by up to
//! 35% (level 4 of the hierarchy).

use bench_suite::figures::{build_levels, per_level_stats};
use bench_suite::workload::{paper_hierarchy, PAPER_NX, PAPER_NY};
use mpi_advance::stats::VALUE_BYTES;
use mpi_advance::Protocol;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let (nx, ny, p) = if small {
        (128, 64, 64)
    } else {
        (PAPER_NX, PAPER_NY, 2048)
    };

    eprintln!("# building hierarchy for {}x{}...", nx, ny);
    let h = paper_hierarchy(nx, ny);
    let (levels, topo) = build_levels(&h, p);

    let partial = per_level_stats(&levels, &topo, Protocol::PartialNeighbor);
    let full = per_level_stats(&levels, &topo, Protocol::FullNeighbor);

    println!("figure,level,rows,partial_values,full_values,reduction_pct");
    let mut best_cut = 0.0f64;
    let mut best_level = 0;
    for (lp, (pa, fu)) in levels.iter().zip(partial.iter().zip(&full)) {
        let pv = pa.max_global_bytes / VALUE_BYTES;
        let fv = fu.max_global_bytes / VALUE_BYTES;
        let cut = if pv > 0 {
            100.0 * (pv - fv) as f64 / pv as f64
        } else {
            0.0
        };
        if cut > best_cut {
            best_cut = cut;
            best_level = lp.level;
        }
        println!("fig10,{},{},{pv},{fv},{cut:.1}", lp.level, lp.n_rows);
    }
    println!("# paper: up to 35% reduction of the max global volume (at level 4)");
    println!("# measured: max reduction {best_cut:.1}% at level {best_level}");
    assert!(best_cut > 0.0, "dedup must reduce volume on some level");
}
