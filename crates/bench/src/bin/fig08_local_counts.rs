//! Figure 8: per-level max intra-region (local) message counts, standard
//! vs optimized, SpMV on each level at 2048 processes.
//!
//! Paper reference: optimized local counts rise to ~60 on the middle
//! levels while standard stays below ~10.

use bench_suite::figures::{build_levels, per_level_stats};
use bench_suite::workload::{paper_hierarchy, PAPER_NX, PAPER_NY};
use mpi_advance::Protocol;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let (nx, ny, p) = if small {
        (128, 64, 64)
    } else {
        (PAPER_NX, PAPER_NY, 2048)
    };

    eprintln!("# building hierarchy for {}x{}...", nx, ny);
    let h = paper_hierarchy(nx, ny);
    let (levels, topo) = build_levels(&h, p);

    let std_stats = per_level_stats(&levels, &topo, Protocol::StandardHypre);
    let opt_stats = per_level_stats(&levels, &topo, Protocol::FullNeighbor);

    println!("figure,level,rows,standard_local,optimized_local");
    for (lp, (s, o)) in levels.iter().zip(std_stats.iter().zip(&opt_stats)) {
        println!(
            "fig8,{},{},{},{}",
            lp.level, lp.n_rows, s.max_local_msgs, o.max_local_msgs
        );
    }
    let max_std = std_stats.iter().map(|s| s.max_local_msgs).max().unwrap();
    let max_opt = opt_stats.iter().map(|s| s.max_local_msgs).max().unwrap();
    println!("# paper: optimized local counts greatly exceed standard (≈60 vs ≈10 at peak)");
    println!("# measured peaks: standard {max_std}, optimized {max_opt}");
    assert!(
        max_opt > max_std,
        "aggregation must increase local messages"
    );
}
