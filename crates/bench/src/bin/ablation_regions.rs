//! Ablation: region granularity — node-level vs socket-level aggregation.
//!
//! The paper uses nodes as regions (16 ranks on one CPU per node). On
//! machines where both sockets of a node are populated, aggregation could
//! also be done per socket (more regions, smaller leaders' fan-in). This
//! ablation compares the two on the Figure 1 SMP machine (2 sockets × 16
//! cores per node).

use bench_suite::figures::paper_model;
use bench_suite::workload::{level_patterns, paper_hierarchy};
use locality::{MachineSpec, RankMap, RegionScheme, Topology};
use mpi_advance::analytic::iteration_time;
use mpi_advance::{PlanStats, Protocol};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let (nx, ny, p) = if small {
        (128, 64, 64)
    } else {
        (512, 256, 1024)
    };

    eprintln!("# building hierarchy for {}x{}...", nx, ny);
    let h = paper_hierarchy(nx, ny);
    let levels = level_patterns(&h, p);
    let machine = MachineSpec::figure1_smp(p.div_ceil(32));
    let map = RankMap::block(machine, p);
    let node_topo = Topology::new(map.clone(), RegionScheme::Node);
    let socket_topo = Topology::new(map, RegionScheme::Socket);
    let model = paper_model();

    println!("ablation,level,node_global_msgs,socket_global_msgs,node_time_s,socket_time_s");
    let mut totals = (0.0f64, 0.0f64);
    for lp in &levels {
        if lp.pattern.total_msgs() == 0 {
            continue;
        }
        let plan_node = Protocol::FullNeighbor.plan(&lp.pattern, &node_topo);
        let plan_socket = Protocol::FullNeighbor.plan(&lp.pattern, &socket_topo);
        let t_node = iteration_time(&plan_node, &node_topo, &model, true).total;
        let t_socket = iteration_time(&plan_socket, &socket_topo, &model, true).total;
        totals.0 += t_node;
        totals.1 += t_socket;
        println!(
            "regions,{},{},{},{:.7},{:.7}",
            lp.level,
            PlanStats::of(&plan_node).max_global_msgs,
            PlanStats::of(&plan_socket).max_global_msgs,
            t_node,
            t_socket
        );
    }
    println!(
        "# totals: node regions {:.6}s, socket regions {:.6}s",
        totals.0, totals.1
    );
    println!("# socket regions double the region count: more inter-region messages,");
    println!("# but each leader funnels half as much intra-region traffic.");
}
