//! Figure 11: modeled Start+Wait cost of the SpMV communication on each
//! level of the hierarchy at 2048 processes, all four protocols.
//!
//! Paper reference points: fine levels favor standard communication
//! (aggregation overhead dominates); optimized collectives win near the
//! middle of the hierarchy where message counts peak; the coarsest levels
//! involve so few processes that all protocols converge.

use bench_suite::figures::{build_levels, paper_model, per_level_times};
use bench_suite::workload::{paper_hierarchy, PAPER_NX, PAPER_NY};
use mpi_advance::Protocol;

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let (nx, ny, p) = if small {
        (128, 64, 64)
    } else {
        (PAPER_NX, PAPER_NY, 2048)
    };

    eprintln!("# building hierarchy for {}x{}...", nx, ny);
    let h = paper_hierarchy(nx, ny);
    let (levels, topo) = build_levels(&h, p);
    let model = paper_model();

    let series: Vec<Vec<f64>> = Protocol::ALL
        .iter()
        .map(|&proto| per_level_times(&levels, &topo, proto, &model))
        .collect();

    println!("figure,level,rows,standard_hypre_s,standard_neighbor_s,partial_s,full_s");
    for (i, lp) in levels.iter().enumerate() {
        println!(
            "fig11,{},{},{:.8},{:.8},{:.8},{:.8}",
            lp.level, lp.n_rows, series[0][i], series[1][i], series[2][i], series[3][i]
        );
    }

    // shape checks mirroring the paper's observations
    let peak_level = (0..levels.len())
        .max_by(|&a, &b| series[0][a].total_cmp(&series[0][b]))
        .unwrap();
    println!("# standard communication peaks at level {peak_level}");
    println!(
        "# at the peak: standard {:.2e}s, partial {:.2e}s, full {:.2e}s",
        series[0][peak_level], series[2][peak_level], series[3][peak_level]
    );
    assert!(
        series[3][peak_level] < series[0][peak_level],
        "optimized collectives must win at the communication-dominated level"
    );
    assert!(
        series[2][0] >= series[0][0],
        "standard should be at least as good as aggregation on the fine level"
    );
}
