//! Multi-tenant solve-service throughput: the `service_32ranks` group
//! pushes the same twenty-four AMG relaxation jobs through one warm
//! [`SolveService`] two ways —
//!
//! * `concurrent_24jobs`: all tenants submitted together and driven in
//!   ONE epoch — the scheduler admits four at a time (an admission
//!   window keeps each park's channel set bounded), registration /
//!   barrier / control-fabric setup happen once, and each rank
//!   interleaves the admitted jobs' retirement (traffic overlap on
//!   top, where cores allow);
//! * `sequential_24jobs`: the no-service workflow — each job submitted
//!   and run in its own epoch on the same warm pool, paying the epoch
//!   dispatch, the registration barrier, and the control fabric
//!   twenty-four times, with zero cross-job overlap.
//!
//! Both sides run the identical solve path (dup'd communicators,
//! futures-driven retirement), so the pair prices exactly what the
//! multi-tenant scheduler amortizes. `scripts/bench_compare --service`
//! pairs the entries and GATES concurrent >= 1.2x sequential jobs/sec:
//! if batching tenants into one epoch ever stops paying for the
//! scheduler's bookkeeping, the regression fails CI.

use std::sync::Arc;

use amg::JacobiJob;
use bench_suite::workload::{paper_hierarchy, paper_topology};
use criterion::{BenchmarkId, Criterion};
use service::{JobLogic, JobSpec, SolveService};

const RANKS: usize = 32;
const JOBS: usize = 24;
const SWEEPS: usize = 1;

/// The tenants: one shared hierarchy, distinct right-hand sides —
/// independent solves sized so a single job leaves the epoch's fixed
/// costs visible (the service's amortization target), not buried under
/// compute.
fn tenant_jobs() -> Vec<Arc<JacobiJob>> {
    let h = paper_hierarchy(32, 16);
    let n = h.levels[0].a.n_rows();
    (0..JOBS)
        .map(|j| {
            let seed = 0.11 + 0.17 * j as f64;
            let rhs: Vec<f64> = (0..n).map(|i| (seed * i as f64).cos()).collect();
            Arc::new(JacobiJob::relaxation(&h, RANKS, &rhs, 0.8, SWEEPS))
        })
        .collect()
}

fn submit(svc: &mut SolveService, k: usize, job: &Arc<JacobiJob>) {
    svc.submit(JobSpec::new(
        format!("tenant-{k}"),
        paper_topology(RANKS),
        Arc::clone(job) as Arc<dyn JobLogic>,
    ));
}

fn bench_service(c: &mut Criterion) {
    let jobs = tenant_jobs();
    let mut group = c.benchmark_group("service_32ranks");
    group.sample_size(10);

    let mut batched = SolveService::new(RANKS).max_concurrent(4);
    group.bench_function(BenchmarkId::from_parameter("concurrent_24jobs"), |b| {
        b.iter(|| {
            for (k, j) in jobs.iter().enumerate() {
                submit(&mut batched, k, j);
            }
            let reports = batched.run_pending();
            assert!(reports.iter().all(|r| r.outcome.is_ok()));
            reports.len()
        })
    });
    drop(batched);

    let mut one_at_a_time = SolveService::new(RANKS);
    group.bench_function(BenchmarkId::from_parameter("sequential_24jobs"), |b| {
        b.iter(|| {
            let mut done = 0;
            for (k, j) in jobs.iter().enumerate() {
                submit(&mut one_at_a_time, k, j);
                let reports = one_at_a_time.run_pending();
                assert!(reports.iter().all(|r| r.outcome.is_ok()));
                done += reports.len();
            }
            done
        })
    });
    group.finish();
}

criterion::criterion_group!(benches, bench_service);
criterion::criterion_main!(benches);
