//! Planner benches: plan construction cost for each protocol, the raw
//! routing-derivation cost (single-sweep `build_all` vs the per-rank
//! reference path), plus the round-robin vs load-balanced
//! leader-assignment ablation called out in DESIGN.md.

use bench_suite::workload::{level_patterns, paper_hierarchy, paper_topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpi_advance::agg::{AssignStrategy, Plan};
use mpi_advance::{CommPattern, Protocol, RankRouting};

fn busiest_pattern(ranks: usize) -> CommPattern {
    let h = paper_hierarchy(256, 128);
    level_patterns(&h, ranks)
        .into_iter()
        .max_by_key(|lp| lp.pattern.total_msgs())
        .unwrap()
        .pattern
}

fn bench_plan_build(c: &mut Criterion) {
    let ranks = 256;
    let pattern = busiest_pattern(ranks);
    let topo = paper_topology(ranks);
    let mut group = c.benchmark_group("plan_build_256ranks");
    for protocol in Protocol::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol.label().replace(' ', "_")),
            &protocol,
            |b, &p| b.iter(|| p.plan(&pattern, &topo).global_msgs()),
        );
    }
    group.finish();
}

/// Uncached routing construction — the neighbor_init_* groups measure
/// amortized per-world init through the builder's caches; this group pins
/// the raw derivation cost so a planner/routing regression cannot hide
/// behind them.
fn bench_routing_build(c: &mut Criterion) {
    let ranks = 256;
    let pattern = busiest_pattern(ranks);
    let topo = paper_topology(ranks);
    let plan = Protocol::FullNeighbor.plan(&pattern, &topo);
    let mut group = c.benchmark_group("routing_build_256ranks");
    group.sample_size(10);
    group.bench_function("build_all_sweep", |b| {
        b.iter(|| RankRouting::build_all(&pattern, &plan, 0).len())
    });
    group.bench_function("per_rank_reference", |b| {
        b.iter(|| {
            (0..ranks)
                .map(|me| RankRouting::build(&pattern, &plan, me, 0).g_sends.len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_assign_ablation(c: &mut Criterion) {
    let ranks = 256;
    let pattern = busiest_pattern(ranks);
    let topo = paper_topology(ranks);
    let mut group = c.benchmark_group("leader_assignment_ablation");
    for (name, strategy) in [
        ("round_robin", AssignStrategy::RoundRobin),
        ("load_balanced", AssignStrategy::LoadBalanced),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| Plan::aggregated(&pattern, &topo, true, strategy).global_values())
        });
    }
    group.finish();

    // report the balance quality difference once (not timed)
    let max_vol = |s: AssignStrategy| {
        let plan = Plan::aggregated(&pattern, &topo, true, s);
        let mut v = vec![0usize; ranks];
        for m in &plan.g_step {
            v[m.src] += m.n_values();
        }
        v.into_iter().max().unwrap_or(0)
    };
    eprintln!(
        "# ablation: max per-rank inter-region volume — round-robin {}, load-balanced {}",
        max_vol(AssignStrategy::RoundRobin),
        max_vol(AssignStrategy::LoadBalanced)
    );
}

criterion_group!(
    benches,
    bench_plan_build,
    bench_routing_build,
    bench_assign_ablation
);
criterion_main!(benches);
