//! Thread-vs-process transport cost: the `steady_state_8proc` group runs
//! the same steady-state workload — 100 `start_wait` iterations of the
//! busiest AMG-level pattern at 8 ranks — twice per backend:
//!
//! * `process_<backend>`: ranks are **real OS processes** on the
//!   cross-process shared-memory fabric ([`World::spawn_processes`]).
//!   This binary re-execs itself once per worker rank; workers loop in
//!   [`ProcWorld::serve`] over a fixed job table while rank 0 drives one
//!   [`ProcWorld::epoch_job`] per criterion iteration, so the measured
//!   cost is the epoch protocol plus the exchange itself — no process
//!   spawning on the hot path.
//! * `thread_<backend>`: the identical body on one warm in-process pool
//!   ([`World::pool`]), the same shape as the protocols bench's
//!   `steady_state_32ranks` group.
//! * `sock_<backend>`: the identical body on a warm pool over the socket
//!   fabric's loopback mesh ([`World::pool_sock`]) — ranks stay threads,
//!   but every message crosses a real stream socket with framing,
//!   sequencing, acks, and heartbeats. The delta against `thread_` prices
//!   the wire protocol itself, with no process-management noise.
//!
//! `scripts/bench_compare` pairs the sides and REPORTS the
//! process/thread and sock/thread ratios without gating them — crossing
//! real address spaces or a socket is allowed to cost more than
//! in-process handoff; the ratios are tracked, not enforced. Run
//! `make bench-transport` for the paired report.
//!
//! SPMD determinism: every process (driver and re-execed workers) builds
//! the same collectives and forces their resolution — including the tag
//! lease from the process-global tag space — *before* the world spawns,
//! so all ranks agree on every tag base without sharing memory. The
//! driver's extra thread-pool benches reuse the already-resolved
//! builders, so they cannot skew its lease order.

use bench_suite::workload::{level_patterns, paper_hierarchy};
use criterion::{BenchmarkId, Criterion};
use locality::Topology;
use mpi_advance::{CommPattern, NeighborAlltoallv, Protocol};
use mpisim::{ProcWorld, RankCtx, World};

/// One entry of the workers' serve-job table (borrows the collectives).
type Job<'a> = Box<dyn Fn(&mut RankCtx) + 'a>;

const RANKS: usize = 8;
const PPN: usize = 4;
/// Iterations per epoch/sample, matching the protocols bench's pooled
/// steady-state group: enough to make epoch dispatch negligible against
/// transport.
const STEADY_ITERS: usize = 100;

/// The level with the most messages at 8 ranks — the same
/// communication-dominated shape the protocols bench measures at 32.
fn busiest_pattern() -> CommPattern {
    let h = paper_hierarchy(128, 64);
    level_patterns(&h, RANKS)
        .into_iter()
        .max_by_key(|lp| lp.pattern.total_msgs())
        .expect("hierarchy has levels")
        .pattern
}

/// The two ends of the paper's protocol spectrum: the Hypre baseline and
/// the fully optimized neighborhood collective. Two backends keep the
/// 8-process fleet's wall clock in check; the full sweep lives in the
/// protocols bench.
fn backends() -> Vec<(String, Protocol)> {
    [Protocol::StandardHypre, Protocol::FullNeighbor]
        .into_iter()
        .map(|p| (p.label().replace(' ', "_"), p))
        .collect()
}

/// One steady-state sample: init once, then `STEADY_ITERS` exchanges.
/// Identical for worker serve jobs, driver epochs, and the thread pool.
fn steady_body(coll: &NeighborAlltoallv, ctx: &mut RankCtx) -> f64 {
    let comm = ctx.comm_world();
    let mut nb = coll.init(ctx, &comm);
    let input: Vec<f64> = nb.input_index().iter().map(|&i| i as f64).collect();
    let mut output = vec![0.0; nb.output_index().len()];
    for _ in 0..STEADY_ITERS {
        nb.start_wait(ctx, &input, &mut output);
    }
    output.first().copied().unwrap_or(0.0)
}

fn bench_transport(c: &mut Criterion, world: &ProcWorld, colls: &[(String, NeighborAlltoallv)]) {
    let mut group = c.benchmark_group("steady_state_8proc");
    group.sample_size(10);

    for (job, (label, coll)) in colls.iter().enumerate() {
        group.bench_function(
            BenchmarkId::from_parameter(format!("process_{label}")),
            |b| b.iter(|| world.epoch_job(job, |ctx| steady_body(coll, ctx))),
        );
    }

    let pool = World::pool(RANKS);
    for (label, coll) in colls {
        group.bench_function(
            BenchmarkId::from_parameter(format!("thread_{label}")),
            |b| b.iter(|| pool.run(|ctx| steady_body(coll, ctx))),
        );
    }
    drop(pool);

    let sock_pool = World::pool_sock(RANKS);
    for (label, coll) in colls {
        group.bench_function(BenchmarkId::from_parameter(format!("sock_{label}")), |b| {
            b.iter(|| sock_pool.run(|ctx| steady_body(coll, ctx)))
        });
    }
    group.finish();
}

fn main() {
    // identical deterministic setup in every process, BEFORE the world
    // spawns: plan() resolves each builder — leasing its tag base from
    // this process's fresh tag space — so driver and workers carve the
    // same namespaces in the same order
    let pattern = busiest_pattern();
    let topo = Topology::block_nodes(RANKS, PPN);
    let colls: Vec<(String, NeighborAlltoallv)> = backends()
        .into_iter()
        .map(|(label, p)| {
            let coll = NeighborAlltoallv::new(&pattern, &topo).protocol(p);
            coll.plan();
            (label, coll)
        })
        .collect();

    let world = World::spawn_processes(RANKS);
    if world.rank() != 0 {
        // worker: serve the job table until rank 0's stop command, then
        // drop the world (which exits the process)
        let jobs: Vec<Job<'_>> = colls
            .iter()
            .map(|(_, coll)| {
                Box::new(move |ctx: &mut RankCtx| {
                    steady_body(coll, ctx);
                }) as Job<'_>
            })
            .collect();
        let table: Vec<&dyn Fn(&mut RankCtx)> = jobs.iter().map(|j| j.as_ref()).collect();
        world.serve(&table);
        drop(world);
        return;
    }

    // driver: rank 0 runs criterion (honoring --test smoke mode and name
    // filters) and stops the worker fleet when the world drops
    let mut c = Criterion::default();
    bench_transport(&mut c, &world, &colls);
    c.finalize();
}
