//! Substrate kernel benches: SpMV, SpGEMM, AMG setup, PMIS coarsening.

use amg::{Hierarchy, HierarchyOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use sparse::gen::diffusion::paper_problem;
use sparse::spgemm::rap;
use sparse::vector::random_vec;

fn bench_spmv(c: &mut Criterion) {
    let a = paper_problem(256, 128);
    let x = random_vec(a.n_cols(), 1);
    let mut y = vec![0.0; a.n_rows()];
    c.bench_function("spmv_32k_rows", |b| b.iter(|| a.spmv_into(&x, &mut y)));
}

fn bench_rap(c: &mut Criterion) {
    let a = paper_problem(128, 64);
    let s = amg::strength_matrix(&a, 0.25);
    let cf = amg::pmis(&s, 0);
    let (p, _) = amg::direct_interpolation(&a, &s, &cf);
    c.bench_function("galerkin_rap_8k_rows", |b| b.iter(|| rap(&a, &p).nnz()));
}

fn bench_pmis(c: &mut Criterion) {
    let a = paper_problem(128, 64);
    let s = amg::strength_matrix(&a, 0.25);
    c.bench_function("pmis_8k_rows", |b| b.iter(|| amg::pmis(&s, 0).len()));
}

fn bench_hierarchy_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("amg_setup");
    group.sample_size(10);
    group.bench_function("setup_8k_rows", |b| {
        b.iter(|| Hierarchy::setup(paper_problem(128, 64), HierarchyOptions::default()).n_levels())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spmv,
    bench_rap,
    bench_pmis,
    bench_hierarchy_setup
);
criterion_main!(benches);
