//! Wall-clock criterion benches: real execution of the four protocols on
//! the thread-backed simulator at small scale (32 ranks, 4 per region).
//!
//! These measure actual data movement through the full persistent
//! start/wait path — complementary to the modeled paper-scale figures.

use bench_suite::workload::{level_patterns, paper_hierarchy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use locality::Topology;
use mpi_advance::{CommPattern, PersistentNeighbor, Protocol};
use mpisim::World;

const RANKS: usize = 32;
const ITERS_PER_SAMPLE: usize = 20;

fn mid_level_pattern() -> CommPattern {
    let h = paper_hierarchy(128, 64);
    let levels = level_patterns(&h, RANKS);
    // pick the level with the most messages — the communication-dominated
    // middle of the hierarchy
    levels
        .into_iter()
        .max_by_key(|lp| lp.pattern.total_msgs())
        .expect("hierarchy has levels")
        .pattern
}

fn bench_protocols(c: &mut Criterion) {
    let pattern = mid_level_pattern();
    let topo = Topology::block_nodes(RANKS, 4);
    let mut group = c.benchmark_group("start_wait_32ranks");
    group.sample_size(10);

    for protocol in Protocol::ALL {
        let plan = protocol.plan(&pattern, &topo);
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol.label().replace(' ', "_")),
            &plan,
            |b, plan| {
                b.iter(|| {
                    World::run(RANKS, |ctx| {
                        let comm = ctx.comm_world();
                        let mut nb =
                            PersistentNeighbor::init(&pattern, plan, ctx, &comm, 100);
                        let input: Vec<f64> =
                            nb.input_index().iter().map(|&i| i as f64).collect();
                        let mut output = vec![0.0; nb.output_index().len()];
                        for _ in 0..ITERS_PER_SAMPLE {
                            nb.start(ctx, &input);
                            nb.wait(ctx, &mut output);
                        }
                        output.first().copied().unwrap_or(0.0)
                    })
                });
            },
        );
    }
    group.finish();
}

fn bench_init(c: &mut Criterion) {
    let pattern = mid_level_pattern();
    let topo = Topology::block_nodes(RANKS, 4);
    let mut group = c.benchmark_group("neighbor_init_32ranks");
    group.sample_size(10);

    for protocol in Protocol::ALL {
        let plan = protocol.plan(&pattern, &topo);
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol.label().replace(' ', "_")),
            &plan,
            |b, plan| {
                b.iter(|| {
                    World::run(RANKS, |ctx| {
                        let comm = ctx.comm_world();
                        let nb = PersistentNeighbor::init(&pattern, plan, ctx, &comm, 100);
                        nb.input_index().len()
                    })
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_protocols, bench_init);
criterion_main!(benches);
