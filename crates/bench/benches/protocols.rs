//! Wall-clock criterion benches: real execution of the four protocols —
//! plus the §5 partitioned backend — on the thread-backed simulator at
//! small scale (32 ranks, 4 per region), all driven through the unified
//! `NeighborAlltoallv` API.
//!
//! These measure actual data movement through the full persistent
//! start/wait path — complementary to the modeled paper-scale figures.
//! Run with `BENCH_JSON=BENCH_protocols.json cargo bench --bench protocols`
//! to refresh the committed baseline.

use bench_suite::workload::{level_patterns, paper_hierarchy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use locality::Topology;
use mpi_advance::{Backend, CommPattern, NeighborAlltoallv, Protocol};
use mpisim::World;

const RANKS: usize = 32;
const ITERS_PER_SAMPLE: usize = 20;

fn mid_level_pattern() -> CommPattern {
    let h = paper_hierarchy(128, 64);
    let levels = level_patterns(&h, RANKS);
    // pick the level with the most messages — the communication-dominated
    // middle of the hierarchy
    levels
        .into_iter()
        .max_by_key(|lp| lp.pattern.total_msgs())
        .expect("hierarchy has levels")
        .pattern
}

fn backends() -> Vec<(String, Backend)> {
    let mut v: Vec<(String, Backend)> = Protocol::ALL
        .into_iter()
        .map(|p| (p.label().replace(' ', "_"), Backend::Protocol(p)))
        .collect();
    v.push((
        "Partitioned_Fully_Optimized".to_string(),
        Backend::Partitioned(Protocol::FullNeighbor),
    ));
    v
}

fn bench_protocols(c: &mut Criterion) {
    let pattern = mid_level_pattern();
    let topo = Topology::block_nodes(RANKS, 4);
    let mut group = c.benchmark_group("start_wait_32ranks");
    group.sample_size(10);

    for (label, backend) in backends() {
        let coll = NeighborAlltoallv::new(&pattern, &topo).backend(backend);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                World::run(RANKS, |ctx| {
                    let comm = ctx.comm_world();
                    let mut nb = coll.init(ctx, &comm);
                    let input: Vec<f64> = nb.input_index().iter().map(|&i| i as f64).collect();
                    let mut output = vec![0.0; nb.output_index().len()];
                    for _ in 0..ITERS_PER_SAMPLE {
                        nb.start_wait(ctx, &input, &mut output);
                    }
                    output.first().copied().unwrap_or(0.0)
                })
            });
        });
    }
    group.finish();
}

fn bench_init(c: &mut Criterion) {
    let pattern = mid_level_pattern();
    let topo = Topology::block_nodes(RANKS, 4);
    let mut group = c.benchmark_group("neighbor_init_32ranks");
    group.sample_size(10);

    for (label, backend) in backends() {
        let coll = NeighborAlltoallv::new(&pattern, &topo).backend(backend);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                World::run(RANKS, |ctx| {
                    let comm = ctx.comm_world();
                    let nb = coll.init(ctx, &comm);
                    nb.input_index().len()
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocols, bench_init);
criterion_main!(benches);
