//! Wall-clock criterion benches: real execution of the four protocols —
//! plus the §5 partitioned backend — on the thread-backed simulator at
//! small scale (32 ranks, 4 per region), all driven through the unified
//! `NeighborAlltoallv` API. A second init group at 256 ranks (a larger
//! hierarchy level) makes planner scaling visible, and the
//! `steady_state_32ranks` group runs 100 iterations per sample on one
//! pooled world so the per-iteration transport cost is measured without
//! thread-spawn noise (allocation-sensitive: see `scripts/bench_compare`),
//! and `batch_init_256ranks` pits one `NeighborBatch::init_all` over 8
//! AMG-level-like patterns against 8 independent per-pattern inits
//! (`scripts/bench_compare` reports the batch/per-pattern speedup), and
//! `overlap_32ranks` pits the completion-driven `wait_any` + per-entry
//! compute lifecycle against `wait_all` + bulk compute on an 8-entry
//! batch (`scripts/bench_compare` gates the overlap side staying no
//! slower), and `tuned_32ranks` pits a cache-warmed `Backend::Tuned`
//! steady state against every static protocol (`scripts/bench_compare`
//! gates the tuned side staying within 5% of the best static).
//!
//! These measure actual data movement through the full persistent
//! start/wait path — complementary to the modeled paper-scale figures.
//! Run with `BENCH_JSON=BENCH_protocols.json cargo bench --bench protocols`
//! to refresh the committed baseline, and `scripts/bench_compare` to check
//! a fresh run against it.

use bench_suite::workload::{level_patterns, paper_hierarchy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use locality::Topology;
use mpi_advance::{Backend, CommPattern, NeighborAlltoallv, NeighborBatch, Protocol, TunePolicy};
use mpisim::World;

const RANKS: usize = 32;
const RANKS_LARGE: usize = 256;
const ITERS_PER_SAMPLE: usize = 20;
/// Iterations per sample in the pooled steady-state group: enough to make
/// init and epoch dispatch negligible against transport.
const STEADY_ITERS: usize = 100;

/// The level with the most messages — the communication-dominated middle
/// of the hierarchy — for `ranks` ranks over an `nx × ny` paper problem.
fn busiest_pattern(nx: usize, ny: usize, ranks: usize) -> CommPattern {
    let h = paper_hierarchy(nx, ny);
    let levels = level_patterns(&h, ranks);
    levels
        .into_iter()
        .max_by_key(|lp| lp.pattern.total_msgs())
        .expect("hierarchy has levels")
        .pattern
}

fn mid_level_pattern() -> CommPattern {
    busiest_pattern(128, 64, RANKS)
}

fn backends() -> Vec<(String, Backend)> {
    let mut v: Vec<(String, Backend)> = Protocol::ALL
        .into_iter()
        .map(|p| (p.label().replace(' ', "_"), Backend::Protocol(p)))
        .collect();
    v.push((
        "Partitioned_Fully_Optimized".to_string(),
        Backend::Partitioned(Protocol::FullNeighbor),
    ));
    v
}

fn bench_protocols(c: &mut Criterion) {
    let pattern = mid_level_pattern();
    let topo = Topology::block_nodes(RANKS, 4);
    let mut group = c.benchmark_group("start_wait_32ranks");
    group.sample_size(10);

    for (label, backend) in backends() {
        let coll = NeighborAlltoallv::new(&pattern, &topo).backend(backend);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                World::run(RANKS, |ctx| {
                    let comm = ctx.comm_world();
                    let mut nb = coll.init(ctx, &comm);
                    let input: Vec<f64> = nb.input_index().iter().map(|&i| i as f64).collect();
                    let mut output = vec![0.0; nb.output_index().len()];
                    for _ in 0..ITERS_PER_SAMPLE {
                        nb.start_wait(ctx, &input, &mut output);
                    }
                    output.first().copied().unwrap_or(0.0)
                })
            });
        });
    }
    group.finish();
}

/// Steady-state transport cost: ≥100 `start_wait` iterations inside one
/// **pooled** world ([`World::pool`]) whose rank threads — and pre-matched
/// channels — stay warm across samples. Unlike `start_wait_32ranks`
/// (which re-spawns all rank threads per sample and amortizes only 20
/// iterations), this group exposes the true per-iteration cost of the
/// zero-copy staging pipeline; allocation or copy regressions on the
/// start/wait path show up here first.
fn bench_steady_state(c: &mut Criterion) {
    let pattern = mid_level_pattern();
    let topo = Topology::block_nodes(RANKS, 4);
    let mut group = c.benchmark_group("steady_state_32ranks");
    group.sample_size(10);
    let pool = World::pool(RANKS);

    for (label, backend) in backends() {
        let coll = NeighborAlltoallv::new(&pattern, &topo).backend(backend);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                pool.run(|ctx| {
                    let comm = ctx.comm_world();
                    let mut nb = coll.init(ctx, &comm);
                    let input: Vec<f64> = nb.input_index().iter().map(|&i| i as f64).collect();
                    let mut output = vec![0.0; nb.output_index().len()];
                    for _ in 0..STEADY_ITERS {
                        nb.start_wait(ctx, &input, &mut output);
                    }
                    output.first().copied().unwrap_or(0.0)
                })
            });
        });
    }
    group.finish();
}

/// Per-world init through the public API, with the builder constructed
/// once per benchmark — the SPMD shape a real program has (one builder
/// for the collective's lifetime, `init` per world/communicator). The
/// builder's plan/routing caches therefore participate: amortizing the
/// planning across inits IS the optimization under test here. The raw
/// (uncached) planner and routing construction costs have their own
/// direct measurements in the planner bench (`plan_build_256ranks`,
/// `routing_build_256ranks`), so a regression in either stays visible.
fn bench_init(c: &mut Criterion) {
    let pattern = mid_level_pattern();
    let topo = Topology::block_nodes(RANKS, 4);
    let mut group = c.benchmark_group("neighbor_init_32ranks");
    // per-sample work is ~1.5 ms; extra samples cost little and stabilize
    // the median against thread-scheduling noise
    group.sample_size(30);

    for (label, backend) in backends() {
        let coll = NeighborAlltoallv::new(&pattern, &topo).backend(backend);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                World::run(RANKS, |ctx| {
                    let comm = ctx.comm_world();
                    let nb = coll.init(ctx, &comm);
                    nb.input_index().len()
                })
            });
        });
    }
    group.finish();
}

/// Init at 256 ranks over a larger hierarchy level: the regime where the
/// planner's asymptotics dominate (the O(ranks × plan) per-rank routing
/// scan this suite used to pay would be 8× worse here than at 32 ranks).
fn bench_init_large(c: &mut Criterion) {
    let pattern = busiest_pattern(256, 128, RANKS_LARGE);
    let topo = Topology::block_nodes(RANKS_LARGE, 16);
    let mut group = c.benchmark_group("neighbor_init_256ranks");
    group.sample_size(15);

    for (label, backend) in backends() {
        let coll = NeighborAlltoallv::new(&pattern, &topo).backend(backend);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                World::run(RANKS_LARGE, |ctx| {
                    let comm = ctx.comm_world();
                    let nb = coll.init(ctx, &comm);
                    nb.input_index().len()
                })
            });
        });
    }
    group.finish();
}

/// The many-live-collectives shape at 256 ranks: N = 8 AMG-level-like
/// patterns initialized per epoch of one **pooled** world, as one
/// `NeighborBatch::init_all` ("batch") vs N independent
/// `NeighborAlltoallv` inits ("per_pattern"). Builders are constructed
/// once per benchmark (the SPMD shape), so the planning/routing caches
/// participate in both sides, and the warm pool keeps thread spawn out of
/// the measurement (like `steady_state_32ranks`); the measured difference
/// is the per-init registration work — one registry pass and one staging
/// arena per rank for the batch, against N sets of per-channel lock round
/// trips and N arenas for the independent inits.
fn bench_batch_init_large(c: &mut Criterion) {
    const N_PATTERNS: usize = 8;
    let h = paper_hierarchy(256, 128);
    let mut levels: Vec<CommPattern> = level_patterns(&h, RANKS_LARGE)
        .into_iter()
        .map(|lp| lp.pattern)
        .filter(|p| p.total_msgs() > 0)
        .collect();
    // busiest first; cycle if the hierarchy has fewer communicating
    // levels than entries (repeat patterns = residual/restriction
    // exchanges sharing a level's structure)
    levels.sort_by_key(|p| std::cmp::Reverse(p.total_msgs()));
    let patterns: Vec<CommPattern> = (0..N_PATTERNS)
        .map(|i| levels[i % levels.len()].clone())
        .collect();
    let topo = Topology::block_nodes(RANKS_LARGE, 16);
    let mut group = c.benchmark_group("batch_init_256ranks");
    group.sample_size(15);
    let pool = World::pool(RANKS_LARGE);

    let mut batch = NeighborBatch::new(&topo);
    for p in &patterns {
        batch = batch.entry(p, Backend::Protocol(Protocol::FullNeighbor));
    }
    group.bench_function(BenchmarkId::from_parameter("batch_8patterns"), |b| {
        b.iter(|| {
            pool.run(|ctx| {
                let comm = ctx.comm_world();
                batch.init_all(ctx, &comm).len()
            })
        })
    });

    let colls: Vec<NeighborAlltoallv> = patterns
        .iter()
        .map(|p| NeighborAlltoallv::new(p, &topo).protocol(Protocol::FullNeighbor))
        .collect();
    group.bench_function(BenchmarkId::from_parameter("per_pattern_8patterns"), |b| {
        b.iter(|| {
            pool.run(|ctx| {
                let comm = ctx.comm_world();
                let reqs: Vec<_> = colls.iter().map(|coll| coll.init(ctx, &comm)).collect();
                reqs.len()
            })
        })
    });
    group.finish();
}

/// `Backend::Tuned` steady state against every static protocol on the
/// same warm pooled world (DESIGN.md §11). A probe run into a private
/// profile directory warms the cache first, so the measured
/// `tuned_steady` entry is the post-decision regime: each init consults
/// the cache, skips the probe phase entirely, and runs the measured
/// winner. `scripts/bench_compare` pairs `tuned_*` against the best
/// `static_*` median and fails if the tuned side is more than 5%
/// slower — the tuner's reason to exist is finding, not fumbling, the
/// fastest protocol on the machine it actually runs on.
fn bench_tuned(c: &mut Criterion) {
    let pattern = mid_level_pattern();
    let topo = Topology::block_nodes(RANKS, 4);
    let mut group = c.benchmark_group("tuned_32ranks");
    // the 5% gate compares two near-identical steady states (the tuned
    // side runs the winner's plain request); 20 samples keep the median
    // gap noise-dominated runs would show under 10 samples out of it
    group.sample_size(20);
    let pool = World::pool(RANKS);

    let dir = std::env::temp_dir().join(format!("mpi-advance-bench-tuned-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // six timed iterations per candidate: the published winner is a
    // median-of-6 call, stable enough on a shared host for the 5% gate
    const PROBES: usize = 24;
    let policy = TunePolicy::default()
        .with_probe_iters(PROBES)
        .with_factor(1.0e12) // admit every protocol: measurement decides
        .with_profile_dir(&dir);

    // warm the profile cache: probe budget plus the deciding iteration,
    // outside the measured region
    let warmer = NeighborAlltoallv::new(&pattern, &topo)
        .backend(Backend::Tuned)
        .tune_policy(policy.clone());
    pool.run(|ctx| {
        let comm = ctx.comm_world();
        let mut nb = warmer.init(ctx, &comm);
        let input: Vec<f64> = nb.input_index().iter().map(|&i| i as f64).collect();
        let mut output = vec![0.0; nb.output_index().len()];
        for _ in 0..PROBES + 1 {
            nb.start_wait(ctx, &input, &mut output);
        }
        assert!(!nb.is_probing(), "warm-up run must reach a decision");
    });

    let tuned = NeighborAlltoallv::new(&pattern, &topo)
        .backend(Backend::Tuned)
        .tune_policy(policy);
    let mut entries: Vec<(String, NeighborAlltoallv)> = vec![("tuned_steady".to_string(), tuned)];
    for p in Protocol::ALL {
        entries.push((
            format!("static_{}", p.label().replace(' ', "_")),
            NeighborAlltoallv::new(&pattern, &topo).protocol(p),
        ));
    }
    for (label, coll) in &entries {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                pool.run(|ctx| {
                    let comm = ctx.comm_world();
                    let mut nb = coll.init(ctx, &comm);
                    let input: Vec<f64> = nb.input_index().iter().map(|&i| i as f64).collect();
                    let mut output = vec![0.0; nb.output_index().len()];
                    for _ in 0..STEADY_ITERS {
                        nb.start_wait(ctx, &input, &mut output);
                    }
                    output.first().copied().unwrap_or(0.0)
                })
            });
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Per-entry "smoothing" stand-in for the overlap group: enough floating
/// point per ghost value that hiding one entry's compute under another
/// entry's in-flight traffic is measurable, little enough that transport
/// still matters.
fn smooth_like(ghost: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for _ in 0..8 {
        for &v in ghost {
            acc = acc.mul_add(0.999_999_88, v);
        }
    }
    acc
}

/// The completion-driven overlap question at 32 ranks: an 8-entry batch of
/// AMG-level-like patterns on one warm pool, each iteration posting every
/// entry with `start_all` and then either retiring entries with `wait_any`
/// and running each entry's compute the moment its traffic lands
/// ("wait_any_8patterns"), or completing everything with `wait_all` first
/// and computing in bulk ("wait_all_8patterns"). Total compute is equal;
/// the measured difference is how much per-entry compute hides the other
/// entries' in-flight traffic. `scripts/bench_compare` pairs the two and
/// fails if the overlap side stops being at least as fast — the
/// completion-driven lifecycle's reason to exist.
fn bench_overlap(c: &mut Criterion) {
    const N_PATTERNS: usize = 8;
    const OVERLAP_ITERS: usize = 20;
    let h = paper_hierarchy(128, 64);
    let mut levels: Vec<CommPattern> = level_patterns(&h, RANKS)
        .into_iter()
        .map(|lp| lp.pattern)
        .filter(|p| p.total_msgs() > 0)
        .collect();
    levels.sort_by_key(|p| std::cmp::Reverse(p.total_msgs()));
    let patterns: Vec<CommPattern> = (0..N_PATTERNS)
        .map(|i| levels[i % levels.len()].clone())
        .collect();
    let topo = Topology::block_nodes(RANKS, 4);
    let mut group = c.benchmark_group("overlap_32ranks");
    group.sample_size(10);
    let pool = World::pool(RANKS);
    let mut batch = NeighborBatch::new(&topo);
    for p in &patterns {
        batch = batch.entry(p, Backend::Protocol(Protocol::FullNeighbor));
    }

    group.bench_function(BenchmarkId::from_parameter("wait_any_8patterns"), |b| {
        b.iter(|| {
            pool.run(|ctx| {
                let comm = ctx.comm_world();
                let mut session = batch.init_all(ctx, &comm);
                let inputs: Vec<Vec<f64>> = session
                    .requests()
                    .iter()
                    .map(|r| r.input_index().iter().map(|&i| i as f64).collect())
                    .collect();
                let mut outputs: Vec<Vec<f64>> = session
                    .requests()
                    .iter()
                    .map(|r| vec![0.0; r.output_index().len()])
                    .collect();
                let mut acc = 0.0;
                for _ in 0..OVERLAP_ITERS {
                    session.start_all(ctx, &inputs);
                    while session.in_flight() > 0 {
                        let e = session.wait_any(ctx, &mut outputs);
                        acc += smooth_like(&outputs[e]);
                    }
                }
                acc
            })
        })
    });

    group.bench_function(BenchmarkId::from_parameter("wait_all_8patterns"), |b| {
        b.iter(|| {
            pool.run(|ctx| {
                let comm = ctx.comm_world();
                let mut session = batch.init_all(ctx, &comm);
                let inputs: Vec<Vec<f64>> = session
                    .requests()
                    .iter()
                    .map(|r| r.input_index().iter().map(|&i| i as f64).collect())
                    .collect();
                let mut outputs: Vec<Vec<f64>> = session
                    .requests()
                    .iter()
                    .map(|r| vec![0.0; r.output_index().len()])
                    .collect();
                let mut acc = 0.0;
                for _ in 0..OVERLAP_ITERS {
                    session.start_all(ctx, &inputs);
                    session.wait_all(ctx, &mut outputs);
                    for out in &outputs {
                        acc += smooth_like(out);
                    }
                }
                acc
            })
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_protocols,
    bench_steady_state,
    bench_init,
    bench_init_large,
    bench_batch_init_large,
    bench_tuned,
    bench_overlap
);
criterion_main!(benches);
