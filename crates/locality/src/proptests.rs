//! Property-based tests for the topology model.

use crate::*;
use proptest::prelude::*;

proptest! {
    /// location_of / core_index are inverse bijections for arbitrary shapes.
    #[test]
    fn machine_location_bijection(nodes in 1usize..6, sockets in 1usize..4, cores in 1usize..9) {
        let m = MachineSpec::new(nodes, sockets, cores);
        for c in 0..m.total_cores() {
            prop_assert_eq!(m.core_index(m.location_of(c)), c);
        }
    }

    /// Every rank appears in exactly one region, and region membership is
    /// consistent with region_of.
    #[test]
    fn regions_partition_ranks(ranks in 1usize..130, ppn in 1usize..17) {
        prop_assume!(ppn <= ranks || ranks < ppn); // always true; keep ranges broad
        let t = Topology::block_nodes(ranks, ppn);
        let mut seen = vec![0usize; ranks];
        for reg in 0..t.n_regions() {
            for &r in t.region_members(reg) {
                prop_assert_eq!(t.region_of(r), reg);
                seen[r] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    /// Classification is symmetric and same-region pairs never classify as
    /// inter-node under the Node scheme.
    #[test]
    fn classify_symmetric(ranks in 2usize..100, ppn in 1usize..17, a in 0usize..100, b in 0usize..100) {
        let t = Topology::block_nodes(ranks, ppn);
        let a = a % ranks;
        let b = b % ranks;
        prop_assert_eq!(t.classify(a, b), t.classify(b, a));
        if t.same_region(a, b) && a != b {
            prop_assert!(t.classify(a, b).is_intra_node());
        }
    }

    /// local_index is the position in the member list and is < region size.
    #[test]
    fn local_index_consistent(ranks in 1usize..100, ppn in 1usize..17) {
        let t = Topology::block_nodes(ranks, ppn);
        for r in 0..ranks {
            let reg = t.region_of(r);
            let li = t.local_index(r);
            prop_assert!(li < t.region_members(reg).len());
            prop_assert_eq!(t.region_members(reg)[li], r);
        }
    }
}
