//! Static machine descriptions.

use serde::{Deserialize, Serialize};

/// Physical location of a core inside the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreLocation {
    /// Node index within the machine.
    pub node: usize,
    /// Socket (CPU / NUMA region) index within the node.
    pub socket: usize,
    /// Core index within the socket.
    pub core: usize,
}

/// A homogeneous machine: `nodes` × `sockets_per_node` × `cores_per_socket`.
///
/// This mirrors the SMP node of the paper's Figure 1 (two NUMA regions of 16
/// cores each) and the Lassen nodes used in the evaluation (two 22-core
/// CPUs, of which the paper uses 16 cores on a single CPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineSpec {
    pub nodes: usize,
    pub sockets_per_node: usize,
    pub cores_per_socket: usize,
}

impl MachineSpec {
    /// A new machine description. All dimensions must be non-zero.
    pub fn new(nodes: usize, sockets_per_node: usize, cores_per_socket: usize) -> Self {
        assert!(nodes > 0, "machine must have at least one node");
        assert!(sockets_per_node > 0, "node must have at least one socket");
        assert!(cores_per_socket > 0, "socket must have at least one core");
        Self {
            nodes,
            sockets_per_node,
            cores_per_socket,
        }
    }

    /// Lassen-like node: 2 sockets × 22 cores (Power9). The paper's
    /// experiments pin 16 ranks on a single socket per node; use
    /// [`MachineSpec::lassen_16ppn`] for that configuration.
    pub fn lassen(nodes: usize) -> Self {
        Self::new(nodes, 2, 22)
    }

    /// The configuration actually benchmarked in the paper: only 16 cores of
    /// a single CPU per node are used, avoiding inter-CPU traffic (§4).
    pub fn lassen_16ppn(nodes: usize) -> Self {
        Self::new(nodes, 1, 16)
    }

    /// The example SMP node of Figure 1: 2 NUMA regions × 16 cores.
    pub fn figure1_smp(nodes: usize) -> Self {
        Self::new(nodes, 2, 16)
    }

    /// Number of cores in one node.
    pub fn cores_per_node(&self) -> usize {
        self.sockets_per_node * self.cores_per_socket
    }

    /// Total number of cores in the machine.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node()
    }

    /// The location of a core given its global (machine-wide) index, laid
    /// out node-major then socket-major.
    pub fn location_of(&self, global_core: usize) -> CoreLocation {
        assert!(
            global_core < self.total_cores(),
            "core {global_core} out of range (machine has {} cores)",
            self.total_cores()
        );
        let per_node = self.cores_per_node();
        let node = global_core / per_node;
        let within = global_core % per_node;
        CoreLocation {
            node,
            socket: within / self.cores_per_socket,
            core: within % self.cores_per_socket,
        }
    }

    /// Inverse of [`MachineSpec::location_of`].
    pub fn core_index(&self, loc: CoreLocation) -> usize {
        assert!(loc.node < self.nodes && loc.socket < self.sockets_per_node);
        assert!(loc.core < self.cores_per_socket);
        loc.node * self.cores_per_node() + loc.socket * self.cores_per_socket + loc.core
    }

    /// The smallest machine of this node shape that can host `ranks` ranks
    /// with `ppn` ranks per node.
    pub fn sized_for(ranks: usize, ppn: usize, sockets_per_node: usize) -> Self {
        assert!(ppn > 0 && ranks > 0);
        assert!(
            ppn.is_multiple_of(sockets_per_node),
            "ppn must divide evenly across sockets"
        );
        let nodes = ranks.div_ceil(ppn);
        Self::new(nodes, sockets_per_node, ppn / sockets_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_roundtrip() {
        let m = MachineSpec::figure1_smp(3);
        for c in 0..m.total_cores() {
            let loc = m.location_of(c);
            assert_eq!(m.core_index(loc), c);
        }
    }

    #[test]
    fn figure1_shape() {
        let m = MachineSpec::figure1_smp(1);
        assert_eq!(m.cores_per_node(), 32);
        let loc = m.location_of(17);
        assert_eq!(
            loc,
            CoreLocation {
                node: 0,
                socket: 1,
                core: 1
            }
        );
    }

    #[test]
    fn lassen_shape() {
        let m = MachineSpec::lassen(128);
        assert_eq!(m.total_cores(), 128 * 44);
        let m16 = MachineSpec::lassen_16ppn(128);
        assert_eq!(m16.total_cores(), 2048);
    }

    #[test]
    fn sized_for_paper_scale() {
        let m = MachineSpec::sized_for(2048, 16, 1);
        assert_eq!(m.nodes, 128);
        assert_eq!(m.cores_per_node(), 16);
        // Non-multiple rank counts round the node count up.
        let m = MachineSpec::sized_for(40, 16, 1);
        assert_eq!(m.nodes, 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn location_out_of_range_panics() {
        MachineSpec::figure1_smp(1).location_of(32);
    }
}
