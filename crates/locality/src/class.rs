//! Locality classification of rank pairs.

use serde::{Deserialize, Serialize};

/// Where a message between two ranks travels (paper §1/§2: intra-CPU,
/// inter-CPU-intra-node, and inter-node paths have notably different costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LocalityClass {
    /// Source and destination are the same rank (a local copy).
    SelfRank,
    /// Same node, same socket: transferred through shared cache.
    IntraSocket,
    /// Same node, different socket: transferred through main memory.
    InterSocket,
    /// Different nodes: injected into the network.
    InterNode,
}

impl LocalityClass {
    /// All classes, ordered from most to least local.
    pub const ALL: [LocalityClass; 4] = [
        LocalityClass::SelfRank,
        LocalityClass::IntraSocket,
        LocalityClass::InterSocket,
        LocalityClass::InterNode,
    ];

    /// True when the message stays within one node.
    pub fn is_intra_node(self) -> bool {
        !matches!(self, LocalityClass::InterNode)
    }
}

impl std::fmt::Display for LocalityClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LocalityClass::SelfRank => "self",
            LocalityClass::IntraSocket => "intra-socket",
            LocalityClass::InterSocket => "inter-socket",
            LocalityClass::InterNode => "inter-node",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_most_local_first() {
        assert!(LocalityClass::SelfRank < LocalityClass::IntraSocket);
        assert!(LocalityClass::IntraSocket < LocalityClass::InterSocket);
        assert!(LocalityClass::InterSocket < LocalityClass::InterNode);
    }

    #[test]
    fn intra_node_predicate() {
        assert!(LocalityClass::IntraSocket.is_intra_node());
        assert!(LocalityClass::InterSocket.is_intra_node());
        assert!(!LocalityClass::InterNode.is_intra_node());
    }

    #[test]
    fn display_names() {
        assert_eq!(LocalityClass::InterNode.to_string(), "inter-node");
    }
}
