//! Machine topology model for locality-aware communication.
//!
//! Modern supercomputers contain a hierarchy of regions (paper §1, Figure 1):
//! nodes connected by a network, each node containing one or more sockets
//! (CPUs / NUMA regions), each socket containing cores. Communication cost
//! depends on where the two endpoints sit in this hierarchy.
//!
//! This crate provides:
//! * [`MachineSpec`] — a description of the machine (nodes × sockets × cores);
//! * [`RankMap`] — the assignment of MPI-style ranks to cores;
//! * [`RegionScheme`] / [`Topology`] — the grouping of ranks into *regions of
//!   locality* (typically a node or a socket) used by the aggregation
//!   algorithms in the `mpi-advance` crate;
//! * [`LocalityClass`] — the classification of a (source, destination) rank
//!   pair, consumed by the `perfmodel` crate.

pub mod class;
pub mod machine;
pub mod rank_map;
pub mod region;

pub use class::LocalityClass;
pub use machine::{CoreLocation, MachineSpec};
pub use rank_map::{RankMap, RankMapKind};
pub use region::{RegionScheme, Topology};

#[cfg(test)]
mod proptests;
