//! Regions of locality and the topology handle.
//!
//! A *region* is the unit within which the aggregation algorithms of the
//! paper redistribute data: all data leaving a region for a given remote
//! region is funnelled through a single process (paper §2, three-step
//! aggregation). Regions are typically nodes (node-aware aggregation) but
//! may also be sockets/NUMA domains.

use crate::class::LocalityClass;
use crate::machine::MachineSpec;
use crate::rank_map::RankMap;
use serde::{Deserialize, Serialize};

/// What constitutes a "region of locality".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionScheme {
    /// One region per node (the paper's configuration).
    Node,
    /// One region per socket/NUMA domain.
    Socket,
}

/// Topology handle: rank map + region scheme, with precomputed region
/// membership. This is the object the neighborhood collectives consult.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    map: RankMap,
    scheme: RegionScheme,
    /// region id of each rank
    region_of: Vec<usize>,
    /// ranks in each region, ascending
    members: Vec<Vec<usize>>,
}

impl Topology {
    pub fn new(map: RankMap, scheme: RegionScheme) -> Self {
        let n = map.n_ranks();
        let m = map.machine();
        let region_index = |rank: usize| -> usize {
            let loc = map.location(rank);
            match scheme {
                RegionScheme::Node => loc.node,
                RegionScheme::Socket => loc.node * m.sockets_per_node + loc.socket,
            }
        };
        // Compact region ids to only occupied regions, preserving order.
        let raw: Vec<usize> = (0..n).map(region_index).collect();
        let mut sorted: Vec<usize> = raw.clone();
        sorted.sort_unstable();
        sorted.dedup();
        let compact = |r: usize| sorted.binary_search(&r).expect("region present");
        let region_of: Vec<usize> = raw.iter().map(|&r| compact(r)).collect();
        let mut members = vec![Vec::new(); sorted.len()];
        for (rank, &reg) in region_of.iter().enumerate() {
            members[reg].push(rank);
        }
        Self {
            map,
            scheme,
            region_of,
            members,
        }
    }

    /// Convenience: block placement over a machine sized for `n_ranks` with
    /// `ppn` ranks per node, node regions — the paper's standard setup.
    pub fn block_nodes(n_ranks: usize, ppn: usize) -> Self {
        let machine = MachineSpec::sized_for(n_ranks, ppn, 1);
        Self::new(RankMap::block(machine, n_ranks), RegionScheme::Node)
    }

    pub fn n_ranks(&self) -> usize {
        self.map.n_ranks()
    }

    pub fn machine(&self) -> MachineSpec {
        self.map.machine()
    }

    pub fn rank_map(&self) -> &RankMap {
        &self.map
    }

    pub fn scheme(&self) -> RegionScheme {
        self.scheme
    }

    /// Number of occupied regions.
    pub fn n_regions(&self) -> usize {
        self.members.len()
    }

    /// Region id of `rank`.
    pub fn region_of(&self, rank: usize) -> usize {
        self.region_of[rank]
    }

    /// Ranks belonging to `region`, ascending.
    pub fn region_members(&self, region: usize) -> &[usize] {
        &self.members[region]
    }

    /// Index of `rank` within its region's member list.
    pub fn local_index(&self, rank: usize) -> usize {
        self.members[self.region_of(rank)]
            .iter()
            .position(|&r| r == rank)
            .expect("rank is a member of its own region")
    }

    /// True when `a` and `b` are in the same region.
    pub fn same_region(&self, a: usize, b: usize) -> bool {
        self.region_of(a) == self.region_of(b)
    }

    /// Locality class of a message from `src` to `dst`.
    pub fn classify(&self, src: usize, dst: usize) -> LocalityClass {
        if src == dst {
            return LocalityClass::SelfRank;
        }
        let a = self.map.location(src);
        let b = self.map.location(dst);
        if a.node != b.node {
            LocalityClass::InterNode
        } else if a.socket != b.socket {
            LocalityClass::InterSocket
        } else {
            LocalityClass::IntraSocket
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank_map::RankMapKind;

    #[test]
    fn node_regions_paper_setup() {
        let t = Topology::block_nodes(48, 16);
        assert_eq!(t.n_regions(), 3);
        assert_eq!(t.region_of(0), 0);
        assert_eq!(t.region_of(17), 1);
        assert_eq!(t.region_members(2), (32..48).collect::<Vec<_>>().as_slice());
        assert_eq!(t.local_index(35), 3);
    }

    #[test]
    fn socket_regions() {
        let m = MachineSpec::figure1_smp(2); // 2 nodes x 2 sockets x 16
        let t = Topology::new(RankMap::block(m, 64), RegionScheme::Socket);
        assert_eq!(t.n_regions(), 4);
        assert_eq!(t.region_of(15), 0);
        assert_eq!(t.region_of(16), 1);
        assert_eq!(t.region_of(32), 2);
    }

    #[test]
    fn classify_all_classes() {
        let m = MachineSpec::figure1_smp(2);
        let t = Topology::new(RankMap::block(m, 64), RegionScheme::Socket);
        assert_eq!(t.classify(3, 3), LocalityClass::SelfRank);
        assert_eq!(t.classify(0, 5), LocalityClass::IntraSocket);
        assert_eq!(t.classify(0, 20), LocalityClass::InterSocket);
        assert_eq!(t.classify(0, 40), LocalityClass::InterNode);
    }

    #[test]
    fn compacts_region_ids_for_round_robin() {
        let m = MachineSpec::lassen_16ppn(8);
        // 4 ranks round-robin over 8 nodes: only 4 occupied regions.
        let t = Topology::new(
            RankMap::new(m, 4, RankMapKind::RoundRobin),
            RegionScheme::Node,
        );
        assert_eq!(t.n_regions(), 4);
        for r in 0..4 {
            assert_eq!(t.region_of(r), r);
            assert_eq!(t.region_members(r), &[r]);
        }
    }

    #[test]
    fn lassen_full_node_has_inter_socket_pairs() {
        // The full Lassen node (2×22): ranks 0..21 on socket 0, 22..43 on
        // socket 1 — the inter-CPU path the paper's §4 configuration avoids
        // by pinning 16 ranks on one socket.
        let m = MachineSpec::lassen(2);
        let t = Topology::new(RankMap::block(m, 88), RegionScheme::Node);
        assert_eq!(t.classify(0, 21), LocalityClass::IntraSocket);
        assert_eq!(t.classify(0, 22), LocalityClass::InterSocket);
        assert_eq!(t.classify(0, 44), LocalityClass::InterNode);
        // node regions span both sockets
        assert!(t.same_region(0, 43));
    }

    #[test]
    fn round_robin_socket_regions() {
        let m = MachineSpec::figure1_smp(2);
        let t = Topology::new(
            RankMap::new(m, 8, RankMapKind::RoundRobin),
            RegionScheme::Socket,
        );
        // ranks alternate nodes; first fills socket 0 of each node
        assert_eq!(t.region_of(0), t.region_of(2));
        assert!(!t.same_region(0, 1));
    }

    #[test]
    fn example_2_1_two_regions() {
        // Figure 2: two regions of four processes each.
        let t = Topology::block_nodes(8, 4);
        assert_eq!(t.n_regions(), 2);
        assert!(t.same_region(0, 3));
        assert!(!t.same_region(0, 4));
        assert_eq!(t.classify(2, 6), LocalityClass::InterNode);
    }
}
