//! Assignment of ranks to cores.

use crate::machine::{CoreLocation, MachineSpec};
use serde::{Deserialize, Serialize};

/// How ranks are laid out over the machine's cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RankMapKind {
    /// Rank `r` lives on global core `r`: fills a node before moving on
    /// (the default `mpirun` block placement, used in all paper results).
    Block,
    /// Ranks round-robin over nodes: rank `r` on node `r % nodes`.
    RoundRobin,
}

/// Map from rank to physical core.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankMap {
    machine: MachineSpec,
    n_ranks: usize,
    kind: RankMapKind,
    /// Explicit rank → global-core table (allows custom maps too).
    cores: Vec<usize>,
}

impl RankMap {
    /// Build a rank map of `n_ranks` ranks over `machine` with the given
    /// placement policy. Panics if the machine is too small.
    pub fn new(machine: MachineSpec, n_ranks: usize, kind: RankMapKind) -> Self {
        assert!(n_ranks > 0, "need at least one rank");
        assert!(
            n_ranks <= machine.total_cores(),
            "{n_ranks} ranks do not fit on {} cores",
            machine.total_cores()
        );
        let cores = match kind {
            RankMapKind::Block => (0..n_ranks).collect(),
            RankMapKind::RoundRobin => {
                let per_node = machine.cores_per_node();
                let nodes = machine.nodes;
                let mut next_slot = vec![0usize; nodes];
                (0..n_ranks)
                    .map(|r| {
                        let node = r % nodes;
                        let slot = next_slot[node];
                        next_slot[node] += 1;
                        assert!(slot < per_node, "round-robin overflow on node {node}");
                        node * per_node + slot
                    })
                    .collect()
            }
        };
        Self {
            machine,
            n_ranks,
            kind,
            cores,
        }
    }

    /// Block placement (the paper's configuration).
    pub fn block(machine: MachineSpec, n_ranks: usize) -> Self {
        Self::new(machine, n_ranks, RankMapKind::Block)
    }

    /// A custom explicit map (e.g. from a topology-aware reordering).
    /// `cores[r]` is the global core index of rank `r`; cores must be unique.
    pub fn custom(machine: MachineSpec, cores: Vec<usize>) -> Self {
        assert!(!cores.is_empty());
        let mut seen = vec![false; machine.total_cores()];
        for &c in &cores {
            assert!(c < machine.total_cores(), "core {c} out of range");
            assert!(!seen[c], "core {c} assigned twice");
            seen[c] = true;
        }
        Self {
            machine,
            n_ranks: cores.len(),
            kind: RankMapKind::Block,
            cores,
        }
    }

    pub fn machine(&self) -> MachineSpec {
        self.machine
    }

    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    pub fn kind(&self) -> RankMapKind {
        self.kind
    }

    /// Physical location of `rank`.
    pub fn location(&self, rank: usize) -> CoreLocation {
        assert!(
            rank < self.n_ranks,
            "rank {rank} out of range ({} ranks)",
            self.n_ranks
        );
        self.machine.location_of(self.cores[rank])
    }

    /// Node index of `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        self.location(rank).node
    }

    /// (node, socket) pair of `rank`.
    pub fn socket_of(&self, rank: usize) -> (usize, usize) {
        let l = self.location(rank);
        (l.node, l.socket)
    }

    /// Number of distinct nodes actually occupied.
    pub fn occupied_nodes(&self) -> usize {
        let mut seen = vec![false; self.machine.nodes];
        let mut n = 0;
        for r in 0..self.n_ranks {
            let node = self.node_of(r);
            if !seen[node] {
                seen[node] = true;
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_fills_nodes_in_order() {
        let m = MachineSpec::lassen_16ppn(4);
        let map = RankMap::block(m, 40);
        assert_eq!(map.node_of(0), 0);
        assert_eq!(map.node_of(15), 0);
        assert_eq!(map.node_of(16), 1);
        assert_eq!(map.node_of(39), 2);
        assert_eq!(map.occupied_nodes(), 3);
    }

    #[test]
    fn round_robin_spreads() {
        let m = MachineSpec::lassen_16ppn(4);
        let map = RankMap::new(m, 8, RankMapKind::RoundRobin);
        assert_eq!(map.node_of(0), 0);
        assert_eq!(map.node_of(1), 1);
        assert_eq!(map.node_of(5), 1);
        assert_eq!(map.occupied_nodes(), 4);
    }

    #[test]
    fn custom_map() {
        let m = MachineSpec::figure1_smp(2);
        let map = RankMap::custom(m, vec![33, 0, 16]);
        assert_eq!(map.node_of(0), 1);
        assert_eq!(map.socket_of(2), (0, 1));
        assert_eq!(map.n_ranks(), 3);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn custom_rejects_duplicates() {
        RankMap::custom(MachineSpec::figure1_smp(1), vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn too_many_ranks_panics() {
        RankMap::block(MachineSpec::lassen_16ppn(1), 17);
    }
}
