//! Communication performance models (paper §2.1).
//!
//! The figures in the paper report measured time on Lassen. Reproducing them
//! without that machine requires a cost model over the *exact* message lists
//! each protocol produces. This crate implements the model family the paper
//! builds on:
//!
//! * [`PostalModel`] — the classic postal model `α + βn` \[Bar-Noy & Kipnis\];
//! * [`MaxRateModel`] — adds per-node injection-bandwidth limits
//!   \[Gropp, Olson, Samfass, EuroMPI '16\];
//! * [`LocalityModel`] — per-locality-class parameters (intra-socket,
//!   inter-socket, inter-node modeled separately) plus queue-search costs for
//!   many-message irregular patterns \[Bienz, Gropp, Olson, EuroMPI '18\].
//!
//! [`phase`] evaluates a whole communication phase (all ranks' message
//! lists) to a single modeled duration.

pub mod fit;
pub mod models;
pub mod params;
pub mod phase;

pub use fit::{fit_postal, FitObs, FittedParams};
pub use models::{CostModel, LocalityModel, MaxRateModel, PostalModel};
pub use params::ClassParams;
pub use phase::{Msg, PhaseCost, PhaseEval};

#[cfg(test)]
mod proptests;
