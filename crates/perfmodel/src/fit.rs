//! Refitting model parameters from measured phase timings.
//!
//! The analytic selection in `core` trusts the postal parameters baked
//! into [`crate::params::lassen_like`]; on a machine that is not Lassen
//! those constants mispredict and `Backend::Auto` can pick the wrong
//! protocol forever. The online autotuner measures real `start→wait`
//! durations; this module turns those observations back into postal
//! parameters so even patterns that were never probed benefit.
//!
//! The model fitted is the per-iteration aggregate of the postal form:
//!
//! ```text
//! t ≈ α·m + β·b
//! ```
//!
//! where `m` is the iteration's message count and `b` its byte volume
//! (both from the plan's static stats). Minimizing the squared residual
//! over all observations gives the 2×2 normal equations
//!
//! ```text
//! [Σm²  Σmb] [α]   [Σmt]
//! [Σmb  Σb²] [β] = [Σbt]
//! ```
//!
//! solved directly by determinant. Observations spanning a single
//! (m, b) ray are degenerate — the matrix is singular and no unique
//! (α, β) exists — and the fit reports `None` rather than invent one.

use crate::params::ClassParams;

/// One measured iteration: the plan's message count and byte volume,
/// and the wall (or virtual) seconds the iteration took.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitObs {
    /// Messages the critical-path rank sends in one iteration.
    pub msgs: f64,
    /// Bytes the critical-path rank sends in one iteration.
    pub bytes: f64,
    /// Measured seconds for the iteration's start→wait.
    pub secs: f64,
}

/// Postal parameters recovered from measured timings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedParams {
    /// Fitted per-message latency (seconds), clamped to ≥ 0.
    pub alpha: f64,
    /// Fitted per-byte transfer time (seconds), clamped to ≥ 0.
    pub beta: f64,
    /// Observations the fit consumed.
    pub n_obs: usize,
}

impl FittedParams {
    /// The fitted parameters as [`ClassParams`] (no rendezvous cutoff —
    /// the aggregate fit cannot see the eager/rendezvous switch).
    pub fn class_params(&self) -> ClassParams {
        ClassParams::new(self.alpha, self.beta)
    }

    /// Human-readable fitted-vs-default delta, the report surface the
    /// autotuner exposes. Ratios are `fitted / default`; a default of
    /// zero reports the absolute fitted value instead.
    pub fn delta_report(&self, default: &ClassParams) -> String {
        let ratio = |fitted: f64, def: f64| {
            if def > 0.0 {
                format!("{:.2}x default", fitted / def)
            } else {
                format!("{fitted:.3e} (default 0)")
            }
        };
        format!(
            "fitted over {} observation(s): alpha {:.3e} s/msg ({}), \
             beta {:.3e} s/byte ({})",
            self.n_obs,
            self.alpha,
            ratio(self.alpha, default.alpha),
            self.beta,
            ratio(self.beta, default.beta),
        )
    }
}

/// Least-squares fit of `t ≈ α·m + β·b` over the observations.
///
/// Returns `None` when the system is degenerate: fewer than two
/// observations, or all observations on one (m, b) ray (the normal
/// matrix is singular — no unique parameters exist). Negative solutions
/// (possible when noise dominates) are clamped to zero: a negative
/// latency or bandwidth term is nonphysical and would invert protocol
/// rankings downstream.
pub fn fit_postal(obs: &[FitObs]) -> Option<FittedParams> {
    if obs.len() < 2 {
        return None;
    }
    let (mut smm, mut smb, mut sbb, mut smt, mut sbt) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for o in obs {
        if !(o.msgs.is_finite() && o.bytes.is_finite() && o.secs.is_finite()) {
            return None;
        }
        smm += o.msgs * o.msgs;
        smb += o.msgs * o.bytes;
        sbb += o.bytes * o.bytes;
        smt += o.msgs * o.secs;
        sbt += o.bytes * o.secs;
    }
    let det = smm * sbb - smb * smb;
    // Relative singularity test: det is a difference of same-magnitude
    // products, so compare against their scale, not an absolute epsilon.
    if det.abs() <= 1e-12 * smm.max(sbb).powi(2).max(f64::MIN_POSITIVE) {
        return None;
    }
    let alpha = (smt * sbb - sbt * smb) / det;
    let beta = (sbt * smm - smt * smb) / det;
    Some(FittedParams {
        alpha: alpha.max(0.0),
        beta: beta.max(0.0),
        n_obs: obs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(m: f64, b: f64, secs: f64) -> FitObs {
        FitObs {
            msgs: m,
            bytes: b,
            secs,
        }
    }

    #[test]
    fn recovers_exact_synthetic_parameters() {
        let (alpha, beta) = (2.5e-6, 4.0e-10);
        let pts: Vec<FitObs> = [(4.0, 1024.0), (16.0, 512.0), (64.0, 65536.0), (2.0, 8.0)]
            .iter()
            .map(|&(m, b)| obs(m, b, alpha * m + beta * b))
            .collect();
        let f = fit_postal(&pts).expect("well-conditioned system");
        assert!((f.alpha - alpha).abs() < alpha * 1e-9, "alpha={}", f.alpha);
        assert!((f.beta - beta).abs() < beta * 1e-9, "beta={}", f.beta);
        assert_eq!(f.n_obs, 4);
    }

    #[test]
    fn collinear_observations_are_degenerate() {
        // every observation on the ray b = 100·m: no unique (α, β)
        let pts: Vec<FitObs> = (1..6)
            .map(|i| obs(i as f64, 100.0 * i as f64, 1e-6 * i as f64))
            .collect();
        assert_eq!(fit_postal(&pts), None);
    }

    #[test]
    fn too_few_observations() {
        assert_eq!(fit_postal(&[]), None);
        assert_eq!(fit_postal(&[obs(1.0, 8.0, 1e-6)]), None);
    }

    #[test]
    fn noisy_negative_solution_clamps_to_zero() {
        // bytes dominate and per-message term comes out negative
        let pts = [obs(1.0, 1000.0, 1.0e-6), obs(2.0, 1000.0, 0.5e-6)];
        let f = fit_postal(&pts).expect("nonsingular");
        assert_eq!(f.alpha, 0.0);
        assert!(f.beta > 0.0);
    }

    #[test]
    fn non_finite_observation_rejected() {
        let pts = [obs(1.0, 8.0, f64::NAN), obs(2.0, 16.0, 1e-6)];
        assert_eq!(fit_postal(&pts), None);
    }

    #[test]
    fn delta_report_names_both_ratios() {
        let f = FittedParams {
            alpha: 2.0e-6,
            beta: 2.0e-10,
            n_obs: 7,
        };
        let d = ClassParams::new(1.0e-6, 1.0e-10);
        let r = f.delta_report(&d);
        assert!(r.contains("7 observation(s)"), "{r}");
        assert!(r.contains("2.00x default"), "{r}");
    }
}
