//! Property-based tests for the cost models.

use crate::models::{CostModel, LocalityModel, PostalModel};
use crate::phase::PhaseEval;
use locality::{LocalityClass, Topology};
use proptest::prelude::*;

proptest! {
    /// Message time is monotone in size for every model and class.
    #[test]
    fn msg_time_monotone_in_bytes(a in 0usize..1_000_000, b in 0usize..1_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let postal = PostalModel::new(1e-6, 1e-9);
        let lassen = LocalityModel::lassen();
        for class in LocalityClass::ALL {
            prop_assert!(postal.msg_time(class, lo) <= postal.msg_time(class, hi));
            prop_assert!(lassen.msg_time(class, lo) <= lassen.msg_time(class, hi));
        }
    }

    /// Adding a message never decreases the phase time.
    #[test]
    fn phase_time_monotone_in_messages(
        ranks in 2usize..40,
        ppn in 1usize..9,
        msgs in prop::collection::vec((0usize..40, 0usize..40, 1usize..4096), 1..30),
    ) {
        let topo = Topology::block_nodes(ranks, ppn);
        let model = LocalityModel::lassen();
        let mut p = PhaseEval::new(ranks);
        let mut last = 0.0f64;
        for (s, d, bytes) in msgs {
            p.add(&topo, s % ranks, d % ranks, bytes);
            let t = p.time(&model, &topo);
            prop_assert!(t + 1e-18 >= last, "time decreased: {t} < {last}");
            last = t;
        }
    }

    /// Phase time is at least the cost of its most expensive single message.
    #[test]
    fn phase_at_least_max_message(
        ranks in 2usize..30,
        msgs in prop::collection::vec((0usize..30, 0usize..30, 1usize..10_000), 1..20),
    ) {
        let topo = Topology::block_nodes(ranks, 4);
        let model = LocalityModel::lassen();
        let mut p = PhaseEval::new(ranks);
        let mut max_single = 0.0f64;
        for (s, d, bytes) in msgs {
            let (s, d) = (s % ranks, d % ranks);
            p.add(&topo, s, d, bytes);
            max_single = max_single.max(model.msg_time(topo.classify(s, d), bytes));
        }
        prop_assert!(p.time(&model, &topo) + 1e-18 >= max_single);
    }
}
