//! Evaluating whole communication phases.
//!
//! A *phase* is one logical step of a protocol (e.g. the inter-region `g`
//! step of three-step aggregation) in which every rank starts its messages
//! and waits for completion. The modeled duration of the phase is the
//! maximum over ranks of each rank's local cost, subject to per-node
//! injection limits.

use crate::models::CostModel;
use locality::{LocalityClass, Topology};
use serde::{Deserialize, Serialize};

/// One message as seen by the model: its locality class and payload size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Msg {
    pub class: LocalityClass,
    pub bytes: usize,
}

impl Msg {
    pub fn new(class: LocalityClass, bytes: usize) -> Self {
        Self { class, bytes }
    }
}

/// Per-phase message lists for every rank.
#[derive(Debug, Clone, Default)]
pub struct PhaseEval {
    /// `sends[r]` — messages rank `r` sends in this phase.
    pub sends: Vec<Vec<Msg>>,
    /// `recvs[r]` — messages rank `r` receives in this phase.
    pub recvs: Vec<Vec<Msg>>,
}

impl PhaseEval {
    pub fn new(n_ranks: usize) -> Self {
        Self {
            sends: vec![Vec::new(); n_ranks],
            recvs: vec![Vec::new(); n_ranks],
        }
    }

    /// Record a message from `src` to `dst` of `bytes` bytes; the class is
    /// derived from the topology.
    pub fn add(&mut self, topo: &Topology, src: usize, dst: usize, bytes: usize) {
        let class = topo.classify(src, dst);
        self.sends[src].push(Msg::new(class, bytes));
        self.recvs[dst].push(Msg::new(class, bytes));
    }

    pub fn is_empty(&self) -> bool {
        self.sends.iter().all(Vec::is_empty) && self.recvs.iter().all(Vec::is_empty)
    }

    /// Modeled duration of this phase under `model`.
    pub fn time(&self, model: &dyn CostModel, topo: &Topology) -> f64 {
        self.cost(model, topo).time
    }

    /// Full cost breakdown of this phase.
    pub fn cost(&self, model: &dyn CostModel, topo: &Topology) -> PhaseCost {
        let n = self.sends.len();
        assert_eq!(n, self.recvs.len());
        assert_eq!(n, topo.n_ranks(), "phase rank count must match topology");

        let mut max_rank_time = 0.0f64;
        let mut bottleneck_rank = 0;
        // inter-node bytes leaving each node, for the injection constraint
        let mut node_bytes = vec![0usize; topo.machine().nodes];

        for r in 0..n {
            let mut send_t = 0.0;
            for m in &self.sends[r] {
                send_t += model.msg_time(m.class, m.bytes);
                if m.class == LocalityClass::InterNode {
                    node_bytes[topo.rank_map().node_of(r)] += m.bytes;
                }
            }
            let mut recv_t = 0.0;
            for m in &self.recvs[r] {
                recv_t += model.msg_time(m.class, m.bytes);
            }
            recv_t += model.queue_time(self.recvs[r].len());
            // Sends and receives progress concurrently; the rank is busy for
            // whichever side dominates.
            let t = send_t.max(recv_t);
            if t > max_rank_time {
                max_rank_time = t;
                bottleneck_rank = r;
            }
        }

        let injection_time = match model.injection_rate() {
            Some(rate) => node_bytes
                .iter()
                .map(|&b| b as f64 / rate)
                .fold(0.0f64, f64::max),
            None => 0.0,
        };

        PhaseCost {
            time: max_rank_time.max(injection_time),
            bottleneck_rank,
            injection_limited: injection_time > max_rank_time,
        }
    }
}

/// Result of evaluating one phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Modeled phase duration in seconds.
    pub time: f64,
    /// Rank whose local cost determined the duration (when not
    /// injection-limited).
    pub bottleneck_rank: usize,
    /// True when the per-node injection cap, not a single rank, set the time.
    pub injection_limited: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{LocalityModel, PostalModel};

    fn topo8() -> Topology {
        Topology::block_nodes(8, 4)
    }

    #[test]
    fn empty_phase_is_free() {
        let topo = topo8();
        let p = PhaseEval::new(8);
        assert!(p.is_empty());
        assert_eq!(p.time(&PostalModel::new(1e-6, 1e-9), &topo), 0.0);
    }

    #[test]
    fn single_message_costs_alpha_beta() {
        let topo = topo8();
        let mut p = PhaseEval::new(8);
        p.add(&topo, 0, 5, 1000);
        let t = p.time(&PostalModel::new(1e-6, 1e-9), &topo);
        assert!((t - (1e-6 + 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn phase_time_is_max_over_ranks() {
        let topo = topo8();
        let model = PostalModel::new(1e-6, 0.0);
        // rank 0 sends 3 messages, rank 1 sends 1: phase = 3α.
        let mut p = PhaseEval::new(8);
        p.add(&topo, 0, 4, 8);
        p.add(&topo, 0, 5, 8);
        p.add(&topo, 0, 6, 8);
        p.add(&topo, 1, 7, 8);
        let c = p.cost(&model, &topo);
        assert!((c.time - 3e-6).abs() < 1e-12);
        assert_eq!(c.bottleneck_rank, 0);
        assert!(!c.injection_limited);
    }

    #[test]
    fn hot_receiver_dominates() {
        let topo = topo8();
        let model = PostalModel::new(1e-6, 0.0);
        // every rank in node 0 sends one message to rank 4: rank 4's recv
        // side (4α) exceeds any sender's cost (1α).
        let mut p = PhaseEval::new(8);
        for src in 0..4 {
            p.add(&topo, src, 4, 8);
        }
        let c = p.cost(&model, &topo);
        assert!((c.time - 4e-6).abs() < 1e-12);
        assert_eq!(c.bottleneck_rank, 4);
    }

    #[test]
    fn injection_cap_binds_for_big_aggregate() {
        let topo = topo8();
        // inter-node bandwidth huge per message but injection tiny.
        let model = crate::models::MaxRateModel::new(
            crate::params::ClassParams::new(0.0, 0.0),
            crate::params::ClassParams::new(0.0, 0.0),
            1e3, // 1 KB/s injection
        );
        let mut p = PhaseEval::new(8);
        for src in 0..4 {
            p.add(&topo, src, 4 + src, 1000);
        }
        let c = p.cost(&model, &topo);
        assert!(c.injection_limited);
        assert!((c.time - 4.0).abs() < 1e-9); // 4000 bytes / 1e3 B/s
    }

    #[test]
    fn queue_time_counts_receives() {
        let topo = topo8();
        let mut model = LocalityModel::lassen();
        model.injection = None;
        let mut p = PhaseEval::new(8);
        for src in 0..4 {
            p.add(&topo, src, 7, 8);
        }
        let with_queue = p.time(&model, &topo);
        model.queue_coeff = 0.0;
        let without = p.time(&model, &topo);
        assert!(with_queue > without);
    }

    #[test]
    #[should_panic(expected = "rank count")]
    fn mismatched_topology_panics() {
        let topo = topo8();
        let p = PhaseEval::new(4);
        p.time(&PostalModel::new(1e-6, 1e-9), &topo);
    }
}
