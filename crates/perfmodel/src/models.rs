//! The cost-model trait and its three implementations.

use crate::params::{self, ClassParams};
use locality::LocalityClass;
use serde::{Deserialize, Serialize};

/// A point-to-point communication cost model.
pub trait CostModel: Send + Sync {
    /// Time in seconds for one message of `bytes` bytes in `class`.
    fn msg_time(&self, class: LocalityClass, bytes: usize) -> f64;

    /// Matching/queue-search overhead incurred by a rank that receives
    /// `n_recvs` messages in one phase (0 by default).
    fn queue_time(&self, n_recvs: usize) -> f64 {
        let _ = n_recvs;
        0.0
    }

    /// Incremental cost of matching one arriving message against a receive
    /// queue currently holding `queue_len` entries (used by the execution
    /// simulator's virtual clock; 0 by default).
    fn match_time(&self, queue_len: usize) -> f64 {
        let _ = queue_len;
        0.0
    }

    /// Per-node injection bandwidth limit in bytes/s (`None` = unlimited).
    fn injection_rate(&self) -> Option<f64> {
        None
    }
}

/// Classic postal model: identical `α + βn` for every message regardless of
/// locality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PostalModel {
    pub params: ClassParams,
}

impl PostalModel {
    pub fn new(alpha: f64, beta: f64) -> Self {
        Self {
            params: ClassParams::new(alpha, beta),
        }
    }
}

impl CostModel for PostalModel {
    fn msg_time(&self, _class: LocalityClass, bytes: usize) -> f64 {
        self.params.time(bytes)
    }
}

/// Max-rate model: distinguishes intra-node from inter-node messages and
/// caps the aggregate inter-node rate of each node at an injection limit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaxRateModel {
    pub intra: ClassParams,
    pub inter: ClassParams,
    /// Per-node injection bandwidth, bytes/s.
    pub injection: f64,
}

impl MaxRateModel {
    pub fn new(intra: ClassParams, inter: ClassParams, injection: f64) -> Self {
        assert!(injection > 0.0);
        Self {
            intra,
            inter,
            injection,
        }
    }
}

impl CostModel for MaxRateModel {
    fn msg_time(&self, class: LocalityClass, bytes: usize) -> f64 {
        if class.is_intra_node() {
            self.intra.time(bytes)
        } else {
            self.inter.time(bytes)
        }
    }

    fn injection_rate(&self) -> Option<f64> {
        Some(self.injection)
    }
}

/// Locality-aware model: separate parameters per [`LocalityClass`], a
/// per-node injection cap, and a quadratic queue-search term for
/// many-message irregular phases.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalityModel {
    pub classes: [ClassParams; 4],
    pub injection: Option<f64>,
    /// Seconds per (received message × queued message) matching pair.
    pub queue_coeff: f64,
}

impl LocalityModel {
    pub fn new(classes: [ClassParams; 4]) -> Self {
        Self {
            classes,
            injection: None,
            queue_coeff: 0.0,
        }
    }

    /// Lassen-like preset matching the paper's experimental platform.
    pub fn lassen() -> Self {
        let mut classes = [ClassParams::new(0.0, 0.0); 4];
        for (i, c) in LocalityClass::ALL.iter().enumerate() {
            classes[i] = params::lassen_like(*c);
        }
        Self {
            classes,
            injection: Some(params::LASSEN_INJECTION_RATE),
            queue_coeff: params::LASSEN_QUEUE_COEFF,
        }
    }

    pub fn class_params(&self, class: LocalityClass) -> ClassParams {
        self.classes[LocalityClass::ALL.iter().position(|&c| c == class).unwrap()]
    }
}

impl CostModel for LocalityModel {
    fn msg_time(&self, class: LocalityClass, bytes: usize) -> f64 {
        self.class_params(class).time(bytes)
    }

    fn queue_time(&self, n_recvs: usize) -> f64 {
        // Each arriving message searches a queue whose expected length grows
        // with the number of outstanding receives: Σ_{i<n} i ≈ n²/2.
        0.5 * self.queue_coeff * (n_recvs as f64) * (n_recvs as f64)
    }

    fn match_time(&self, queue_len: usize) -> f64 {
        self.queue_coeff * queue_len as f64
    }

    fn injection_rate(&self) -> Option<f64> {
        self.injection
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn postal_ignores_class() {
        let m = PostalModel::new(1e-6, 1e-9);
        assert_eq!(
            m.msg_time(LocalityClass::IntraSocket, 1000),
            m.msg_time(LocalityClass::InterNode, 1000)
        );
    }

    #[test]
    fn maxrate_distinguishes_inter_node() {
        let m = MaxRateModel::new(
            ClassParams::new(5e-7, 1e-11),
            ClassParams::new(2e-6, 8e-11),
            12.5e9,
        );
        assert!(
            m.msg_time(LocalityClass::InterNode, 64) > m.msg_time(LocalityClass::IntraSocket, 64)
        );
        assert_eq!(
            m.msg_time(LocalityClass::IntraSocket, 64),
            m.msg_time(LocalityClass::InterSocket, 64)
        );
        assert_eq!(m.injection_rate(), Some(12.5e9));
    }

    #[test]
    fn lassen_queue_quadratic() {
        let m = LocalityModel::lassen();
        let t10 = m.queue_time(10);
        let t20 = m.queue_time(20);
        assert!((t20 / t10 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lassen_self_cheapest() {
        let m = LocalityModel::lassen();
        let t_self = m.msg_time(LocalityClass::SelfRank, 1024);
        for c in [
            LocalityClass::IntraSocket,
            LocalityClass::InterSocket,
            LocalityClass::InterNode,
        ] {
            assert!(t_self < m.msg_time(c, 1024));
        }
    }
}
