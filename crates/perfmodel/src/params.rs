//! Model parameters.

use locality::LocalityClass;
use serde::{Deserialize, Serialize};

/// Postal parameters of one locality class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassParams {
    /// Per-message latency in seconds (short / eager protocol).
    pub alpha: f64,
    /// Per-byte transfer time in seconds.
    pub beta: f64,
    /// Message size (bytes) above which the rendezvous protocol adds an
    /// extra handshake latency of `alpha` (set to `usize::MAX` to disable).
    pub rend_cutoff: usize,
}

impl ClassParams {
    pub const fn new(alpha: f64, beta: f64) -> Self {
        Self {
            alpha,
            beta,
            rend_cutoff: usize::MAX,
        }
    }

    pub const fn with_rendezvous(alpha: f64, beta: f64, cutoff: usize) -> Self {
        Self {
            alpha,
            beta,
            rend_cutoff: cutoff,
        }
    }

    /// Time for one message of `bytes` under these parameters.
    pub fn time(&self, bytes: usize) -> f64 {
        let handshake = if bytes > self.rend_cutoff {
            self.alpha
        } else {
            0.0
        };
        self.alpha + handshake + self.beta * bytes as f64
    }
}

/// Lassen-like parameters (Power9 + EDR InfiniBand), 8-byte values.
///
/// Magnitudes follow the measurements in the papers cited in §2.1:
/// intra-socket messages move through shared cache, inter-socket (X-Bus)
/// large-message bandwidth is *worse* than the network (paper §4: "inter-CPU
/// communication within a node requires over twice the cost of inter-node for
/// large messages"), and inter-node messages pay NIC latency.
pub fn lassen_like(class: LocalityClass) -> ClassParams {
    match class {
        // local copy: pure memory bandwidth
        LocalityClass::SelfRank => ClassParams::new(5.0e-8, 5.0e-12),
        // shared L3: very low latency, high bandwidth
        LocalityClass::IntraSocket => ClassParams::with_rendezvous(6.5e-7, 2.0e-11, 16384),
        // X-Bus: moderate latency, poor large-message bandwidth
        LocalityClass::InterSocket => ClassParams::with_rendezvous(7.2e-7, 1.7e-10, 16384),
        // EDR IB. The ping-pong latency of the network is ~1.9 µs, but the
        // paper's phases post tens of persistent sends at once and the NIC
        // overlaps their injection; the *marginal* per-message cost in that
        // regime is far smaller. Since every phase this model evaluates is
        // a batched Start/Waitall, the effective overlapped α is used
        // (calibrated against the paper's per-level SpMV times, Fig. 11).
        LocalityClass::InterNode => ClassParams::with_rendezvous(7.5e-7, 8.0e-11, 8192),
    }
}

/// Per-node injection bandwidth (bytes/s) of a Lassen-like node.
pub const LASSEN_INJECTION_RATE: f64 = 12.5e9;

/// Queue-search coefficient: seconds of matching overhead per
/// (message × queued message) pair, cf. the irregular-communication model
/// extension of \[Bienz et al., EuroMPI '18\].
pub const LASSEN_QUEUE_COEFF: f64 = 6.0e-9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_adds_handshake() {
        let p = ClassParams::with_rendezvous(1e-6, 1e-9, 100);
        let short = p.time(100);
        let long = p.time(101);
        assert!((short - (1e-6 + 100.0 * 1e-9)).abs() < 1e-15);
        assert!((long - (2e-6 + 101.0 * 1e-9)).abs() < 1e-15);
    }

    #[test]
    fn lassen_ordering_small_messages() {
        // For small messages: intra-socket < inter-socket < inter-node.
        let b = 64;
        let t_is = lassen_like(LocalityClass::IntraSocket).time(b);
        let t_xs = lassen_like(LocalityClass::InterSocket).time(b);
        let t_in = lassen_like(LocalityClass::InterNode).time(b);
        assert!(t_is < t_xs && t_xs < t_in);
    }

    #[test]
    fn lassen_inter_socket_worse_than_inter_node_for_large() {
        // Paper §4: inter-CPU costs over twice inter-node for large messages.
        let b = 4 << 20;
        let t_xs = lassen_like(LocalityClass::InterSocket).time(b);
        let t_in = lassen_like(LocalityClass::InterNode).time(b);
        assert!(t_xs > 2.0 * t_in, "t_xs={t_xs} t_in={t_in}");
    }
}
