//! Element types that can travel in messages.

/// Marker trait for message element types: anything clonable and sendable.
///
/// Payloads are moved between threads as `Vec<T>` behind a type-erased
/// `Box<dyn Any + Send>`; receiving with a mismatched element type is a
/// programming error and panics with a diagnostic (the analogue of an MPI
/// datatype mismatch).
pub trait Elem: Clone + Send + 'static {}

impl<T: Clone + Send + 'static> Elem for T {}

/// Size in bytes of one element, used for cost-model charging. Payload cost
/// is `len * elem_bytes::<T>()`.
pub fn elem_bytes<T>() -> usize {
    std::mem::size_of::<T>().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_sizes() {
        assert_eq!(elem_bytes::<f64>(), 8);
        assert_eq!(elem_bytes::<u32>(), 4);
        // zero-sized types still charge one byte so counts stay visible
        assert_eq!(elem_bytes::<()>(), 1);
    }
}
