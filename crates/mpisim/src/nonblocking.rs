//! One-shot nonblocking operations (`MPI_Isend` / `MPI_Irecv`), the API the
//! paper's applications use *before* migrating to persistent neighborhood
//! collectives (§1: "each parallel application typically implements their
//! own irregular communication with calls to MPI_Isend and MPI_Irecv").

use crate::comm::{Comm, USER_TAG_LIMIT};
use crate::ctx::RankCtx;
use crate::elem::Elem;

/// Handle for a pending nonblocking receive.
#[must_use = "a receive completes only when waited on"]
pub struct IrecvReq<T: Elem> {
    comm: Comm,
    src: usize,
    tag: u64,
    _marker: std::marker::PhantomData<T>,
}

impl<T: Elem> IrecvReq<T> {
    /// Block until the message arrives and return its payload.
    pub fn wait(self, ctx: &mut RankCtx) -> Vec<T> {
        ctx.recv_internal(&self.comm, self.src, self.tag)
    }

    /// Would `wait` return immediately?
    pub fn test(&self, ctx: &RankCtx) -> bool {
        ctx.iprobe(&self.comm, self.src, self.tag)
    }

    /// Non-blocking completion — the mailbox counterpart of the persistent
    /// channels' `try_pop` path: if [`IrecvReq::test`] sees the message,
    /// take it off the mailbox and return its payload; otherwise hand the
    /// still-pending request back. A caller interleaving computation with
    /// arrivals loops `try_wait` the way `NeighborRequest::test` loops
    /// `Channel::try_pop`.
    pub fn try_wait(self, ctx: &mut RankCtx) -> Result<Vec<T>, Self> {
        // test-then-recv is race-free: this rank is the only consumer of
        // its own mailbox, so a probed message cannot disappear before the
        // matched receive picks it up
        if self.test(ctx) {
            Ok(self.wait(ctx))
        } else {
            Err(self)
        }
    }
}

impl RankCtx {
    /// `MPI_Isend`: start a send and return immediately. With the
    /// simulator's buffered semantics the send is complete on return, so no
    /// request object is needed (the analogue of an immediately-ready
    /// `MPI_Request`).
    pub fn isend<T: Elem>(&mut self, comm: &Comm, dst: usize, tag: u64, data: &[T]) {
        assert!(
            tag < USER_TAG_LIMIT,
            "tag {tag} in reserved collective space"
        );
        self.send_internal(comm, dst, tag, data);
    }

    /// `MPI_Irecv`: post a nonblocking receive; complete it with
    /// [`IrecvReq::wait`].
    pub fn irecv<T: Elem>(&self, comm: &Comm, src: usize, tag: u64) -> IrecvReq<T> {
        assert!(
            tag < USER_TAG_LIMIT,
            "tag {tag} in reserved collective space"
        );
        assert!(src < comm.size(), "src {src} out of range");
        IrecvReq {
            comm: comm.clone(),
            src,
            tag,
            _marker: std::marker::PhantomData,
        }
    }

    /// `MPI_Waitall` over receive handles, returning payloads in order.
    pub fn wait_all_recvs<T: Elem>(&mut self, reqs: Vec<IrecvReq<T>>) -> Vec<Vec<T>> {
        reqs.into_iter().map(|r| r.wait(self)).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::World;

    #[test]
    fn isend_irecv_roundtrip() {
        let out = World::run(2, |ctx| {
            let comm = ctx.comm_world();
            let peer = 1 - ctx.rank();
            let req = ctx.irecv::<u64>(&comm, peer, 0);
            ctx.isend(&comm, peer, 0, &[ctx.rank() as u64 + 7]);
            req.wait(ctx)[0]
        });
        assert_eq!(out, vec![8, 7]);
    }

    #[test]
    fn irregular_point_to_point_exchange() {
        // the §1 idiom: post all irecvs, isend everything, waitall
        let out = World::run(4, |ctx| {
            let comm = ctx.comm_world();
            let me = ctx.rank();
            let peers: Vec<usize> = (0..4).filter(|&p| p != me).collect();
            let reqs: Vec<_> = peers
                .iter()
                .map(|&p| ctx.irecv::<u64>(&comm, p, 1))
                .collect();
            for &p in &peers {
                ctx.isend(&comm, p, 1, &[(me * 10 + p) as u64]);
            }
            let got = ctx.wait_all_recvs(reqs);
            got.iter().map(|v| v[0]).sum::<u64>()
        });
        for (me, sum) in out.iter().enumerate() {
            let expect: u64 = (0..4u64)
                .filter(|&p| p != me as u64)
                .map(|p| p * 10 + me as u64)
                .sum();
            assert_eq!(*sum, expect);
        }
    }

    #[test]
    fn try_wait_completes_only_after_arrival() {
        // rank 0 must observe try_wait failing BEFORE rank 1 sends (the
        // send is gated on an out-of-band handshake) and succeeding after
        let out = World::run(2, |ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                let req = ctx.irecv::<u64>(&comm, 1, 0);
                // nothing sent yet: test/try_wait must not complete
                let mut req = match req.try_wait(ctx) {
                    Ok(_) => panic!("completed before the message was sent"),
                    Err(req) => req,
                };
                ctx.send(&comm, 1, 9, &[1u8]); // release the sender
                loop {
                    match req.try_wait(ctx) {
                        Ok(payload) => break payload[0],
                        Err(pending) => {
                            req = pending;
                            std::thread::yield_now();
                        }
                    }
                }
            } else {
                let _: Vec<u8> = ctx.recv(&comm, 0, 9);
                ctx.isend(&comm, 0, 0, &[42u64]);
                0
            }
        });
        assert_eq!(out[0], 42);
    }

    #[test]
    fn test_polls_arrival() {
        let done = World::run(2, |ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                let req = ctx.irecv::<u8>(&comm, 1, 0);
                // spin until the probe sees it (rank 1 sends immediately)
                while !req.test(ctx) {
                    std::thread::yield_now();
                }
                req.wait(ctx);
                true
            } else {
                ctx.isend(&comm, 0, 0, &[1u8]);
                true
            }
        });
        assert!(done.iter().all(|&b| b));
    }
}
