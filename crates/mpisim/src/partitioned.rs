//! Partitioned point-to-point communication (MPI 4, `MPI_Psend_init` /
//! `MPI_Precv_init` / `MPI_Pready` / `MPI_Parrived`).
//!
//! Partitioned communication extends the persistent interface so that
//! independently-produced chunks of one large message can be handed to the
//! transport as they become ready, instead of waiting for the whole buffer
//! (paper §2.1 and §5, citing Grant et al. "Finepoints"). The paper's
//! future-work section proposes combining it with locality-aware
//! aggregation — `mpi_advance::collective` consumes this API for that
//! extension.
//!
//! Semantics implemented here: each partition travels as its own message
//! the moment `pready` is called; the receive side completes when all
//! partitions have arrived (`wait`), and individual partitions can be
//! polled with `parrived`. Like the plain persistent requests, every
//! partition's signature is matched to its peer **once at init time**: each
//! partition owns a pre-matched channel, so `pready` deposits into the
//! partition's slot and `parrived`/`wait` copy straight into the registered
//! buffer window — no mailbox probing or scanning per iteration.

use crate::comm::{Comm, USER_TAG_LIMIT};
use crate::ctx::RankCtx;
use crate::elem::{elem_bytes, Elem};
use crate::persistent::SharedBuf;
use crate::state::{ChanRegistrar, Channel, WaitChans};
use std::sync::Arc;

/// Reserved tag stride so each partition gets a distinct sub-tag.
const PART_TAG_STRIDE: u64 = 1 << 20;

fn part_tag(tag: u64, partition: usize) -> u64 {
    // fold the partition index into the tag space above the user tag
    tag + PART_TAG_STRIDE * (partition as u64 + 1)
}

/// Partitioned persistent send of a buffer split at explicit boundaries
/// (equal chunks via [`RankCtx::psend_init`], arbitrary chunks via
/// [`RankCtx::psend_init_parts`]).
pub struct PsendReq<T: Elem> {
    dst_world: usize,
    buf: SharedBuf<T>,
    /// Prefix offsets: partition `p` covers `bounds[p] .. bounds[p+1]`.
    bounds: Vec<usize>,
    /// One pre-matched channel per partition.
    chans: Vec<Arc<Channel<T>>>,
    ready: Vec<bool>,
}

impl<T: Elem> PsendReq<T> {
    /// Range of `partition` within the buffer.
    pub fn partition_range(&self, partition: usize) -> std::ops::Range<usize> {
        assert!(
            partition + 1 < self.bounds.len(),
            "partition {partition} out of range"
        );
        self.bounds[partition]..self.bounds[partition + 1]
    }

    /// Begin a new iteration: all partitions become not-ready.
    pub fn start(&mut self) {
        assert!(
            self.ready.iter().all(|&r| !r) || self.ready.iter().all(|&r| r),
            "start in the middle of an iteration"
        );
        self.ready.iter_mut().for_each(|r| *r = false);
    }

    /// `MPI_Pready`: partition `partition` of the buffer is final; ship it.
    pub fn pready(&mut self, ctx: &mut RankCtx, partition: usize) {
        let range = self.partition_range(partition);
        assert!(
            !self.ready[partition],
            "partition {partition} marked ready twice"
        );
        self.ready[partition] = true;
        // program-ordered fault-injection point: one op per shipped partition
        ctx.world
            .inject(ctx.rank, crate::transport::FaultOp::ChanPush);
        let guard = self.buf.read();
        let arrival = ctx.charge_send(self.dst_world, range.len() * elem_bytes::<T>());
        self.chans[partition].push(&guard[range], arrival);
    }

    /// Complete the iteration (all partitions must have been made ready).
    pub fn wait(&self) {
        assert!(
            self.ready.iter().all(|&r| r),
            "wait with partitions never marked ready: {:?}",
            self.ready
                .iter()
                .enumerate()
                .filter(|(_, &r)| !r)
                .map(|(i, _)| i)
                .collect::<Vec<_>>()
        );
    }

    pub fn n_parts(&self) -> usize {
        self.bounds.len() - 1
    }
}

/// Partitioned persistent receive matching a [`PsendReq`] with the same
/// geometry.
pub struct PrecvReq<T: Elem> {
    comm: Comm,
    src: usize,
    tag: u64,
    buf: SharedBuf<T>,
    bounds: Vec<usize>,
    chans: Vec<Arc<Channel<T>>>,
    arrived: Vec<bool>,
}

impl<T: Elem> PrecvReq<T> {
    fn partition_range(&self, partition: usize) -> std::ops::Range<usize> {
        self.bounds[partition]..self.bounds[partition + 1]
    }

    /// Begin a new iteration.
    pub fn start(&mut self) {
        self.arrived.iter_mut().for_each(|a| *a = false);
    }

    /// `MPI_Parrived`: has `partition` already landed? (Non-blocking; if it
    /// has, it is drained into the buffer.)
    pub fn parrived(&mut self, ctx: &mut RankCtx, partition: usize) -> bool {
        if self.arrived[partition] {
            return true;
        }
        if self.chans[partition].ready() {
            self.drain(ctx, partition);
            true
        } else {
            false
        }
    }

    /// Copy `partition` out of its channel slot (blocking if it has not
    /// arrived yet).
    fn drain(&mut self, ctx: &mut RankCtx, partition: usize) {
        let range = self.partition_range(partition);
        // block on the channel BEFORE taking the buffer lock, probing the
        // mailbox for mixed plain traffic while stalled (see
        // `RecvReq::wait`)
        let world = Arc::clone(&ctx.world);
        let keys = [self.chans[partition].key()];
        let guard = world.begin_wait(ctx.rank, "partitioned recv", WaitChans::Keys(&keys));
        let (data, arrival) = self.chans[partition].pop_with(|| {
            guard.tick();
            assert!(
                !ctx.iprobe(&self.comm, self.src, part_tag(self.tag, partition)),
                "partitioned recv from {} tag {} partition {partition}: matching \
                 message sits in the plain mailbox — mixing plain sends with \
                 partitioned receives on one signature is unsupported",
                self.src,
                self.tag
            );
        });
        assert_eq!(
            data.len(),
            range.len(),
            "partition {partition} (channel {:?}): expected {} elements, got {}",
            self.chans[partition].key(),
            range.len(),
            data.len()
        );
        self.buf.write()[range].clone_from_slice(&data);
        self.chans[partition].recycle(data);
        ctx.charge_recv(arrival);
        self.arrived[partition] = true;
    }

    /// Block until every partition has arrived.
    pub fn wait(&mut self, ctx: &mut RankCtx) {
        for p in 0..self.n_parts() {
            if !self.arrived[p] {
                self.drain(ctx, p);
            }
        }
    }

    /// Non-blocking [`PrecvReq::wait`]: drain every partition that has
    /// already been delivered into the buffer and report whether the whole
    /// receive is complete. The completion-driven lifecycle
    /// (`NeighborRequest::test`) makes progress through this.
    pub fn try_wait(&mut self, ctx: &mut RankCtx) -> bool {
        let mut done = true;
        // deliberately not short-circuiting: every arrived partition
        // drains this round, whatever order they landed in
        for p in 0..self.n_parts() {
            done &= self.parrived(ctx, p);
        }
        done
    }

    /// Append a type-erased handle per **unarrived** partition channel, for
    /// parking on the set ([`RankCtx::wait_any`]).
    pub fn pending_chan_ids(&self, out: &mut Vec<crate::ChanId>) {
        for (p, arrived) in self.arrived.iter().enumerate() {
            if !arrived {
                out.push(self.chans[p].id());
            }
        }
    }

    /// Block until some unarrived partition has been delivered, **without
    /// consuming it** (a following [`PrecvReq::try_wait`] drains it). The
    /// completion-driven `wait` parks here between `test` rounds; every
    /// partition is necessary, so parking on the first unarrived one never
    /// waits for anything the receive does not need.
    pub fn wait_ready(&self, ctx: &RankCtx) {
        let Some(p) = self.arrived.iter().position(|&a| !a) else {
            return;
        };
        let world = Arc::clone(&ctx.world);
        let keys = [self.chans[p].key()];
        let guard = world.begin_wait(ctx.rank, "partitioned recv", WaitChans::Keys(&keys));
        self.chans[p].wait_nonempty(|| {
            guard.tick();
            assert!(
                !ctx.iprobe(&self.comm, self.src, part_tag(self.tag, p)),
                "partitioned recv from {} tag {} partition {p}: matching \
                 message sits in the plain mailbox — mixing plain sends with \
                 partitioned receives on one signature is unsupported",
                self.src,
                self.tag
            );
        });
    }

    pub fn n_parts(&self) -> usize {
        self.bounds.len() - 1
    }
}

/// Build equal-chunk boundaries (the final chunk absorbs the remainder).
fn equal_bounds(total_len: usize, n_parts: usize) -> Vec<usize> {
    assert!(n_parts > 0, "need at least one partition");
    assert!(n_parts <= total_len.max(1), "more partitions than elements");
    let part_len = total_len / n_parts;
    let mut bounds: Vec<usize> = (0..n_parts).map(|p| p * part_len).collect();
    bounds.push(total_len);
    bounds
}

fn validate_bounds(bounds: &[usize], total_len: usize) {
    assert!(bounds.len() >= 2, "bounds need at least one partition");
    assert_eq!(bounds[0], 0, "bounds must start at 0");
    assert_eq!(
        *bounds.last().unwrap(),
        total_len,
        "bounds must cover the buffer"
    );
    for w in bounds.windows(2) {
        assert!(w[0] <= w[1], "bounds must be non-decreasing");
    }
}

impl ChanRegistrar<'_> {
    /// [`RankCtx::psend_init_parts`] under the held registry lock.
    pub fn psend_init_parts<T: Elem>(
        &mut self,
        comm: &Comm,
        dst: usize,
        tag: u64,
        buf: SharedBuf<T>,
        bounds: Vec<usize>,
    ) -> PsendReq<T> {
        assert!(
            tag < USER_TAG_LIMIT / 2,
            "tag {tag} too large for partitioned sub-tags"
        );
        validate_bounds(&bounds, buf.read().len());
        let n_parts = bounds.len() - 1;
        let chans = (0..n_parts)
            .map(|p| {
                self.channel_sized(
                    (comm.ctx_id, comm.rank(), dst, part_tag(tag, p)),
                    comm.world_rank(dst),
                    bounds[p + 1] - bounds[p],
                )
            })
            .collect();
        PsendReq {
            dst_world: comm.world_rank(dst),
            buf,
            bounds,
            chans,
            ready: vec![true; n_parts], // "completed" state before first start
        }
    }

    /// [`RankCtx::precv_init_parts`] under the held registry lock.
    pub fn precv_init_parts<T: Elem>(
        &mut self,
        comm: &Comm,
        src: usize,
        tag: u64,
        buf: SharedBuf<T>,
        bounds: Vec<usize>,
    ) -> PrecvReq<T> {
        assert!(
            tag < USER_TAG_LIMIT / 2,
            "tag {tag} too large for partitioned sub-tags"
        );
        validate_bounds(&bounds, buf.read().len());
        let n_parts = bounds.len() - 1;
        let chans = (0..n_parts)
            .map(|p| {
                self.channel_sized(
                    (comm.ctx_id, src, comm.rank(), part_tag(tag, p)),
                    comm.world_rank(comm.rank()),
                    bounds[p + 1] - bounds[p],
                )
            })
            .collect();
        PrecvReq {
            comm: comm.clone(),
            src,
            tag,
            buf,
            bounds,
            chans,
            arrived: vec![false; n_parts],
        }
    }
}

impl RankCtx {
    /// `MPI_Psend_init`: register a partitioned send of the whole shared
    /// buffer, split into `n_parts` equal chunks.
    pub fn psend_init<T: Elem>(
        &self,
        comm: &Comm,
        dst: usize,
        tag: u64,
        buf: SharedBuf<T>,
        n_parts: usize,
    ) -> PsendReq<T> {
        let total_len = buf.read().len();
        self.psend_init_parts(comm, dst, tag, buf, equal_bounds(total_len, n_parts))
    }

    /// Partitioned send with explicit partition boundaries (prefix offsets,
    /// `bounds[p] .. bounds[p+1]` per partition). Used by the
    /// locality-aware partitioned collectives, whose partitions are the
    /// variable-sized contributions of each staging rank.
    pub fn psend_init_parts<T: Elem>(
        &self,
        comm: &Comm,
        dst: usize,
        tag: u64,
        buf: SharedBuf<T>,
        bounds: Vec<usize>,
    ) -> PsendReq<T> {
        self.chan_registrar()
            .psend_init_parts(comm, dst, tag, buf, bounds)
    }

    /// `MPI_Precv_init` with equal chunks.
    pub fn precv_init<T: Elem>(
        &self,
        comm: &Comm,
        src: usize,
        tag: u64,
        buf: SharedBuf<T>,
        n_parts: usize,
    ) -> PrecvReq<T> {
        let total_len = buf.read().len();
        self.precv_init_parts(comm, src, tag, buf, equal_bounds(total_len, n_parts))
    }

    /// Partitioned receive with explicit boundaries (must mirror the
    /// sender's).
    pub fn precv_init_parts<T: Elem>(
        &self,
        comm: &Comm,
        src: usize,
        tag: u64,
        buf: SharedBuf<T>,
        bounds: Vec<usize>,
    ) -> PrecvReq<T> {
        self.chan_registrar()
            .precv_init_parts(comm, src, tag, buf, bounds)
    }
}

#[cfg(test)]
mod tests {
    use crate::persistent::shared_buf;
    use crate::runtime::World;

    #[test]
    fn partitions_cover_buffer_with_remainder() {
        World::run(1, |ctx| {
            let comm = ctx.comm_world();
            let buf = shared_buf(vec![0u8; 10]);
            let req = ctx.psend_init(&comm, 0, 0, buf, 3);
            assert_eq!(req.partition_range(0), 0..3);
            assert_eq!(req.partition_range(1), 3..6);
            assert_eq!(req.partition_range(2), 6..10); // remainder absorbed
        });
    }

    #[test]
    fn partitioned_roundtrip_out_of_order() {
        World::run(2, |ctx| {
            let comm = ctx.comm_world();
            const N: usize = 12;
            const PARTS: usize = 4;
            if ctx.rank() == 0 {
                let buf = shared_buf(vec![0.0f64; N]);
                let mut req = ctx.psend_init(&comm, 1, 3, buf.clone(), PARTS);
                for it in 0..3 {
                    req.start();
                    // partitions become ready out of order
                    for &p in &[2usize, 0, 3, 1] {
                        let range = req.partition_range(p);
                        {
                            let mut g = buf.write();
                            for i in range.clone() {
                                g[i] = (it * 100 + i) as f64;
                            }
                        }
                        req.pready(ctx, p);
                    }
                    req.wait();
                }
            } else {
                let buf = shared_buf(vec![0.0f64; N]);
                let mut req = ctx.precv_init(&comm, 0, 3, buf.clone(), PARTS);
                for it in 0..3 {
                    req.start();
                    req.wait(ctx);
                    let g = buf.read();
                    for i in 0..N {
                        assert_eq!(g[i], (it * 100 + i) as f64, "iter {it} elem {i}");
                    }
                }
            }
        });
    }

    #[test]
    fn parrived_polls_individual_partitions() {
        World::run(2, |ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                let buf = shared_buf(vec![7u32; 8]);
                let mut req = ctx.psend_init(&comm, 1, 0, buf, 2);
                req.start();
                req.pready(ctx, 1); // only the second partition so far
                                    // signal "partition 1 sent" out of band
                ctx.send(&comm, 1, 9, &[1u8]);
                let _: Vec<u8> = ctx.recv(&comm, 1, 10); // wait for probe check
                req.pready(ctx, 0);
                req.wait();
            } else {
                let buf = shared_buf(vec![0u32; 8]);
                let mut req = ctx.precv_init(&comm, 0, 0, buf.clone(), 2);
                req.start();
                let _: Vec<u8> = ctx.recv(&comm, 0, 9);
                // partition 1 must be observable, partition 0 must not
                while !req.parrived(ctx, 1) {
                    std::thread::yield_now();
                }
                assert!(!req.parrived(ctx, 0));
                ctx.send(&comm, 0, 10, &[1u8]);
                req.wait(ctx);
                assert!(buf.read().iter().all(|&v| v == 7));
            }
        });
    }

    #[test]
    #[should_panic(expected = "ready twice")]
    fn double_pready_panics() {
        World::run(1, |ctx| {
            let comm = ctx.comm_world();
            let buf = shared_buf(vec![0u8; 4]);
            let mut req = ctx.psend_init(&comm, 0, 0, buf, 2);
            req.start();
            req.pready(ctx, 0);
            req.pready(ctx, 0);
        });
    }

    #[test]
    #[should_panic(expected = "never marked ready")]
    fn wait_before_all_ready_panics() {
        World::run(1, |ctx| {
            let comm = ctx.comm_world();
            let buf = shared_buf(vec![0u8; 4]);
            let mut req = ctx.psend_init(&comm, 0, 0, buf, 2);
            req.start();
            req.pready(ctx, 0);
            req.wait();
        });
    }
}
