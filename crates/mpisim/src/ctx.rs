//! The per-rank handle: point-to-point operations and the virtual clock.

use crate::comm::{Comm, USER_TAG_LIMIT};
use crate::elem::{elem_bytes, Elem};
use crate::state::{Envelope, Payload, WorldState};
use crate::transport::PayloadMode;
use std::sync::Arc;

/// Handle through which a rank's SPMD closure talks to the world.
pub struct RankCtx {
    pub(crate) world: Arc<WorldState>,
    /// World rank of this context.
    pub(crate) rank: usize,
    /// Virtual clock in seconds (always 0 when running unmodeled).
    pub(crate) clock: f64,
}

impl RankCtx {
    pub(crate) fn new(world: Arc<WorldState>, rank: usize) -> Self {
        Self {
            world,
            rank,
            clock: 0.0,
        }
    }

    /// World rank of this process.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.world.n_ranks
    }

    /// The world communicator containing every rank.
    pub fn comm_world(&self) -> Comm {
        Comm::world(self.world.n_ranks, self.rank)
    }

    /// Current virtual time of this rank (0 if unmodeled).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Charge local computation time to the virtual clock.
    pub fn charge_compute(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.clock += seconds;
    }

    /// True when a cost model is attached.
    pub fn is_modeled(&self) -> bool {
        self.world.model.is_some()
    }

    /// Which fabric this world moves bytes over (`"thread"`, `"shm"`, or
    /// `"sock"`) — the same string stall forensics report. Protocol
    /// autotuning keys its persistent profile cache by this, since a
    /// winner measured on one fabric says nothing about another.
    pub fn fabric(&self) -> &'static str {
        self.world.fabric()
    }

    // ---- internal helpers -------------------------------------------------

    /// Modeled transfer time of a message to world rank `dst`, or 0.
    pub(crate) fn model_msg_time(&self, dst_world: usize, bytes: usize) -> f64 {
        match &self.world.model {
            Some(m) => m
                .model
                .msg_time(m.topo.classify(self.rank, dst_world), bytes),
            None => 0.0,
        }
    }

    pub(crate) fn model_match_time(&self, queue_len: usize) -> f64 {
        match &self.world.model {
            Some(m) => m.model.match_time(queue_len),
            None => 0.0,
        }
    }

    /// Charge the virtual clock for injecting `bytes` to world rank
    /// `dst_world` and return the modeled arrival time (the persistent
    /// channels' counterpart of the mailbox send path).
    pub(crate) fn charge_send(&mut self, dst_world: usize, bytes: usize) -> f64 {
        let arrival = self.clock + self.model_msg_time(dst_world, bytes);
        self.clock = arrival;
        arrival
    }

    /// Merge a received message's modeled arrival time into the virtual
    /// clock. Pre-matched channels pay no queue-search term — that is the
    /// point of matching at init time (`match_time(0)` in model terms).
    pub(crate) fn charge_recv(&mut self, arrival: f64) {
        self.clock = self.clock.max(arrival);
    }

    /// Open the world's persistent-channel registry for a bulk
    /// registration pass: every signature resolved through the returned
    /// [`crate::ChanRegistrar`] shares one lock acquisition, so a whole
    /// collective's (or a whole batch's) channels register in a single
    /// pass over the registry. Do not call other registration methods or
    /// move traffic while the registrar is alive — it holds the registry
    /// lock.
    pub fn chan_registrar(&self) -> crate::state::ChanRegistrar<'_> {
        self.world.chan_registrar()
    }

    /// Non-blocking arrival poll over a set of persistent channels: the
    /// index of the first channel with a delivered, unconsumed message, or
    /// `None` if nothing has arrived yet. The completion-driven request
    /// lifecycle (`NeighborRequest::test`) is built on this plus
    /// [`crate::RecvChan::try_take`].
    pub fn poll_any(&self, chans: &[crate::ChanId]) -> Option<usize> {
        self.world.poll_any(self.rank, chans)
    }

    /// Block until **some** channel of the set has a message and return its
    /// index. Yield-spins briefly, then futex-parks on the whole set (one
    /// park point, woken by whichever deposit lands first) — so a caller
    /// looping `wait_any` completes receives in **delivery order**, not the
    /// order the channels were registered in. Panics via the stall probe if
    /// a peer rank died this epoch.
    ///
    /// The arrival is only *observed*, never consumed: take it off with the
    /// owning receive half (e.g. [`crate::RecvChan::try_take`]), which is
    /// also where the modeled clock merge happens.
    pub fn wait_any(&self, chans: &[crate::ChanId]) -> usize {
        self.world.wait_any(self.rank, chans)
    }

    /// Send `data` to communicator rank `dst` (buffered semantics: completes
    /// locally). `tag` must be below the user tag limit.
    pub fn send<T: Elem>(&mut self, comm: &Comm, dst: usize, tag: u64, data: &[T]) {
        assert!(
            tag < USER_TAG_LIMIT,
            "tag {tag} in reserved collective space"
        );
        self.send_internal(comm, dst, tag, data);
    }

    /// Tag-unchecked send used by collectives.
    pub(crate) fn send_internal<T: Elem>(&mut self, comm: &Comm, dst: usize, tag: u64, data: &[T]) {
        let dst_world = comm.world_rank(dst);
        let bytes = data.len() * elem_bytes::<T>();
        // Sender is occupied for the injection portion of the transfer; for
        // simplicity the full postal time is charged (α-dominated patterns
        // make the distinction immaterial at the scales studied here).
        let arrival = self.charge_send(dst_world, bytes);
        let payload = match self.world.payload_mode() {
            PayloadMode::Typed => Payload::typed(data.to_vec()),
            PayloadMode::Bytes => Payload::bytes_from(data),
        };
        self.world.deposit(
            self.rank,
            dst_world,
            Envelope {
                ctx_id: comm.ctx_id,
                src: comm.rank(),
                tag,
                arrival,
                payload,
            },
        );
    }

    /// Blocking matched receive from communicator rank `src` with `tag`.
    pub fn recv<T: Elem>(&mut self, comm: &Comm, src: usize, tag: u64) -> Vec<T> {
        assert!(
            tag < USER_TAG_LIMIT,
            "tag {tag} in reserved collective space"
        );
        self.recv_internal(comm, src, tag)
    }

    pub(crate) fn recv_internal<T: Elem>(&mut self, comm: &Comm, src: usize, tag: u64) -> Vec<T> {
        let (env, searched) = self
            .world
            .match_recv(self.rank, comm.ctx_id, src, comm.rank(), tag);
        self.clock = self.clock.max(env.arrival) + self.model_match_time(searched);
        env.payload.take::<T>().unwrap_or_else(|sent| {
            panic!(
                "datatype mismatch receiving from rank {src} tag {tag}: \
                 sent {sent}, receiving {}",
                std::any::type_name::<T>()
            )
        })
    }

    /// Would `recv(comm, src, tag)` complete without blocking?
    pub fn iprobe(&self, comm: &Comm, src: usize, tag: u64) -> bool {
        self.world.probe(self.rank, comm.ctx_id, src, tag)
    }

    /// Split `comm` by `color`; ranks with equal color form a new
    /// communicator ordered by `key` (ties broken by old rank). Collective.
    pub fn comm_split(&mut self, comm: &Comm, color: u64, key: u64) -> Comm {
        // Gather (color, key, world_rank) from every member.
        let mine = [color, key, self.rank as u64];
        let all = self.allgather(comm, &mine);
        let ctx_id = comm.child_ctx_id(color);
        let mut members: Vec<(u64, u64)> = all
            .chunks_exact(3)
            .filter(|c| c[0] == color)
            .map(|c| (c[1], c[2]))
            .collect();
        members.sort_unstable();
        let ranks: Vec<usize> = members.iter().map(|&(_, w)| w as usize).collect();
        let my_rank = ranks
            .iter()
            .position(|&w| w == self.rank)
            .expect("calling rank is in its own color group");
        Comm {
            ctx_id,
            ranks: Arc::new(ranks),
            my_rank,
            coll_seq: std::cell::Cell::new(0),
            split_seq: std::cell::Cell::new(0),
            dup_seq: std::cell::Cell::new(0),
        }
    }

    /// Absorb the recorded rank-death marker **for this rank**, if one
    /// is set.
    ///
    /// This is the service-layer recovery hook: a scheduler that contains a
    /// tenant's panic (e.g. a seeded `kill=` fault) inside one task calls
    /// this to absorb the peer-death flag the fault path raised, so *this
    /// rank's* blocked waits stop aborting. The flag itself stays raised
    /// for the rest of the epoch — peers that are still blocked on the
    /// dead tenant's traffic (possibly deep inside a synchronous protocol
    /// step) need the abort it drives to escape; each absorbs it for
    /// itself when its own recovery runs. Returns the failure message the
    /// first time this rank absorbs it, `None` thereafter (so a caller
    /// can tell a fresh death from one it has already handled). Outside
    /// such a scheduler the flag should be left alone — it is what makes
    /// deadlocks-after-death loud.
    pub fn absorb_rank_failure(&self) -> Option<String> {
        self.world.absorb_rank_failure(self.rank())
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::World;

    #[test]
    fn ring_exchange() {
        let out = World::run(5, |ctx| {
            let comm = ctx.comm_world();
            let n = ctx.size();
            let right = (ctx.rank() + 1) % n;
            let left = (ctx.rank() + n - 1) % n;
            ctx.send(&comm, right, 0, &[ctx.rank() as u32 * 10]);
            let v: Vec<u32> = ctx.recv(&comm, left, 0);
            v[0]
        });
        assert_eq!(out, vec![40, 0, 10, 20, 30]);
    }

    #[test]
    fn tags_keep_messages_apart() {
        let out = World::run(2, |ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                ctx.send(&comm, 1, 1, &[1i64]);
                ctx.send(&comm, 1, 2, &[2i64]);
                0
            } else {
                // receive in reverse tag order
                let b: Vec<i64> = ctx.recv(&comm, 0, 2);
                let a: Vec<i64> = ctx.recv(&comm, 0, 1);
                (b[0] * 10 + a[0]) as i32
            }
        });
        assert_eq!(out[1], 21);
    }

    #[test]
    #[should_panic(expected = "datatype mismatch")]
    fn datatype_mismatch_panics() {
        World::run(2, |ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                ctx.send(&comm, 1, 0, &[1.0f64]);
            } else {
                let _: Vec<u32> = ctx.recv(&comm, 0, 0);
            }
        });
    }

    #[test]
    fn comm_split_groups_by_color() {
        let out = World::run(6, |ctx| {
            let comm = ctx.comm_world();
            let color = (ctx.rank() % 2) as u64;
            let sub = ctx.comm_split(&comm, color, ctx.rank() as u64);
            // ring within the subcommunicator
            let n = sub.size();
            let right = (sub.rank() + 1) % n;
            let left = (sub.rank() + n - 1) % n;
            ctx.send(&sub, right, 3, &[ctx.rank() as u64]);
            let v: Vec<u64> = ctx.recv(&sub, left, 3);
            (sub.size(), v[0])
        });
        // evens: 0,2,4; odds: 1,3,5
        assert_eq!(out[0], (3, 4));
        assert_eq!(out[2], (3, 0));
        assert_eq!(out[1], (3, 5));
        assert_eq!(out[5], (3, 3));
    }

    #[test]
    fn modeled_clock_advances() {
        use locality::Topology;
        use perfmodel::PostalModel;
        use std::sync::Arc;
        let topo = Topology::block_nodes(2, 1); // two nodes, 1 rank each
        let model = Arc::new(PostalModel::new(1e-6, 1e-9));
        let clocks = World::run_modeled(topo, model, |ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                ctx.send(&comm, 1, 0, &[0u8; 1000]);
            } else {
                let _: Vec<u8> = ctx.recv(&comm, 0, 0);
            }
            ctx.clock()
        });
        let expect = 1e-6 + 1000.0 * 1e-9;
        assert!((clocks[0] - expect).abs() < 1e-12);
        assert!((clocks[1] - expect).abs() < 1e-12);
    }
}
