//! Distributed-graph topology communicators
//! (`MPI_Dist_graph_create_adjacent`) and the non-persistent neighborhood
//! collective baseline.
//!
//! The paper benchmarks graph creation under two MPI implementations with
//! very different scaling (Figure 6: MVAPICH 8.6× faster than Spectrum MPI
//! at 2048 cores). The two archetypes are implemented here:
//!
//! * [`GraphCreateStrategy::AllGather`] ("spectrum-like") — gathers the full
//!   global adjacency on every rank and cross-validates the local edge lists
//!   against it; work grows with the *global* edge count, so it scales
//!   poorly.
//! * [`GraphCreateStrategy::Personalized`] ("mvapich-like") — each rank
//!   handshakes only with its own neighbors; work is proportional to the
//!   local degree.

use crate::comm::Comm;
use crate::ctx::RankCtx;
use crate::elem::Elem;

/// How `dist_graph_create_adjacent` builds and validates the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphCreateStrategy {
    /// Gather the global adjacency everywhere and validate (poorly scaling).
    AllGather,
    /// Pairwise handshakes with neighbors only (well scaling).
    Personalized,
}

/// Seconds of processing charged per adjacency edge scanned during graph
/// creation (calibrated so the modeled Figure 6 magnitudes land near the
/// paper's measurements).
pub const GRAPH_SCAN_SECONDS_PER_EDGE: f64 = 1.8e-7;

/// A topology communicator: the parent communicator plus directed neighbor
/// lists, as returned by `MPI_Dist_graph_create_adjacent`.
pub struct DistGraphComm {
    /// Communicator the neighborhood lives on (a private matching context).
    pub comm: Comm,
    /// Ranks this process receives from (in-edges), communicator order.
    pub sources: Vec<usize>,
    /// Ranks this process sends to (out-edges), communicator order.
    pub dests: Vec<usize>,
}

impl DistGraphComm {
    pub fn indegree(&self) -> usize {
        self.sources.len()
    }

    pub fn outdegree(&self) -> usize {
        self.dests.len()
    }
}

impl RankCtx {
    /// `MPI_Dist_graph_create_adjacent`: collectively build a topology
    /// communicator from each rank's in/out neighbor lists.
    ///
    /// Both strategies return identical communicators; they differ in the
    /// communication and validation work performed (and therefore in the
    /// modeled cost), mirroring the implementation-quality gap of Figure 6.
    pub fn dist_graph_create_adjacent(
        &mut self,
        comm: &Comm,
        sources: Vec<usize>,
        dests: Vec<usize>,
        strategy: GraphCreateStrategy,
    ) -> DistGraphComm {
        for &r in sources.iter().chain(dests.iter()) {
            assert!(r < comm.size(), "neighbor {r} out of range");
        }
        match strategy {
            GraphCreateStrategy::AllGather => {
                // Gather every rank's out-edge list, then verify that each
                // claimed in-edge has a matching out-edge somewhere.
                let mine: Vec<u64> = dests.iter().map(|&d| d as u64).collect();
                let (all, counts) = self.allgatherv(comm, &mine);
                let total_edges = all.len();
                // offsets of each rank's slice in `all`
                let mut offset = 0usize;
                let mut claims_to_me = 0usize;
                for (r, &c) in counts.iter().enumerate() {
                    for &d in &all[offset..offset + c] {
                        if d as usize == comm.rank() {
                            claims_to_me += 1;
                        }
                        let _ = r;
                    }
                    offset += c;
                }
                assert_eq!(
                    claims_to_me,
                    sources.len(),
                    "rank {}: {} ranks declare edges to us but {} sources given",
                    comm.rank(),
                    claims_to_me,
                    sources.len()
                );
                self.charge_compute(GRAPH_SCAN_SECONDS_PER_EDGE * total_edges as f64);
                self.barrier(comm);
            }
            GraphCreateStrategy::Personalized => {
                // Handshake with each neighbor directly.
                let tag = comm.next_coll_tag();
                for &d in &dests {
                    self.send_internal::<u8>(comm, d, tag, &[]);
                }
                for &s in &sources {
                    let _: Vec<u8> = self.recv_internal(comm, s, tag);
                }
                self.charge_compute(
                    GRAPH_SCAN_SECONDS_PER_EDGE * (sources.len() + dests.len()) as f64,
                );
                self.barrier(comm);
            }
        }
        let mut sorted_src = sources;
        let mut sorted_dst = dests;
        sorted_src.sort_unstable();
        sorted_dst.sort_unstable();
        DistGraphComm {
            // The color is shared so every member lands in the same context.
            comm: self.comm_split(comm, u64::MAX - 1, comm.rank() as u64),
            sources: sorted_src,
            dests: sorted_dst,
        }
    }

    /// Non-persistent `MPI_Neighbor_alltoallv` baseline: `send[i]` goes to
    /// `graph.dests[i]`; returns one vector per source, in `graph.sources`
    /// order. This is the unoptimized blocking operation the persistent
    /// implementations in `mpi-advance` improve upon.
    pub fn neighbor_alltoallv<T: Elem>(
        &mut self,
        graph: &DistGraphComm,
        send: &[Vec<T>],
    ) -> Vec<Vec<T>> {
        assert_eq!(
            send.len(),
            graph.dests.len(),
            "one send block per destination"
        );
        let tag = graph.comm.next_coll_tag();
        for (i, &d) in graph.dests.iter().enumerate() {
            self.send_internal(&graph.comm, d, tag, &send[i]);
        }
        graph
            .sources
            .iter()
            .map(|&s| self.recv_internal(&graph.comm, s, tag))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::World;

    /// 4-rank directed cycle: r sends to r+1.
    fn cycle_lists(rank: usize, n: usize) -> (Vec<usize>, Vec<usize>) {
        (vec![(rank + n - 1) % n], vec![(rank + 1) % n])
    }

    #[test]
    fn graph_create_both_strategies_agree() {
        for strategy in [
            GraphCreateStrategy::AllGather,
            GraphCreateStrategy::Personalized,
        ] {
            let out = World::run(4, move |ctx| {
                let comm = ctx.comm_world();
                let (src, dst) = cycle_lists(ctx.rank(), 4);
                let g = ctx.dist_graph_create_adjacent(&comm, src, dst, strategy);
                (
                    g.indegree(),
                    g.outdegree(),
                    g.sources.clone(),
                    g.dests.clone(),
                )
            });
            for (r, (ind, outd, src, dst)) in out.iter().enumerate() {
                assert_eq!(*ind, 1);
                assert_eq!(*outd, 1);
                assert_eq!(src[0], (r + 3) % 4);
                assert_eq!(dst[0], (r + 1) % 4);
            }
        }
    }

    #[test]
    fn neighbor_alltoallv_moves_data() {
        let out = World::run(4, |ctx| {
            let comm = ctx.comm_world();
            let (src, dst) = cycle_lists(ctx.rank(), 4);
            let g =
                ctx.dist_graph_create_adjacent(&comm, src, dst, GraphCreateStrategy::Personalized);
            let send = vec![vec![ctx.rank() as u64 * 100]];
            let recvd = ctx.neighbor_alltoallv(&g, &send);
            recvd[0][0]
        });
        assert_eq!(out, vec![300, 0, 100, 200]);
    }

    #[test]
    fn irregular_neighborhood() {
        // rank 0 sends to 1,2,3; ranks 1..3 send back to 0.
        let out = World::run(4, |ctx| {
            let comm = ctx.comm_world();
            let (src, dst) = if ctx.rank() == 0 {
                (vec![1, 2, 3], vec![1, 2, 3])
            } else {
                (vec![0], vec![0])
            };
            let g = ctx.dist_graph_create_adjacent(&comm, src, dst, GraphCreateStrategy::AllGather);
            if ctx.rank() == 0 {
                let send: Vec<Vec<u32>> = vec![vec![10], vec![20], vec![30]];
                let r = ctx.neighbor_alltoallv(&g, &send);
                r.into_iter().map(|v| v[0]).sum::<u32>()
            } else {
                let send = vec![vec![ctx.rank() as u32]];
                let r = ctx.neighbor_alltoallv(&g, &send);
                r[0][0]
            }
        });
        assert_eq!(out[0], 1 + 2 + 3);
        assert_eq!(out[1], 10);
        assert_eq!(out[2], 20);
        assert_eq!(out[3], 30);
    }

    #[test]
    fn allgather_strategy_charges_more_with_scale() {
        use locality::Topology;
        use perfmodel::LocalityModel;
        use std::sync::Arc;
        let run = |n: usize, strategy: GraphCreateStrategy| -> f64 {
            let topo = Topology::block_nodes(n, 4);
            let model = Arc::new(LocalityModel::lassen());
            let clocks = World::run_modeled(topo, model, move |ctx| {
                let comm = ctx.comm_world();
                let (src, dst) = cycle_lists(ctx.rank(), n);
                ctx.dist_graph_create_adjacent(&comm, src, dst, strategy);
                ctx.clock()
            });
            clocks.iter().cloned().fold(0.0, f64::max)
        };
        let ag = run(16, GraphCreateStrategy::AllGather);
        let pp = run(16, GraphCreateStrategy::Personalized);
        assert!(ag > pp, "allgather {ag} should exceed personalized {pp}");
    }

    #[test]
    #[should_panic(expected = "sources given")]
    fn inconsistent_adjacency_detected() {
        // Both ranks claim an in-edge no one declares as an out-edge, so
        // both detect the inconsistency (keeping the failure symmetric —
        // an asymmetric panic would leave the healthy rank blocked in the
        // trailing barrier).
        World::run(2, |ctx| {
            let comm = ctx.comm_world();
            let src = vec![1 - ctx.rank()];
            ctx.dist_graph_create_adjacent(&comm, src, vec![], GraphCreateStrategy::AllGather);
        });
    }
}
