//! Stall-probe cadence, wait deadlines, and stall forensics.
//!
//! Every blocking primitive in the runtime wakes on a short timer (the
//! *stall probe*) to re-check peer liveness instead of parking forever.
//! This module owns the two knobs that govern that machinery:
//!
//! * `MPISIM_STALL_MS` — the probe period (default 50 ms). Lower values
//!   tighten failure-detection latency at the cost of more wakeups.
//! * `MPISIM_DEADLINE_MS` — an optional hard bound on any single blocked
//!   wait. When it expires the world assembles a [`StallReport`] and
//!   aborts with the dump instead of hanging, turning the stall probe
//!   into a deadlock detector.
//!
//! A deadline can also be attached programmatically to one world via
//! [`FaultPlan::deadline_ms`](crate::FaultPlan::deadline_ms), which takes
//! precedence over the environment for that world only.

use std::fmt;
use std::sync::OnceLock;

/// Stall-probe period in milliseconds (`MPISIM_STALL_MS`, default 50,
/// clamped to at least 1). Read once per process.
pub(crate) fn stall_ms() -> u64 {
    static STALL: OnceLock<u64> = OnceLock::new();
    *STALL.get_or_init(|| {
        std::env::var("MPISIM_STALL_MS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(|ms| ms.max(1))
            .unwrap_or(50)
    })
}

/// Process-wide default wait deadline from `MPISIM_DEADLINE_MS`.
/// `None` (unset or unparsable) means waits may block indefinitely.
pub(crate) fn env_deadline_ms() -> Option<u64> {
    static DEADLINE: OnceLock<Option<u64>> = OnceLock::new();
    *DEADLINE.get_or_init(|| {
        std::env::var("MPISIM_DEADLINE_MS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .filter(|&ms| ms > 0)
    })
}

/// What one rank was blocked on when a stall report was assembled.
#[derive(Debug, Clone)]
pub struct RankWait {
    /// World rank of the blocked party.
    pub rank: usize,
    /// Which primitive it was parked in (`"plain recv"`, `"wait_any"`, …).
    pub kind: &'static str,
    /// The channel signatures it was waiting on, as `(ctx, src, dst, tag)`.
    pub chans: Vec<(u64, usize, usize, u64)>,
    /// How long it had been blocked when the report was taken.
    pub waited_ms: u64,
}

/// Liveness of one attached peer process (shm fabric only).
#[derive(Debug, Clone, Copy)]
pub struct PeerStatus {
    pub rank: usize,
    pub pid: u32,
    pub alive: bool,
}

/// A forensic dump of the world at the moment a wait deadline expired
/// (or a peer death was observed inside a guarded wait).
///
/// Assembled by the runtime and carried in the abort panic message; all
/// fields are best-effort snapshots — a depth of `None` means the owning
/// lock was held by a blocked rank and could not be sampled.
#[derive(Debug, Clone)]
pub struct StallReport {
    /// Epoch counter of the world (0 for one-shot worlds).
    pub epoch: u64,
    /// Rank known to have died/panicked, when the transport recorded one.
    pub dead_rank: Option<usize>,
    /// Every locally-observable parked wait. Under `ProcWorld` this
    /// covers only the reporting process's rank; under thread worlds it
    /// covers all ranks.
    pub waits: Vec<RankWait>,
    /// Unexpected-message queue depth per destination rank mailbox.
    pub mailbox_depths: Vec<Option<usize>>,
    /// Frames still queued in the shm outbox (0 for the thread fabric).
    pub outbox_depth: usize,
    /// Attached peer pids and their liveness (empty for the thread fabric).
    pub peers: Vec<PeerStatus>,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "StallReport (epoch {}):", self.epoch)?;
        match self.dead_rank {
            Some(r) => writeln!(f, "  dead rank: {r}")?,
            None => writeln!(f, "  dead rank: none recorded")?,
        }
        if self.waits.is_empty() {
            writeln!(f, "  parked waits: none observed")?;
        } else {
            for w in &self.waits {
                write!(
                    f,
                    "  rank {} blocked {} ms in {} on ",
                    w.rank, w.waited_ms, w.kind
                )?;
                if w.chans.is_empty() {
                    writeln!(f, "(no channel signature)")?;
                } else {
                    let sigs: Vec<String> = w
                        .chans
                        .iter()
                        .map(|(ctx, src, dst, tag)| {
                            format!("(ctx {ctx}, src {src}, dst {dst}, tag {tag})")
                        })
                        .collect();
                    writeln!(f, "{}", sigs.join(", "))?;
                }
            }
        }
        let depths: Vec<String> = self
            .mailbox_depths
            .iter()
            .map(|d| match d {
                Some(n) => n.to_string(),
                None => "?".into(),
            })
            .collect();
        writeln!(
            f,
            "  mailbox unexpected-queue depths: [{}]",
            depths.join(", ")
        )?;
        writeln!(f, "  shm outbox depth: {}", self.outbox_depth)?;
        if self.peers.is_empty() {
            write!(f, "  peers: in-process (thread fabric)")?;
        } else {
            let peers: Vec<String> = self
                .peers
                .iter()
                .map(|p| {
                    format!(
                        "rank {} pid {} {}",
                        p.rank,
                        p.pid,
                        if p.alive { "alive" } else { "DEAD" }
                    )
                })
                .collect();
            write!(f, "  peers: {}", peers.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_report_display_mentions_every_section() {
        let report = StallReport {
            epoch: 3,
            dead_rank: Some(2),
            waits: vec![RankWait {
                rank: 1,
                kind: "plain recv",
                chans: vec![(0, 2, 1, 9)],
                waited_ms: 5001,
            }],
            mailbox_depths: vec![Some(0), None, Some(4)],
            outbox_depth: 7,
            peers: vec![PeerStatus {
                rank: 2,
                pid: 4242,
                alive: false,
            }],
        };
        let text = report.to_string();
        assert!(text.contains("StallReport (epoch 3)"));
        assert!(text.contains("dead rank: 2"));
        assert!(text.contains("rank 1 blocked 5001 ms in plain recv"));
        assert!(text.contains("(ctx 0, src 2, dst 1, tag 9)"));
        assert!(text.contains("[0, ?, 4]"));
        assert!(text.contains("outbox depth: 7"));
        assert!(text.contains("pid 4242 DEAD"));
    }

    #[test]
    fn stall_period_has_a_sane_default() {
        // The test binary does not set MPISIM_STALL_MS; the default holds.
        assert!(stall_ms() >= 1);
    }
}
