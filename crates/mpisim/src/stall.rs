//! Stall-probe cadence, wait deadlines, and stall forensics.
//!
//! Every blocking primitive in the runtime wakes on a short timer (the
//! *stall probe*) to re-check peer liveness instead of parking forever.
//! This module owns the two knobs that govern that machinery:
//!
//! * `MPISIM_STALL_MS` — the probe period (default 50 ms). Lower values
//!   tighten failure-detection latency at the cost of more wakeups.
//! * `MPISIM_DEADLINE_MS` — an optional hard bound on any single blocked
//!   wait. When it expires the world assembles a [`StallReport`] and
//!   aborts with the dump instead of hanging, turning the stall probe
//!   into a deadlock detector.
//!
//! A deadline can also be attached programmatically to one world via
//! [`FaultPlan::deadline_ms`](crate::FaultPlan::deadline_ms), which takes
//! precedence over the environment for that world only.

use std::fmt;
use std::sync::OnceLock;

/// Parse the value of a positive-integer env knob. Pure so unit tests can
/// exercise the grammar without mutating process environment; `example`
/// is substituted into the error to show a well-formed setting.
pub(crate) fn parse_positive_ms(var: &str, value: &str, example: u64) -> Result<u64, String> {
    let trimmed = value.trim();
    match trimmed.parse::<u64>() {
        Ok(ms) if ms > 0 => Ok(ms),
        Ok(_) => Err(format!(
            "{var}={value:?}: must be a positive integer of milliseconds \
             (0 is not a valid period; unset the variable instead, e.g. {var}={example})"
        )),
        Err(_) => Err(format!(
            "{var}={value:?}: expected a positive integer of milliseconds \
             (e.g. {var}={example})"
        )),
    }
}

/// Parse the value of a non-negative-integer env knob (0 allowed).
pub(crate) fn parse_count(var: &str, value: &str, example: u64) -> Result<u64, String> {
    value.trim().parse::<u64>().map_err(|_| {
        format!("{var}={value:?}: expected a non-negative integer (e.g. {var}={example})")
    })
}

/// Read + parse a positive-ms env knob, aborting loudly on malformed
/// values instead of silently falling back to the default.
pub(crate) fn env_positive_ms(var: &str, default: u64, example: u64) -> u64 {
    match std::env::var(var) {
        Ok(v) => parse_positive_ms(var, &v, example).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => default,
    }
}

/// Read + parse a non-negative count env knob, aborting loudly on
/// malformed values.
pub(crate) fn env_count(var: &str, default: u64, example: u64) -> u64 {
    match std::env::var(var) {
        Ok(v) => parse_count(var, &v, example).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => default,
    }
}

/// Stall-probe period in milliseconds (`MPISIM_STALL_MS`, default 50).
/// Read once per process; malformed values abort with the offending
/// token and the accepted grammar.
pub(crate) fn stall_ms() -> u64 {
    static STALL: OnceLock<u64> = OnceLock::new();
    *STALL.get_or_init(|| env_positive_ms("MPISIM_STALL_MS", 50, 50))
}

/// Process-wide default wait deadline from `MPISIM_DEADLINE_MS`.
/// `None` (unset) means waits may block indefinitely; malformed or zero
/// values abort loudly instead of silently disabling the deadline.
pub(crate) fn env_deadline_ms() -> Option<u64> {
    static DEADLINE: OnceLock<Option<u64>> = OnceLock::new();
    *DEADLINE.get_or_init(|| match std::env::var("MPISIM_DEADLINE_MS") {
        Ok(v) => Some(
            parse_positive_ms("MPISIM_DEADLINE_MS", &v, 30000).unwrap_or_else(|e| panic!("{e}")),
        ),
        Err(_) => None,
    })
}

/// What one rank was blocked on when a stall report was assembled.
#[derive(Debug, Clone)]
pub struct RankWait {
    /// World rank of the blocked party.
    pub rank: usize,
    /// Which primitive it was parked in (`"plain recv"`, `"wait_any"`, …).
    pub kind: &'static str,
    /// The channel signatures it was waiting on, as `(ctx, src, dst, tag)`.
    pub chans: Vec<(u64, usize, usize, u64)>,
    /// How long it had been blocked when the report was taken.
    pub waited_ms: u64,
}

/// Liveness of one attached peer process (shm fabric only).
#[derive(Debug, Clone, Copy)]
pub struct PeerStatus {
    pub rank: usize,
    pub pid: u32,
    pub alive: bool,
}

/// Health of one socket link (sock fabric only): connection state,
/// queued-but-unsent frames, sent-but-unacknowledged frames, and how
/// long ago the peer was last heard from.
#[derive(Debug, Clone)]
pub struct LinkStatus {
    /// Peer process index the link reaches.
    pub peer: usize,
    /// `"connected"`, `"reconnecting"`, `"dead"`, or `"busy"` when the
    /// link lock was contended at sampling time.
    pub state: &'static str,
    /// Frames queued for the writer thread but not yet written.
    pub outbox: usize,
    /// Sequenced frames written but not yet acknowledged (replay buffer).
    pub unacked: usize,
    /// Milliseconds since any frame (heartbeats included) arrived.
    pub heartbeat_age_ms: u64,
}

/// A forensic dump of the world at the moment a wait deadline expired
/// (or a peer death was observed inside a guarded wait).
///
/// Assembled by the runtime and carried in the abort panic message; all
/// fields are best-effort snapshots — a depth of `None` means the owning
/// lock was held by a blocked rank and could not be sampled.
#[derive(Debug, Clone)]
pub struct StallReport {
    /// Epoch counter of the world (0 for one-shot worlds).
    pub epoch: u64,
    /// Rank known to have died/panicked, when the transport recorded one.
    pub dead_rank: Option<usize>,
    /// Every locally-observable parked wait. Under `ProcWorld` this
    /// covers only the reporting process's rank; under thread worlds it
    /// covers all ranks.
    pub waits: Vec<RankWait>,
    /// Unexpected-message queue depth per destination rank mailbox.
    pub mailbox_depths: Vec<Option<usize>>,
    /// Which fabric the world runs over (`"thread"` / `"shm"` / `"sock"`).
    pub fabric: &'static str,
    /// Frames still queued in the shm outbox (or summed across all socket
    /// link outboxes; 0 for the thread fabric).
    pub outbox_depth: usize,
    /// Attached peer pids and their liveness (empty for the thread fabric).
    pub peers: Vec<PeerStatus>,
    /// Per-peer socket link state (empty off the sock fabric).
    pub links: Vec<LinkStatus>,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "StallReport (epoch {}):", self.epoch)?;
        match self.dead_rank {
            Some(r) => writeln!(f, "  dead rank: {r}")?,
            None => writeln!(f, "  dead rank: none recorded")?,
        }
        if self.waits.is_empty() {
            writeln!(f, "  parked waits: none observed")?;
        } else {
            for w in &self.waits {
                write!(
                    f,
                    "  rank {} blocked {} ms in {} on ",
                    w.rank, w.waited_ms, w.kind
                )?;
                if w.chans.is_empty() {
                    writeln!(f, "(no channel signature)")?;
                } else {
                    let sigs: Vec<String> = w
                        .chans
                        .iter()
                        .map(|(ctx, src, dst, tag)| {
                            format!("(ctx {ctx}, src {src}, dst {dst}, tag {tag})")
                        })
                        .collect();
                    writeln!(f, "{}", sigs.join(", "))?;
                }
            }
        }
        let depths: Vec<String> = self
            .mailbox_depths
            .iter()
            .map(|d| match d {
                Some(n) => n.to_string(),
                None => "?".into(),
            })
            .collect();
        writeln!(
            f,
            "  mailbox unexpected-queue depths: [{}]",
            depths.join(", ")
        )?;
        writeln!(f, "  transport fabric: {}", self.fabric)?;
        writeln!(f, "  outbox depth: {}", self.outbox_depth)?;
        if self.peers.is_empty() {
            write!(f, "  peers: in-process (thread fabric)")?;
        } else {
            let peers: Vec<String> = self
                .peers
                .iter()
                .map(|p| {
                    format!(
                        "rank {} pid {} {}",
                        p.rank,
                        p.pid,
                        if p.alive { "alive" } else { "DEAD" }
                    )
                })
                .collect();
            write!(f, "  peers: {}", peers.join(", "))?;
        }
        for l in &self.links {
            write!(
                f,
                "\n  link to proc {}: {} (outbox {}, unacked {}, last heard {} ms ago)",
                l.peer, l.state, l.outbox, l.unacked, l.heartbeat_age_ms
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_report_display_mentions_every_section() {
        let report = StallReport {
            epoch: 3,
            dead_rank: Some(2),
            waits: vec![RankWait {
                rank: 1,
                kind: "plain recv",
                chans: vec![(0, 2, 1, 9)],
                waited_ms: 5001,
            }],
            mailbox_depths: vec![Some(0), None, Some(4)],
            fabric: "sock",
            outbox_depth: 7,
            peers: vec![PeerStatus {
                rank: 2,
                pid: 4242,
                alive: false,
            }],
            links: vec![LinkStatus {
                peer: 2,
                state: "reconnecting",
                outbox: 3,
                unacked: 11,
                heartbeat_age_ms: 812,
            }],
        };
        let text = report.to_string();
        assert!(text.contains("StallReport (epoch 3)"));
        assert!(text.contains("dead rank: 2"));
        assert!(text.contains("rank 1 blocked 5001 ms in plain recv"));
        assert!(text.contains("(ctx 0, src 2, dst 1, tag 9)"));
        assert!(text.contains("[0, ?, 4]"));
        assert!(text.contains("transport fabric: sock"));
        assert!(text.contains("outbox depth: 7"));
        assert!(text.contains("pid 4242 DEAD"));
        assert!(text.contains(
            "link to proc 2: reconnecting (outbox 3, unacked 11, last heard 812 ms ago)"
        ));
    }

    #[test]
    fn stall_period_has_a_sane_default() {
        // The test binary does not set MPISIM_STALL_MS; the default holds.
        assert!(stall_ms() >= 1);
    }

    #[test]
    fn stall_ms_rejects_non_numeric_values_with_grammar() {
        let err = parse_positive_ms("MPISIM_STALL_MS", "abc", 50).unwrap_err();
        assert!(
            err.contains("MPISIM_STALL_MS=\"abc\""),
            "offending token: {err}"
        );
        assert!(
            err.contains("positive integer of milliseconds"),
            "grammar: {err}"
        );
        assert!(err.contains("MPISIM_STALL_MS=50"), "example: {err}");
    }

    #[test]
    fn stall_ms_rejects_zero() {
        let err = parse_positive_ms("MPISIM_STALL_MS", "0", 50).unwrap_err();
        assert!(err.contains("MPISIM_STALL_MS=\"0\""), "{err}");
        assert!(err.contains("0 is not a valid period"), "{err}");
    }

    #[test]
    fn deadline_ms_rejects_negative_and_zero() {
        let err = parse_positive_ms("MPISIM_DEADLINE_MS", "-5", 30000).unwrap_err();
        assert!(err.contains("MPISIM_DEADLINE_MS=\"-5\""), "{err}");
        assert!(err.contains("MPISIM_DEADLINE_MS=30000"), "{err}");
        assert!(parse_positive_ms("MPISIM_DEADLINE_MS", "0", 30000).is_err());
        assert_eq!(
            parse_positive_ms("MPISIM_DEADLINE_MS", "250", 30000),
            Ok(250)
        );
    }

    #[test]
    fn positive_ms_accepts_surrounding_whitespace() {
        assert_eq!(parse_positive_ms("MPISIM_STALL_MS", " 75 ", 50), Ok(75));
    }

    #[test]
    fn count_knobs_allow_zero_but_reject_garbage() {
        assert_eq!(parse_count("MPISIM_CONNECT_RETRIES", "0", 8), Ok(0));
        assert_eq!(parse_count("MPISIM_CONNECT_RETRIES", "12", 8), Ok(12));
        let err = parse_count("MPISIM_CONNECT_RETRIES", "many", 8).unwrap_err();
        assert!(err.contains("MPISIM_CONNECT_RETRIES=\"many\""), "{err}");
        assert!(err.contains("non-negative integer"), "{err}");
    }
}
