//! Persistent point-to-point requests (`MPI_Send_init` / `MPI_Recv_init` /
//! `MPI_Start` / `MPI_Wait`).
//!
//! Persistent communication initializes a message once and then restarts it
//! every iteration (paper §2: "persistent communication reduces
//! initialization costs by having an initialization so that all overhead is
//! only incurred once"). Buffers are shared between the application and the
//! request via [`SharedBuf`], the safe-Rust analogue of MPI's raw buffer
//! pointer: the application rewrites the buffer contents between `start`
//! calls (e.g. new vector values in each SpMV) without re-registering the
//! message.

use crate::comm::{Comm, USER_TAG_LIMIT};
use crate::ctx::RankCtx;
use crate::elem::Elem;
use parking_lot::RwLock;
use std::sync::Arc;

/// A buffer shared between application code and persistent requests.
pub type SharedBuf<T> = Arc<RwLock<Vec<T>>>;

/// Create a [`SharedBuf`] from initial contents.
pub fn shared_buf<T>(data: Vec<T>) -> SharedBuf<T> {
    Arc::new(RwLock::new(data))
}

/// Persistent send: a registered message covering
/// `buf[offset .. offset + len]`, re-sent on every [`SendReq::start`].
pub struct SendReq<T: Elem> {
    comm: Comm,
    dst: usize,
    tag: u64,
    buf: SharedBuf<T>,
    offset: usize,
    len: usize,
}

impl<T: Elem> SendReq<T> {
    /// Start one instance of the send (reads the current buffer contents).
    pub fn start(&self, ctx: &mut RankCtx) {
        let data = {
            let guard = self.buf.read();
            assert!(
                self.offset + self.len <= guard.len(),
                "persistent send range {}..{} out of buffer of len {}",
                self.offset,
                self.offset + self.len,
                guard.len()
            );
            guard[self.offset..self.offset + self.len].to_vec()
        };
        ctx.send_internal(&self.comm, self.dst, self.tag, &data);
    }

    /// Complete the send. Buffered semantics: a started send is already
    /// complete, so this is a no-op; it exists for API symmetry.
    pub fn wait(&self, _ctx: &mut RankCtx) {}

    pub fn dst(&self) -> usize {
        self.dst
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Persistent receive into `buf[offset .. offset + len]`.
pub struct RecvReq<T: Elem> {
    comm: Comm,
    src: usize,
    tag: u64,
    buf: SharedBuf<T>,
    offset: usize,
    len: usize,
    started: bool,
}

impl<T: Elem> RecvReq<T> {
    /// Start one instance of the receive.
    pub fn start(&mut self) {
        assert!(!self.started, "receive started twice without wait");
        self.started = true;
    }

    /// Block until the matching message arrives and copy it into the buffer.
    pub fn wait(&mut self, ctx: &mut RankCtx) {
        assert!(self.started, "wait on a receive that was not started");
        self.started = false;
        let data: Vec<T> = ctx.recv_internal(&self.comm, self.src, self.tag);
        assert_eq!(
            data.len(),
            self.len,
            "persistent recv from {} tag {}: expected {} elements, got {}",
            self.src,
            self.tag,
            self.len,
            data.len()
        );
        let mut guard = self.buf.write();
        guard[self.offset..self.offset + self.len].clone_from_slice(&data);
    }

    pub fn src(&self) -> usize {
        self.src
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Either kind of persistent request, for uniform start/wait batches
/// (the analogue of an `MPI_Request` array with `MPI_Startall`/`MPI_Waitall`).
pub enum Request<T: Elem> {
    Send(SendReq<T>),
    Recv(RecvReq<T>),
}

impl<T: Elem> Request<T> {
    pub fn start(&mut self, ctx: &mut RankCtx) {
        match self {
            Request::Send(s) => s.start(ctx),
            Request::Recv(r) => r.start(),
        }
    }

    pub fn wait(&mut self, ctx: &mut RankCtx) {
        match self {
            Request::Send(s) => s.wait(ctx),
            Request::Recv(r) => r.wait(ctx),
        }
    }
}

/// `MPI_Startall`.
pub fn start_all<T: Elem>(ctx: &mut RankCtx, reqs: &mut [Request<T>]) {
    for r in reqs.iter_mut() {
        r.start(ctx);
    }
}

/// `MPI_Waitall`. Receives complete in posting order; with buffered sends
/// this is deadlock-free for any start order.
pub fn wait_all<T: Elem>(ctx: &mut RankCtx, reqs: &mut [Request<T>]) {
    for r in reqs.iter_mut() {
        r.wait(ctx);
    }
}

impl RankCtx {
    /// `MPI_Send_init`: register a persistent send of
    /// `buf[offset..offset+len]` to communicator rank `dst`.
    pub fn send_init<T: Elem>(
        &self,
        comm: &Comm,
        dst: usize,
        tag: u64,
        buf: SharedBuf<T>,
        offset: usize,
        len: usize,
    ) -> SendReq<T> {
        assert!(
            tag < USER_TAG_LIMIT,
            "tag {tag} in reserved collective space"
        );
        assert!(dst < comm.size(), "dst {dst} out of range");
        SendReq {
            comm: comm.clone(),
            dst,
            tag,
            buf,
            offset,
            len,
        }
    }

    /// `MPI_Recv_init`: register a persistent receive into
    /// `buf[offset..offset+len]` from communicator rank `src`.
    pub fn recv_init<T: Elem>(
        &self,
        comm: &Comm,
        src: usize,
        tag: u64,
        buf: SharedBuf<T>,
        offset: usize,
        len: usize,
    ) -> RecvReq<T> {
        assert!(
            tag < USER_TAG_LIMIT,
            "tag {tag} in reserved collective space"
        );
        assert!(src < comm.size(), "src {src} out of range");
        {
            let guard = buf.read();
            assert!(
                offset + len <= guard.len(),
                "persistent recv range {}..{} out of buffer of len {}",
                offset,
                offset + len,
                guard.len()
            );
        }
        RecvReq {
            comm: comm.clone(),
            src,
            tag,
            buf,
            offset,
            len,
            started: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::World;

    #[test]
    fn persistent_roundtrip_many_iterations() {
        let out = World::run(2, |ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                let buf = shared_buf(vec![0.0f64; 4]);
                let send = ctx.send_init(&comm, 1, 0, buf.clone(), 0, 4);
                let mut acc = 0.0;
                for it in 0..10 {
                    {
                        let mut g = buf.write();
                        for (i, v) in g.iter_mut().enumerate() {
                            *v = (it * 4 + i) as f64;
                        }
                    }
                    send.start(ctx);
                    send.wait(ctx);
                    acc += it as f64;
                }
                acc
            } else {
                let buf = shared_buf(vec![0.0f64; 4]);
                let mut recv = ctx.recv_init(&comm, 0, 0, buf.clone(), 0, 4);
                let mut acc = 0.0;
                for _ in 0..10 {
                    recv.start();
                    recv.wait(ctx);
                    acc += buf.read().iter().sum::<f64>();
                }
                acc
            }
        });
        // sum over iterations of (4it + 0+1+2+3)
        let expect: f64 = (0..10).map(|it| (4 * it * 4 + 6) as f64).sum();
        assert_eq!(out[1], expect);
    }

    #[test]
    fn offsets_pack_multiple_messages_in_one_buffer() {
        let out = World::run(3, |ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                let buf = shared_buf(vec![10u32, 11, 20, 21, 22]);
                let s1 = ctx.send_init(&comm, 1, 0, buf.clone(), 0, 2);
                let s2 = ctx.send_init(&comm, 2, 0, buf.clone(), 2, 3);
                s1.start(ctx);
                s2.start(ctx);
                s1.wait(ctx);
                s2.wait(ctx);
                vec![]
            } else {
                let len = if ctx.rank() == 1 { 2 } else { 3 };
                let buf = shared_buf(vec![0u32; len]);
                let mut r = ctx.recv_init(&comm, 0, 0, buf.clone(), 0, len);
                r.start();
                r.wait(ctx);
                let v = buf.read().clone();
                v
            }
        });
        assert_eq!(out[1], vec![10, 11]);
        assert_eq!(out[2], vec![20, 21, 22]);
    }

    #[test]
    fn start_wait_batches() {
        let out = World::run(2, |ctx| {
            let comm = ctx.comm_world();
            let sbuf = shared_buf(vec![ctx.rank() as u64 + 100]);
            let rbuf = shared_buf(vec![0u64]);
            let peer = 1 - ctx.rank();
            let mut reqs = vec![
                Request::Recv(ctx.recv_init(&comm, peer, 0, rbuf.clone(), 0, 1)),
                Request::Send(ctx.send_init(&comm, peer, 0, sbuf.clone(), 0, 1)),
            ];
            start_all(ctx, &mut reqs);
            wait_all(ctx, &mut reqs);
            let got = rbuf.read()[0];
            got
        });
        assert_eq!(out, vec![101, 100]);
    }

    #[test]
    #[should_panic(expected = "started twice")]
    fn double_start_panics() {
        World::run(1, |ctx| {
            let comm = ctx.comm_world();
            let buf = shared_buf(vec![0u8; 1]);
            let mut r = ctx.recv_init(&comm, 0, 0, buf, 0, 1);
            r.start();
            r.start();
        });
    }
}
