//! Persistent point-to-point requests (`MPI_Send_init` / `MPI_Recv_init` /
//! `MPI_Start` / `MPI_Wait`).
//!
//! Persistent communication initializes a message once and then restarts it
//! every iteration (paper §2: "persistent communication reduces
//! initialization costs by having an initialization so that all overhead is
//! only incurred once"). Buffers are shared between the application and the
//! request via [`SharedBuf`], the safe-Rust analogue of MPI's raw buffer
//! pointer: the application rewrites the buffer contents between `start`
//! calls (e.g. new vector values in each SpMV) without re-registering the
//! message.
//!
//! Registration is where the amortization happens in this simulator too:
//! `send_init`/`recv_init` resolve the message signature `(context, src,
//! dst, tag)` to a **pre-matched channel** once, so every iteration's
//! `start`/`wait` moves values through that channel slot — a condvar-guarded
//! FIFO whose payload buffers are recycled — and `wait` copies straight
//! into the registered receive window. The unexpected-message mailbox and
//! its linear matching scan are only paid by non-persistent traffic.
//!
//! Below the buffer-registered requests sit the **buffer-less halves**,
//! [`SendChan`] and [`RecvChan`] (`send_chan_init`/`recv_chan_init`): a
//! send gathers its payload straight into the channel's recycled wire
//! buffer ([`SendChan::start_with`]) and a receive scatters straight from
//! the delivered payload ([`RecvChan::wait_with`]/[`RecvChan::wait_take`]),
//! skipping the staging window entirely. The collective executors run on
//! this zero-copy path; [`SendReq`]/[`RecvReq`] are the windowed layer on
//! top of it.
//!
//! A persistent send therefore matches a persistent receive registered with
//! the same signature on the peer (the paper's collectives always register
//! both sides at init). Mixing persistent and plain traffic on one
//! signature is unsupported; a persistent `wait` that finds the matching
//! message in the plain mailbox panics with a diagnostic rather than
//! hanging.

use crate::comm::{Comm, USER_TAG_LIMIT};
use crate::ctx::RankCtx;
use crate::elem::{elem_bytes, Elem};
use crate::state::{ChanRegistrar, Channel, WaitChans};
use parking_lot::RwLock;
use std::sync::Arc;

/// A buffer shared between application code and persistent requests.
pub type SharedBuf<T> = Arc<RwLock<Vec<T>>>;

/// Create a [`SharedBuf`] from initial contents.
pub fn shared_buf<T>(data: Vec<T>) -> SharedBuf<T> {
    Arc::new(RwLock::new(data))
}

/// The buffer-less half of a persistent send: a pre-matched channel plus
/// the registered message length. [`SendChan::start_with`] gathers the
/// payload **directly into the channel's recycled wire buffer** — the
/// zero-copy send path. [`SendReq`] layers a registered [`SharedBuf`]
/// window on top for the classic `MPI_Send_init` shape.
pub struct SendChan<T: Elem> {
    dst: usize,
    dst_world: usize,
    chan: Arc<Channel<T>>,
    len: usize,
}

impl<T: Elem> SendChan<T> {
    /// Start one instance of the send. `fill` receives the channel's
    /// cleared, recycled payload buffer and must write exactly the
    /// registered number of elements into it — the caller's copy map runs
    /// once, straight into the wire buffer, with no intermediate staging
    /// window.
    pub fn start_with(&self, ctx: &mut RankCtx, fill: impl FnOnce(&mut Vec<T>)) {
        // program-ordered fault-injection point: one op per started send
        // (see `transport::fault` — poll paths are deliberately uncounted)
        ctx.world
            .inject(ctx.rank, crate::transport::FaultOp::ChanPush);
        let arrival = ctx.charge_send(self.dst_world, self.len * elem_bytes::<T>());
        let len = self.len;
        self.chan.push_with(arrival, |buf| {
            fill(buf);
            assert_eq!(
                buf.len(),
                len,
                "persistent send fill produced {} elements, registered {len}",
                buf.len(),
            );
        });
    }

    /// Complete the send. Buffered semantics: a started send is already
    /// complete, so this is a no-op; it exists for API symmetry.
    pub fn wait(&self, _ctx: &mut RankCtx) {}

    pub fn dst(&self) -> usize {
        self.dst
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Persistent send: a registered message covering
/// `buf[offset .. offset + len]`, re-sent on every [`SendReq::start`]
/// through its pre-matched channel.
pub struct SendReq<T: Elem> {
    chan: SendChan<T>,
    buf: SharedBuf<T>,
    offset: usize,
}

impl<T: Elem> SendReq<T> {
    /// Start one instance of the send (reads the current buffer contents).
    pub fn start(&self, ctx: &mut RankCtx) {
        let guard = self.buf.read();
        let end = self.offset + self.chan.len;
        assert!(
            end <= guard.len(),
            "persistent send range {}..{end} out of buffer of len {}",
            self.offset,
            guard.len()
        );
        let win = &guard[self.offset..end];
        self.chan.start_with(ctx, |buf| buf.extend_from_slice(win));
    }

    /// Complete the send. Buffered semantics: a started send is already
    /// complete, so this is a no-op; it exists for API symmetry.
    pub fn wait(&self, _ctx: &mut RankCtx) {}

    pub fn dst(&self) -> usize {
        self.chan.dst
    }

    pub fn len(&self) -> usize {
        self.chan.len
    }

    pub fn is_empty(&self) -> bool {
        self.chan.len == 0
    }
}

/// The buffer-less half of a persistent receive: a pre-matched channel
/// plus the registered message length. [`RecvChan::wait_with`] hands the
/// delivered payload to a consumer **by reference, straight off the
/// channel** — the zero-copy receive path; [`RecvChan::wait_take`] lends
/// the payload buffer out for longer-lived consumption (return it with
/// [`RecvChan::recycle`]). [`RecvReq`] layers a registered [`SharedBuf`]
/// window on top for the classic `MPI_Recv_init` shape.
pub struct RecvChan<T: Elem> {
    comm: Comm,
    src: usize,
    tag: u64,
    chan: Arc<Channel<T>>,
    len: usize,
    started: bool,
}

impl<T: Elem> RecvChan<T> {
    /// Start one instance of the receive.
    pub fn start(&mut self) {
        assert!(!self.started, "receive started twice without wait");
        self.started = true;
    }

    /// Block until the matching message arrives and take its payload
    /// buffer off the channel. The caller reads (scatters from) the buffer
    /// and hands it back with [`RecvChan::recycle`] so the steady state
    /// stays allocation-free.
    pub fn wait_take(&mut self, ctx: &mut RankCtx) -> Vec<T> {
        assert!(self.started, "wait on a receive that was not started");
        self.started = false;
        ctx.world
            .inject(ctx.rank, crate::transport::FaultOp::ChanPop);
        // While blocked, probe the mailbox so a plain send aimed at this
        // persistent receive fails loudly instead of hanging both ranks —
        // and bail out (with stall forensics) if a peer rank died this
        // epoch or the wait deadline expired.
        let world = Arc::clone(&ctx.world);
        let keys = [self.chan.key()];
        let guard = world.begin_wait(ctx.rank, "persistent recv", WaitChans::Keys(&keys));
        let (data, arrival) = self.chan.pop_with(|| {
            guard.tick();
            assert!(
                !ctx.iprobe(&self.comm, self.src, self.tag),
                "persistent recv from {} tag {}: matching message sits in the plain \
                 mailbox — mixing a plain send with a persistent receive on one \
                 signature is unsupported (use send_init on the sender)",
                self.src,
                self.tag
            );
        });
        assert_eq!(
            data.len(),
            self.len,
            "persistent recv from {} (channel {:?}): expected {} elements, got {}",
            self.src,
            self.chan.key(),
            self.len,
            data.len()
        );
        ctx.charge_recv(arrival);
        data
    }

    /// Non-blocking [`RecvChan::wait_take`]: if the matching message has
    /// already been delivered, consume it (merging its modeled arrival into
    /// the clock) and hand its payload out; otherwise leave the receive
    /// started and return `None`. The completion-driven lifecycle
    /// (`NeighborRequest::test`) drains arrivals through this.
    pub fn try_take(&mut self, ctx: &mut RankCtx) -> Option<Vec<T>> {
        assert!(self.started, "try_take on a receive that was not started");
        let (data, arrival) = self.chan.try_pop()?;
        self.started = false;
        assert_eq!(
            data.len(),
            self.len,
            "persistent recv from {} (channel {:?}): expected {} elements, got {}",
            self.src,
            self.chan.key(),
            self.len,
            data.len()
        );
        ctx.charge_recv(arrival);
        Some(data)
    }

    /// Type-erased handle for arrival polling this receive's channel as
    /// part of a set ([`RankCtx::poll_any`] / [`RankCtx::wait_any`]).
    pub fn chan_id(&self) -> crate::ChanId {
        self.chan.id()
    }

    /// Block until the matching message has been delivered, **without
    /// consuming it** (a following [`RecvChan::try_take`] succeeds). The
    /// completion-driven `wait` parks here on one necessary receive
    /// between `test` rounds; the stall probe keeps the mixed plain/
    /// persistent-traffic misuse loud (see [`RecvChan::wait_take`]).
    pub fn wait_ready(&self, ctx: &RankCtx) {
        assert!(self.started, "wait_ready on a receive that was not started");
        let world = Arc::clone(&ctx.world);
        let keys = [self.chan.key()];
        let guard = world.begin_wait(ctx.rank, "persistent recv", WaitChans::Keys(&keys));
        self.chan.wait_nonempty(|| {
            guard.tick();
            assert!(
                !ctx.iprobe(&self.comm, self.src, self.tag),
                "persistent recv from {} tag {}: matching message sits in the plain \
                 mailbox — mixing a plain send with a persistent receive on one \
                 signature is unsupported (use send_init on the sender)",
                self.src,
                self.tag
            );
        });
    }

    /// Block until the matching message arrives and run `consume` on the
    /// payload in place (no copy into a registered window); the buffer is
    /// recycled afterwards.
    pub fn wait_with<R>(&mut self, ctx: &mut RankCtx, consume: impl FnOnce(&[T]) -> R) -> R {
        let data = self.wait_take(ctx);
        let out = consume(&data);
        self.chan.recycle(data);
        out
    }

    /// Return a payload buffer taken with [`RecvChan::wait_take`].
    pub fn recycle(&self, buf: Vec<T>) {
        self.chan.recycle(buf);
    }

    pub fn src(&self) -> usize {
        self.src
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Persistent receive into `buf[offset .. offset + len]` through its
/// pre-matched channel.
pub struct RecvReq<T: Elem> {
    chan: RecvChan<T>,
    buf: SharedBuf<T>,
    offset: usize,
}

impl<T: Elem> RecvReq<T> {
    /// Start one instance of the receive.
    pub fn start(&mut self) {
        self.chan.start();
    }

    /// Block until the matching message arrives and copy it into the
    /// registered buffer window.
    pub fn wait(&mut self, ctx: &mut RankCtx) {
        // block on the channel BEFORE taking the buffer lock: the shared
        // buffer may be in use elsewhere (even by the matching sender).
        let data = self.chan.wait_take(ctx);
        self.buf.write()[self.offset..self.offset + self.chan.len].clone_from_slice(&data);
        self.chan.recycle(data);
    }

    pub fn src(&self) -> usize {
        self.chan.src
    }

    pub fn len(&self) -> usize {
        self.chan.len
    }

    pub fn is_empty(&self) -> bool {
        self.chan.len == 0
    }
}

/// Either kind of persistent request, for uniform start/wait batches
/// (the analogue of an `MPI_Request` array with `MPI_Startall`/`MPI_Waitall`).
pub enum Request<T: Elem> {
    Send(SendReq<T>),
    Recv(RecvReq<T>),
}

impl<T: Elem> Request<T> {
    pub fn start(&mut self, ctx: &mut RankCtx) {
        match self {
            Request::Send(s) => s.start(ctx),
            Request::Recv(r) => r.start(),
        }
    }

    pub fn wait(&mut self, ctx: &mut RankCtx) {
        match self {
            Request::Send(s) => s.wait(ctx),
            Request::Recv(r) => r.wait(ctx),
        }
    }
}

/// `MPI_Startall`.
pub fn start_all<T: Elem>(ctx: &mut RankCtx, reqs: &mut [Request<T>]) {
    for r in reqs.iter_mut() {
        r.start(ctx);
    }
}

/// `MPI_Waitall`. Receives complete in posting order; with buffered sends
/// this is deadlock-free for any start order.
pub fn wait_all<T: Elem>(ctx: &mut RankCtx, reqs: &mut [Request<T>]) {
    for r in reqs.iter_mut() {
        r.wait(ctx);
    }
}

impl ChanRegistrar<'_> {
    /// [`RankCtx::send_chan_init`] under the held registry lock.
    pub fn send_chan_init<T: Elem>(
        &mut self,
        comm: &Comm,
        dst: usize,
        tag: u64,
        len: usize,
    ) -> SendChan<T> {
        assert!(
            tag < USER_TAG_LIMIT,
            "tag {tag} in reserved collective space"
        );
        assert!(dst < comm.size(), "dst {dst} out of range");
        SendChan {
            dst,
            dst_world: comm.world_rank(dst),
            chan: self.channel_sized(
                (comm.ctx_id, comm.rank(), dst, tag),
                comm.world_rank(dst),
                len,
            ),
            len,
        }
    }

    /// [`RankCtx::recv_chan_init`] under the held registry lock.
    pub fn recv_chan_init<T: Elem>(
        &mut self,
        comm: &Comm,
        src: usize,
        tag: u64,
        len: usize,
    ) -> RecvChan<T> {
        assert!(
            tag < USER_TAG_LIMIT,
            "tag {tag} in reserved collective space"
        );
        assert!(src < comm.size(), "src {src} out of range");
        RecvChan {
            comm: comm.clone(),
            src,
            tag,
            chan: self.channel_sized(
                (comm.ctx_id, src, comm.rank(), tag),
                comm.world_rank(comm.rank()),
                len,
            ),
            len,
            started: false,
        }
    }

    /// [`RankCtx::send_init`] under the held registry lock.
    pub fn send_init<T: Elem>(
        &mut self,
        comm: &Comm,
        dst: usize,
        tag: u64,
        buf: SharedBuf<T>,
        offset: usize,
        len: usize,
    ) -> SendReq<T> {
        SendReq {
            chan: self.send_chan_init(comm, dst, tag, len),
            buf,
            offset,
        }
    }

    /// [`RankCtx::recv_init`] under the held registry lock.
    pub fn recv_init<T: Elem>(
        &mut self,
        comm: &Comm,
        src: usize,
        tag: u64,
        buf: SharedBuf<T>,
        offset: usize,
        len: usize,
    ) -> RecvReq<T> {
        {
            let guard = buf.read();
            assert!(
                offset + len <= guard.len(),
                "persistent recv range {}..{} out of buffer of len {}",
                offset,
                offset + len,
                guard.len()
            );
        }
        RecvReq {
            chan: self.recv_chan_init(comm, src, tag, len),
            buf,
            offset,
        }
    }
}

impl RankCtx {
    /// Register a buffer-less persistent send of `len` elements to
    /// communicator rank `dst`: the payload is gathered straight into the
    /// channel's recycled wire buffer on every
    /// [`SendChan::start_with`] — no registered staging window.
    pub fn send_chan_init<T: Elem>(
        &self,
        comm: &Comm,
        dst: usize,
        tag: u64,
        len: usize,
    ) -> SendChan<T> {
        self.chan_registrar().send_chan_init(comm, dst, tag, len)
    }

    /// Register a buffer-less persistent receive of `len` elements from
    /// communicator rank `src`: [`RecvChan::wait_with`] /
    /// [`RecvChan::wait_take`] hand the payload out in place instead of
    /// copying it into a registered window.
    pub fn recv_chan_init<T: Elem>(
        &self,
        comm: &Comm,
        src: usize,
        tag: u64,
        len: usize,
    ) -> RecvChan<T> {
        self.chan_registrar().recv_chan_init(comm, src, tag, len)
    }

    /// `MPI_Send_init`: register a persistent send of
    /// `buf[offset..offset+len]` to communicator rank `dst`. Resolves the
    /// pre-matched channel now so `start` never touches the mailbox.
    pub fn send_init<T: Elem>(
        &self,
        comm: &Comm,
        dst: usize,
        tag: u64,
        buf: SharedBuf<T>,
        offset: usize,
        len: usize,
    ) -> SendReq<T> {
        self.chan_registrar()
            .send_init(comm, dst, tag, buf, offset, len)
    }

    /// `MPI_Recv_init`: register a persistent receive into
    /// `buf[offset..offset+len]` from communicator rank `src`. Resolves the
    /// pre-matched channel now so `wait` copies straight into the window.
    pub fn recv_init<T: Elem>(
        &self,
        comm: &Comm,
        src: usize,
        tag: u64,
        buf: SharedBuf<T>,
        offset: usize,
        len: usize,
    ) -> RecvReq<T> {
        self.chan_registrar()
            .recv_init(comm, src, tag, buf, offset, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::World;

    #[test]
    fn persistent_roundtrip_many_iterations() {
        let out = World::run(2, |ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                let buf = shared_buf(vec![0.0f64; 4]);
                let send = ctx.send_init(&comm, 1, 0, buf.clone(), 0, 4);
                let mut acc = 0.0;
                for it in 0..10 {
                    {
                        let mut g = buf.write();
                        for (i, v) in g.iter_mut().enumerate() {
                            *v = (it * 4 + i) as f64;
                        }
                    }
                    send.start(ctx);
                    send.wait(ctx);
                    acc += it as f64;
                }
                acc
            } else {
                let buf = shared_buf(vec![0.0f64; 4]);
                let mut recv = ctx.recv_init(&comm, 0, 0, buf.clone(), 0, 4);
                let mut acc = 0.0;
                for _ in 0..10 {
                    recv.start();
                    recv.wait(ctx);
                    acc += buf.read().iter().sum::<f64>();
                }
                acc
            }
        });
        // sum over iterations of (4it + 0+1+2+3)
        let expect: f64 = (0..10).map(|it| (4 * it * 4 + 6) as f64).sum();
        assert_eq!(out[1], expect);
    }

    #[test]
    fn offsets_pack_multiple_messages_in_one_buffer() {
        let out = World::run(3, |ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                let buf = shared_buf(vec![10u32, 11, 20, 21, 22]);
                let s1 = ctx.send_init(&comm, 1, 0, buf.clone(), 0, 2);
                let s2 = ctx.send_init(&comm, 2, 0, buf.clone(), 2, 3);
                s1.start(ctx);
                s2.start(ctx);
                s1.wait(ctx);
                s2.wait(ctx);
                vec![]
            } else {
                let len = if ctx.rank() == 1 { 2 } else { 3 };
                let buf = shared_buf(vec![0u32; len]);
                let mut r = ctx.recv_init(&comm, 0, 0, buf.clone(), 0, len);
                r.start();
                r.wait(ctx);
                let v = buf.read().clone();
                v
            }
        });
        assert_eq!(out[1], vec![10, 11]);
        assert_eq!(out[2], vec![20, 21, 22]);
    }

    #[test]
    fn start_wait_batches() {
        let out = World::run(2, |ctx| {
            let comm = ctx.comm_world();
            let sbuf = shared_buf(vec![ctx.rank() as u64 + 100]);
            let rbuf = shared_buf(vec![0u64]);
            let peer = 1 - ctx.rank();
            let mut reqs = vec![
                Request::Recv(ctx.recv_init(&comm, peer, 0, rbuf.clone(), 0, 1)),
                Request::Send(ctx.send_init(&comm, peer, 0, sbuf.clone(), 0, 1)),
            ];
            start_all(ctx, &mut reqs);
            wait_all(ctx, &mut reqs);
            let got = rbuf.read()[0];
            got
        });
        assert_eq!(out, vec![101, 100]);
    }

    #[test]
    fn sender_runs_ahead_of_receiver() {
        // buffered semantics: several iterations may be in flight; the
        // channel queues them FIFO and never blocks the sender
        let out = World::run(2, |ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                let buf = shared_buf(vec![0u64]);
                let send = ctx.send_init(&comm, 1, 2, buf.clone(), 0, 1);
                for it in 0..5u64 {
                    buf.write()[0] = it * 11;
                    send.start(ctx);
                }
                0
            } else {
                let buf = shared_buf(vec![0u64]);
                let mut recv = ctx.recv_init(&comm, 0, 2, buf.clone(), 0, 1);
                let mut acc = 0;
                for _ in 0..5 {
                    recv.start();
                    recv.wait(ctx);
                    acc = acc * 100 + buf.read()[0];
                }
                acc
            }
        });
        assert_eq!(out[1], 11223344); // 0,11,22,33,44 in order
    }

    #[test]
    fn blocked_wait_does_not_hold_the_buffer_lock() {
        // One Arc'd buffer shared across ranks: the receiver registers one
        // window, the sender reads another window of the SAME buffer. The
        // receiver blocks in wait() before the sender starts; if wait held
        // the buffer's write lock while blocked, the sender could never
        // acquire the read lock to push and both ranks would deadlock.
        let shared = shared_buf(vec![5u64, 77]);
        let out = World::run(2, |ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                let send = ctx.send_init(&comm, 1, 0, shared.clone(), 1, 1);
                // let the receiver reach its blocked wait first
                std::thread::sleep(std::time::Duration::from_millis(30));
                send.start(ctx);
                0
            } else {
                let mut recv = ctx.recv_init(&comm, 0, 0, shared.clone(), 0, 1);
                recv.start();
                recv.wait(ctx);
                shared.read()[0]
            }
        });
        assert_eq!(out[1], 77);
    }

    #[test]
    #[should_panic(expected = "mixing a plain send with a persistent receive")]
    fn mixed_plain_send_persistent_recv_panics() {
        World::run(2, |ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                // plain send on the signature the peer registered a
                // persistent receive for: lands in the mailbox the
                // pre-matched channel bypasses
                ctx.send(&comm, 1, 5, &[1.0f64]);
            } else {
                let buf = shared_buf(vec![0.0f64]);
                let mut recv = ctx.recv_init(&comm, 0, 5, buf, 0, 1);
                recv.start();
                recv.wait(ctx); // must panic with a diagnostic, not hang
            }
        });
    }

    #[test]
    #[should_panic(expected = "mixing a persistent send with a plain recv")]
    fn mixed_persistent_send_plain_recv_panics() {
        World::run(2, |ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                // persistent send bypasses the mailbox the peer's plain
                // recv blocks on
                let buf = shared_buf(vec![1.0f64]);
                let send = ctx.send_init(&comm, 1, 6, buf, 0, 1);
                send.start(ctx);
            } else {
                let _: Vec<f64> = ctx.recv(&comm, 0, 6); // must panic, not hang
            }
        });
    }

    #[test]
    fn chan_gather_scatter_roundtrip() {
        // zero-copy halves: gather into the wire buffer on send, scatter
        // straight from the payload on receive — no registered windows
        let out = World::run(2, |ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                let values = [3.0f64, 1.0, 4.0, 1.0, 5.0];
                let picks = [4usize, 0, 2];
                let send = ctx.send_chan_init::<f64>(&comm, 1, 0, picks.len());
                let mut acc = 0.0;
                for it in 0..4 {
                    send.start_with(ctx, |buf| {
                        buf.extend(picks.iter().map(|&p| values[p] + it as f64))
                    });
                    acc += it as f64;
                }
                acc
            } else {
                let mut recv = ctx.recv_chan_init::<f64>(&comm, 0, 0, 3);
                let mut acc = 0.0;
                for _ in 0..4 {
                    recv.start();
                    acc += recv.wait_with(ctx, |data| data.iter().sum::<f64>());
                }
                acc
            }
        });
        // per iteration: (5+it) + (3+it) + (4+it) = 12 + 3it
        let expect: f64 = (0..4).map(|it| (12 + 3 * it) as f64).sum();
        assert_eq!(out[1], expect);
    }

    #[test]
    fn chan_wait_take_lends_the_payload() {
        let out = World::run(2, |ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                let send = ctx.send_chan_init::<u64>(&comm, 1, 1, 2);
                for it in 0..3u64 {
                    send.start_with(ctx, |buf| buf.extend([it, it * 10]));
                }
                0
            } else {
                let mut recv = ctx.recv_chan_init::<u64>(&comm, 0, 1, 2);
                let mut acc = 0;
                for _ in 0..3 {
                    recv.start();
                    let data = recv.wait_take(ctx);
                    acc = acc * 100 + data[0] + data[1];
                    recv.recycle(data);
                }
                acc
            }
        });
        assert_eq!(out[1], 11 * 100 + 22); // iterations 0, 11, 22 in order
    }

    #[test]
    #[should_panic(expected = "fill produced 2 elements, registered 3")]
    fn chan_fill_length_mismatch_panics() {
        World::run(1, |ctx| {
            let comm = ctx.comm_world();
            let send = ctx.send_chan_init::<u8>(&comm, 0, 0, 3);
            send.start_with(ctx, |buf| buf.extend([1, 2]));
        });
    }

    #[test]
    #[should_panic(expected = "started twice")]
    fn double_start_panics() {
        World::run(1, |ctx| {
            let comm = ctx.comm_world();
            let buf = shared_buf(vec![0u8; 1]);
            let mut r = ctx.recv_init(&comm, 0, 0, buf, 0, 1);
            r.start();
            r.start();
        });
    }
}
