//! Communicators: ordered groups of ranks with an isolated matching context.

use std::cell::Cell;
use std::sync::Arc;

/// Tag space reserved for internal collective traffic. User tags must stay
/// below this bound (checked on every p2p call).
pub(crate) const USER_TAG_LIMIT: u64 = 1 << 40;

/// A communicator: an ordered set of world ranks plus a context id that
/// isolates its message matching from every other communicator.
///
/// Each rank holds its own `Comm` value (cheap to clone; the rank list is
/// shared). Collective operations must be invoked in the same order by all
/// members, as in MPI.
#[derive(Clone)]
pub struct Comm {
    /// Matching context for point-to-point traffic on this communicator.
    pub(crate) ctx_id: u64,
    /// world rank of each communicator rank, in communicator order.
    pub(crate) ranks: Arc<Vec<usize>>,
    /// This process's rank within the communicator.
    pub(crate) my_rank: usize,
    /// Sequence number isolating successive collectives on this comm.
    pub(crate) coll_seq: Cell<u64>,
    /// Number of `split`s performed, for deterministic child context ids.
    pub(crate) split_seq: Cell<u64>,
    /// Number of `dup`s performed, for deterministic duplicate context ids.
    pub(crate) dup_seq: Cell<u64>,
}

/// Sequence-slot salt separating [`Comm::dup`] ids from split ids.
const DUP_SALT: u64 = 0xA0761D6478BD642F;
/// Sequence-slot salt separating [`Comm::dup_for`] ids from both of the
/// above, so caller-chosen streams never collide with counter-driven dups.
const DUP_STREAM_SALT: u64 = 0xE7037ED1A0B428DB;

impl Comm {
    pub(crate) fn world(n_ranks: usize, my_rank: usize) -> Self {
        Self {
            ctx_id: 0,
            ranks: Arc::new((0..n_ranks).collect()),
            my_rank,
            coll_seq: Cell::new(0),
            split_seq: Cell::new(0),
            dup_seq: Cell::new(0),
        }
    }

    /// Number of ranks in this communicator.
    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    /// Calling process's rank within this communicator.
    pub fn rank(&self) -> usize {
        self.my_rank
    }

    /// World rank of communicator rank `r`.
    pub fn world_rank(&self, r: usize) -> usize {
        self.ranks[r]
    }

    /// Communicator rank of world rank `w`, if a member.
    pub fn rank_of_world(&self, w: usize) -> Option<usize> {
        self.ranks.iter().position(|&x| x == w)
    }

    /// Next collective tag (same on all members because collectives are
    /// called in identical order).
    pub(crate) fn next_coll_tag(&self) -> u64 {
        let s = self.coll_seq.get();
        self.coll_seq.set(s + 1);
        USER_TAG_LIMIT + s
    }

    /// Deterministic context id for the `split_seq`-th split with `color`.
    /// All members compute the same id with no communication.
    pub(crate) fn child_ctx_id(&self, color: u64) -> u64 {
        let s = self.split_seq.get();
        self.split_seq.set(s + 1);
        self.mixed_ctx_id(s, color)
    }

    /// SplitMix64-style mixing keeps ids unique with overwhelming
    /// probability across any realistic number of splits and dups.
    fn mixed_ctx_id(&self, seq: u64, color: u64) -> u64 {
        let mut z = self
            .ctx_id
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(seq.wrapping_mul(0xBF58476D1CE4E5B9))
            .wrapping_add(color.wrapping_mul(0x94D049BB133111EB))
            .wrapping_add(0xD6E8FEB86659FD93);
        z ^= z >> 30;
        z = z.wrapping_mul(0xBF58476D1CE4E5B9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        z | 1 // never collide with the world context 0
    }

    /// Duplicate this communicator: same ranks and rank order, but a fresh
    /// matching context. Point-to-point traffic, persistent channels and
    /// pinned tag bases on the duplicate never alias the parent's (or any
    /// sibling's) because the context id participates in every channel
    /// key, so identical `(src, dst, tag)` signatures on two duplicates
    /// resolve to distinct channels. No communication: all members derive
    /// the same id from the shared `(parent ctx, dup count)` state, as in
    /// `MPI_Comm_dup`. The duplicate starts with fresh collective/split/
    /// dup sequence counters.
    pub fn dup(&self) -> Comm {
        let s = self.dup_seq.get();
        self.dup_seq.set(s + 1);
        self.duplicate_with_ctx(self.mixed_ctx_id(DUP_SALT, s))
    }

    /// [`Comm::dup`] with a caller-chosen stream id instead of the local
    /// dup counter. Two calls with the same `stream` on the same parent
    /// yield the same context id — this is for callers that need context
    /// ids stable across independently-constructed parents (a job
    /// scheduler handing each job a globally unique stream so traffic
    /// from a failed job in one epoch can never alias a later job's,
    /// even though `comm_world()` restarts the dup counter every epoch).
    pub fn dup_for(&self, stream: u64) -> Comm {
        self.duplicate_with_ctx(self.mixed_ctx_id(DUP_STREAM_SALT, stream))
    }

    fn duplicate_with_ctx(&self, ctx_id: u64) -> Comm {
        Comm {
            ctx_id,
            ranks: Arc::clone(&self.ranks),
            my_rank: self.my_rank,
            coll_seq: Cell::new(0),
            split_seq: Cell::new(0),
            dup_seq: Cell::new(0),
        }
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("ctx_id", &self.ctx_id)
            .field("size", &self.size())
            .field("rank", &self.my_rank)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_comm_identity() {
        let c = Comm::world(8, 3);
        assert_eq!(c.size(), 8);
        assert_eq!(c.rank(), 3);
        assert_eq!(c.world_rank(5), 5);
        assert_eq!(c.rank_of_world(7), Some(7));
    }

    #[test]
    fn coll_tags_advance() {
        let c = Comm::world(2, 0);
        let t0 = c.next_coll_tag();
        let t1 = c.next_coll_tag();
        assert_eq!(t1, t0 + 1);
        assert!(t0 >= USER_TAG_LIMIT);
    }

    #[test]
    fn child_ctx_ids_deterministic_and_distinct() {
        let a = Comm::world(4, 0);
        let b = Comm::world(4, 2);
        // Same split sequence + color on different ranks → same id.
        let ia = a.child_ctx_id(5);
        let ib = b.child_ctx_id(5);
        assert_eq!(ia, ib);
        // Different colors at the same split → different ids.
        let a2 = Comm::world(4, 0);
        let x = a2.child_ctx_id(1);
        let a3 = Comm::world(4, 0);
        let y = a3.child_ctx_id(2);
        assert_ne!(x, y);
        // Successive splits differ even with the same color.
        let c = Comm::world(4, 1);
        let first = c.child_ctx_id(9);
        let second = c.child_ctx_id(9);
        assert_ne!(first, second);
    }

    #[test]
    fn dup_ctx_ids_deterministic_distinct_and_fresh() {
        let a = Comm::world(4, 0);
        let b = Comm::world(4, 2);
        // Same dup sequence on different ranks → same id (no communication).
        let da = a.dup();
        let db = b.dup();
        assert_eq!(da.ctx_id, db.ctx_id);
        assert_ne!(da.ctx_id, a.ctx_id);
        // Ranks and rank order carry over.
        assert_eq!(da.size(), 4);
        assert_eq!(da.rank(), 0);
        assert_eq!(db.rank(), 2);
        // Successive dups differ; a dup of a dup differs from both.
        let da2 = a.dup();
        assert_ne!(da.ctx_id, da2.ctx_id);
        let grand = da.dup();
        assert_ne!(grand.ctx_id, da.ctx_id);
        assert_ne!(grand.ctx_id, da2.ctx_id);
        // Fresh counters: the duplicate's first collective tag restarts.
        let _ = a.next_coll_tag();
        assert_eq!(da.next_coll_tag(), USER_TAG_LIMIT);
    }

    #[test]
    fn dup_for_streams_are_stable_and_disjoint_from_dup() {
        let a = Comm::world(4, 0);
        let b = Comm::world(4, 3);
        // Same stream on independently-built parents → same id.
        assert_eq!(a.dup_for(7).ctx_id, b.dup_for(7).ctx_id);
        // Distinct streams → distinct ids.
        assert_ne!(a.dup_for(7).ctx_id, a.dup_for(8).ctx_id);
        // Stream-driven ids never collide with counter-driven dup ids
        // for small stream values (the salts separate the families).
        let counter_ids: Vec<u64> = (0..16).map(|_| a.dup().ctx_id).collect();
        for s in 0..16 {
            assert!(!counter_ids.contains(&a.dup_for(s).ctx_id));
        }
        // ...or with split ids at matching colors.
        let c = Comm::world(4, 0);
        let split_id = c.child_ctx_id(3);
        assert_ne!(c.dup_for(3).ctx_id, split_id);
    }
}
