//! Launching SPMD worlds.

use crate::ctx::RankCtx;
use crate::state::{ModelCtx, WorldState};
use locality::Topology;
use perfmodel::CostModel;
use std::sync::Arc;

/// Entry point: spawn `n` ranks, each running the same closure.
pub struct World;

impl World {
    /// Run `f` on `n_ranks` ranks (one OS thread each) without a cost model;
    /// virtual clocks stay at zero. Returns each rank's result, indexed by
    /// rank. Panics in any rank propagate to the caller.
    pub fn run<F, R>(n_ranks: usize, f: F) -> Vec<R>
    where
        F: Fn(&mut RankCtx) -> R + Send + Sync,
        R: Send,
    {
        Self::launch(WorldState::new(n_ranks, None), f)
    }

    /// Run with a cost model attached: each rank's virtual clock advances
    /// with every message according to `model` over `topo`'s locality
    /// classes. The world size is `topo.n_ranks()`.
    pub fn run_modeled<F, R>(topo: Topology, model: Arc<dyn CostModel>, f: F) -> Vec<R>
    where
        F: Fn(&mut RankCtx) -> R + Send + Sync,
        R: Send,
    {
        let n = topo.n_ranks();
        Self::launch(WorldState::new(n, Some(ModelCtx { model, topo })), f)
    }

    fn launch<F, R>(state: Arc<WorldState>, f: F) -> Vec<R>
    where
        F: Fn(&mut RankCtx) -> R + Send + Sync,
        R: Send,
    {
        let n = state.n_ranks;
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|rank| {
                    let state = Arc::clone(&state);
                    scope.spawn(move || {
                        let mut ctx = RankCtx::new(state, rank);
                        f(&mut ctx)
                    })
                })
                .collect();
            let mut results = Vec::with_capacity(n);
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                match h.join() {
                    Ok(r) => results.push(r),
                    Err(p) => panic = panic.or(Some(p)),
                }
            }
            if let Some(p) = panic {
                std::panic::resume_unwind(p);
            }
            results
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_indexed_by_rank() {
        let out = World::run(7, |ctx| ctx.rank() * ctx.rank());
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36]);
    }

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |ctx| {
            assert_eq!(ctx.size(), 1);
            "ok"
        });
        assert_eq!(out, vec!["ok"]);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panic_propagates() {
        World::run(3, |ctx| {
            if ctx.rank() == 2 {
                panic!("deliberate");
            }
        });
    }

    #[test]
    fn compute_charging_only_when_modeled() {
        let out = World::run(2, |ctx| {
            ctx.charge_compute(1.5);
            ctx.clock()
        });
        // Unmodeled worlds still accumulate explicit compute charges —
        // they simply never add communication time.
        assert_eq!(out, vec![1.5, 1.5]);
    }
}
