//! Launching SPMD worlds: one-shot scoped worlds ([`World::run`]) and
//! pooled persistent worlds ([`WorldPool`]) that keep their rank threads —
//! and their pre-matched channel registry — warm across closures.

use crate::ctx::RankCtx;
use crate::state::{ModelCtx, WorldState};
use crate::transport::fault::{FaultPlan, FaultTransport};
use crate::transport::shm::ShmTransport;
use crate::transport::sock::SockTransport;
use crate::transport::thread::ThreadTransport;
use crate::transport::Transport;
use locality::Topology;
use parking_lot::{Condvar, Mutex};
use perfmodel::CostModel;
use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Structured failure of one pooled epoch (see [`WorldPool::try_run`]):
/// which rank failed first (by rank order), with what panic payload, plus
/// every other rank that failed the same epoch. A stalled epoch surfaces
/// here too — the deadline abort is a panic whose message carries the
/// [`crate::StallReport`].
#[derive(Debug)]
pub struct EpochError {
    /// Lowest-ranked failure of the epoch.
    pub rank: usize,
    /// Its panic payload, rendered (`String`/`&str` payloads verbatim).
    pub message: String,
    /// All failures of the epoch, in rank order (`(rank, message)`).
    pub failures: Vec<(usize, String)>,
}

impl std::fmt::Display for EpochError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "epoch failed on rank {}: {}", self.rank, self.message)?;
        if self.failures.len() > 1 {
            write!(f, " (and {} more rank failures)", self.failures.len() - 1)?;
        }
        Ok(())
    }
}

impl std::error::Error for EpochError {}

fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Build a world state over `inner`, wrapped by a fault plan when one is
/// given (or found in `MPISIM_FAULTS`). The wait deadline resolves as:
/// plan's `deadline_ms` override, else `MPISIM_DEADLINE_MS`.
fn faulted_state(
    n_ranks: usize,
    model: Option<ModelCtx>,
    inner: Arc<dyn Transport>,
    plan: Option<FaultPlan>,
) -> Arc<WorldState> {
    let plan = plan.or_else(FaultPlan::from_env);
    let deadline = plan
        .as_ref()
        .and_then(|p| p.deadline())
        .or_else(crate::stall::env_deadline_ms);
    let transport = match plan {
        Some(p) => FaultTransport::wrap(n_ranks, p, inner),
        None => inner,
    };
    WorldState::with_transport_deadline(n_ranks, model, transport, deadline)
}

fn thread_state(
    n_ranks: usize,
    model: Option<ModelCtx>,
    plan: Option<FaultPlan>,
) -> Arc<WorldState> {
    faulted_state(
        n_ranks,
        model,
        Arc::new(ThreadTransport::new(n_ranks)),
        plan,
    )
}

fn shm_state(n_ranks: usize, plan: Option<FaultPlan>) -> Arc<WorldState> {
    let t = ShmTransport::create(n_ranks);
    // all ranks are threads of this process: nobody will attach by
    // path, so drop the name immediately (the mapping lives on)
    t.segment().unlink();
    faulted_state(n_ranks, None, t as Arc<dyn Transport>, plan)
}

fn sock_state(n_ranks: usize, plan: Option<FaultPlan>) -> Arc<WorldState> {
    let t = SockTransport::loopback(n_ranks);
    faulted_state(n_ranks, None, t as Arc<dyn Transport>, plan)
}

/// Entry point: spawn `n` ranks, each running the same closure.
pub struct World;

impl World {
    /// Run `f` on `n_ranks` ranks (one OS thread each) without a cost model;
    /// virtual clocks stay at zero. Returns each rank's result, indexed by
    /// rank. Panics in any rank propagate to the caller.
    pub fn run<F, R>(n_ranks: usize, f: F) -> Vec<R>
    where
        F: Fn(&mut RankCtx) -> R + Send + Sync,
        R: Send,
    {
        match std::env::var("MPISIM_TRANSPORT").as_deref() {
            Ok("shm") => return Self::run_shm(n_ranks, f),
            Ok("sock") => return Self::run_sock(n_ranks, f),
            _ => {}
        }
        Self::launch(thread_state(n_ranks, None, None), f)
    }

    /// [`World::run`] under a deterministic [`FaultPlan`] (thread
    /// transport): delivery delays, legal reorders, spurious wakeups, and
    /// rank kills replay identically for one seed. A plan's
    /// `deadline_ms` bounds every blocked wait without touching the
    /// process environment.
    pub fn with_faults<F, R>(n_ranks: usize, plan: FaultPlan, f: F) -> Vec<R>
    where
        F: Fn(&mut RankCtx) -> R + Send + Sync,
        R: Send,
    {
        Self::launch(thread_state(n_ranks, None, Some(plan)), f)
    }

    /// [`World::with_faults`] over the shared-memory fabric (ranks as
    /// threads of this process; see [`World::run_shm`]).
    pub fn with_faults_shm<F, R>(n_ranks: usize, plan: FaultPlan, f: F) -> Vec<R>
    where
        F: Fn(&mut RankCtx) -> R + Send + Sync,
        R: Send,
    {
        Self::launch(shm_state(n_ranks, Some(plan)), f)
    }

    /// [`World::with_faults`] over the socket fabric (ranks as threads of
    /// this process; see [`World::run_sock`]).
    pub fn with_faults_sock<F, R>(n_ranks: usize, plan: FaultPlan, f: F) -> Vec<R>
    where
        F: Fn(&mut RankCtx) -> R + Send + Sync,
        R: Send,
    {
        Self::launch(sock_state(n_ranks, Some(plan)), f)
    }

    /// [`World::run`] over the cross-process shared-memory fabric, with the
    /// ranks still living as threads of this process — the shm transport
    /// (rings, futex parking, byte payloads) under test without process
    /// management. Also reachable from [`World::run`] via
    /// `MPISIM_TRANSPORT=shm`. For ranks as real OS processes, use
    /// [`World::spawn_processes`].
    pub fn run_shm<F, R>(n_ranks: usize, f: F) -> Vec<R>
    where
        F: Fn(&mut RankCtx) -> R + Send + Sync,
        R: Send,
    {
        Self::launch(shm_state(n_ranks, None), f)
    }

    /// [`World::run`] over the socket fabric's loopback mesh, with the
    /// ranks still living as threads of this process — the sock transport
    /// (framing, sequencing, acks, heartbeats, reconnect) under test
    /// without process management. Also reachable from [`World::run`] via
    /// `MPISIM_TRANSPORT=sock`. For ranks as real OS processes over
    /// sockets, use [`World::spawn_sock`].
    pub fn run_sock<F, R>(n_ranks: usize, f: F) -> Vec<R>
    where
        F: Fn(&mut RankCtx) -> R + Send + Sync,
        R: Send,
    {
        Self::launch(sock_state(n_ranks, None), f)
    }

    /// Launch `n_ranks` as separate OS processes over the socket fabric
    /// and return this process's [`crate::SockWorld`] handle. Rank 0 (the
    /// caller) re-execs itself `n_ranks - 1` times in a hidden worker
    /// mode; workers rendezvous over the driver's listening socket, mesh
    /// up, and never return from this call's epoch loop. See
    /// [`crate::SockWorld`] for the epoch protocol.
    pub fn spawn_sock(n_ranks: usize) -> crate::SockWorld {
        crate::SockWorld::launch(n_ranks)
    }

    /// Launch `n_ranks` as separate OS processes over the shared-memory
    /// fabric and return this process's [`crate::ProcWorld`] handle. Rank 0
    /// (the caller) re-execs itself `n_ranks - 1` times in a hidden worker
    /// mode; workers never return from this call's epoch loop. See
    /// [`crate::ProcWorld`] for the epoch protocol.
    pub fn spawn_processes(n_ranks: usize) -> crate::ProcWorld {
        crate::ProcWorld::launch(n_ranks)
    }

    /// Run with a cost model attached: each rank's virtual clock advances
    /// with every message according to `model` over `topo`'s locality
    /// classes. The world size is `topo.n_ranks()`.
    pub fn run_modeled<F, R>(topo: Topology, model: Arc<dyn CostModel>, f: F) -> Vec<R>
    where
        F: Fn(&mut RankCtx) -> R + Send + Sync,
        R: Send,
    {
        let n = topo.n_ranks();
        Self::launch(thread_state(n, Some(ModelCtx { model, topo }), None), f)
    }

    /// Create a persistent pooled world of `n_ranks` ranks: the threads
    /// (and the world's pre-matched channel registry) stay alive across
    /// [`WorldPool::run`] calls, so repeated closures measure transport,
    /// not thread startup.
    pub fn pool(n_ranks: usize) -> WorldPool {
        match std::env::var("MPISIM_TRANSPORT").as_deref() {
            Ok("shm") => return Self::pool_shm(n_ranks),
            Ok("sock") => return Self::pool_sock(n_ranks),
            _ => {}
        }
        WorldPool::launch(thread_state(n_ranks, None, None))
    }

    /// [`World::pool`] over the shared-memory fabric (ranks as threads of
    /// this process; see [`World::run_shm`]).
    pub fn pool_shm(n_ranks: usize) -> WorldPool {
        WorldPool::launch(shm_state(n_ranks, None))
    }

    /// [`World::pool`] over the socket fabric (ranks as threads of this
    /// process; see [`World::run_sock`]).
    pub fn pool_sock(n_ranks: usize) -> WorldPool {
        WorldPool::launch(sock_state(n_ranks, None))
    }

    /// Pooled counterpart of [`World::with_faults`]: every epoch of the
    /// pool runs under the same deterministic fault plan (op counters keep
    /// advancing across epochs, so a kill index lands in whichever epoch
    /// reaches it).
    pub fn pool_with_faults(n_ranks: usize, plan: FaultPlan) -> WorldPool {
        WorldPool::launch(thread_state(n_ranks, None, Some(plan)))
    }

    /// [`World::pool_with_faults`] over the shared-memory fabric.
    pub fn pool_with_faults_shm(n_ranks: usize, plan: FaultPlan) -> WorldPool {
        WorldPool::launch(shm_state(n_ranks, Some(plan)))
    }

    /// [`World::pool_with_faults`] over the socket fabric.
    pub fn pool_with_faults_sock(n_ranks: usize, plan: FaultPlan) -> WorldPool {
        WorldPool::launch(sock_state(n_ranks, Some(plan)))
    }

    /// Pooled counterpart of [`World::run_modeled`]; each epoch's virtual
    /// clocks start from zero.
    pub fn pool_modeled(topo: Topology, model: Arc<dyn CostModel>) -> WorldPool {
        let n = topo.n_ranks();
        WorldPool::launch(thread_state(n, Some(ModelCtx { model, topo }), None))
    }

    fn launch<F, R>(state: Arc<WorldState>, f: F) -> Vec<R>
    where
        F: Fn(&mut RankCtx) -> R + Send + Sync,
        R: Send,
    {
        let n = state.n_ranks;
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|rank| {
                    let state = Arc::clone(&state);
                    scope.spawn(move || {
                        let mut ctx = RankCtx::new(Arc::clone(&state), rank);
                        match catch_unwind(AssertUnwindSafe(|| f(&mut ctx))) {
                            Ok(r) => r,
                            Err(p) => {
                                // let peers blocked on this rank's messages
                                // abort instead of waiting forever
                                state.note_rank_panic(Some(rank));
                                resume_unwind(p);
                            }
                        }
                    })
                })
                .collect();
            let mut results = Vec::with_capacity(n);
            let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
            for h in handles {
                match h.join() {
                    Ok(r) => results.push(r),
                    Err(p) => panic = panic.or(Some(p)),
                }
            }
            if let Some(p) = panic {
                std::panic::resume_unwind(p);
            }
            results
        })
    }
}

/// A type-erased epoch job borrowing the caller's environment for `'env`.
type JobFor<'env> = Arc<dyn Fn(&mut RankCtx) -> Box<dyn Any + Send> + Send + Sync + 'env>;
/// The storable form: every rank runs it once per epoch.
type Job = JobFor<'static>;

struct PoolCtrl {
    /// Monotonic epoch counter; workers run one job per increment.
    epoch: u64,
    job: Option<Job>,
    /// Per-rank result of the current epoch (`Err` carries a panic).
    results: Vec<Option<std::thread::Result<Box<dyn Any + Send>>>>,
    /// Ranks still running the current epoch.
    remaining: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Arc<WorldState>,
    ctrl: Mutex<PoolCtrl>,
    /// Workers park here between epochs.
    work_cv: Condvar,
    /// The driver parks here until `remaining` reaches zero.
    done_cv: Condvar,
    /// Serializes drivers: held across the whole of [`WorldPool::run`] so
    /// a second concurrent caller cannot install its epoch between the
    /// first epoch's completion and its result collection.
    epoch_lock: Mutex<()>,
}

/// A persistent SPMD world: rank threads spawned once and reused for many
/// closures via an epoch protocol.
///
/// [`WorldPool::run`] has the same shape as [`World::run`], but the rank
/// threads — and the underlying [`WorldState`], including its pre-matched
/// persistent channel registry — survive between calls. Re-registering a
/// collective with the same tags on a warm pool re-attaches to the
/// existing (drained) channels, and no per-call thread spawn/join cost is
/// paid: hundreds of `start`/`wait` iterations can run on one warm world,
/// which is what exposes true transport time in the benches.
///
/// Each epoch gets fresh [`RankCtx`]es (virtual clocks restart at zero).
/// A panic in any rank propagates from `run` once every rank has finished
/// the epoch: a panicking rank raises a world-wide flag that aborts peers
/// blocked waiting on its messages (their stall probes check it), so a
/// partial-rank panic ends the epoch loudly instead of deadlocking it.
/// In-flight traffic of the failed epoch (mailbox envelopes, undelivered
/// channel payloads) is then drained so it cannot leak into later epochs,
/// and the pool stays usable.
pub struct WorldPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorldPool {
    fn launch(state: Arc<WorldState>) -> Self {
        let n = state.n_ranks;
        let shared = Arc::new(PoolShared {
            state,
            ctrl: Mutex::new(PoolCtrl {
                epoch: 0,
                job: None,
                results: (0..n).map(|_| None).collect(),
                remaining: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            epoch_lock: Mutex::new(()),
        });
        let handles = (0..n)
            .map(|rank| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mpisim-pool-{rank}"))
                    .spawn(move || Self::worker(shared, rank))
                    .expect("spawn pool rank thread")
            })
            .collect();
        Self { shared, handles }
    }

    fn worker(shared: Arc<PoolShared>, rank: usize) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut ctrl = shared.ctrl.lock();
                loop {
                    if ctrl.shutdown {
                        return;
                    }
                    if ctrl.epoch > seen {
                        seen = ctrl.epoch;
                        break ctrl.job.clone().expect("epoch has a job");
                    }
                    shared.work_cv.wait(&mut ctrl);
                }
            };
            let result = catch_unwind(AssertUnwindSafe(|| {
                let mut ctx = RankCtx::new(Arc::clone(&shared.state), rank);
                job(&mut ctx)
            }));
            if result.is_err() {
                // peers blocked on this rank's messages must not wait
                // forever: their stall probes see the flag and abort
                shared.state.note_rank_panic(Some(rank));
            }
            // drop this worker's job handle BEFORE reporting completion:
            // `run` may only return once no worker can still hold (and
            // later drop) a closure borrowing the caller's environment
            drop(job);
            let mut ctrl = shared.ctrl.lock();
            ctrl.results[rank] = Some(result);
            ctrl.remaining -= 1;
            if ctrl.remaining == 0 {
                shared.done_cv.notify_all();
            }
        }
    }

    /// World size of the pool.
    pub fn n_ranks(&self) -> usize {
        self.shared.state.n_ranks
    }

    /// Run `f` on every rank of the warm world and return each rank's
    /// result, indexed by rank — [`World::run`] semantics without the
    /// per-call thread spawn. Panics in any rank propagate to the caller
    /// after all ranks finish the epoch; the pool remains usable.
    pub fn run<'env, F, R>(&self, f: F) -> Vec<R>
    where
        F: Fn(&mut RankCtx) -> R + Send + Sync + 'env,
        R: Send + 'static,
    {
        let results = self.epoch_results(Arc::new(move |ctx| Box::new(f(ctx)) as _));
        let mut out = Vec::with_capacity(results.len());
        let mut panic: Option<Box<dyn Any + Send>> = None;
        for r in results {
            match r {
                Ok(b) => out.push(*b.downcast::<R>().expect("epoch result type")),
                Err(p) => panic = panic.or(Some(p)),
            }
        }
        if let Some(p) = panic {
            // a rank died mid-closure: whatever it (or its peers) left in
            // flight must not leak into the next epoch's matching
            self.shared.state.drain_in_flight();
            resume_unwind(p);
        }
        out
    }

    /// [`WorldPool::run`] with graceful degradation: a failed epoch comes
    /// back as a structured [`EpochError`] — which rank failed first and
    /// with what payload (a fault-plan kill, a deadline abort carrying its
    /// [`crate::StallReport`], or an application panic) — instead of
    /// re-panicking the caller. The failed epoch's in-flight traffic is
    /// drained either way, so the pool stays usable for the next epoch.
    pub fn try_run<'env, F, R>(&self, f: F) -> Result<Vec<R>, EpochError>
    where
        F: Fn(&mut RankCtx) -> R + Send + Sync + 'env,
        R: Send + 'static,
    {
        let results = self.epoch_results(Arc::new(move |ctx| Box::new(f(ctx)) as _));
        let mut out = Vec::with_capacity(results.len());
        let mut failures: Vec<(usize, String)> = Vec::new();
        for (rank, r) in results.into_iter().enumerate() {
            match r {
                Ok(b) => out.push(*b.downcast::<R>().expect("epoch result type")),
                Err(p) => failures.push((rank, panic_message(p.as_ref()))),
            }
        }
        if failures.is_empty() {
            return Ok(out);
        }
        self.shared.state.drain_in_flight();
        let (rank, message) = failures[0].clone();
        Err(EpochError {
            rank,
            message,
            failures,
        })
    }

    /// Post one epoch and collect every rank's raw result. The common body
    /// of [`WorldPool::run`] and [`WorldPool::try_run`].
    fn epoch_results<'env>(
        &self,
        job: JobFor<'env>,
    ) -> Vec<std::thread::Result<Box<dyn Any + Send>>> {
        let n = self.n_ranks();
        // SAFETY: extend the job's lifetime to 'static for storage in the
        // long-lived pool. The borrow cannot escape this call: it blocks
        // until every worker has finished the epoch AND dropped its clone
        // of the job (workers drop before reporting completion), and the
        // control slot's clone is cleared below before returning.
        let job: Job = unsafe { std::mem::transmute::<JobFor<'env>, Job>(job) };
        // one driver at a time: held until results are collected, so a
        // concurrent `run` can neither interleave its epoch with ours nor
        // steal our results
        let _epoch = self.shared.epoch_lock.lock();
        let mut ctrl = self.shared.ctrl.lock();
        debug_assert_eq!(ctrl.remaining, 0, "epoch_lock held with ranks in flight");
        self.shared.state.clear_rank_panic();
        ctrl.job = Some(job);
        ctrl.epoch += 1;
        // mirror the epoch id into the world so stall reports can name it
        self.shared.state.set_epoch(ctrl.epoch);
        ctrl.remaining = n;
        ctrl.results.iter_mut().for_each(|r| *r = None);
        self.shared.work_cv.notify_all();
        while ctrl.remaining > 0 {
            self.shared.done_cv.wait(&mut ctrl);
        }
        ctrl.job = None;
        ctrl.results
            .iter_mut()
            .map(|r| r.take().expect("every rank reported"))
            .collect()
    }
}

impl Drop for WorldPool {
    fn drop(&mut self) {
        {
            let mut ctrl = self.shared.ctrl.lock();
            ctrl.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_indexed_by_rank() {
        let out = World::run(7, |ctx| ctx.rank() * ctx.rank());
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36]);
    }

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |ctx| {
            assert_eq!(ctx.size(), 1);
            "ok"
        });
        assert_eq!(out, vec!["ok"]);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn rank_panic_propagates() {
        World::run(3, |ctx| {
            if ctx.rank() == 2 {
                panic!("deliberate");
            }
        });
    }

    #[test]
    fn compute_charging_only_when_modeled() {
        let out = World::run(2, |ctx| {
            ctx.charge_compute(1.5);
            ctx.clock()
        });
        // Unmodeled worlds still accumulate explicit compute charges —
        // they simply never add communication time.
        assert_eq!(out, vec![1.5, 1.5]);
    }

    #[test]
    fn pool_reuses_threads_across_epochs() {
        let pool = World::pool(5);
        assert_eq!(pool.n_ranks(), 5);
        let out = pool.run(|ctx| ctx.rank() * ctx.rank());
        assert_eq!(out, vec![0, 1, 4, 9, 16]);
        // a second epoch with a different result type, on the same threads
        let names: Vec<String> = pool.run(|ctx| format!("r{}", ctx.rank()));
        assert_eq!(names[3], "r3");
        // borrowed environment: closures may capture references
        let base = [10usize, 20, 30, 40, 50];
        let out = pool.run(|ctx| base[ctx.rank()] + 1);
        assert_eq!(out, vec![11, 21, 31, 41, 51]);
    }

    #[test]
    fn pool_epochs_communicate_independently() {
        let pool = World::pool(4);
        for epoch in 0..3u64 {
            let out = pool.run(|ctx| {
                let comm = ctx.comm_world();
                let right = (ctx.rank() + 1) % ctx.size();
                let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
                ctx.send(&comm, right, 0, &[ctx.rank() as u64 + 100 * epoch]);
                let v: Vec<u64> = ctx.recv(&comm, left, 0);
                v[0]
            });
            assert_eq!(
                out,
                vec![
                    3 + 100 * epoch,
                    100 * epoch,
                    1 + 100 * epoch,
                    2 + 100 * epoch
                ]
            );
        }
    }

    #[test]
    fn pool_panic_propagates_and_pool_survives() {
        let pool = World::pool(3);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // every rank panics, so the epoch terminates cleanly
            pool.run(|ctx| -> usize { panic!("epoch failed on rank {}", ctx.rank()) });
        }));
        assert!(r.is_err());
        // the pool is still usable after a panicked epoch
        let out = pool.run(|ctx| ctx.rank() + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn pool_partial_rank_panic_does_not_hang() {
        // rank 0 dies before sending; rank 1 is blocked waiting for its
        // message. The stall probe must abort rank 1, the epoch must end
        // with a panic, and the pool must stay usable.
        let pool = World::pool(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|ctx| {
                let comm = ctx.comm_world();
                if ctx.rank() == 0 {
                    panic!("rank 0 dies before sending");
                }
                let mut recv = ctx.recv_chan_init::<u64>(&comm, 0, 5, 1);
                recv.start();
                recv.wait_with(ctx, |d| d[0])
            });
        }));
        assert!(r.is_err());
        let out = pool.run(|ctx| ctx.rank() * 10);
        assert_eq!(out, vec![0, 10]);
    }

    #[test]
    fn scoped_partial_rank_panic_does_not_hang() {
        // the same guarantee for one-shot worlds: a blocked plain recv
        // aborts when its peer dies
        let r = std::panic::catch_unwind(|| {
            World::run(2, |ctx| {
                let comm = ctx.comm_world();
                if ctx.rank() == 0 {
                    panic!("rank 0 dies before sending");
                }
                let v: Vec<u64> = ctx.recv(&comm, 0, 5);
                v[0]
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn pool_drains_in_flight_traffic_after_panic() {
        // epoch 1: rank 0 deposits a persistent payload and a plain
        // envelope, then every rank panics before rank 1 receives either.
        // Epoch 2 reuses both signatures: it must see the NEW messages,
        // not epoch 1's stale ones.
        let pool = World::pool(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|ctx| {
                let comm = ctx.comm_world();
                if ctx.rank() == 0 {
                    let send = ctx.send_chan_init::<u64>(&comm, 1, 3, 1);
                    send.start_with(ctx, |b| b.push(111));
                    ctx.send(&comm, 1, 4, &[222u64]);
                }
                panic!("abandon epoch");
            });
        }));
        assert!(r.is_err());
        let out = pool.run(|ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                let send = ctx.send_chan_init::<u64>(&comm, 1, 3, 1);
                send.start_with(ctx, |b| b.push(1111));
                ctx.send(&comm, 1, 4, &[2222u64]);
                0
            } else {
                let mut recv = ctx.recv_chan_init::<u64>(&comm, 0, 3, 1);
                recv.start();
                let a = recv.wait_with(ctx, |d| d[0]);
                let b: Vec<u64> = ctx.recv(&comm, 0, 4);
                a + b[0]
            }
        });
        assert_eq!(out[1], 1111 + 2222);
    }

    #[test]
    fn shm_pool_drains_in_flight_traffic_after_panic() {
        // the same failed-epoch drain guarantee over the shm fabric: the
        // abandoned traffic lives in segment rings (persistent + mailbox)
        // and — for the oversized payload — in the sender-side spill
        // outbox, and all three must be gone before epoch 2 reuses the
        // same signatures
        let pool = World::pool_shm(2);
        let big_len = 80_000usize; // u64s: ~640 KB, overflows the 256 KiB mailbox ring
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|ctx| {
                let comm = ctx.comm_world();
                if ctx.rank() == 0 {
                    let send = ctx.send_chan_init::<u64>(&comm, 1, 3, 1);
                    send.start_with(ctx, |b| b.push(111));
                    ctx.send(&comm, 1, 4, &[222u64]);
                    let big = vec![333u64; big_len];
                    ctx.send(&comm, 1, 5, &big);
                }
                panic!("abandon epoch");
            });
        }));
        assert!(r.is_err());
        let out = pool.run(|ctx| {
            let comm = ctx.comm_world();
            if ctx.rank() == 0 {
                let send = ctx.send_chan_init::<u64>(&comm, 1, 3, 1);
                send.start_with(ctx, |b| b.push(1111));
                ctx.send(&comm, 1, 4, &[2222u64]);
                ctx.send(&comm, 1, 5, &[3333u64]);
                0
            } else {
                let mut recv = ctx.recv_chan_init::<u64>(&comm, 0, 3, 1);
                recv.start();
                let a = recv.wait_with(ctx, |d| d[0]);
                let b: Vec<u64> = ctx.recv(&comm, 0, 4);
                let c: Vec<u64> = ctx.recv(&comm, 0, 5);
                assert_eq!(c.len(), 1, "epoch 1's chunked payload leaked into epoch 2");
                a + b[0] + c[0]
            }
        });
        assert_eq!(out[1], 1111 + 2222 + 3333);
    }

    #[test]
    fn pool_modeled_clocks_reset_per_epoch() {
        use perfmodel::PostalModel;
        let topo = Topology::block_nodes(2, 1);
        let model = Arc::new(PostalModel::new(1e-6, 1e-9));
        let pool = World::pool_modeled(topo, model);
        let expect = 1e-6 + 1000.0 * 1e-9;
        for _ in 0..2 {
            let clocks = pool.run(|ctx| {
                let comm = ctx.comm_world();
                if ctx.rank() == 0 {
                    ctx.send(&comm, 1, 0, &[0u8; 1000]);
                } else {
                    let _: Vec<u8> = ctx.recv(&comm, 0, 0);
                }
                ctx.clock()
            });
            // fresh RankCtx per epoch: clocks do not accumulate across runs
            assert!((clocks[1] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn pool_persistent_channels_stay_warm() {
        // the same persistent signature re-registered across epochs
        // re-attaches to the drained channel and keeps delivering
        let pool = World::pool(2);
        for epoch in 0..3u64 {
            let out = pool.run(|ctx| {
                let comm = ctx.comm_world();
                if ctx.rank() == 0 {
                    let send = ctx.send_chan_init::<u64>(&comm, 1, 7, 1);
                    send.start_with(ctx, |buf| buf.push(epoch * 11));
                    0
                } else {
                    let mut recv = ctx.recv_chan_init::<u64>(&comm, 0, 7, 1);
                    recv.start();
                    recv.wait_with(ctx, |data| data[0])
                }
            });
            assert_eq!(out[1], epoch * 11);
        }
    }
}
