//! The in-process fabric: one mutexed mailbox per rank, typed payloads,
//! condvar wakeups. This is the transport every thread-backed world
//! ([`crate::World::run`], [`crate::WorldPool`]) uses by default — the
//! behavior `mpisim` always had, now behind the [`Transport`] seam.

use super::{ChanFabric, PayloadMode, Transport, TransportForensics};
use crate::state::{ChanId, ChanKey, Envelope, Mailbox, WaitSet, WorldState};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Sentinel for "no rank recorded" in `dead_rank`.
const NO_RANK: usize = usize::MAX;

pub(crate) struct ThreadTransport {
    /// Unexpected-message queue of each rank.
    mailboxes: Vec<Mailbox>,
    /// One park point per world rank for completion-driven receives over
    /// channel sets. Lives with the transport (like the channel registry)
    /// so pooled epochs reuse it warm.
    wait_sets: Vec<Arc<WaitSet>>,
    /// Set when a rank of the current pool epoch panicked: blocked
    /// receives check it from their stall probes and abort loudly instead
    /// of waiting forever for a message the dead rank will never send.
    rank_panicked: AtomicBool,
    /// Which rank raised the flag (first writer wins), for forensics.
    dead_rank: AtomicUsize,
}

impl ThreadTransport {
    pub fn new(n_ranks: usize) -> Self {
        Self {
            mailboxes: (0..n_ranks).map(|_| Mailbox::default()).collect(),
            wait_sets: (0..n_ranks).map(|_| Arc::new(WaitSet::new())).collect(),
            rank_panicked: AtomicBool::new(false),
            dead_rank: AtomicUsize::new(NO_RANK),
        }
    }
}

impl Transport for ThreadTransport {
    fn mode(&self) -> PayloadMode {
        PayloadMode::Typed
    }

    fn fabric(&self) -> &'static str {
        "thread"
    }

    fn deposit(&self, _src_world: usize, dst_world: usize, env: Envelope) {
        let mb = &self.mailboxes[dst_world];
        let mut q = mb.queue.lock();
        q.push_back(env);
        mb.cv.notify_all();
    }

    fn match_recv(
        &self,
        global_dst: usize,
        ctx_id: u64,
        src: usize,
        tag: u64,
        stall: &dyn Fn(),
    ) -> (Envelope, usize) {
        let mb = &self.mailboxes[global_dst];
        let mut q = mb.queue.lock();
        loop {
            let searched = q.len();
            if let Some(pos) = q
                .iter()
                .position(|e| e.ctx_id == ctx_id && e.src == src && e.tag == tag)
            {
                let env = q.remove(pos).expect("position valid");
                return (env, searched);
            }
            if mb
                .cv
                .wait_for(
                    &mut q,
                    std::time::Duration::from_millis(crate::stall::stall_ms()),
                )
                .timed_out()
            {
                stall();
            }
        }
    }

    fn probe(&self, global_dst: usize, ctx_id: u64, src: usize, tag: u64) -> bool {
        let q = self.mailboxes[global_dst].queue.lock();
        q.iter()
            .any(|e| e.ctx_id == ctx_id && e.src == src && e.tag == tag)
    }

    fn wait_any(
        &self,
        global_rank: usize,
        chans: &[ChanId],
        start: usize,
        stall: &dyn Fn(),
    ) -> usize {
        // Yield-spin before parking: same rationale as `Channel::pop_with`.
        for _ in 0..24 {
            if let Some(i) = WorldState::poll_any_from(chans, start) {
                return i;
            }
            std::thread::yield_now();
        }
        let ws = &self.wait_sets[global_rank];
        for c in chans {
            c.attach(ws);
        }
        let found = loop {
            // generation BEFORE the scan: a deposit racing with the scan
            // bumps it, so the park below returns without sleeping
            let seen = ws.generation();
            if let Some(i) = WorldState::poll_any_from(chans, start) {
                break i;
            }
            ws.park_past(seen, stall);
        };
        // stop routing deposit wakes to this rank once it is running again
        for c in chans {
            c.detach(ws);
        }
        found
    }

    fn make_channel(
        &self,
        _key: ChanKey,
        _dst_world: usize,
        _elem_bytes: usize,
        _type_name: &'static str,
        _len_hint: usize,
    ) -> ChanFabric {
        ChanFabric::Local // in-process channels stay typed; no wire buffers
    }

    fn drain_in_flight(&self) {
        for mb in &self.mailboxes {
            mb.queue.lock().clear();
        }
    }

    fn note_rank_panic(&self, rank: Option<usize>) {
        if let Some(r) = rank {
            let _ =
                self.dead_rank
                    .compare_exchange(NO_RANK, r, Ordering::AcqRel, Ordering::Relaxed);
        }
        self.rank_panicked.store(true, Ordering::Release);
    }

    fn clear_rank_panic(&self) {
        self.rank_panicked.store(false, Ordering::Release);
        self.dead_rank.store(NO_RANK, Ordering::Release);
    }

    fn dead_rank(&self) -> Option<usize> {
        match self.dead_rank.load(Ordering::Acquire) {
            NO_RANK => None,
            r => Some(r),
        }
    }

    fn peer_failure(&self) -> Option<String> {
        if !self.rank_panicked.load(Ordering::Acquire) {
            return None;
        }
        let who = match self.dead_rank() {
            Some(r) => format!(" (rank {r} died)"),
            None => String::new(),
        };
        Some(format!(
            "a peer rank panicked this epoch; abandoning blocked receive{who}"
        ))
    }

    fn forensics(&self) -> TransportForensics {
        TransportForensics {
            fabric: "thread",
            mailbox_depths: self
                .mailboxes
                .iter()
                .map(|mb| mb.queue.try_lock().map(|q| q.len()))
                .collect(),
            outbox_depth: 0,
            peers: Vec::new(),
            links: Vec::new(),
        }
    }
}
