//! Process-shared futex parking, via the raw `futex(2)` syscall.
//!
//! The shm fabric parks on 32-bit words that live *inside* the shared
//! segment, so waiters and wakers may be different processes — the
//! `FUTEX_PRIVATE_FLAG` is deliberately absent. No `libc` crate is
//! vendored; the two calls we need are declared against the C library the
//! std binary already links.
//!
//! Every wait carries a bounded timeout (the fabric-wide stall period,
//! `MPISIM_STALL_MS` — see [`crate::stall::stall_ms`]): wakes are a
//! latency optimization, timeouts are the progress and death-detection
//! guarantee. Spurious returns are fine — all callers re-check their
//! condition in a loop.

use std::ffi::{c_int, c_long};
use std::sync::atomic::AtomicU32;

#[cfg(target_arch = "x86_64")]
const SYS_FUTEX: c_long = 202;
#[cfg(target_arch = "aarch64")]
const SYS_FUTEX: c_long = 98;

const FUTEX_WAIT: c_int = 0;
const FUTEX_WAKE: c_int = 1;

#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

extern "C" {
    fn syscall(num: c_long, ...) -> c_long;
}

/// Sleep until `word` is observed different from `expected`, a wake
/// arrives, or `timeout_ms` elapses — whichever is first.
pub(crate) fn wait(word: &AtomicU32, expected: u32, timeout_ms: u64) {
    let ts = Timespec {
        tv_sec: (timeout_ms / 1000) as i64,
        tv_nsec: ((timeout_ms % 1000) * 1_000_000) as i64,
    };
    unsafe {
        // EAGAIN (word moved), ETIMEDOUT, and EINTR are all just "go
        // re-check" to our callers; the return value is irrelevant.
        syscall(
            SYS_FUTEX,
            word.as_ptr(),
            FUTEX_WAIT,
            expected,
            &ts as *const Timespec,
        );
    }
}

/// Wake every waiter parked on `word`.
pub(crate) fn wake_all(word: &AtomicU32) {
    unsafe {
        syscall(SYS_FUTEX, word.as_ptr(), FUTEX_WAKE, i32::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn wait_returns_on_wake() {
        let word = Arc::new(AtomicU32::new(0));
        let w2 = Arc::clone(&word);
        let t = std::thread::spawn(move || {
            let start = std::time::Instant::now();
            // generous timeout: the wake below must cut it short
            while w2.load(Ordering::SeqCst) == 0 {
                wait(&w2, 0, 5_000);
            }
            start.elapsed()
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        word.store(1, Ordering::SeqCst);
        wake_all(&word);
        let waited = t.join().unwrap();
        assert!(waited < std::time::Duration::from_secs(4), "wake was lost");
    }

    #[test]
    fn wait_times_out_when_nothing_happens() {
        let word = AtomicU32::new(7);
        let start = std::time::Instant::now();
        wait(&word, 7, 20);
        assert!(start.elapsed() >= std::time::Duration::from_millis(15));
    }

    #[test]
    fn wait_returns_immediately_on_stale_expected() {
        let word = AtomicU32::new(3);
        let start = std::time::Instant::now();
        wait(&word, 99, 5_000); // EAGAIN: word != expected
        assert!(start.elapsed() < std::time::Duration::from_secs(1));
    }
}
