//! The cross-process shared-memory fabric.
//!
//! All cross-rank state lives in one [`segment::Segment`]: plain sends
//! travel over per-(src, dst) SPSC byte rings and are matched against a
//! receiver-local unexpected queue; persistent channels are byte rings
//! allocated through the segment's registration table (the pre-matched
//! handshake); parking is process-shared futexes with the fabric-wide
//! stall period (`MPISIM_STALL_MS`, see [`crate::stall::stall_ms`]), so
//! every blocked operation re-probes for peer death (flag + pid sweep)
//! and aborts loudly instead of deadlocking.
//!
//! The same transport serves both deployment shapes: rank threads of one
//! process ([`crate::World::run_shm`], [`crate::World::pool_shm`] — the
//! fabric under test without process management) and ranks as separate
//! OS processes ([`crate::World::spawn_processes`]).

pub(crate) mod futex;
pub(crate) mod ring;
pub(crate) mod segment;

use super::wire::{decode_envelope, encode_env_hdr, ENV_HDR};
use super::{ChanFabric, PayloadMode, Transport, TransportForensics};
use crate::state::{ChanId, ChanKey, Envelope, Payload, WorldState};
use parking_lot::{Condvar, Mutex};
use ring::ShmChanRaw;
use segment::Segment;
use std::collections::VecDeque;
use std::sync::Arc;

/// Receiver-local unexpected-message state of one rank.
struct RecvState {
    q: VecDeque<Envelope>,
    /// Reassembly slots for oversized plain sends, one per source: an
    /// envelope whose payload is still streaming in as continuation
    /// frames over that source's mailbox ring, with the byte count still
    /// outstanding. Per-ring FIFO makes continuations unambiguous.
    partial: Vec<Option<(Envelope, usize)>>,
}

/// One mailbox frame spilled to the sender-side outbox: the exact byte
/// image `ShmChanRaw::try_push` would have written, FIFO per (src, dst).
struct Frame {
    arrival: f64,
    bytes: Vec<u8>,
}

struct OutboxState {
    /// Spilled frames per (src, dst) pair, indexed `src * n + dst`.
    pending: Vec<VecDeque<Frame>>,
    /// True while a pair has spilled frames (or is mid-drain): deposits
    /// on that pair must queue behind them to preserve FIFO, and only the
    /// flusher pushes that ring (keeping it single-producer).
    spilling: Vec<bool>,
    /// Total spilled frames across all pairs.
    live: usize,
    shutdown: bool,
}

/// Sender-side spill buffer making `deposit` non-blocking. The thread
/// transport's deposit never blocks (unbounded mailboxes), so protocols
/// may legally have every rank send before any rank receives; with
/// bounded mailbox rings that pattern would deadlock all senders on full
/// rings. Frames that don't fit are queued here and a dedicated flusher
/// thread retires them as the receiver drains ring space.
struct Outbox {
    state: Mutex<OutboxState>,
    cv: Condvar,
}

pub(crate) struct ShmTransport {
    seg: Arc<Segment>,
    /// Receiver-side unexpected-message queues, one per world rank. Only
    /// rank r's process (or thread) touches queue r — rings are pumped
    /// into it on that rank's receive path, so the queue itself never
    /// crosses a process boundary.
    local_mb: Vec<Mutex<RecvState>>,
    outbox: Arc<Outbox>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ShmTransport {
    /// Create the fabric (segment creator: in-process worlds, and rank 0
    /// of a process world).
    pub fn create(n_ranks: usize) -> Arc<Self> {
        Arc::new(Self::over(Segment::create(n_ranks)))
    }

    /// Attach to an existing fabric (worker processes).
    pub fn attach(path: &str) -> Arc<Self> {
        Arc::new(Self::over(Segment::attach(path)))
    }

    fn over(seg: Arc<Segment>) -> Self {
        let n = seg.n_ranks();
        let outbox = Arc::new(Outbox {
            state: Mutex::new(OutboxState {
                pending: (0..n * n).map(|_| VecDeque::new()).collect(),
                spilling: vec![false; n * n],
                live: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let flusher = {
            let (seg, outbox) = (Arc::clone(&seg), Arc::clone(&outbox));
            std::thread::Builder::new()
                .name("mpisim-shm-flusher".into())
                .spawn(move || run_flusher(&seg, &outbox))
                .expect("spawn shm flusher thread")
        };
        Self {
            seg,
            local_mb: (0..n)
                .map(|_| {
                    Mutex::new(RecvState {
                        q: VecDeque::new(),
                        partial: (0..n).map(|_| None).collect(),
                    })
                })
                .collect(),
            outbox,
            flusher: Mutex::new(Some(flusher)),
        }
    }

    pub fn segment(&self) -> &Arc<Segment> {
        &self.seg
    }

    fn mailbox_ring(&self, src: usize, dst: usize) -> ShmChanRaw {
        ShmChanRaw::new(Arc::clone(&self.seg), self.seg.mailbox_ring_off(src, dst))
    }

    /// Deliver one mailbox frame on the (src, dst) ring without ever
    /// blocking: a direct `try_push` when the pair isn't spilling and the
    /// ring has room, otherwise a spill to the outbox for the flusher.
    /// Caller holds the outbox lock, which is what serializes the rank's
    /// deposit path against the flusher (each ring keeps one producer at
    /// a time; the `spilling` flag only transitions under this lock).
    fn send_frame(
        &self,
        st: &mut OutboxState,
        src: usize,
        dst: usize,
        arrival: f64,
        parts: &[&[u8]],
    ) {
        let idx = src * self.seg.n_ranks() + dst;
        if !st.spilling[idx] && self.mailbox_ring(src, dst).try_push(arrival, parts) {
            Segment::bump_and_wake(self.seg.mb_seq(dst));
            return;
        }
        st.spilling[idx] = true;
        let mut bytes = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for p in parts {
            bytes.extend_from_slice(p);
        }
        st.pending[idx].push_back(Frame { arrival, bytes });
        st.live += 1;
        self.outbox.cv.notify_one();
    }

    /// Drain every inbound mailbox ring of `dst` into its local unexpected
    /// queue (preserving per-source FIFO order, which is what MPI's
    /// non-overtaking rule requires), reassembling chunked envelopes.
    fn pump(&self, dst: usize, st: &mut RecvState) {
        for src in 0..self.seg.n_ranks() {
            let ring = self.mailbox_ring(src, dst);
            loop {
                let partial = &mut st.partial[src];
                let q = &mut st.q;
                let popped = ring.try_pop_with(|arrival, a, b| {
                    let done = match partial.take() {
                        // continuation frame: the whole frame is payload
                        Some((mut env, remaining)) => {
                            let Payload::Bytes { data, .. } = &mut env.payload else {
                                unreachable!("partial envelopes are byte payloads");
                            };
                            debug_assert!(a.len() + b.len() <= remaining);
                            data.extend_from_slice(a);
                            data.extend_from_slice(b);
                            (env, remaining - a.len() - b.len())
                        }
                        None => {
                            let mut raw = Vec::with_capacity(a.len() + b.len());
                            raw.extend_from_slice(a);
                            raw.extend_from_slice(b);
                            decode_envelope(arrival, &raw)
                        }
                    };
                    match done {
                        (env, 0) => q.push_back(env),
                        still_short => *partial = Some(still_short),
                    }
                });
                if popped.is_none() {
                    break;
                }
            }
        }
    }
}

/// Flusher loop: retire spilled outbox frames into their mailbox rings as
/// receivers free ring space. `try_push`-only, FIFO per pair; a pair's
/// `spilling` flag clears (returning it to the direct deposit path) only
/// once its queue drains, so frame order is preserved. When no frame fits
/// yet, polls with a short timed wait — simpler than parking one thread
/// on n² per-ring space futexes, and the deposit-side `notify_one` still
/// wakes it immediately for fresh spills.
fn run_flusher(seg: &Arc<Segment>, outbox: &Outbox) {
    let n = seg.n_ranks();
    let mut st = outbox.state.lock();
    loop {
        while st.live == 0 && !st.shutdown {
            outbox.cv.wait(&mut st);
        }
        if st.shutdown {
            return;
        }
        let mut progressed = false;
        for idx in 0..n * n {
            if st.pending[idx].is_empty() {
                continue;
            }
            let ring = ShmChanRaw::new(Arc::clone(seg), seg.mailbox_ring_off(idx / n, idx % n));
            while let Some(f) = st.pending[idx].front() {
                if !ring.try_push(f.arrival, &[&f.bytes]) {
                    break;
                }
                st.pending[idx].pop_front();
                st.live -= 1;
                progressed = true;
                Segment::bump_and_wake(seg.mb_seq(idx % n));
            }
            if st.pending[idx].is_empty() {
                st.spilling[idx] = false;
            }
        }
        if !progressed && st.live > 0 {
            let _ = outbox
                .cv
                .wait_for(&mut st, std::time::Duration::from_micros(500));
        }
    }
}

impl Transport for ShmTransport {
    fn mode(&self) -> PayloadMode {
        PayloadMode::Bytes
    }

    fn fabric(&self) -> &'static str {
        "shm"
    }

    fn deposit(&self, src_world: usize, dst_world: usize, env: Envelope) {
        let Payload::Bytes { data, type_name } = &env.payload else {
            unreachable!("shm deposit requires byte payloads (PayloadMode::Bytes)");
        };
        let hdr = encode_env_hdr(env.ctx_id, env.src, env.tag, type_name.len(), data.len());
        // Payloads larger than a fraction of the ring stream through it in
        // chunks (the receiver reassembles; see `RecvState::partial`), so a
        // single plain send is never bounded by the ring capacity. Each
        // frame gets its own wake so an already-parked receiver starts
        // draining mid-message. Deposit itself NEVER blocks — frames that
        // don't fit spill to the outbox (see `Outbox`) — matching the
        // thread transport's unbounded buffered-send semantics: protocols
        // where every rank sends before any rank receives must not
        // deadlock on full rings.
        let max_chunk = (self.seg.mailbox_cap() / 2) as usize;
        assert!(
            ENV_HDR + type_name.len() < max_chunk,
            "mailbox ring too small for an envelope header (raise MPISIM_SHM_MAILBOX_CAP)"
        );
        let first = data.len().min(max_chunk - ENV_HDR - type_name.len());
        let mut st = self.outbox.state.lock();
        self.send_frame(
            &mut st,
            src_world,
            dst_world,
            env.arrival,
            &[&hdr, type_name.as_bytes(), &data[..first]],
        );
        let mut off = first;
        while off < data.len() {
            let end = (off + max_chunk).min(data.len());
            self.send_frame(&mut st, src_world, dst_world, 0.0, &[&data[off..end]]);
            off = end;
        }
    }

    fn match_recv(
        &self,
        global_dst: usize,
        ctx_id: u64,
        src: usize,
        tag: u64,
        stall: &dyn Fn(),
    ) -> (Envelope, usize) {
        let seq = self.seg.mb_seq(global_dst);
        let mut st = self.local_mb[global_dst].lock();
        loop {
            let seen = seq.load(std::sync::atomic::Ordering::SeqCst);
            self.pump(global_dst, &mut st);
            let searched = st.q.len();
            if let Some(pos) =
                st.q.iter()
                    .position(|e| e.ctx_id == ctx_id && e.src == src && e.tag == tag)
            {
                let env = st.q.remove(pos).expect("position valid");
                return (env, searched);
            }
            futex::wait(seq, seen, crate::stall::stall_ms());
            let moved = seq.load(std::sync::atomic::Ordering::SeqCst) != seen;
            if !moved {
                stall();
            }
        }
    }

    fn probe(&self, global_dst: usize, ctx_id: u64, src: usize, tag: u64) -> bool {
        let mut st = self.local_mb[global_dst].lock();
        self.pump(global_dst, &mut st);
        st.q.iter()
            .any(|e| e.ctx_id == ctx_id && e.src == src && e.tag == tag)
    }

    fn wait_any(
        &self,
        global_rank: usize,
        chans: &[ChanId],
        start: usize,
        stall: &dyn Fn(),
    ) -> usize {
        for _ in 0..24 {
            if let Some(i) = WorldState::poll_any_from(chans, start) {
                return i;
            }
            std::thread::yield_now();
        }
        let seq = self.seg.ws_seq(global_rank);
        // watcher-store (SeqCst) THEN scan pairs with the producer's
        // count-bump THEN watcher-load: at least one side sees the other,
        // so a deposit racing the park either gets scanned or gets woken
        for c in chans {
            c.watch(global_rank);
        }
        let found = loop {
            let seen = seq.load(std::sync::atomic::Ordering::SeqCst);
            if let Some(i) = WorldState::poll_any_from(chans, start) {
                break i;
            }
            futex::wait(seq, seen, crate::stall::stall_ms());
            if seq.load(std::sync::atomic::Ordering::SeqCst) == seen {
                stall();
            }
        };
        for c in chans {
            c.unwatch(global_rank);
        }
        found
    }

    fn make_channel(
        &self,
        key: ChanKey,
        _dst_world: usize,
        elem_bytes: usize,
        type_name: &'static str,
        len_hint: usize,
    ) -> ChanFabric {
        let depth = std::env::var("MPISIM_SHM_RING_DEPTH")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(8u64);
        let msg = 16 + (elem_bytes * len_hint.max(1)) as u64;
        let ring_bytes = (depth * msg).next_power_of_two().max(64 << 10);
        let off = self
            .seg
            .register_channel(key, elem_bytes, type_name, ring_bytes);
        ChanFabric::Shm(ShmChanRaw::new(Arc::clone(&self.seg), off))
    }

    fn drain_in_flight(&self) {
        {
            let mut st = self.outbox.state.lock();
            st.pending.iter_mut().for_each(VecDeque::clear);
            st.spilling.iter_mut().for_each(|s| *s = false);
            st.live = 0;
        }
        let n = self.seg.n_ranks();
        for dst in 0..n {
            for src in 0..n {
                self.mailbox_ring(src, dst).drain();
            }
            let mut st = self.local_mb[dst].lock();
            st.q.clear();
            st.partial.iter_mut().for_each(|p| *p = None);
        }
        // persistent-channel rings are drained by the registry's typed
        // drain hooks (WorldState::drain_in_flight runs both passes)
    }

    fn note_rank_panic(&self, rank: Option<usize>) {
        match rank {
            Some(r) => self.seg.note_rank_death(r),
            None => self.seg.note_rank_panic(),
        }
    }

    fn clear_rank_panic(&self) {
        self.seg.clear_rank_panic();
    }

    fn dead_rank(&self) -> Option<usize> {
        self.seg.dead_rank()
    }

    fn peer_failure(&self) -> Option<String> {
        self.seg.peer_failure()
    }

    fn forensics(&self) -> TransportForensics {
        let n = self.seg.n_ranks();
        // try_lock only: forensics run from stall closures that may already
        // hold a mailbox lock; a contended depth reports as unknown rather
        // than deadlocking the dump.
        let mailbox_depths = (0..n)
            .map(|dst| {
                self.local_mb[dst].try_lock().map(|st| {
                    let in_rings: usize = (0..n)
                        .map(|src| self.mailbox_ring(src, dst).msg_count())
                        .sum();
                    st.q.len() + in_rings
                })
            })
            .collect();
        let outbox_depth = self.outbox.state.try_lock().map_or(0, |st| st.live);
        let peers = (0..n)
            .filter_map(|r| {
                let pid = self
                    .seg
                    .pid_slot(r)
                    .load(std::sync::atomic::Ordering::SeqCst);
                (pid != 0).then(|| crate::stall::PeerStatus {
                    rank: r,
                    pid,
                    alive: segment::pid_alive(pid),
                })
            })
            .collect();
        TransportForensics {
            fabric: "shm",
            mailbox_depths,
            outbox_depth,
            peers,
            links: Vec::new(),
        }
    }
}

impl Drop for ShmTransport {
    fn drop(&mut self) {
        {
            let mut st = self.outbox.state.lock();
            st.shutdown = true;
            self.outbox.cv.notify_all();
        }
        if let Some(h) = self.flusher.lock().take() {
            let _ = h.join();
        }
    }
}
