//! SPSC byte rings inside the shared segment, and the typed channel view
//! over them.
//!
//! One ring has exactly one producer (the sending rank) and one consumer
//! (the receiving rank) — the fabric guarantees this by construction:
//! mailbox rings are per (src, dst) pair, persistent-channel rings carry
//! one pre-matched signature. head/tail are monotonic byte counters; the
//! data area is a power-of-two so positions wrap by masking, and every
//! copy handles the wrap by splitting into two `memcpy`s.
//!
//! Message frame: `[payload_len: u32][pad: u32][arrival: f64][payload]`,
//! padded to 8 bytes. The frame is written and read as raw bytes (via the
//! wrapped copy), so nothing in the ring ever needs alignment beyond the
//! header word atomics.

use super::futex;
use super::segment::Segment;
use crate::transport::{assert_pod, vec_extend_bytes};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

#[repr(C)]
struct RingHdr {
    /// Bytes consumed (monotonic; consumer-written).
    head: AtomicU64,
    /// Bytes produced (monotonic; producer-written).
    tail: AtomicU64,
    /// Data-area capacity in bytes (power of two).
    cap: AtomicU64,
    /// Delivered, unconsumed messages — the cross-process `ready` probe.
    msg_count: AtomicU64,
    /// Futex word bumped on every push.
    data_seq: AtomicU32,
    /// Futex word bumped on every pop (senders blocked on a full ring).
    space_seq: AtomicU32,
    /// World rank + 1 of a receiver whose parked `wait_any` set contains
    /// this channel; 0 when nobody watches. Deposits route a wake to that
    /// rank's `ws_seq` word.
    watcher: AtomicU32,
    _pad: u32,
}

/// Byte offset from a ring's base to its data area.
pub(crate) const RING_HDR: u64 = 64;
const MSG_HDR: usize = 16;

pub(crate) fn init_ring(seg: &Segment, off: u64, cap_bytes: u64) {
    assert!(cap_bytes.is_power_of_two(), "ring capacity must be 2^k");
    let hdr = unsafe { &*(seg.at(off) as *const RingHdr) };
    hdr.head.store(0, Ordering::SeqCst);
    hdr.tail.store(0, Ordering::SeqCst);
    hdr.msg_count.store(0, Ordering::SeqCst);
    hdr.data_seq.store(0, Ordering::SeqCst);
    hdr.space_seq.store(0, Ordering::SeqCst);
    hdr.watcher.store(0, Ordering::SeqCst);
    hdr.cap.store(cap_bytes, Ordering::SeqCst);
}

/// Untyped handle to one ring: a segment reference plus the ring's offset.
/// Cloneable and process-local (the offset is the cross-process part).
#[derive(Clone)]
pub(crate) struct ShmChanRaw {
    seg: Arc<Segment>,
    off: u64,
}

impl ShmChanRaw {
    pub fn new(seg: Arc<Segment>, off: u64) -> Self {
        Self { seg, off }
    }

    pub fn seg(&self) -> &Arc<Segment> {
        &self.seg
    }

    fn hdr(&self) -> &RingHdr {
        unsafe { &*(self.seg.at(self.off) as *const RingHdr) }
    }

    fn data(&self) -> *mut u8 {
        self.seg.at(self.off + RING_HDR)
    }

    fn cap(&self) -> u64 {
        self.hdr().cap.load(Ordering::Relaxed)
    }

    pub fn msg_count(&self) -> usize {
        self.hdr().msg_count.load(Ordering::SeqCst) as usize
    }

    pub fn ready(&self) -> bool {
        self.msg_count() > 0
    }

    /// Copy `src` into the data area at monotonic position `pos`.
    fn write_wrapped(&self, pos: u64, src: &[u8]) {
        let cap = self.cap();
        let start = (pos & (cap - 1)) as usize;
        let first = src.len().min(cap as usize - start);
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.data().add(start), first);
            if first < src.len() {
                std::ptr::copy_nonoverlapping(
                    src.as_ptr().add(first),
                    self.data(),
                    src.len() - first,
                );
            }
        }
    }

    /// The two byte slices covering `len` bytes at monotonic position
    /// `pos` (second is empty unless the range wraps).
    fn slices(&self, pos: u64, len: usize) -> (&[u8], &[u8]) {
        let cap = self.cap();
        let start = (pos & (cap - 1)) as usize;
        let first = len.min(cap as usize - start);
        unsafe {
            (
                std::slice::from_raw_parts(self.data().add(start), first),
                std::slice::from_raw_parts(self.data(), len - first),
            )
        }
    }

    /// Deposit one message without blocking: returns `false` (writing
    /// nothing) when the ring lacks space for the whole frame. A single
    /// message larger than the whole ring is a loud panic — resize via
    /// `MPISIM_SHM_RING_DEPTH` / `MPISIM_SHM_MAILBOX_CAP`.
    pub fn try_push(&self, arrival: f64, parts: &[&[u8]]) -> bool {
        let payload: usize = parts.iter().map(|p| p.len()).sum();
        let need = (MSG_HDR + payload).next_multiple_of(8) as u64;
        let hdr = self.hdr();
        let cap = self.cap();
        assert!(
            need <= cap,
            "shm ring message of {payload} bytes exceeds the ring capacity of \
             {cap} bytes (raise MPISIM_SHM_RING_DEPTH or MPISIM_SHM_MAILBOX_CAP)"
        );
        let tail = hdr.tail.load(Ordering::Relaxed); // single producer
        if cap - (tail - hdr.head.load(Ordering::Acquire)) < need {
            return false;
        }
        let mut frame = [0u8; MSG_HDR];
        frame[0..4].copy_from_slice(&(payload as u32).to_le_bytes());
        frame[8..16].copy_from_slice(&arrival.to_le_bytes());
        self.write_wrapped(tail, &frame);
        let mut pos = tail + MSG_HDR as u64;
        for p in parts {
            self.write_wrapped(pos, p);
            pos += p.len() as u64;
        }
        hdr.tail.store(tail + need, Ordering::Release);
        hdr.msg_count.fetch_add(1, Ordering::SeqCst);
        Segment::bump_and_wake(&hdr.data_seq);
        // route a wake to a receiver parked on a channel SET containing
        // this one (see `ShmTransport::wait_any`); SeqCst on both the
        // count bump above and this load pairs with the receiver's
        // store-watcher-then-scan, so one side always observes the other
        let w = hdr.watcher.load(Ordering::SeqCst);
        if w != 0 {
            Segment::bump_and_wake(self.seg.ws_seq(w as usize - 1));
        }
        true
    }

    /// Deposit one message, given as the concatenation of `parts`.
    /// Blocks while the ring is full (the channel's buffered-send depth
    /// is the ring capacity), invoking `stall` each stall period.
    pub fn push(&self, arrival: f64, parts: &[&[u8]], stall: &dyn Fn()) {
        loop {
            if self.try_push(arrival, parts) {
                return;
            }
            let hdr = self.hdr();
            let seen = hdr.space_seq.load(Ordering::SeqCst);
            if self.try_push(arrival, parts) {
                return;
            }
            futex::wait(&hdr.space_seq, seen, crate::stall::stall_ms());
            stall();
        }
    }

    /// Consume the next message if one is delivered: `f` sees the arrival
    /// stamp and the (possibly wrapped) payload as two byte slices, which
    /// are only valid during the call. Single consumer.
    pub fn try_pop_with<R>(&self, f: impl FnOnce(f64, &[u8], &[u8]) -> R) -> Option<R> {
        let hdr = self.hdr();
        if hdr.msg_count.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let head = hdr.head.load(Ordering::Relaxed); // single consumer
        let mut frame = [0u8; MSG_HDR];
        let (a, b) = self.slices(head, MSG_HDR);
        frame[..a.len()].copy_from_slice(a);
        frame[a.len()..].copy_from_slice(b);
        let payload = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
        let arrival = f64::from_le_bytes(frame[8..16].try_into().unwrap());
        let (pa, pb) = self.slices(head + MSG_HDR as u64, payload);
        let r = f(arrival, pa, pb);
        let need = (MSG_HDR + payload).next_multiple_of(8) as u64;
        hdr.head.store(head + need, Ordering::Release);
        hdr.msg_count.fetch_sub(1, Ordering::SeqCst);
        Segment::bump_and_wake(&hdr.space_seq);
        Some(r)
    }

    /// Block until the ring is non-empty, invoking `stall` each stall
    /// period (same contract as the thread channel's `wait_nonempty`).
    pub fn wait_nonempty(&self, stall: &dyn Fn()) {
        for _ in 0..24 {
            if self.ready() {
                return;
            }
            std::thread::yield_now();
        }
        let hdr = self.hdr();
        loop {
            let seen = hdr.data_seq.load(Ordering::SeqCst);
            if self.ready() {
                return;
            }
            futex::wait(&hdr.data_seq, seen, crate::stall::stall_ms());
            if self.ready() {
                return;
            }
            stall();
        }
    }

    /// Register/unregister this channel in a parked receiver's wait set.
    pub fn set_watcher(&self, rank: usize) {
        self.hdr().watcher.store(rank as u32 + 1, Ordering::SeqCst);
    }

    pub fn clear_watcher(&self, rank: usize) {
        let _ = self.hdr().watcher.compare_exchange(
            rank as u32 + 1,
            0,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// Consume and discard everything delivered. Quiescent use only (the
    /// failed-epoch drain): no concurrent producer or consumer.
    pub fn drain(&self) {
        while self.try_pop_with(|_, _, _| ()).is_some() {}
    }
}

/// Typed view over one shm ring: the shared-memory counterpart of the
/// in-process `Channel<T>` body. Payload buffers are recycled through a
/// process-local spare pool, mirroring `push_with`/`recycle` — the ring
/// slots are the wire buffers, the spare `Vec<T>`s are the gather/scatter
/// staging surfaces, and the steady state allocates nothing.
pub(crate) struct ShmChan<T> {
    raw: ShmChanRaw,
    spare: Mutex<Vec<Vec<T>>>,
}

impl<T: Clone + Send + 'static> ShmChan<T> {
    pub fn new(raw: ShmChanRaw) -> Self {
        assert_pod::<T>("persistent channel over the shm transport");
        Self {
            raw,
            spare: Mutex::new(Vec::new()),
        }
    }

    pub fn raw(&self) -> &ShmChanRaw {
        &self.raw
    }

    pub fn push_with(&self, arrival: f64, fill: impl FnOnce(&mut Vec<T>)) {
        let mut buf = self.spare.lock().pop().unwrap_or_default();
        buf.clear();
        fill(&mut buf);
        self.raw
            .push(arrival, &[crate::transport::bytes_of(&buf)], &|| {
                self.raw.seg().check_alive()
            });
        self.spare.lock().push(buf);
    }

    pub fn try_pop(&self) -> Option<(Vec<T>, f64)> {
        if !self.raw.ready() {
            return None;
        }
        let mut buf = self.spare.lock().pop().unwrap_or_default();
        buf.clear();
        let arrival = self.raw.try_pop_with(|arrival, a, b| {
            vec_extend_bytes(&mut buf, a, b);
            arrival
        });
        match arrival {
            Some(t) => Some((buf, t)),
            None => {
                self.spare.lock().push(buf);
                None
            }
        }
    }

    pub fn pop_with(&self, stall_probe: impl Fn()) -> (Vec<T>, f64) {
        loop {
            if let Some(msg) = self.try_pop() {
                return msg;
            }
            self.raw.wait_nonempty(&stall_probe);
        }
    }

    pub fn wait_nonempty(&self, stall_probe: impl Fn()) {
        self.raw.wait_nonempty(&stall_probe);
    }

    pub fn recycle(&self, buf: Vec<T>) {
        self.spare.lock().push(buf);
    }

    pub fn drain_pending(&self) {
        self.raw.drain();
    }

    pub fn ready(&self) -> bool {
        self.raw.ready()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(cap: u64) -> ShmChanRaw {
        let seg = Segment::create(2);
        seg.unlink();
        let off = seg.alloc(RING_HDR + cap);
        init_ring(&seg, off, cap);
        ShmChanRaw::new(seg, off)
    }

    #[test]
    fn fifo_roundtrip_with_wraparound() {
        let r = ring(256);
        // frames are 16 + pad8(24) = 40 bytes; push/pop enough of them to
        // wrap the 256-byte ring several times
        for i in 0..32u64 {
            let payload: Vec<u8> = (0..24).map(|j| (i as u8).wrapping_add(j)).collect();
            r.push(i as f64, &[&payload], &|| {});
            if i % 2 == 1 {
                for k in [i - 1, i] {
                    let got = r
                        .try_pop_with(|arr, a, b| {
                            let mut v = a.to_vec();
                            v.extend_from_slice(b);
                            (arr, v)
                        })
                        .expect("message delivered");
                    assert_eq!(got.0, k as f64);
                    assert_eq!(got.1[0], k as u8);
                    assert_eq!(got.1.len(), 24);
                }
            }
        }
        assert!(!r.ready());
    }

    #[test]
    fn full_ring_blocks_until_consumed() {
        let r = ring(128);
        let r2 = r.clone();
        // capacity 128 holds exactly two 40-byte frames plus change
        r.push(0.0, &[&[1u8; 24]], &|| {});
        r.push(0.0, &[&[2u8; 24]], &|| {});
        let t = std::thread::spawn(move || {
            r2.push(0.0, &[&[3u8; 24]], &|| {});
            r2.push(0.0, &[&[4u8; 24]], &|| {}); // blocks: 160 > 128
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        let mut seen = Vec::new();
        for _ in 0..4 {
            loop {
                if let Some(b) = r.try_pop_with(|_, a, _| a[0]) {
                    seen.push(b);
                    break;
                }
                std::thread::yield_now();
            }
        }
        t.join().unwrap();
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "exceeds the ring capacity")]
    fn oversized_message_panics() {
        let r = ring(64);
        r.push(0.0, &[&[0u8; 4096]], &|| {});
    }

    #[test]
    fn typed_channel_recycles_buffers() {
        let seg = Segment::create(2);
        seg.unlink();
        let off = seg.alloc(RING_HDR + 4096);
        init_ring(&seg, off, 4096);
        let c = ShmChan::<f64>::new(ShmChanRaw::new(seg, off));
        c.push_with(0.5, |b| b.extend_from_slice(&[1.0, 2.0, 3.0]));
        let (buf, arrival) = c.pop_with(|| {});
        assert_eq!((buf.as_slice(), arrival), ([1.0, 2.0, 3.0].as_slice(), 0.5));
        let cap_before = buf.capacity();
        c.recycle(buf);
        c.push_with(1.5, |b| b.extend_from_slice(&[4.0]));
        let (buf, _) = c.pop_with(|| {});
        assert_eq!(buf.as_slice(), [4.0].as_slice());
        assert!(buf.capacity() >= 1 && cap_before >= 3);
    }
}
