//! The shared segment: one `/dev/shm` file mapped by every process of the
//! fabric, holding all cross-process state.
//!
//! Layout (all offsets 8-aligned, pointers never cross the boundary —
//! every cross-process reference is a byte offset from the mapping base):
//!
//! ```text
//! [SegHeader]                    magic, alloc bump, panic flag,
//!                                epoch command word, barrier words
//! [pids;    n_ranks  × u32]      attached process of each rank (liveness)
//! [ws_seq;  n_ranks  × u32]      per-rank wait_any futex word
//! [mb_seq;  n_ranks  × u32]      per-rank mailbox futex word
//! [table;   TABLE_CAP × slot]    persistent-channel registration table
//! [mailbox rings; n² × ring]     plain-send SPSC byte rings (src → dst)
//! [bump area]                    persistent-channel rings, allocated on
//!                                registration
//! ```
//!
//! The creator initializes everything before publishing `magic`; workers
//! attach read-write and verify `magic` + the rank count. `/dev/shm` is a
//! tmpfs, so the generous default size only commits pages actually
//! touched.

use super::futex;
use crate::state::ChanKey;
use std::fs::OpenOptions;
use std::os::unix::io::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

const MAGIC: u64 = 0x6d70_6973_696d_0008; // "mpisim", layout v8
const ALIGN: u64 = 64;

/// Fixed capacity of the channel registration table. A world registers one
/// slot per persistent signature (partitioned sends add one per
/// partition); exceeding this is a loud panic, not silent corruption.
pub(crate) const TABLE_CAP: usize = 4096;

/// The epoch command word meaning "shut down" (see `transport::proc`).
pub(crate) const CMD_STOP: u64 = u64::MAX;

extern "C" {
    fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, off: i64) -> *mut u8;
    fn munmap(addr: *mut u8, len: usize) -> i32;
    fn kill(pid: i32, sig: i32) -> i32;
}

const PROT_READ: i32 = 1;
const PROT_WRITE: i32 = 2;
const MAP_SHARED: i32 = 1;
const ESRCH: i32 = 3;

#[repr(C)]
struct SegHeader {
    magic: AtomicU64,
    n_ranks: AtomicU64,
    seg_len: AtomicU64,
    /// Bump allocator head for the free area at the end of the segment.
    alloc_next: AtomicU64,
    /// Set when a rank of the current epoch panicked or its process died.
    rank_panicked: AtomicU32,
    /// Futex word bumped whenever `epoch_cmd` changes.
    epoch_seq: AtomicU32,
    /// Epoch command word (see `transport::proc`): `(job << 48) | epoch`,
    /// or [`CMD_STOP`].
    epoch_cmd: AtomicU64,
    /// Sense-reversing barrier: generation (futex word) + arrival count.
    barrier_gen: AtomicU32,
    barrier_count: AtomicU32,
    /// Spinlock guarding the registration table.
    table_lock: AtomicU32,
    /// Which rank raised `rank_panicked`, as rank+1 (0 = unattributed).
    /// First writer wins; read by stall forensics to name the dead rank.
    dead_rank: AtomicU32,
    /// Offset of the first mailbox ring and per-ring data capacity.
    mailbox_base: AtomicU64,
    mailbox_cap: AtomicU64,
}

const HDR_SIZE: u64 = 128; // > size_of::<SegHeader>(), room to grow

#[repr(C)]
struct TableSlot {
    /// 0 = empty, 1 = ready. Written last, under the table lock.
    used: AtomicU32,
    _pad: u32,
    key: [AtomicU64; 4],
    elem_bytes: AtomicU64,
    name_hash: AtomicU64,
    ring_off: AtomicU64,
}

const SLOT_SIZE: u64 = 64;

/// One process's mapping of the fabric's shared segment.
pub(crate) struct Segment {
    base: *mut u8,
    len: usize,
    path: PathBuf,
    /// Only the creating process unlinks the backing file.
    created: bool,
    unlinked: AtomicBool,
}

// The mapping is plain shared memory accessed through atomics and
// explicitly-synchronized byte copies.
unsafe impl Send for Segment {}
unsafe impl Sync for Segment {}

fn env_size(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Segment {
    fn offsets(n: u64) -> (u64, u64, u64, u64, u64) {
        let pids = HDR_SIZE;
        let ws_seq = align(pids + 4 * n);
        let mb_seq = align(ws_seq + 4 * n);
        let table = align(mb_seq + 4 * n);
        let bump = align(table + SLOT_SIZE * TABLE_CAP as u64);
        (pids, ws_seq, mb_seq, table, bump)
    }

    /// Create and initialize the fabric segment for `n_ranks` ranks.
    pub fn create(n_ranks: usize) -> Arc<Segment> {
        let n = n_ranks as u64;
        let mailbox_cap = env_size("MPISIM_SHM_MAILBOX_CAP", 256 << 10).next_power_of_two();
        let mailbox_total = n * n * (super::ring::RING_HDR + mailbox_cap);
        let default_len = (mailbox_total + (192 << 20)).max(256 << 20);
        let len = env_size("MPISIM_SHM_BYTES", default_len).max(mailbox_total + (16 << 20));

        static SEQ: AtomicU64 = AtomicU64::new(0);
        // Name collision (a stale file from a dead process that recycled
        // our pid, or a crashed earlier run): sweep dead-owner leftovers
        // and retry with backoff on the next sequence number instead of
        // aborting the world on the first EEXIST.
        let (file, path) = (0..100)
            .find_map(|attempt| {
                let path = PathBuf::from(format!(
                    "/dev/shm/mpisim-{}-{}",
                    std::process::id(),
                    SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                match OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create_new(true)
                    .open(&path)
                {
                    Ok(f) => Some((f, path)),
                    Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                        sweep_stale_segments();
                        std::thread::sleep(std::time::Duration::from_millis(1 + attempt));
                        None
                    }
                    Err(e) => panic!("create shm segment {}: {e}", path.display()),
                }
            })
            .expect("create shm segment: 100 consecutive name collisions");
        file.set_len(len).expect("size shm segment");
        let seg = Segment::map(file, path, len as usize, true);

        let (_, _, _, _, bump) = Self::offsets(n);
        let h = seg.header();
        h.n_ranks.store(n, Ordering::Relaxed);
        h.seg_len.store(len, Ordering::Relaxed);
        h.alloc_next.store(bump, Ordering::Relaxed);
        h.mailbox_cap.store(mailbox_cap, Ordering::Relaxed);
        // the attach barrier reuses the epoch barrier words, all zero
        let mailbox_base = seg.alloc(n * n * (super::ring::RING_HDR + mailbox_cap));
        h.mailbox_base.store(mailbox_base, Ordering::Relaxed);
        for i in 0..(n * n) {
            super::ring::init_ring(
                &seg,
                mailbox_base + i * (super::ring::RING_HDR + mailbox_cap),
                mailbox_cap,
            );
        }
        // publish: attachers spin on magic before touching anything else
        h.magic.store(MAGIC, Ordering::SeqCst);
        Arc::new(seg)
    }

    /// Map an existing fabric segment (worker processes). Transient
    /// failures — the file not yet visible, or `magic` not yet published
    /// by the creator — are retried with backoff for roughly two seconds
    /// before giving up; the driver's respawn policy (see
    /// `transport::proc`) covers a worker that still loses the race.
    pub fn attach(path: &str) -> Arc<Segment> {
        const ATTEMPTS: u32 = 20;
        let mut last_err = String::new();
        for attempt in 0..ATTEMPTS {
            if attempt > 0 {
                std::thread::sleep(std::time::Duration::from_millis(10 * attempt as u64));
            }
            let file = match OpenOptions::new().read(true).write(true).open(path) {
                Ok(f) => f,
                Err(e) => {
                    last_err = format!("attach shm segment {path}: {e}");
                    continue;
                }
            };
            let len = file.metadata().expect("stat shm segment").len() as usize;
            let seg = Segment::map(file, PathBuf::from(path), len, false);
            if seg.header().magic.load(Ordering::SeqCst) == MAGIC {
                return Arc::new(seg);
            }
            last_err = format!("shm segment {path} has no initialized fabric (version mismatch?)");
        }
        panic!("{last_err} ({ATTEMPTS} attempts)");
    }

    fn map(file: std::fs::File, path: PathBuf, len: usize, created: bool) -> Segment {
        let base = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        assert!(
            !base.is_null() && base as isize != -1,
            "mmap of shm segment failed ({})",
            std::io::Error::last_os_error()
        );
        // the fd is only needed for the mapping; the mapping keeps the
        // file's pages alive even after close + unlink
        drop(file);
        Segment {
            base,
            len,
            path,
            created,
            unlinked: AtomicBool::new(false),
        }
    }

    /// Remove the backing file (idempotent; creator only). The mapping —
    /// and therefore the fabric — stays fully usable: tmpfs pages live
    /// until the last process unmaps.
    pub fn unlink(&self) {
        if self.created && !self.unlinked.swap(true, Ordering::SeqCst) {
            let _ = std::fs::remove_file(&self.path);
        }
    }

    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    fn header(&self) -> &SegHeader {
        unsafe { &*(self.base as *const SegHeader) }
    }

    pub fn n_ranks(&self) -> usize {
        self.header().n_ranks.load(Ordering::Relaxed) as usize
    }

    /// Raw pointer at a byte offset. The caller is responsible for staying
    /// inside regions it owns under the fabric's protocols.
    pub(crate) fn at(&self, off: u64) -> *mut u8 {
        debug_assert!((off as usize) < self.len);
        unsafe { self.base.add(off as usize) }
    }

    pub(crate) fn atomic_u32(&self, off: u64) -> &AtomicU32 {
        debug_assert_eq!(off % 4, 0);
        unsafe { &*(self.at(off) as *const AtomicU32) }
    }

    /// Bump-allocate `bytes` from the free area; 64-aligned.
    pub fn alloc(&self, bytes: u64) -> u64 {
        let need = align(bytes);
        let off = self.header().alloc_next.fetch_add(need, Ordering::SeqCst);
        assert!(
            off + need <= self.len as u64,
            "shm segment exhausted allocating {bytes} bytes (len {}; raise MPISIM_SHM_BYTES)",
            self.len
        );
        off
    }

    // ---- per-rank words ---------------------------------------------------

    pub fn pid_slot(&self, rank: usize) -> &AtomicU32 {
        let (pids, ..) = Self::offsets(self.n_ranks() as u64);
        self.atomic_u32(pids + 4 * rank as u64)
    }

    /// Futex word waking rank `rank`'s parked `wait_any`.
    pub fn ws_seq(&self, rank: usize) -> &AtomicU32 {
        let (_, ws, ..) = Self::offsets(self.n_ranks() as u64);
        self.atomic_u32(ws + 4 * rank as u64)
    }

    /// Futex word waking rank `rank`'s blocked mailbox receive.
    pub fn mb_seq(&self, rank: usize) -> &AtomicU32 {
        let (_, _, mb, ..) = Self::offsets(self.n_ranks() as u64);
        self.atomic_u32(mb + 4 * rank as u64)
    }

    pub fn bump_and_wake(word: &AtomicU32) {
        word.fetch_add(1, Ordering::SeqCst);
        futex::wake_all(word);
    }

    // ---- death containment ------------------------------------------------

    pub fn note_rank_panic(&self) {
        self.header().rank_panicked.store(1, Ordering::SeqCst);
        // latency only — every park also times out and re-probes
        futex::wake_all(&self.header().epoch_seq);
        futex::wake_all(&self.header().barrier_gen);
        for r in 0..self.n_ranks() {
            futex::wake_all(self.ws_seq(r));
            futex::wake_all(self.mb_seq(r));
        }
    }

    /// [`Segment::note_rank_panic`] with attribution: record *which* rank
    /// died (first writer wins) before raising the flag, so stall
    /// forensics can name it.
    pub fn note_rank_death(&self, rank: usize) {
        let _ = self.header().dead_rank.compare_exchange(
            0,
            rank as u32 + 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        self.note_rank_panic();
    }

    /// The rank recorded by [`Segment::note_rank_death`], if any.
    pub fn dead_rank(&self) -> Option<usize> {
        match self.header().dead_rank.load(Ordering::SeqCst) {
            0 => None,
            r => Some(r as usize - 1),
        }
    }

    pub fn clear_rank_panic(&self) {
        self.header().rank_panicked.store(0, Ordering::SeqCst);
        self.header().dead_rank.store(0, Ordering::SeqCst);
    }

    pub fn rank_panicked(&self) -> bool {
        self.header().rank_panicked.load(Ordering::SeqCst) != 0
    }

    /// Non-panicking body of [`Segment::check_alive`]: the abort message
    /// if a peer rank panicked or an attached peer *process* no longer
    /// exists (SIGKILL leaves no flag behind — the pid sweep catches it),
    /// else `None`. Clean worker exits after a [`CMD_STOP`] are not
    /// deaths. Records a newly-observed pid death as a side effect.
    pub fn peer_failure(&self) -> Option<String> {
        if self.rank_panicked() {
            let who = match self.dead_rank() {
                Some(r) => format!(" (rank {r} died)"),
                None => String::new(),
            };
            return Some(format!(
                "a peer rank panicked this epoch; abandoning blocked receive{who}"
            ));
        }
        let stopping = self.read_cmd() == CMD_STOP;
        for r in 0..self.n_ranks() {
            let pid = self.pid_slot(r).load(Ordering::SeqCst);
            if pid == 0 || (stopping && r != 0) {
                continue; // not attached yet, or shutting down cleanly
            }
            if !pid_alive(pid) {
                self.note_rank_death(r);
                return Some(format!(
                    "rank {r} process (pid {pid}) died; abandoning blocked \
                     operation on the shm fabric"
                ));
            }
        }
        None
    }

    /// Stall probe of every blocking wait in the fabric: panic if a peer
    /// rank panicked or its process died (see [`Segment::peer_failure`]).
    pub fn check_alive(&self) {
        if let Some(msg) = self.peer_failure() {
            panic!("{msg}");
        }
    }

    // ---- epoch protocol ---------------------------------------------------

    pub fn post_cmd(&self, cmd: u64) {
        self.header().epoch_cmd.store(cmd, Ordering::SeqCst);
        Self::bump_and_wake(&self.header().epoch_seq);
    }

    pub fn read_cmd(&self) -> u64 {
        self.header().epoch_cmd.load(Ordering::SeqCst)
    }

    /// Park until `epoch_cmd` changes (bounded by the stall period);
    /// callers loop re-reading the command word.
    pub fn park_cmd(&self) {
        let h = self.header();
        let seen = h.epoch_seq.load(Ordering::SeqCst);
        futex::wait(&h.epoch_seq, seen, crate::stall::stall_ms());
    }

    /// All-ranks sense-reversing barrier. `stall` runs each stall period
    /// while blocked (after re-checking the barrier condition, so clean
    /// peer exits never race the probe into a false death).
    pub fn barrier(&self, stall: &dyn Fn()) {
        let n = self.n_ranks() as u32;
        let h = self.header();
        let gen = h.barrier_gen.load(Ordering::SeqCst);
        if h.barrier_count.fetch_add(1, Ordering::SeqCst) + 1 == n {
            h.barrier_count.store(0, Ordering::SeqCst);
            h.barrier_gen.fetch_add(1, Ordering::SeqCst);
            futex::wake_all(&h.barrier_gen);
        } else {
            loop {
                if h.barrier_gen.load(Ordering::SeqCst) != gen {
                    return;
                }
                futex::wait(&h.barrier_gen, gen, crate::stall::stall_ms());
                if h.barrier_gen.load(Ordering::SeqCst) != gen {
                    return;
                }
                stall();
            }
        }
    }

    // ---- registration table -----------------------------------------------

    fn table_slot(&self, i: usize) -> &TableSlot {
        let (_, _, _, table, _) = Self::offsets(self.n_ranks() as u64);
        unsafe { &*(self.at(table + SLOT_SIZE * i as u64) as *const TableSlot) }
    }

    /// The pre-matched registration handshake: whichever process registers
    /// `key` first allocates its ring; the other side attaches to the same
    /// slot by key lookup, completing the match at init time (mirroring the
    /// in-process channel registry). Returns the ring's segment offset.
    pub fn register_channel(
        &self,
        key: ChanKey,
        elem_bytes: usize,
        type_name: &str,
        ring_bytes: u64,
    ) -> u64 {
        let k = [key.0, key.1 as u64, key.2 as u64, key.3];
        let hash = fnv1a(type_name.as_bytes());
        let _guard = TableLock::acquire(self);
        for i in 0..TABLE_CAP {
            let slot = self.table_slot(i);
            if slot.used.load(Ordering::SeqCst) == 0 {
                let off = self.alloc(super::ring::RING_HDR + ring_bytes);
                super::ring::init_ring(self, off, ring_bytes);
                for (dst, v) in slot.key.iter().zip(k) {
                    dst.store(v, Ordering::SeqCst);
                }
                slot.elem_bytes.store(elem_bytes as u64, Ordering::SeqCst);
                slot.name_hash.store(hash, Ordering::SeqCst);
                slot.ring_off.store(off, Ordering::SeqCst);
                slot.used.store(1, Ordering::SeqCst);
                return off;
            }
            if slot
                .key
                .iter()
                .zip(k)
                .all(|(s, v)| s.load(Ordering::SeqCst) == v)
            {
                assert!(
                    slot.elem_bytes.load(Ordering::SeqCst) == elem_bytes as u64
                        && slot.name_hash.load(Ordering::SeqCst) == hash,
                    "persistent channel {key:?} datatype mismatch across the shm \
                     fabric: peer registered elements of {} bytes, this rank \
                     requested {type_name} ({elem_bytes} bytes)",
                    slot.elem_bytes.load(Ordering::SeqCst),
                );
                return slot.ring_off.load(Ordering::SeqCst);
            }
        }
        panic!("shm channel table full ({TABLE_CAP} signatures registered)");
    }

    /// Per-mailbox-ring data capacity in bytes (chunked deposits split
    /// oversized plain sends against this).
    pub fn mailbox_cap(&self) -> u64 {
        self.header().mailbox_cap.load(Ordering::Relaxed)
    }

    /// Mailbox ring (src → dst) offset.
    pub fn mailbox_ring_off(&self, src: usize, dst: usize) -> u64 {
        let n = self.n_ranks() as u64;
        let h = self.header();
        let stride = super::ring::RING_HDR + h.mailbox_cap.load(Ordering::Relaxed);
        h.mailbox_base.load(Ordering::Relaxed) + (src as u64 * n + dst as u64) * stride
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        self.unlink();
        unsafe {
            munmap(self.base, self.len);
        }
    }
}

/// RAII spinlock over the registration table: released on drop, so a
/// panic inside `register_channel` (table full, datatype mismatch) cannot
/// wedge the other processes' registrations.
struct TableLock<'a> {
    seg: &'a Segment,
}

impl<'a> TableLock<'a> {
    fn acquire(seg: &'a Segment) -> Self {
        let lock = &seg.header().table_lock;
        let mut spins = 0u32;
        while lock
            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            spins += 1;
            if spins.is_multiple_of(1024) {
                seg.check_alive(); // holder's process may have died
            }
            std::thread::yield_now();
        }
        Self { seg }
    }
}

impl Drop for TableLock<'_> {
    fn drop(&mut self) {
        self.seg.header().table_lock.store(0, Ordering::SeqCst);
    }
}

/// Liveness probe by pid: true while the process exists.
pub(crate) fn pid_alive(pid: u32) -> bool {
    !(unsafe { kill(pid as i32, 0) } == -1
        && std::io::Error::last_os_error().raw_os_error() == Some(ESRCH))
}

/// Remove `/dev/shm/mpisim-<pid>-<seq>` files whose creating process no
/// longer exists — leftovers of SIGKILLed runs, which never reach their
/// `Drop`/unlink guard. Called on a name collision in [`Segment::create`],
/// so one crashed run cannot strand tmpfs pages forever.
pub(crate) fn sweep_stale_segments() {
    let Ok(entries) = std::fs::read_dir("/dev/shm") else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(rest) = name.to_str().and_then(|n| n.strip_prefix("mpisim-")) else {
            continue;
        };
        let Some(pid) = rest
            .split_once('-')
            .and_then(|(pid, _seq)| pid.parse::<u32>().ok())
        else {
            continue;
        };
        if !pid_alive(pid) {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

fn align(off: u64) -> u64 {
    off.div_ceil(ALIGN) * ALIGN
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_attach_roundtrip() {
        let seg = Segment::create(3);
        assert_eq!(seg.n_ranks(), 3);
        let seg2 = Segment::attach(seg.path().to_str().unwrap());
        assert_eq!(seg2.n_ranks(), 3);
        // both mappings see the same memory
        seg.pid_slot(1).store(4242, Ordering::SeqCst);
        assert_eq!(seg2.pid_slot(1).load(Ordering::SeqCst), 4242);
        seg.unlink();
    }

    #[test]
    fn registration_is_get_or_create_by_key() {
        let seg = Segment::create(2);
        let a = seg.register_channel((1, 0, 1, 9), 8, "f64", 1 << 12);
        let b = seg.register_channel((1, 0, 1, 9), 8, "f64", 1 << 12);
        let c = seg.register_channel((1, 1, 0, 9), 8, "f64", 1 << 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
        seg.unlink();
    }

    #[test]
    #[should_panic(expected = "datatype mismatch")]
    fn registration_datatype_mismatch_panics() {
        let seg = Segment::create(2);
        seg.register_channel((1, 0, 1, 9), 8, "f64", 1 << 12);
        seg.register_channel((1, 0, 1, 9), 4, "u32", 1 << 12);
    }

    #[test]
    fn barrier_releases_all_ranks() {
        let seg = Segment::create(4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        seg.barrier(&|| {});
                    }
                });
            }
        });
        seg.unlink();
    }

    #[test]
    #[should_panic(expected = "peer rank panicked")]
    fn check_alive_sees_the_panic_flag() {
        let seg = Segment::create(2);
        seg.note_rank_panic();
        seg.check_alive();
    }

    #[test]
    fn rank_death_is_attributed_first_writer_wins() {
        let seg = Segment::create(4);
        assert_eq!(seg.dead_rank(), None);
        seg.note_rank_death(2);
        seg.note_rank_death(3); // later report must not overwrite
        assert_eq!(seg.dead_rank(), Some(2));
        assert!(seg
            .peer_failure()
            .expect("flag raised")
            .contains("rank 2 died"));
        seg.clear_rank_panic();
        assert_eq!(seg.dead_rank(), None);
        assert!(seg.peer_failure().is_none());
        seg.unlink();
    }

    #[test]
    fn create_retries_past_a_name_collision() {
        // Plant live-owner files at the next few sequence numbers:
        // create() must skip over them (the owner — us — is alive, so the
        // sweep may not remove them) and still produce a working segment.
        // `create_new` planting never clobbers a concurrent test's real
        // segment; a lost race just plants fewer blockers.
        let seq: u64 = {
            let probe = Segment::create(1);
            let name = probe
                .path()
                .file_name()
                .unwrap()
                .to_str()
                .unwrap()
                .to_owned();
            probe.unlink();
            name.rsplit('-').next().unwrap().parse().unwrap()
        };
        let blockers: Vec<PathBuf> = (1..=4)
            .map(|d| {
                PathBuf::from(format!(
                    "/dev/shm/mpisim-{}-{}",
                    std::process::id(),
                    seq + d
                ))
            })
            .filter(|p| {
                OpenOptions::new()
                    .write(true)
                    .create_new(true)
                    .open(p)
                    .is_ok()
            })
            .collect();
        let seg = Segment::create(2);
        assert!(
            blockers.iter().all(|b| b.as_path() != seg.path()),
            "create must not reuse a colliding name"
        );
        assert_eq!(seg.n_ranks(), 2);
        seg.unlink();
        for b in blockers {
            let _ = std::fs::remove_file(b);
        }
    }

    #[test]
    fn sweep_removes_only_dead_owner_segments() {
        // a file named for a pid that cannot exist (> pid_max) is stale
        let stale = PathBuf::from("/dev/shm/mpisim-4194399-0");
        std::fs::write(&stale, b"stale").expect("plant stale file");
        // one owned by this (live) process must survive the sweep
        let live = PathBuf::from(format!("/dev/shm/mpisim-{}-999999", std::process::id()));
        std::fs::write(&live, b"live").expect("plant live file");
        sweep_stale_segments();
        assert!(!stale.exists(), "dead-owner segment must be swept");
        assert!(live.exists(), "live-owner segment must survive");
        let _ = std::fs::remove_file(&live);
    }
}
