//! Deterministic fault injection: a [`Transport`] wrapper that perturbs
//! timing, ordering, and liveness without ever changing bytes.
//!
//! [`FaultTransport`] wraps either inner fabric (thread or shm) and drives
//! every perturbation from a seeded [`FaultPlan`]:
//!
//! * **delays** — short deterministic sleeps at `deposit` / `match_recv` /
//!   channel push/pop entry, shaking out scan-then-park races;
//! * **reorder** — a chosen deposit is *held* and released after later
//!   traffic, emulating flusher-batch reordering. Holding is tag-legal:
//!   two envelopes with equal `(src, dst, ctx, tag)` are never swapped
//!   (MPI non-overtaking), only cross-signature overtaking is provoked;
//! * **spurious** — extra readiness re-scans at `wait_any` entry,
//!   emulating spurious wakeups;
//! * **kill** — `panic!` on a chosen rank at exactly the Nth counted
//!   transport op, exercising the death-detection machinery.
//!
//! Every *decision* (hold? delay how long? die here?) is a pure function
//! of `(seed, rank, per-rank op index)`, so a failing schedule replays
//! from its seed alone. Ops are counted only at call sites that occur in
//! deterministic program order per rank (`deposit`, `match_recv`,
//! `wait_any`, and the persistent-channel [`Transport::inject`] hooks) —
//! never from timing-dependent poll loops like `probe`.
//!
//! Select a plan with `MPISIM_FAULTS=<seed>:<spec>` (see
//! [`FaultPlan::parse`]) or programmatically via
//! [`crate::World::with_faults`].

use super::{ChanFabric, FaultOp, PayloadMode, Transport, TransportForensics};
use crate::state::{ChanId, ChanKey, Envelope, WorldState};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SALT_DELAY: u64 = 0x64656c61;
const SALT_REORDER: u64 = 0x72656f72;
const SALT_SPURIOUS: u64 = 0x73707572;
const SALT_DROP: u64 = 0x64726f70;

/// splitmix64-style hash of one (seed, salt, rank, op) coordinate — the
/// source of every fault decision.
fn mix(seed: u64, salt: u64, rank: usize, op: u64) -> u64 {
    let mut x = seed
        ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (rank as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ op.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// A seeded, fully deterministic fault schedule (see the module docs).
///
/// Build one with the fluent constructors and hand it to
/// [`crate::World::with_faults`] /
/// [`crate::World::pool_with_faults`], or parse the
/// `MPISIM_FAULTS` grammar with [`FaultPlan::parse`].
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    delay_permille: u16,
    delay_max_us: u32,
    reorder_permille: u16,
    spurious_permille: u16,
    drop_permille: u16,
    kills: Vec<(usize, u64)>,
    deadline_ms: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Delay roughly `permille`/1000 of counted ops by a deterministic
    /// amount in `[0, max_us)` microseconds.
    pub fn delays(mut self, permille: u16, max_us: u32) -> Self {
        self.delay_permille = permille.min(1000);
        self.delay_max_us = max_us.max(1);
        self
    }

    /// Hold roughly `permille`/1000 of deposits for later release
    /// (tag-legal cross-signature reordering).
    pub fn reorder(mut self, permille: u16) -> Self {
        self.reorder_permille = permille.min(1000);
        self
    }

    /// Inject spurious readiness re-scans on roughly `permille`/1000 of
    /// `wait_any` entries.
    pub fn spurious(mut self, permille: u16) -> Self {
        self.spurious_permille = permille.min(1000);
        self
    }

    /// Kill `rank` (panic) at exactly its `nth` counted transport op.
    pub fn kill(mut self, rank: usize, nth: u64) -> Self {
        self.kills.push((rank, nth));
        self
    }

    /// Sever the destination's socket link on roughly `permille`/1000 of
    /// deposits, exercising reconnect-with-resume deterministically. The
    /// deposit itself still happens — replay after reconnect must make the
    /// drop semantically invisible. No-op off the sock fabric.
    pub fn drops(mut self, permille: u16) -> Self {
        self.drop_permille = permille.min(1000);
        self
    }

    /// Attach a wait deadline to worlds running this plan, overriding
    /// `MPISIM_DEADLINE_MS` (see [`crate::StallReport`]).
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The wait-deadline override carried by this plan, if any.
    pub(crate) fn deadline(&self) -> Option<u64> {
        self.deadline_ms
    }

    fn is_noop(&self) -> bool {
        self.delay_permille == 0
            && self.reorder_permille == 0
            && self.spurious_permille == 0
            && self.drop_permille == 0
            && self.kills.is_empty()
    }

    /// Parse the `MPISIM_FAULTS` grammar:
    ///
    /// ```text
    /// <seed>:<op>[,<op>]*
    /// op := delay=<permille>[/<max_us>us]
    ///     | reorder=<permille>
    ///     | spurious=<permille>
    ///     | drop=<permille>
    ///     | kill=<rank>@<nth>
    ///     | deadline=<ms>
    /// ```
    ///
    /// Example: `7:delay=200/300us,reorder=100,kill=2@40,deadline=10000`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (seed, ops) = spec
            .split_once(':')
            .ok_or_else(|| format!("fault spec {spec:?}: expected <seed>:<op>[,<op>]*"))?;
        let seed: u64 = seed
            .trim()
            .parse()
            .map_err(|_| format!("fault spec {spec:?}: seed {seed:?} is not a u64"))?;
        let mut plan = FaultPlan::seeded(seed);
        for op in ops.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (name, val) = op
                .split_once('=')
                .ok_or_else(|| format!("fault op {op:?}: expected <name>=<value>"))?;
            let parse_u = |s: &str, what: &str| -> Result<u64, String> {
                s.trim()
                    .parse::<u64>()
                    .map_err(|_| format!("fault op {op:?}: {what} {s:?} is not a number"))
            };
            match name.trim() {
                "delay" => {
                    let (permille, max_us) = match val.split_once('/') {
                        Some((p, rest)) => {
                            let us = rest.strip_suffix("us").unwrap_or(rest);
                            (parse_u(p, "permille")?, parse_u(us, "max delay")?)
                        }
                        None => (parse_u(val, "permille")?, 300),
                    };
                    plan = plan.delays(permille.min(1000) as u16, max_us as u32);
                }
                "reorder" => plan = plan.reorder(parse_u(val, "permille")?.min(1000) as u16),
                "spurious" => plan = plan.spurious(parse_u(val, "permille")?.min(1000) as u16),
                "drop" => plan = plan.drops(parse_u(val, "permille")?.min(1000) as u16),
                "kill" => {
                    let (rank, nth) = val
                        .split_once('@')
                        .ok_or_else(|| format!("fault op {op:?}: expected kill=<rank>@<nth>"))?;
                    plan = plan.kill(parse_u(rank, "rank")? as usize, parse_u(nth, "op index")?);
                }
                "deadline" => plan = plan.deadline_ms(parse_u(val, "deadline")?),
                other => {
                    return Err(format!(
                        "fault op {op:?}: unknown fault kind {other:?} \
                         (expected delay/reorder/spurious/drop/kill/deadline)"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// The plan selected by `MPISIM_FAULTS`, if the variable is set.
    /// Panics on a malformed spec — a silently ignored chaos run is worse
    /// than a loud one.
    pub fn from_env() -> Option<Self> {
        let spec = std::env::var("MPISIM_FAULTS").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        Some(Self::parse(&spec).unwrap_or_else(|e| panic!("MPISIM_FAULTS: {e}")))
    }
}

/// One envelope held back for tag-legal reordering.
type Held = (usize, usize, Envelope);

/// The fault-injecting [`Transport`] wrapper. See the module docs.
pub(crate) struct FaultTransport {
    inner: Arc<dyn Transport>,
    plan: FaultPlan,
    /// Per-rank counted-op index (the schedule's time axis).
    ops: Vec<AtomicU64>,
    /// At most one deposit held back for reordering at a time.
    held: Mutex<Option<Held>>,
    /// Background releaser for the held deposit: a receiver already
    /// parked inside the inner transport cannot flush from its own stall
    /// probe (it may hold the very mailbox lock the release needs), so a
    /// tiny flusher thread guarantees forward progress.
    shutdown: Arc<AtomicBool>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl FaultTransport {
    /// Wrap `inner` under `plan`. Returns `inner` untouched for a no-op
    /// plan so the fault-free configuration costs nothing.
    pub(crate) fn wrap(
        n_ranks: usize,
        plan: FaultPlan,
        inner: Arc<dyn Transport>,
    ) -> Arc<dyn Transport> {
        if plan.is_noop() {
            return inner;
        }
        let t = Arc::new(FaultTransport {
            inner,
            plan,
            ops: (0..n_ranks).map(|_| AtomicU64::new(0)).collect(),
            held: Mutex::new(None),
            shutdown: Arc::new(AtomicBool::new(false)),
            flusher: Mutex::new(None),
        });
        if t.plan.reorder_permille > 0 {
            let weak = Arc::downgrade(&t);
            let shutdown = Arc::clone(&t.shutdown);
            let h = std::thread::Builder::new()
                .name("mpisim-fault-flusher".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        std::thread::sleep(Duration::from_millis(1));
                        if let Some(t) = weak.upgrade() {
                            t.flush_held();
                        }
                    }
                })
                .expect("spawn fault flusher");
            *t.flusher.lock() = Some(h);
        }
        t
    }

    /// Wrap `inner` under the `MPISIM_FAULTS` plan, if one is set.
    pub(crate) fn wrap_env(n_ranks: usize, inner: Arc<dyn Transport>) -> Arc<dyn Transport> {
        match FaultPlan::from_env() {
            Some(plan) => Self::wrap(n_ranks, plan, inner),
            None => inner,
        }
    }

    fn chance(&self, salt: u64, rank: usize, op: u64, permille: u16) -> Option<u64> {
        if permille == 0 {
            return None;
        }
        let h = mix(self.plan.seed, salt, rank, op);
        (h % 1000 < permille as u64).then_some(h)
    }

    /// Count one op for `rank`; apply the schedule's kill and delay
    /// decisions for this coordinate. Returns the op index.
    fn tick(&self, rank: usize, op: FaultOp) -> u64 {
        let n = self.ops[rank].fetch_add(1, Ordering::Relaxed);
        if self.plan.kills.iter().any(|&(r, at)| r == rank && at == n) {
            self.flush_held();
            self.inner.note_rank_panic(Some(rank));
            panic!(
                "rank {rank} killed by fault plan at transport op {n} ({op:?}, seed {})",
                self.plan.seed
            );
        }
        if let Some(h) = self.chance(SALT_DELAY, rank, n, self.plan.delay_permille) {
            let us = (h >> 10) % self.plan.delay_max_us.max(1) as u64;
            std::thread::sleep(Duration::from_micros(us));
        }
        n
    }

    /// Release the held deposit, if any. Safe from any thread that holds
    /// no inner-transport locks.
    fn flush_held(&self) {
        let prev = self.held.lock().take();
        if let Some((s, d, e)) = prev {
            self.inner.deposit(s, d, e);
        }
    }
}

impl Drop for FaultTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.flusher.get_mut().take() {
            let _ = h.join();
        }
        // a still-held envelope belongs to an abandoned epoch; drop it
        // (drain_in_flight semantics)
    }
}

impl Transport for FaultTransport {
    fn mode(&self) -> PayloadMode {
        self.inner.mode()
    }

    fn fabric(&self) -> &'static str {
        self.inner.fabric()
    }

    fn deposit(&self, src_world: usize, dst_world: usize, env: Envelope) {
        let n = self.tick(src_world, FaultOp::Deposit);
        if self
            .chance(SALT_DROP, src_world, n, self.plan.drop_permille)
            .is_some()
        {
            // sever BEFORE the deposit: the frame rides the reconnected
            // link's replay, so the drop must be semantically invisible
            self.inner.sever_link(dst_world);
        }
        if self.plan.reorder_permille == 0 {
            return self.inner.deposit(src_world, dst_world, env);
        }
        if self
            .chance(SALT_REORDER, src_world, n, self.plan.reorder_permille)
            .is_some()
        {
            // hold this deposit; release any previously held one first so
            // at most one envelope is ever in limbo
            let prev = self.held.lock().replace((src_world, dst_world, env));
            if let Some((s, d, e)) = prev {
                self.inner.deposit(s, d, e);
            }
            return;
        }
        let prev = self.held.lock().take();
        match prev {
            // equal signature: the held envelope was sent first and MPI
            // non-overtaking applies — release it ahead of the new one
            Some((s, d, e))
                if s == src_world
                    && d == dst_world
                    && e.ctx_id == env.ctx_id
                    && e.src == env.src
                    && e.tag == env.tag =>
            {
                self.inner.deposit(s, d, e);
                self.inner.deposit(src_world, dst_world, env);
            }
            // different signature: deliver the new envelope FIRST — this
            // is the reorder (tag-legal: matching is exact-signature)
            Some((s, d, e)) => {
                self.inner.deposit(src_world, dst_world, env);
                self.inner.deposit(s, d, e);
            }
            None => self.inner.deposit(src_world, dst_world, env),
        }
    }

    fn match_recv(
        &self,
        global_dst: usize,
        ctx_id: u64,
        src: usize,
        tag: u64,
        stall: &dyn Fn(),
    ) -> (Envelope, usize) {
        self.tick(global_dst, FaultOp::MatchRecv);
        self.flush_held();
        self.inner.match_recv(global_dst, ctx_id, src, tag, stall)
    }

    fn probe(&self, global_dst: usize, ctx_id: u64, src: usize, tag: u64) -> bool {
        // un-counted (poll loops are timing-dependent), but a held
        // envelope must become visible to a polling receiver
        self.flush_held();
        self.inner.probe(global_dst, ctx_id, src, tag)
    }

    fn wait_any(
        &self,
        global_rank: usize,
        chans: &[ChanId],
        start: usize,
        stall: &dyn Fn(),
    ) -> usize {
        let n = self.tick(global_rank, FaultOp::WaitAny);
        self.flush_held();
        if self
            .chance(SALT_SPURIOUS, global_rank, n, self.plan.spurious_permille)
            .is_some()
        {
            // spurious wakeup: a few extra readiness re-scans before the
            // real park, perturbing the scan-then-park interleaving
            for _ in 0..4 {
                if let Some(i) = WorldState::poll_any_from(chans, start) {
                    return i;
                }
                std::thread::yield_now();
            }
        }
        self.inner.wait_any(global_rank, chans, start, stall)
    }

    fn make_channel(
        &self,
        key: ChanKey,
        dst_world: usize,
        elem_bytes: usize,
        type_name: &'static str,
        len_hint: usize,
    ) -> ChanFabric {
        self.inner
            .make_channel(key, dst_world, elem_bytes, type_name, len_hint)
    }

    fn drain_in_flight(&self) {
        *self.held.lock() = None;
        self.inner.drain_in_flight();
    }

    fn note_rank_panic(&self, rank: Option<usize>) {
        self.inner.note_rank_panic(rank);
    }

    fn clear_rank_panic(&self) {
        self.inner.clear_rank_panic();
    }

    fn dead_rank(&self) -> Option<usize> {
        self.inner.dead_rank()
    }

    fn peer_failure(&self) -> Option<String> {
        self.inner.peer_failure()
    }

    fn inject(&self, rank: usize, op: FaultOp) {
        self.tick(rank, op);
    }

    fn sever_link(&self, peer_world: usize) {
        self.inner.sever_link(peer_world);
    }

    fn forensics(&self) -> TransportForensics {
        let mut f = self.inner.forensics();
        if self.held.try_lock().is_some_and(|h| h.is_some()) {
            f.outbox_depth += 1; // the held envelope is in-flight limbo
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::Payload;
    use crate::transport::thread::ThreadTransport;

    fn env_msg(src: usize, tag: u64, val: u32) -> Envelope {
        Envelope {
            ctx_id: 0,
            src,
            tag,
            arrival: 0.0,
            payload: Payload::typed(vec![val]),
        }
    }

    fn wrapped(n: usize, plan: FaultPlan) -> Arc<dyn Transport> {
        FaultTransport::wrap(n, plan, Arc::new(ThreadTransport::new(n)))
    }

    #[test]
    fn parse_full_grammar() {
        let p =
            FaultPlan::parse("7:delay=200/300us,reorder=100,spurious=50,kill=2@40,deadline=9000")
                .expect("valid spec");
        assert_eq!(p.seed, 7);
        assert_eq!((p.delay_permille, p.delay_max_us), (200, 300));
        assert_eq!(p.reorder_permille, 100);
        assert_eq!(p.spurious_permille, 50);
        assert_eq!(p.kills, vec![(2, 40)]);
        assert_eq!(p.deadline_ms, Some(9000));
    }

    #[test]
    fn parse_drop_spec() {
        let p = FaultPlan::parse("11:drop=40").expect("valid spec");
        assert_eq!(p.seed, 11);
        assert_eq!(p.drop_permille, 40);
        assert!(!p.is_noop(), "a drop-only plan must wrap the transport");
        assert!(FaultPlan::parse("11:drop=lots").is_err());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(FaultPlan::parse("no-colon").is_err());
        assert!(FaultPlan::parse("x:delay=10").is_err());
        assert!(FaultPlan::parse("1:frobnicate=3").is_err());
        assert!(FaultPlan::parse("1:kill=2").is_err());
        assert!(FaultPlan::parse("1:kill=a@b").is_err());
    }

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        for op in 0..64u64 {
            assert_eq!(mix(9, SALT_DELAY, 1, op), mix(9, SALT_DELAY, 1, op));
        }
        assert_ne!(mix(9, SALT_DELAY, 1, 0), mix(10, SALT_DELAY, 1, 0));
    }

    #[test]
    fn noop_plan_returns_the_inner_transport() {
        let inner: Arc<dyn Transport> = Arc::new(ThreadTransport::new(2));
        let wrapped = FaultTransport::wrap(2, FaultPlan::seeded(3).deadline_ms(50), inner.clone());
        assert!(Arc::ptr_eq(&wrapped, &inner), "no-op plan must not wrap");
    }

    #[test]
    fn kill_fires_at_the_exact_op_index() {
        let t = wrapped(2, FaultPlan::seeded(1).kill(0, 2));
        t.deposit(0, 1, env_msg(0, 1, 10)); // op 0
        t.deposit(0, 1, env_msg(0, 2, 11)); // op 1
        let t2 = Arc::clone(&t);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            t2.deposit(0, 1, env_msg(0, 3, 12)); // op 2 — dies here
        }))
        .expect_err("op 2 must kill rank 0");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("rank 0 killed by fault plan at transport op 2"));
        assert_eq!(t.dead_rank(), Some(0));
        assert!(t.peer_failure().expect("flag raised").contains("rank 0"));
    }

    #[test]
    fn reorder_preserves_same_signature_fifo() {
        // every deposit is chosen for holding (1000‰): the wrapper must
        // still deliver equal signatures in send order
        let t = wrapped(2, FaultPlan::seeded(5).reorder(1000));
        t.deposit(0, 1, env_msg(0, 7, 1));
        t.deposit(0, 1, env_msg(0, 7, 2));
        t.deposit(0, 1, env_msg(0, 7, 3));
        let take = |e: Envelope| e.payload.take::<u32>().expect("u32");
        let (a, _) = t.match_recv(1, 0, 0, 7, &|| {});
        let (b, _) = t.match_recv(1, 0, 0, 7, &|| {});
        let (c, _) = t.match_recv(1, 0, 0, 7, &|| {});
        assert_eq!(
            (take(a), take(b), take(c)),
            (vec![1], vec![2], vec![3]),
            "same-signature FIFO must survive reordering"
        );
    }

    #[test]
    fn held_deposit_reaches_a_parked_receiver() {
        // the receiver parks FIRST; the lone deposit is then held — the
        // background flusher must release it without any further traffic
        let t = wrapped(2, FaultPlan::seeded(5).reorder(1000));
        let t2 = Arc::clone(&t);
        let recv = std::thread::spawn(move || {
            let (e, _) = t2.match_recv(1, 0, 0, 9, &|| {});
            e.payload.take::<u32>().expect("u32")
        });
        std::thread::sleep(Duration::from_millis(30));
        t.deposit(0, 1, env_msg(0, 9, 77));
        assert_eq!(recv.join().expect("receiver completes"), vec![77]);
    }
}
