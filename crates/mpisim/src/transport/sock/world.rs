//! Ranks as separate OS processes over the socket fabric.
//!
//! [`SockWorld::launch`] mirrors [`crate::ProcWorld`]'s SPMD entry point
//! with a rendezvous bootstrap instead of a shared segment: rank 0 binds
//! a listener (`MPISIM_SOCK_ADDR`, or an auto-assigned UDS path) and
//! re-execs the current binary once per peer rank; each worker binds its
//! own listener, dials rank 0 with retry/backoff, announces itself with a
//! JOIN frame carrying its address, receives the full address TABLE back,
//! and mesh-connects to every lower-ranked worker. Deposits to a peer
//! whose dial has not landed yet simply queue in the link's replay buffer
//! — no completion barrier is needed.
//!
//! The epoch/command protocol is ProcWorld's, carried as frames: rank 0
//! broadcasts a start word, runs its own share, collects a DONE per
//! worker, and broadcasts a release word (the two-phase epoch barrier).
//! Death containment: a panicking rank raises the fabric flag and
//! broadcasts DEATH before exiting; rank 0's watchdog reaps children and
//! broadcasts on silent exits; a vanished host is caught by the link
//! heartbeat/reconnect machinery itself.

use super::link::{is_uds, K_CMD, K_DEATH, K_DONE, K_JOIN, K_TABLE};
use super::SockTransport;
use crate::ctx::RankCtx;
use crate::state::WorldState;
use crate::transport::Transport;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment keys of the hidden worker mode (distinct from ProcWorld's
/// so the two launch protocols cannot cross wires).
pub const ENV_SOCK_RANK: &str = "MPISIM_SOCK_WORKER_RANK";
/// Rendezvous address: the driver's listener, passed to workers (and
/// honored as the bind spec when set on the driver itself).
pub const ENV_SOCK_ADDR: &str = "MPISIM_SOCK_ADDR";

/// Epoch command word: `(job << JOB_SHIFT) | (epoch << 1) | release_bit`.
const JOB_SHIFT: u32 = 48;
const EPOCH_MASK: u64 = (1 << JOB_SHIFT) - 1;
const CMD_STOP: u64 = u64::MAX;

fn cmd_word(job: usize, epoch: u64, release: bool) -> u64 {
    ((job as u64) << JOB_SHIFT) | (epoch << 1) | release as u64
}

/// The world's wait deadline: a `deadline=` clause in `MPISIM_FAULTS`
/// overrides `MPISIM_DEADLINE_MS`.
fn env_deadline() -> Option<u64> {
    crate::transport::fault::FaultPlan::from_env()
        .and_then(|p| p.deadline())
        .or_else(crate::stall::env_deadline_ms)
}

/// An SPMD world whose ranks are separate OS processes connected by the
/// socket fabric (TCP or Unix-domain, per the rendezvous address).
///
/// Usage is identical to [`crate::ProcWorld`]: every process constructs
/// it through [`SockWorld::launch`] and runs the same sequence of
/// [`SockWorld::run`] epochs. Dropping it shuts the world down (rank 0
/// posts the stop command and reaps children; workers exit).
pub struct SockWorld {
    state: Arc<WorldState>,
    sock: Arc<SockTransport>,
    rank: usize,
    n_ranks: usize,
    epoch: Cell<u64>,
    shutting_down: Arc<AtomicBool>,
    watchdog: Option<std::thread::JoinHandle<()>>,
}

impl SockWorld {
    /// World rank of this process.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// True in worker processes (rank != 0).
    pub fn is_worker(&self) -> bool {
        self.rank != 0
    }

    /// Launch (or join) a socket world of `n_ranks` ranks. One launch per
    /// process execution; the re-exec protocol cannot nest.
    pub fn launch(n_ranks: usize) -> SockWorld {
        static LAUNCHED: AtomicBool = AtomicBool::new(false);
        assert!(
            !LAUNCHED.swap(true, Ordering::SeqCst),
            "SockWorld::launch called twice in one process execution"
        );
        assert!(n_ranks >= 1, "socket world needs at least one rank");
        match std::env::var(ENV_SOCK_RANK) {
            Ok(r) => Self::launch_worker(n_ranks, r.parse().expect("worker rank")),
            Err(_) => Self::launch_driver(n_ranks),
        }
    }

    fn launch_worker(n_ranks: usize, rank: usize) -> SockWorld {
        let driver_addr = std::env::var(ENV_SOCK_ADDR).expect("worker mode without driver address");
        // match the driver's address family so a TCP rendezvous yields a
        // TCP mesh (cross-host shape), a UDS one stays on-disk
        let listen_spec = if is_uds(&driver_addr) {
            super::link::auto_addr()
        } else {
            "127.0.0.1:0".to_string()
        };
        let sock = SockTransport::bind(rank, n_ranks, &listen_spec);
        sock.connect_to(0, &driver_addr)
            .unwrap_or_else(|e| panic!("rank {rank} cannot join the world: {e}"));
        let mut join = Vec::with_capacity(8 + sock.listener_addr.len());
        join.extend_from_slice(&(rank as u32).to_le_bytes());
        join.extend_from_slice(&(sock.listener_addr.len() as u32).to_le_bytes());
        join.extend_from_slice(sock.listener_addr.as_bytes());
        sock.links[0]
            .as_ref()
            .expect("driver link")
            .send_frame(K_JOIN, &join);

        // await the address table, then mesh-connect to lower ranks
        let start = Instant::now();
        let table = loop {
            {
                let mut st = sock.ctrl.st.lock();
                if let Some(t) = st.table.take() {
                    break t;
                }
                sock.ctrl
                    .cv
                    .wait_for(&mut st, Duration::from_millis(crate::stall::stall_ms()));
            }
            if let Some(msg) = sock.peer_failure() {
                panic!("rank {rank} lost the driver during bootstrap: {msg}");
            }
            if let Some(ms) = env_deadline() {
                assert!(
                    (start.elapsed().as_millis() as u64) < ms,
                    "rank {rank}: no address table within the {ms} ms deadline"
                );
            }
        };
        assert_eq!(
            table.len(),
            n_ranks,
            "rank {rank}: address table covers {} ranks, world has {n_ranks}",
            table.len()
        );
        for (peer, addr) in table.iter().enumerate().take(rank).skip(1) {
            sock.connect_to(peer, addr)
                .unwrap_or_else(|e| panic!("rank {rank} cannot mesh with rank {peer}: {e}"));
        }

        let transport = crate::transport::fault::FaultTransport::wrap_env(
            n_ranks,
            Arc::clone(&sock) as Arc<dyn Transport>,
        );
        let state = WorldState::with_transport_deadline(n_ranks, None, transport, env_deadline());
        SockWorld {
            state,
            sock,
            rank,
            n_ranks,
            epoch: Cell::new(0),
            shutting_down: Arc::new(AtomicBool::new(false)),
            watchdog: None,
        }
    }

    fn launch_driver(n_ranks: usize) -> SockWorld {
        let listen_spec = std::env::var(ENV_SOCK_ADDR).unwrap_or_else(|_| super::link::auto_addr());
        let sock = if n_ranks == 1 {
            SockTransport::loopback(1) // no peers: plain loopback fabric
        } else {
            SockTransport::bind(0, n_ranks, &listen_spec)
        };
        let shutting_down = Arc::new(AtomicBool::new(false));
        let mut watchdog = None;
        if n_ranks > 1 {
            let exe = std::env::current_exe().expect("current_exe for worker re-exec");
            let children: Vec<std::process::Child> = (1..n_ranks)
                .map(|rank| {
                    std::process::Command::new(&exe)
                        .args(std::env::args_os().skip(1))
                        .env(ENV_SOCK_RANK, rank.to_string())
                        .env(ENV_SOCK_ADDR, &sock.listener_addr)
                        .spawn()
                        .unwrap_or_else(|e| panic!("spawn worker rank {rank}: {e}"))
                })
                .collect();
            watchdog = Some(
                std::thread::Builder::new()
                    .name("mpisim-sock-watchdog".into())
                    .spawn({
                        let sock = Arc::clone(&sock);
                        let shutting_down = Arc::clone(&shutting_down);
                        move || Self::watchdog(sock, shutting_down, children)
                    })
                    .expect("spawn watchdog thread"),
            );

            // collect one JOIN per worker, then broadcast the table
            let start = Instant::now();
            let mut addrs = vec![String::new(); n_ranks];
            addrs[0] = sock.listener_addr.clone();
            let mut joined = 1;
            while joined < n_ranks {
                {
                    let mut st = sock.ctrl.st.lock();
                    for (rank, addr) in st.joins.drain(..) {
                        assert!(
                            rank < n_ranks && addrs[rank].is_empty(),
                            "bogus or duplicate JOIN from rank {rank}"
                        );
                        addrs[rank] = addr;
                        joined += 1;
                    }
                    if joined < n_ranks {
                        sock.ctrl
                            .cv
                            .wait_for(&mut st, Duration::from_millis(crate::stall::stall_ms()));
                    }
                }
                if let Some(msg) = sock.peer_failure() {
                    panic!("bootstrap failed: {msg}");
                }
                if let Some(ms) = env_deadline() {
                    assert!(
                        (start.elapsed().as_millis() as u64) < ms,
                        "bootstrap incomplete within the {ms} ms deadline \
                         ({joined}/{n_ranks} ranks joined)"
                    );
                }
            }
            let mut table = Vec::new();
            table.extend_from_slice(&(n_ranks as u32).to_le_bytes());
            for a in &addrs {
                table.extend_from_slice(&(a.len() as u32).to_le_bytes());
                table.extend_from_slice(a.as_bytes());
            }
            for link in sock.links.iter().flatten() {
                link.send_frame(K_TABLE, &table);
            }
            // keep the driver's own copy: the watchdog scrubs a reaped
            // worker's UDS listener path by its table entry
            sock.ctrl.st.lock().table = Some(addrs);
        }

        let transport = crate::transport::fault::FaultTransport::wrap_env(
            n_ranks,
            Arc::clone(&sock) as Arc<dyn Transport>,
        );
        let state = WorldState::with_transport_deadline(n_ranks, None, transport, env_deadline());
        SockWorld {
            state,
            sock,
            rank: 0,
            n_ranks,
            epoch: Cell::new(0),
            shutting_down,
            watchdog,
        }
    }

    /// Rank 0's child reaper: a worker that exits mid-world is a death
    /// (broadcast so the whole mesh aborts); after the stop command,
    /// exits are expected — grace period, then kill stragglers.
    fn watchdog(
        sock: Arc<SockTransport>,
        shutting_down: Arc<AtomicBool>,
        mut children: Vec<std::process::Child>,
    ) {
        let mut live = vec![true; children.len()];
        while !shutting_down.load(Ordering::SeqCst) {
            for (i, child) in children.iter_mut().enumerate() {
                if !live[i] {
                    continue;
                }
                if let Ok(Some(status)) = child.try_wait() {
                    live[i] = false;
                    let rank = i + 1;
                    eprintln!(
                        "mpisim: worker rank {rank} (pid {}) exited mid-world ({status}); \
                         aborting the epoch",
                        child.id()
                    );
                    sock.note_rank_panic(Some(rank));
                    sock.ctrl.st.lock().deaths.push(rank);
                    sock.ctrl.cv.notify_all();
                    for link in sock.links.iter().flatten() {
                        link.send_frame(K_DEATH, &(rank as u32).to_le_bytes());
                    }
                    Self::scrub_worker_listener(&sock, rank);
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        for (i, child) in children.iter_mut().enumerate() {
            if !live[i] {
                continue;
            }
            loop {
                if matches!(child.try_wait(), Ok(Some(_))) {
                    break;
                }
                if Instant::now() >= deadline {
                    eprintln!(
                        "mpisim: worker rank {} ignored the stop command; killing it",
                        i + 1
                    );
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            Self::scrub_worker_listener(&sock, i + 1);
        }
    }

    /// Remove a reaped worker's UDS listener path. A worker that dies
    /// without unwinding (the `SIGKILL` shape, or a fault-plan kill) never
    /// runs its own `cleanup_listener`, and the stale name would litter
    /// the temp directory; removing it again after a clean exit is a
    /// harmless no-op.
    fn scrub_worker_listener(sock: &SockTransport, rank: usize) {
        let addr = sock
            .ctrl
            .st
            .lock()
            .table
            .as_ref()
            .and_then(|t| t.get(rank).cloned());
        if let Some(addr) = addr {
            if is_uds(&addr) {
                let _ = std::fs::remove_file(&addr);
            }
        }
    }

    /// Run one SPMD epoch: every rank calls `run` with the same closure
    /// and gets its own rank's result.
    pub fn run<F, R>(&self, f: F) -> R
    where
        F: FnOnce(&mut RankCtx) -> R,
    {
        let epoch = self.epoch.get() + 1;
        self.epoch.set(epoch);
        if self.rank == 0 {
            self.broadcast_cmd(cmd_word(0, epoch, false));
        } else {
            let job = self.await_cmd(epoch, false);
            assert!(job.is_some(), "driver stopped before epoch {epoch}");
        }
        self.finish_epoch(
            epoch,
            catch_unwind(AssertUnwindSafe(|| {
                let mut ctx = RankCtx::new(Arc::clone(&self.state), self.rank);
                f(&mut ctx)
            })),
        )
    }

    /// Driver side of the benchmark protocol (rank 0 only): run job `job`
    /// of the server's table as one epoch.
    pub fn epoch_job<F, R>(&self, job: usize, f: F) -> R
    where
        F: FnOnce(&mut RankCtx) -> R,
    {
        assert_eq!(
            self.rank, 0,
            "epoch_job is the driver side; workers serve()"
        );
        assert!(
            (job as u64) < (1 << 15),
            "job index overflows the command word"
        );
        let epoch = self.epoch.get() + 1;
        self.epoch.set(epoch);
        self.broadcast_cmd(cmd_word(job, epoch, false));
        self.finish_epoch(
            epoch,
            catch_unwind(AssertUnwindSafe(|| {
                let mut ctx = RankCtx::new(Arc::clone(&self.state), self.rank);
                f(&mut ctx)
            })),
        )
    }

    /// Server side of the benchmark protocol (workers only): loop epochs
    /// until the stop command arrives.
    pub fn serve(&self, jobs: &[&dyn Fn(&mut RankCtx)]) {
        assert!(
            self.rank != 0,
            "serve is the worker side; rank 0 drives epoch_job"
        );
        loop {
            let epoch = self.epoch.get() + 1;
            let Some(job) = self.await_cmd(epoch, false) else {
                return; // stop command: world is shutting down
            };
            self.epoch.set(epoch);
            let job_fn = jobs
                .get(job)
                .unwrap_or_else(|| panic!("driver posted job {job}, table has {}", jobs.len()));
            self.finish_epoch(
                epoch,
                catch_unwind(AssertUnwindSafe(|| {
                    let mut ctx = RankCtx::new(Arc::clone(&self.state), self.rank);
                    job_fn(&mut ctx);
                })),
            );
        }
    }

    fn broadcast_cmd(&self, word: u64) {
        for link in self.sock.links.iter().flatten() {
            link.send_frame(K_CMD, &word.to_le_bytes());
        }
    }

    /// Wait for the next command word; `Some(job)` when it matches this
    /// epoch (+ phase), `None` on the stop command.
    fn await_cmd(&self, epoch: u64, release: bool) -> Option<usize> {
        let start = Instant::now();
        let word = {
            let mut st = self.sock.ctrl.st.lock();
            loop {
                if let Some(w) = st.cmds.pop_front() {
                    break w;
                }
                if self
                    .sock
                    .ctrl
                    .cv
                    .wait_for(&mut st, Duration::from_millis(crate::stall::stall_ms()))
                    .timed_out()
                {
                    drop(st);
                    self.check_failure("epoch-command wait");
                    self.check_deadline(&start, "epoch-command wait");
                    st = self.sock.ctrl.st.lock();
                }
            }
        };
        if word == CMD_STOP {
            return None;
        }
        let (job, ep, rel) = (
            (word >> JOB_SHIFT) as usize,
            (word & EPOCH_MASK) >> 1,
            word & 1 == 1,
        );
        assert_eq!(
            (ep, rel),
            (epoch, release),
            "epoch protocol desync on rank {}: got epoch {ep} (release {rel}), \
             expected {epoch} (release {release})",
            self.rank
        );
        Some(job)
    }

    /// Abort loudly if a peer died while we were blocked in the epoch
    /// protocol (the fabric's own waits run the same check via stall
    /// probes; this covers the command/DONE waits, which bypass it).
    fn check_failure(&self, kind: &str) {
        if let Some(msg) = self.sock.peer_failure() {
            panic!(
                "rank {} blocked in {kind}: {msg}\n{}",
                self.rank,
                self.state.stall_report()
            );
        }
    }

    /// Abort with a [`crate::StallReport`] when a blocked epoch-protocol
    /// wait outlives the world's deadline.
    fn check_deadline(&self, start: &Instant, kind: &str) {
        if let Some(ms) = self.state.deadline_ms() {
            let waited = start.elapsed().as_millis() as u64;
            if waited >= ms {
                panic!(
                    "wait deadline of {ms} ms (MPISIM_DEADLINE_MS) expired after \
                     {waited} ms blocked in {kind} on rank {}\n{}",
                    self.rank,
                    self.state.stall_report()
                );
            }
        }
    }

    fn finish_epoch<R>(&self, epoch: u64, result: std::thread::Result<R>) -> R {
        match result {
            Ok(r) => {
                if self.rank == 0 {
                    if self.n_ranks > 1 {
                        // collect a DONE per worker, then release everyone
                        let start = Instant::now();
                        let mut st = self.sock.ctrl.st.lock();
                        loop {
                            let done = st.dones.iter().filter(|(_, e)| *e == epoch).count();
                            if done == self.n_ranks - 1 {
                                st.dones.retain(|(_, e)| *e != epoch);
                                break;
                            }
                            if self
                                .sock
                                .ctrl
                                .cv
                                .wait_for(&mut st, Duration::from_millis(crate::stall::stall_ms()))
                                .timed_out()
                            {
                                drop(st);
                                self.check_failure("epoch-completion wait");
                                self.check_deadline(&start, "epoch-completion wait");
                                st = self.sock.ctrl.st.lock();
                            }
                        }
                        drop(st);
                        self.broadcast_cmd(cmd_word(0, epoch, true));
                    }
                } else {
                    let mut done = Vec::with_capacity(12);
                    done.extend_from_slice(&(self.rank as u32).to_le_bytes());
                    done.extend_from_slice(&epoch.to_le_bytes());
                    self.sock.links[0]
                        .as_ref()
                        .expect("driver link")
                        .send_frame(K_DONE, &done);
                    assert!(
                        self.await_cmd(epoch, true).is_some(),
                        "driver stopped inside epoch {epoch}"
                    );
                }
                r
            }
            Err(p) => {
                // raise the flag and tell every peer BEFORE dying so
                // blocked receives across the mesh abort loudly
                self.sock.note_rank_panic(Some(self.rank));
                for link in self.sock.links.iter().flatten() {
                    link.send_frame(K_DEATH, &(self.rank as u32).to_le_bytes());
                }
                self.flush_links(Duration::from_secs(2));
                if self.rank != 0 {
                    eprintln!(
                        "mpisim: rank {} panicked; aborting the epoch across the world",
                        self.rank
                    );
                    self.cleanup_listener();
                    std::process::exit(101);
                }
                resume_unwind(p);
            }
        }
    }

    /// Best-effort wait until every queued frame has reached the kernel's
    /// socket buffers (they survive process exit; the writer thread does
    /// not).
    fn flush_links(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        for link in self.sock.links.iter().flatten() {
            loop {
                {
                    let st = link.st.lock();
                    if st.dead || st.shutdown || st.writer_sock.is_none() || st.sent >= st.tx_seq {
                        break;
                    }
                }
                if Instant::now() >= deadline {
                    return;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    /// Unlink this process's UDS listener path on paths that exit without
    /// dropping the transport.
    fn cleanup_listener(&self) {
        if is_uds(&self.sock.listener_addr) {
            let _ = std::fs::remove_file(&self.sock.listener_addr);
        }
    }
}

impl Drop for SockWorld {
    fn drop(&mut self) {
        if self.rank == 0 {
            self.broadcast_cmd(CMD_STOP);
            self.flush_links(Duration::from_secs(2));
            self.shutting_down.store(true, Ordering::SeqCst);
            if let Some(w) = self.watchdog.take() {
                let _ = w.join();
            }
        } else {
            // hold the process alive until the stop command; a dead
            // driver link exits nonzero so the failure stays visible
            let stopped = loop {
                {
                    let mut st = self.sock.ctrl.st.lock();
                    match st.cmds.pop_front() {
                        Some(CMD_STOP) => break true,
                        Some(w) => unreachable!("stray command word {w:#x} at shutdown"),
                        None => {
                            self.sock
                                .ctrl
                                .cv
                                .wait_for(&mut st, Duration::from_millis(crate::stall::stall_ms()));
                        }
                    }
                }
                if self.sock.peer_failure().is_some() {
                    break false;
                }
            };
            self.cleanup_listener();
            // workers never run the program past the world
            std::process::exit(if stopped { 0 } else { 102 });
        }
    }
}
