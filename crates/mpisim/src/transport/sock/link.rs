//! Socket-fabric link layer: stream/listener abstraction over TCP and
//! Unix-domain sockets, the length-prefixed frame codec, capped
//! exponential-backoff connect, and the per-peer [`Link`] state machine
//! (outbox, replay buffer, sequence numbers, liveness clock).
//!
//! One [`Link`] carries ALL traffic between two processes over a single
//! full-duplex connection: plain-send envelopes, persistent-channel
//! payloads, control words, and heartbeats. Sequenced frames get a
//! per-link monotonic sequence number and stay in the replay buffer until
//! cumulatively acknowledged, so a severed connection resumes exactly
//! where it left off (exactly-once: the receiver drops seqs it has
//! already seen and panics on gaps).

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Frame kinds. `HELLO` and `ACK` are unsequenced (seq 0); everything
/// else is sequenced and replayed across reconnects.
pub(crate) const K_DATA: u8 = 1; // plain-send envelope
pub(crate) const K_CHAN: u8 = 2; // persistent-channel payload
pub(crate) const K_HELLO: u8 = 3; // handshake: [proc u32][last_rx u64]
pub(crate) const K_ACK: u8 = 4; // cumulative ack / heartbeat: [cum_rx u64]
pub(crate) const K_CMD: u8 = 5; // epoch command word: [word u64]
pub(crate) const K_DONE: u8 = 6; // epoch completion: [rank u32][epoch u64]
pub(crate) const K_DEATH: u8 = 7; // rank death notice: [rank u32]
pub(crate) const K_FLUSH: u8 = 8; // drain round-trip token: [token u64]
pub(crate) const K_JOIN: u8 = 9; // bootstrap: [rank u32][addr_len u32][addr]
pub(crate) const K_TABLE: u8 = 10; // bootstrap: [n u32]([len u32][addr])*n

/// Bytes of frame header after the 4-byte length prefix:
/// `[kind u8][pad 3][seq u64]`.
const FRAME_HDR: usize = 12;

/// Hard cap on unacknowledged sequenced frames. A healthy peer acks every
/// few frames and on every heartbeat, so hitting this means the peer has
/// stopped consuming for far longer than any reconnect window — degrade
/// loudly instead of buffering without bound.
const REPLAY_CAP: usize = 1 << 16;

/// Encode one frame: `[len u32][kind u8][pad 3][seq u64][body]` where
/// `len` counts everything after the length prefix.
pub(crate) fn encode_frame(kind: u8, seq: u64, body: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(4 + FRAME_HDR + body.len());
    f.extend_from_slice(&((FRAME_HDR + body.len()) as u32).to_le_bytes());
    f.push(kind);
    f.extend_from_slice(&[0u8; 3]);
    f.extend_from_slice(&seq.to_le_bytes());
    f.extend_from_slice(body);
    f
}

/// Read one frame off a blocking stream.
pub(crate) fn read_frame(s: &mut Stream) -> std::io::Result<(u8, u64, Vec<u8>)> {
    let mut len = [0u8; 4];
    s.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len < FRAME_HDR {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("sock frame of {len} bytes is shorter than its header"),
        ));
    }
    let mut buf = vec![0u8; len];
    s.read_exact(&mut buf)?;
    let kind = buf[0];
    let seq = u64::from_le_bytes(buf[4..12].try_into().unwrap());
    buf.drain(..FRAME_HDR);
    Ok((kind, seq, buf))
}

/// `true` if `spec` names a Unix-domain socket path rather than a TCP
/// `host:port` endpoint.
pub(crate) fn is_uds(spec: &str) -> bool {
    spec.starts_with('/') || !spec.contains(':')
}

/// One bidirectional byte stream, TCP or Unix-domain.
#[derive(Debug)]
pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    /// Shut down both directions; a reader blocked in `read` on any clone
    /// of this socket wakes with EOF (the lever behind `sever_link` and
    /// half-open detection).
    pub fn shutdown_both(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(Shutdown::Both),
            Stream::Unix(s) => s.shutdown(Shutdown::Both),
        };
    }

    pub fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            Stream::Unix(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A bound rendezvous endpoint, TCP or Unix-domain.
pub(crate) enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

static AUTO_ADDR: AtomicU64 = AtomicU64::new(0);

/// A fresh auto-assigned Unix-domain socket path under the temp dir.
pub(crate) fn auto_addr() -> String {
    let n = AUTO_ADDR.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir()
        .join(format!("mpisim-sock-{}-{n}", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

impl Listener {
    /// Bind `spec` (UDS path or TCP `host:port`; port 0 allocates).
    /// Returns the listener and the concrete address peers should dial.
    pub fn bind(spec: &str) -> std::io::Result<(Listener, String)> {
        if is_uds(spec) {
            let l = UnixListener::bind(spec)?;
            l.set_nonblocking(true)?;
            Ok((Listener::Unix(l), spec.to_string()))
        } else {
            let l = TcpListener::bind(spec)?;
            l.set_nonblocking(true)?;
            let actual = l.local_addr()?.to_string();
            Ok((Listener::Tcp(l), actual))
        }
    }

    /// Non-blocking accept (listeners are bound non-blocking so the
    /// accept thread can observe shutdown between polls). Accepted
    /// streams are blocking.
    pub fn try_accept(&self) -> std::io::Result<Option<Stream>> {
        let got = match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    s.set_nodelay(true)?;
                    Some(Stream::Tcp(s))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Some(Stream::Unix(s))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                Err(e) => return Err(e),
            },
        };
        Ok(got)
    }
}

/// Retry/backoff policy for dialing a peer (`MPISIM_CONNECT_RETRIES`,
/// default 8 further attempts after the first; `MPISIM_CONNECT_BACKOFF_MS`,
/// default 10 — doubled per attempt, capped at 1 s, plus deterministic
/// jitter).
#[derive(Clone, Copy, Debug)]
pub(crate) struct RetryCfg {
    pub retries: u64,
    pub backoff_ms: u64,
}

impl RetryCfg {
    pub fn from_env() -> Self {
        Self {
            retries: crate::stall::env_count("MPISIM_CONNECT_RETRIES", 8, 8),
            backoff_ms: crate::stall::env_positive_ms("MPISIM_CONNECT_BACKOFF_MS", 10, 10),
        }
    }

    fn delay(&self, attempt: u64) -> Duration {
        let base = (self.backoff_ms << attempt.min(16)).min(1000);
        // deterministic jitter: spread simultaneous dials without a RNG
        let jitter = (std::process::id() as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(attempt)
            % (base / 2 + 1);
        Duration::from_millis(base + jitter)
    }

    /// Upper bound on how long a full retry schedule can take — the
    /// passive side uses it as its disconnected-too-long window.
    pub fn window_ms(&self) -> u64 {
        (0..=self.retries)
            .map(|a| (self.backoff_ms << a.min(16)).min(1000) * 3 / 2)
            .sum::<u64>()
            .max(500)
    }
}

/// Dial `addr` once.
pub(crate) fn connect_once(addr: &str) -> std::io::Result<Stream> {
    if is_uds(addr) {
        Ok(Stream::Unix(UnixStream::connect(addr)?))
    } else {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?;
        Ok(Stream::Tcp(s))
    }
}

/// Dial `addr` with capped exponential backoff + jitter. `1 + retries`
/// total attempts.
pub(crate) fn connect_retry(addr: &str, cfg: RetryCfg) -> std::io::Result<Stream> {
    let mut last = None;
    for attempt in 0..=cfg.retries {
        match connect_once(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
        if attempt < cfg.retries {
            std::thread::sleep(cfg.delay(attempt));
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("no connect attempts made")))
}

/// Mutable half of a [`Link`].
pub(crate) struct LinkState {
    /// Socket the writer thread writes to (`None` while disconnected).
    pub writer_sock: Option<Stream>,
    /// Clone of the socket the current reader reads from, kept so
    /// `disconnect` can shut it down and wake a blocked `read`.
    pub reader_sock: Option<Stream>,
    /// Bumped on every install; a reader whose generation is stale exits
    /// instead of reconnecting (it was already replaced).
    pub reader_gen: u64,
    /// Every unacknowledged sequenced frame, in seq order. Doubles as the
    /// outbox: entries with seq > `sent` have not been written yet.
    pub replay: VecDeque<(u64, Vec<u8>)>,
    /// Last sequence number assigned to an outgoing frame.
    pub tx_seq: u64,
    /// Last seq physically written on the CURRENT connection (reset to
    /// the peer's cumulative rx on reconnect, which is what makes resume
    /// work: the writer re-sends everything the peer missed).
    pub sent: u64,
    /// Last in-order seq received from the peer.
    pub rx_seq: u64,
    /// Peer's cumulative ack of our frames.
    pub acked: u64,
    /// Frames received since we last acked; ≥ [`ACK_EVERY`] requests one.
    pub rx_since_ack: u64,
    /// The reader asked the writer to emit an ack now.
    pub ack_requested: bool,
    /// Completed reconnects (forensics).
    pub reconnects: u64,
    /// When the link lost its connection; `None` while connected (or
    /// never yet connected — bootstrap dials don't start the clock).
    pub disconnected_since: Option<Instant>,
    /// Permanent failure: set once, never cleared. Senders drop, blocked
    /// waits surface it through `peer_failure`.
    pub dead: bool,
    /// Why the link died.
    pub dead_note: Option<String>,
    /// Orderly transport teardown (distinct from `dead`: not an error).
    pub shutdown: bool,
}

/// Receiver acks at least every this many sequenced frames (heartbeats
/// ack anyway on idle links).
pub(crate) const ACK_EVERY: u64 = 64;

/// One peer-process connection: all state shared between the writer
/// thread, the reader thread, depositing ranks, and forensics.
pub(crate) struct Link {
    /// Peer process index this link reaches.
    pub peer_proc: usize,
    /// World rank to blame when the link dies (the peer's rank under
    /// one-rank-per-process worlds; rank 0 of a loopback self-link).
    pub blame: usize,
    /// Loopback self-link: writer holds the client end, reader the
    /// accepted end, acks short-circuit locally.
    pub self_loop: bool,
    /// Address to (re)dial, for the connector side; `None` on the
    /// passive side (the peer reconnects to us).
    pub dial_addr: Mutex<Option<String>>,
    pub st: Mutex<LinkState>,
    /// Wakes the writer thread (new frames, installs, teardown).
    pub cv: Condvar,
    /// Liveness clock: ms since `base` when the peer was last heard from.
    pub last_rx_ms: AtomicU64,
    base: Instant,
}

impl Link {
    pub fn new(peer_proc: usize, blame: usize, self_loop: bool) -> Arc<Link> {
        Arc::new(Link {
            peer_proc,
            blame,
            self_loop,
            dial_addr: Mutex::new(None),
            st: Mutex::new(LinkState {
                writer_sock: None,
                reader_sock: None,
                reader_gen: 0,
                replay: VecDeque::new(),
                tx_seq: 0,
                sent: 0,
                rx_seq: 0,
                acked: 0,
                rx_since_ack: 0,
                ack_requested: false,
                reconnects: 0,
                disconnected_since: None,
                dead: false,
                dead_note: None,
                shutdown: false,
            }),
            cv: Condvar::new(),
            last_rx_ms: AtomicU64::new(0),
            base: Instant::now(),
        })
    }

    /// Record that the peer was heard from just now.
    pub fn touch(&self) {
        self.last_rx_ms
            .store(self.base.elapsed().as_millis() as u64, Ordering::Release);
    }

    /// Milliseconds since the peer was last heard from.
    pub fn silence_ms(&self) -> u64 {
        (self.base.elapsed().as_millis() as u64)
            .saturating_sub(self.last_rx_ms.load(Ordering::Acquire))
    }

    /// Queue one sequenced frame. Never blocks; frames queued while the
    /// link is down ride the replay buffer through the next reconnect.
    pub fn send_frame(&self, kind: u8, body: &[u8]) {
        let mut st = self.st.lock();
        if st.dead || st.shutdown {
            return; // peer_failure() reports the death; don't pile on
        }
        assert!(
            st.replay.len() < REPLAY_CAP,
            "sock link to proc {}: replay buffer overflow ({} unacknowledged frames) — \
             peer stopped consuming",
            self.peer_proc,
            st.replay.len(),
        );
        st.tx_seq += 1;
        let seq = st.tx_seq;
        st.replay.push_back((seq, encode_frame(kind, seq, body)));
        drop(st);
        self.cv.notify_all();
    }

    /// Sever the current connection (write error, heartbeat timeout, or
    /// an injected `drop=` fault). The connector-side reader wakes with a
    /// read error and runs the reconnect loop; the passive side starts
    /// its disconnected-too-long clock.
    pub fn disconnect(&self) {
        let mut st = self.st.lock();
        if let Some(s) = st.writer_sock.take() {
            s.shutdown_both();
        }
        if let Some(s) = st.reader_sock.take() {
            s.shutdown_both();
        }
        if st.disconnected_since.is_none() {
            st.disconnected_since = Some(Instant::now());
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Permanent failure: record the reason and tear the link down.
    pub fn fail(&self, note: String) {
        let mut st = self.st.lock();
        if st.dead || st.shutdown {
            return;
        }
        st.dead = true;
        st.dead_note = Some(note);
        if let Some(s) = st.writer_sock.take() {
            s.shutdown_both();
        }
        if let Some(s) = st.reader_sock.take() {
            s.shutdown_both();
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Orderly teardown at transport drop.
    pub fn close(&self) {
        let mut st = self.st.lock();
        st.shutdown = true;
        if let Some(s) = st.writer_sock.take() {
            s.shutdown_both();
        }
        if let Some(s) = st.reader_sock.take() {
            s.shutdown_both();
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Install a fresh connection carrying both directions (remote
    /// links). `peer_rx` is the peer's cumulative receive seq from its
    /// HELLO: everything after it gets re-sent. Returns the reader
    /// generation for the reader thread to carry.
    pub fn install(&self, stream: Stream, peer_rx: u64) -> std::io::Result<(Stream, u64)> {
        let reader_end = stream.try_clone()?;
        let mut st = self.st.lock();
        if let Some(s) = st.writer_sock.take() {
            s.shutdown_both();
        }
        if let Some(s) = st.reader_sock.take() {
            s.shutdown_both();
        }
        Self::resume(&mut st, peer_rx);
        st.writer_sock = Some(stream);
        st.reader_sock = Some(reader_end.try_clone()?);
        st.reader_gen += 1;
        let gen = st.reader_gen;
        if st.disconnected_since.take().is_some() {
            st.reconnects += 1;
        }
        drop(st);
        self.touch();
        self.cv.notify_all();
        Ok((reader_end, gen))
    }

    /// Self-link: install only the writing end (the client side of the
    /// loopback connection). The accepted end arrives separately through
    /// the accept loop ([`Link::install_reader`]).
    pub fn install_writer(&self, stream: Stream, peer_rx: u64) {
        let mut st = self.st.lock();
        if let Some(s) = st.writer_sock.take() {
            s.shutdown_both();
        }
        Self::resume(&mut st, peer_rx);
        st.writer_sock = Some(stream);
        if st.disconnected_since.take().is_some() {
            st.reconnects += 1;
        }
        drop(st);
        self.touch();
        self.cv.notify_all();
    }

    /// Self-link: install only the reading end. Returns the generation
    /// for the reader thread.
    pub fn install_reader(&self, stream: &Stream) -> std::io::Result<u64> {
        let mut st = self.st.lock();
        if let Some(s) = st.reader_sock.take() {
            s.shutdown_both();
        }
        st.reader_sock = Some(stream.try_clone()?);
        st.reader_gen += 1;
        let gen = st.reader_gen;
        drop(st);
        self.touch();
        Ok(gen)
    }

    /// Rewind the send cursor to what the peer actually has, dropping
    /// acknowledged frames from replay.
    fn resume(st: &mut LinkState, peer_rx: u64) {
        while st.replay.front().is_some_and(|(s, _)| *s <= peer_rx) {
            st.replay.pop_front();
        }
        if peer_rx > st.acked {
            st.acked = peer_rx;
        }
        st.sent = st.acked;
    }

    /// Apply a cumulative ack from the peer.
    pub fn apply_ack(&self, cum_rx: u64) {
        let mut st = self.st.lock();
        if cum_rx > st.acked {
            st.acked = cum_rx;
            while st.replay.front().is_some_and(|(s, _)| *s <= cum_rx) {
                st.replay.pop_front();
            }
        }
    }

    /// Forensic snapshot; `"busy"` when the state lock is contended.
    pub fn status(&self) -> crate::stall::LinkStatus {
        let (state, outbox, unacked) = match self.st.try_lock() {
            Some(st) => {
                let state = if st.dead {
                    "dead"
                } else if st.writer_sock.is_some() {
                    "connected"
                } else if st.disconnected_since.is_some() {
                    "reconnecting"
                } else {
                    "connecting"
                };
                let outbox = st.replay.iter().filter(|(s, _)| *s > st.sent).count();
                (state, outbox, st.replay.len())
            }
            None => ("busy", 0, 0),
        };
        crate::stall::LinkStatus {
            peer: self.peer_proc,
            state,
            outbox,
            unacked,
            heartbeat_age_ms: self.silence_ms(),
        }
    }
}

/// Per-link writer thread: drains the outbox, emits acks/heartbeats on
/// idle links, detects half-open connections (peer silent too long) and
/// passive-side permanent loss (disconnected longer than the reconnect
/// window).
pub(crate) fn run_writer(link: Arc<Link>, cfg: RetryCfg) {
    let hb = Duration::from_millis(crate::stall::stall_ms());
    let silence_limit = cfg.window_ms().max(4 * crate::stall::stall_ms()) * 4;
    let mut last_hb = Instant::now();
    loop {
        enum Act {
            Write(Stream, Vec<Vec<u8>>),
            Die(String),
            Wait,
        }
        let act = {
            let mut st = link.st.lock();
            if st.shutdown || st.dead {
                return;
            }
            match st.writer_sock.as_ref().map(Stream::try_clone) {
                Some(Err(_)) => Act::Die("writer socket clone failed".into()),
                Some(Ok(sock)) => {
                    let pending: Vec<Vec<u8>> = st
                        .replay
                        .iter()
                        .filter(|(s, _)| *s > st.sent)
                        .take(32)
                        .map(|(_, f)| f.clone())
                        .collect();
                    if !pending.is_empty() {
                        st.sent += pending.len() as u64;
                        Act::Write(sock, pending)
                    } else if st.ack_requested || last_hb.elapsed() >= hb {
                        st.ack_requested = false;
                        st.rx_since_ack = 0;
                        last_hb = Instant::now();
                        if link.self_loop {
                            Act::Wait // self-links ack locally; no wire heartbeat needed
                        } else if !st.dead && link.silence_ms() > silence_limit {
                            // half-open link: we can write but the peer has
                            // gone silent — force a reconnect cycle
                            drop(st);
                            link.disconnect();
                            continue;
                        } else {
                            let ack = encode_frame(K_ACK, 0, &st.rx_seq.to_le_bytes());
                            Act::Write(sock, vec![ack])
                        }
                    } else {
                        Act::Wait
                    }
                }
                None => {
                    let passive = link.dial_addr.lock().is_none();
                    match st.disconnected_since {
                        Some(t)
                            if passive && t.elapsed() > Duration::from_millis(cfg.window_ms()) =>
                        {
                            Act::Die(format!(
                                "peer proc {} did not reconnect within {} ms",
                                link.peer_proc,
                                cfg.window_ms()
                            ))
                        }
                        _ => Act::Wait,
                    }
                }
            }
        };
        match act {
            Act::Write(mut sock, frames) => {
                for f in &frames {
                    if sock.write_all(f).is_err() {
                        link.disconnect();
                        break;
                    }
                }
            }
            Act::Die(reason) => {
                link.fail(reason);
                return;
            }
            Act::Wait => {
                let mut st = link.st.lock();
                if st.shutdown || st.dead {
                    return;
                }
                link.cv.wait_for(&mut st, hb);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips_over_a_loopback_stream() {
        let (l, addr) = Listener::bind(&auto_addr()).expect("bind uds");
        let mut client = connect_once(&addr).expect("connect");
        client
            .write_all(&encode_frame(K_DATA, 7, b"payload"))
            .expect("write");
        let mut server = loop {
            if let Some(s) = l.try_accept().expect("accept") {
                break s;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        let (kind, seq, body) = read_frame(&mut server).expect("read frame");
        assert_eq!((kind, seq), (K_DATA, 7));
        assert_eq!(body, b"payload");
        let _ = std::fs::remove_file(&addr);
    }

    #[test]
    fn addr_classification() {
        assert!(is_uds("/tmp/mpisim-sock-1"));
        assert!(is_uds("plain-name"));
        assert!(!is_uds("127.0.0.1:4000"));
        assert!(!is_uds("host.example:9"));
    }

    #[test]
    fn connect_retry_reports_the_last_error_after_exhaustion() {
        let cfg = RetryCfg {
            retries: 2,
            backoff_ms: 1,
        };
        let err = connect_retry("/nonexistent-dir/mpisim-no-such-socket", cfg)
            .expect_err("must exhaust retries");
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn replay_resumes_from_the_peers_cumulative_ack() {
        let link = Link::new(1, 1, false);
        link.send_frame(K_DATA, b"a"); // seq 1
        link.send_frame(K_DATA, b"b"); // seq 2
        link.send_frame(K_DATA, b"c"); // seq 3
        {
            let mut st = link.st.lock();
            st.sent = 3; // pretend all were written on a now-dead conn
        }
        // peer says it saw up to 1: frames 2 and 3 must become pending again
        let (l, addr) = Listener::bind(&auto_addr()).expect("bind");
        let client = connect_once(&addr).expect("connect");
        link.install(client, 1).expect("install");
        let st = link.st.lock();
        assert_eq!(st.sent, 1);
        assert_eq!(st.acked, 1);
        let pending: Vec<u64> = st
            .replay
            .iter()
            .filter(|(s, _)| *s > st.sent)
            .map(|(s, _)| *s)
            .collect();
        assert_eq!(pending, vec![2, 3]);
        drop(st);
        drop(l);
        let _ = std::fs::remove_file(&addr);
    }

    #[test]
    fn acks_trim_the_replay_buffer() {
        let link = Link::new(0, 0, false);
        for _ in 0..5 {
            link.send_frame(K_CMD, &7u64.to_le_bytes());
        }
        link.apply_ack(3);
        let st = link.st.lock();
        assert_eq!(st.acked, 3);
        assert_eq!(st.replay.len(), 2);
        assert_eq!(st.replay.front().map(|(s, _)| *s), Some(4));
    }
}
