//! The socket fabric: ranks exchange framed envelopes over TCP or
//! Unix-domain stream connections, one full-duplex link per peer process.
//!
//! Topologies:
//!
//! * **loopback** ([`SockTransport::loopback`]) — every rank lives in this
//!   process and ALL plain-send / persistent-channel traffic rides one
//!   self-link through a real socket (`MPISIM_TRANSPORT=sock` under
//!   [`crate::World::run`] / [`crate::WorldPool`]). This is the
//!   equivalence surface: the full wire path runs in-process.
//! * **multi-process** ([`SockTransport::bind`]) — one rank per OS
//!   process, meshed via rendezvous bootstrap ([`world::SockWorld`]).
//!
//! Failure semantics (the point of this fabric — DESIGN.md §10): connects
//! retry with capped exponential backoff + jitter; idle links carry
//! heartbeats so a silent peer is detected within the reconnect window; a
//! severed connection reconnects and *resumes* from the receiver's
//! cumulative sequence number (replay buffer upstream, duplicate-drop
//! downstream — exactly-once); permanent loss marks the link dead, which
//! every blocked wait observes through `peer_failure` within one stall
//! probe and degrades to a loud abort / [`crate::EpochError`].

pub(crate) mod link;
pub(crate) mod world;

use super::wire::{decode_envelope, encode_env_hdr};
use super::{ChanFabric, PayloadMode, Transport, TransportForensics};
use crate::state::{ChanId, ChanKey, Envelope, Mailbox, Payload, WaitSet, WorldState};
use link::{
    auto_addr, connect_once, connect_retry, encode_frame, read_frame, Link, Listener, RetryCfg,
    Stream, ACK_EVERY, K_ACK, K_CHAN, K_CMD, K_DATA, K_DEATH, K_DONE, K_FLUSH, K_HELLO, K_JOIN,
    K_TABLE,
};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

const NO_RANK: usize = usize::MAX;

/// Control-plane inbox: epoch commands, completions, death notices, and
/// bootstrap join/table traffic, deposited by reader threads and consumed
/// by [`world::SockWorld`].
#[derive(Default)]
pub(crate) struct CtrlState {
    pub cmds: VecDeque<u64>,
    pub dones: Vec<(usize, u64)>,
    pub deaths: Vec<usize>,
    pub joins: Vec<(usize, String)>,
    pub table: Option<Vec<String>>,
}

pub(crate) struct Ctrl {
    pub st: Mutex<CtrlState>,
    pub cv: Condvar,
}

/// Flush round-trip rendezvous for loopback draining: `drain_in_flight`
/// pushes a token through the self-link and waits for the reader to
/// observe it, forcing every frame queued ahead of the token through the
/// socket first.
struct FlushPoint {
    next: AtomicU64,
    seen: Mutex<u64>,
    cv: Condvar,
}

/// What a persistent channel needs from the socket fabric, decided at
/// registration ([`Transport::make_channel`]): the link to push over (if
/// the receiving rank is reached through a socket) and the transport to
/// register a delivery closure with (if this process hosts the receiver).
pub(crate) struct SockChanWire {
    pub route: Option<Arc<Link>>,
    pub register: Option<Arc<SockTransport>>,
}

/// Receive-side delivery hook of a registered persistent channel: called
/// by the link reader with the payload's arrival stamp and wire bytes.
pub(crate) type DeliverFn = Arc<dyn Fn(f64, &[u8]) + Send + Sync>;

struct ChanTable {
    deliver: HashMap<ChanKey, DeliverFn>,
    /// Payloads that arrived before the receiving side registered.
    undelivered: HashMap<ChanKey, Vec<(f64, Vec<u8>)>>,
}

pub(crate) struct SockTransport {
    pub(crate) my_proc: usize,
    n_procs: usize,
    /// Concrete address our listener answers on (what peers dial).
    pub(crate) listener_addr: String,
    mailboxes: Vec<Mailbox>,
    wait_sets: Vec<Arc<WaitSet>>,
    /// Per-peer-process links; `None` at `my_proc` in multi-process
    /// worlds (a loopback world has its self-link at index 0).
    pub(crate) links: Vec<Option<Arc<Link>>>,
    chans: Mutex<ChanTable>,
    rank_panicked: AtomicBool,
    dead_rank: AtomicUsize,
    pub(crate) ctrl: Ctrl,
    flush: FlushPoint,
    pub(crate) cfg: RetryCfg,
    shutdown: Arc<AtomicBool>,
    accept_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    writer_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    me: Mutex<Weak<SockTransport>>,
}

impl SockTransport {
    /// All ranks in this process; every message crosses a real socket
    /// through one self-link. Listens on `MPISIM_SOCK_ADDR` if set (a UDS
    /// path or TCP `host:port`; port 0 allocates), else an auto-assigned
    /// UDS path.
    pub(crate) fn loopback(n_ranks: usize) -> Arc<SockTransport> {
        let spec = std::env::var("MPISIM_SOCK_ADDR").unwrap_or_else(|_| auto_addr());
        let t = Self::bind_inner(n_ranks, 0, 1, &spec);
        let link = t.links[0].as_ref().expect("loopback self-link").clone();
        *link.dial_addr.lock() = Some(t.listener_addr.clone());
        let stream = connect_retry(&t.listener_addr, t.cfg).unwrap_or_else(|e| {
            panic!(
                "sock loopback: cannot dial own listener {}: {e}",
                t.listener_addr
            )
        });
        t.handshake_connect(&link, stream)
            .unwrap_or_else(|e| panic!("sock loopback: self-link handshake failed: {e}"));
        t
    }

    /// One rank per process: bind a listener and create unconnected links
    /// to every peer. [`world::SockWorld`] drives the rendezvous dialing.
    pub(crate) fn bind(my_proc: usize, n_procs: usize, listen_spec: &str) -> Arc<SockTransport> {
        Self::bind_inner(n_procs, my_proc, n_procs, listen_spec)
    }

    fn bind_inner(
        n_ranks: usize,
        my_proc: usize,
        n_procs: usize,
        listen_spec: &str,
    ) -> Arc<SockTransport> {
        let (listener, listener_addr) = Listener::bind(listen_spec)
            .unwrap_or_else(|e| panic!("sock fabric: cannot bind {listen_spec:?}: {e}"));
        let cfg = RetryCfg::from_env();
        let links: Vec<Option<Arc<Link>>> = (0..n_procs)
            .map(|p| {
                if n_procs == 1 {
                    Some(Link::new(0, 0, true))
                } else if p == my_proc {
                    None
                } else {
                    Some(Link::new(p, p, false))
                }
            })
            .collect();
        let t = Arc::new(SockTransport {
            my_proc,
            n_procs,
            listener_addr,
            mailboxes: (0..n_ranks).map(|_| Mailbox::default()).collect(),
            wait_sets: (0..n_ranks).map(|_| Arc::new(WaitSet::new())).collect(),
            links,
            chans: Mutex::new(ChanTable {
                deliver: HashMap::new(),
                undelivered: HashMap::new(),
            }),
            rank_panicked: AtomicBool::new(false),
            dead_rank: AtomicUsize::new(NO_RANK),
            ctrl: Ctrl {
                st: Mutex::new(CtrlState::default()),
                cv: Condvar::new(),
            },
            flush: FlushPoint {
                next: AtomicU64::new(0),
                seen: Mutex::new(0),
                cv: Condvar::new(),
            },
            cfg,
            shutdown: Arc::new(AtomicBool::new(false)),
            accept_thread: Mutex::new(None),
            writer_threads: Mutex::new(Vec::new()),
            me: Mutex::new(Weak::new()),
        });
        *t.me.lock() = Arc::downgrade(&t);
        {
            let mut writers = t.writer_threads.lock();
            for link in t.links.iter().flatten() {
                let (l, c) = (Arc::clone(link), cfg);
                writers.push(
                    std::thread::Builder::new()
                        .name(format!("mpisim-sock-w{}", l.peer_proc))
                        .spawn(move || link::run_writer(l, c))
                        .expect("spawn sock writer"),
                );
            }
        }
        let weak = Arc::downgrade(&t);
        let shutdown = Arc::clone(&t.shutdown);
        *t.accept_thread.lock() = Some(
            std::thread::Builder::new()
                .name("mpisim-sock-accept".into())
                .spawn(move || run_accept(weak, listener, shutdown))
                .expect("spawn sock accept"),
        );
        t
    }

    pub(crate) fn proc_of(&self, rank: usize) -> usize {
        if self.n_procs == 1 {
            0
        } else {
            rank
        }
    }

    fn hosted(&self, rank: usize) -> bool {
        self.n_procs == 1 || rank == self.my_proc
    }

    fn me(&self) -> Arc<SockTransport> {
        self.me.lock().upgrade().expect("transport alive")
    }

    /// Dial `proc`'s listener and complete the handshake (bootstrap and
    /// mesh connects; reconnects reuse [`SockTransport::reconnect`]).
    pub(crate) fn connect_to(&self, proc: usize, addr: &str) -> Result<(), String> {
        let link = self.links[proc].as_ref().expect("link exists").clone();
        *link.dial_addr.lock() = Some(addr.to_string());
        let stream = connect_retry(addr, self.cfg).map_err(|e| {
            format!(
                "connect to proc {proc} at {addr} failed after {} attempts: {e}",
                self.cfg.retries + 1
            )
        })?;
        self.handshake_connect(&link, stream)
            .map_err(|e| format!("handshake with proc {proc} at {addr} failed: {e}"))
    }

    /// Connector-side handshake on a fresh stream: send HELLO with our
    /// cumulative receive seq, await the peer's (remote links), install.
    fn handshake_connect(&self, link: &Arc<Link>, mut stream: Stream) -> std::io::Result<()> {
        let my_rx = link.st.lock().rx_seq;
        let mut hello = Vec::with_capacity(12);
        hello.extend_from_slice(&(self.my_proc as u32).to_le_bytes());
        hello.extend_from_slice(&my_rx.to_le_bytes());
        stream.write_all(&encode_frame(K_HELLO, 0, &hello))?;
        if link.self_loop {
            // the peer is this very process: its cumulative rx IS ours,
            // and the accepted end arrives through our own accept loop
            link.install_writer(stream, my_rx);
            return Ok(());
        }
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        let (kind, _, body) = read_frame(&mut stream)?;
        if kind != K_HELLO || body.len() < 12 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "peer did not answer the handshake with HELLO",
            ));
        }
        let peer_rx = u64::from_le_bytes(body[4..12].try_into().unwrap());
        stream.set_read_timeout(None)?;
        let (reader_end, gen) = link.install(stream, peer_rx)?;
        self.spawn_reader(Arc::clone(link), reader_end, gen);
        Ok(())
    }

    /// Accept-side handshake: identify the peer from its HELLO, reply
    /// with our cumulative receive seq, install both directions (or just
    /// the reading end for a loopback self-link).
    fn handle_accept(&self, mut stream: Stream) -> std::io::Result<()> {
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        let (kind, _, body) = read_frame(&mut stream)?;
        if kind != K_HELLO || body.len() < 12 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "connection did not open with HELLO",
            ));
        }
        let proc = u32::from_le_bytes(body[0..4].try_into().unwrap()) as usize;
        let peer_rx = u64::from_le_bytes(body[4..12].try_into().unwrap());
        stream.set_read_timeout(None)?;
        if proc == self.my_proc {
            let link = self.links[self.proc_of(0)]
                .as_ref()
                .expect("self-link exists")
                .clone();
            let gen = link.install_reader(&stream)?;
            self.spawn_reader(link, stream, gen);
            return Ok(());
        }
        let link = match self.links.get(proc).and_then(|l| l.as_ref()) {
            Some(l) => Arc::clone(l),
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("HELLO from unknown proc {proc}"),
                ))
            }
        };
        let my_rx = link.st.lock().rx_seq;
        let mut hello = Vec::with_capacity(12);
        hello.extend_from_slice(&(self.my_proc as u32).to_le_bytes());
        hello.extend_from_slice(&my_rx.to_le_bytes());
        stream.write_all(&encode_frame(K_HELLO, 0, &hello))?;
        let (reader_end, gen) = link.install(stream, peer_rx)?;
        self.spawn_reader(link, reader_end, gen);
        Ok(())
    }

    fn spawn_reader(&self, link: Arc<Link>, stream: Stream, gen: u64) {
        let weak = self.me.lock().clone();
        let cfg = self.cfg;
        std::thread::Builder::new()
            .name(format!("mpisim-sock-r{}", link.peer_proc))
            .spawn(move || run_reader(weak, link, stream, gen, cfg))
            .expect("spawn sock reader");
    }

    /// Connector-side reconnect loop, run by the reader that observed the
    /// break: capped exponential backoff, then permanent failure.
    fn reconnect(&self, link: Arc<Link>, addr: &str) {
        let mut last = String::from("no attempt made");
        for attempt in 0..=self.cfg.retries {
            {
                let st = link.st.lock();
                if st.dead || st.shutdown {
                    return;
                }
            }
            match connect_once(addr) {
                Ok(stream) => match self.handshake_connect(&link, stream) {
                    Ok(()) => return,
                    Err(e) => last = e.to_string(),
                },
                Err(e) => last = e.to_string(),
            }
            if attempt < self.cfg.retries {
                std::thread::sleep(Duration::from_millis(
                    (self.cfg.backoff_ms << attempt.min(16)).min(1000),
                ));
            }
        }
        link.fail(format!(
            "reconnect to proc {} at {addr} failed after {} attempts: {last}",
            link.peer_proc,
            self.cfg.retries + 1
        ));
    }

    /// Route an incoming sequenced frame to its consumer.
    fn dispatch(&self, kind: u8, body: &[u8]) {
        match kind {
            K_DATA => {
                let dst = u32::from_le_bytes(body[4..8].try_into().unwrap()) as usize;
                let arrival = f64::from_bits(u64::from_le_bytes(body[8..16].try_into().unwrap()));
                let (env, remaining) = decode_envelope(arrival, &body[16..]);
                assert_eq!(remaining, 0, "sock frames carry whole envelopes");
                let mb = &self.mailboxes[dst];
                mb.queue.lock().push_back(env);
                mb.cv.notify_all();
            }
            K_CHAN => {
                let u = |o: usize| u64::from_le_bytes(body[o..o + 8].try_into().unwrap());
                let key: ChanKey = (u(0), u(8) as usize, u(16) as usize, u(24));
                let arrival = f64::from_bits(u(32));
                let f = {
                    let mut ch = self.chans.lock();
                    match ch.deliver.get(&key) {
                        Some(f) => Some(Arc::clone(f)),
                        None => {
                            // receiver not registered yet: stash for the
                            // drain at registration time
                            ch.undelivered
                                .entry(key)
                                .or_default()
                                .push((arrival, body[40..].to_vec()));
                            None
                        }
                    }
                };
                if let Some(f) = f {
                    f(arrival, &body[40..]);
                }
            }
            K_CMD => {
                let word = u64::from_le_bytes(body[0..8].try_into().unwrap());
                self.ctrl.st.lock().cmds.push_back(word);
                self.ctrl.cv.notify_all();
            }
            K_DONE => {
                let rank = u32::from_le_bytes(body[0..4].try_into().unwrap()) as usize;
                let epoch = u64::from_le_bytes(body[4..12].try_into().unwrap());
                self.ctrl.st.lock().dones.push((rank, epoch));
                self.ctrl.cv.notify_all();
            }
            K_DEATH => {
                let rank = u32::from_le_bytes(body[0..4].try_into().unwrap()) as usize;
                self.note_rank_panic(Some(rank));
                self.ctrl.st.lock().deaths.push(rank);
                self.ctrl.cv.notify_all();
            }
            K_FLUSH => {
                let token = u64::from_le_bytes(body[0..8].try_into().unwrap());
                let mut seen = self.flush.seen.lock();
                if token > *seen {
                    *seen = token;
                }
                self.flush.cv.notify_all();
            }
            K_JOIN => {
                let rank = u32::from_le_bytes(body[0..4].try_into().unwrap()) as usize;
                let alen = u32::from_le_bytes(body[4..8].try_into().unwrap()) as usize;
                let addr = String::from_utf8_lossy(&body[8..8 + alen]).into_owned();
                self.ctrl.st.lock().joins.push((rank, addr));
                self.ctrl.cv.notify_all();
            }
            K_TABLE => {
                let n = u32::from_le_bytes(body[0..4].try_into().unwrap()) as usize;
                let mut addrs = Vec::with_capacity(n);
                let mut off = 4;
                for _ in 0..n {
                    let len = u32::from_le_bytes(body[off..off + 4].try_into().unwrap()) as usize;
                    off += 4;
                    addrs.push(String::from_utf8_lossy(&body[off..off + len]).into_owned());
                    off += len;
                }
                self.ctrl.st.lock().table = Some(addrs);
                self.ctrl.cv.notify_all();
            }
            other => unreachable!("sock fabric: unknown frame kind {other}"),
        }
    }

    /// Register the receiving side of a persistent channel and drain any
    /// payloads that raced ahead of registration.
    pub(crate) fn register_deliver(&self, key: ChanKey, f: DeliverFn) {
        let pending = {
            let mut ch = self.chans.lock();
            let pending = ch.undelivered.remove(&key).unwrap_or_default();
            ch.deliver.insert(key, Arc::clone(&f));
            pending
        };
        for (arrival, bytes) in pending {
            f(arrival, &bytes);
        }
    }

    /// The first dead link, for failure reporting.
    fn dead_link(&self) -> Option<(usize, usize, String)> {
        for link in self.links.iter().flatten() {
            let st = link.st.lock();
            if st.dead {
                let note = st
                    .dead_note
                    .clone()
                    .unwrap_or_else(|| "no reason recorded".into());
                return Some((link.peer_proc, link.blame, note));
            }
        }
        None
    }
}

impl Transport for SockTransport {
    fn mode(&self) -> PayloadMode {
        PayloadMode::Bytes
    }

    fn fabric(&self) -> &'static str {
        "sock"
    }

    fn deposit(&self, src_world: usize, dst_world: usize, env: Envelope) {
        match &self.links[self.proc_of(dst_world)] {
            Some(link) => {
                let Payload::Bytes { data, type_name } = &env.payload else {
                    unreachable!("sock deposit requires byte payloads (PayloadMode::Bytes)");
                };
                let mut body = Vec::with_capacity(16 + 32 + type_name.len() + data.len());
                body.extend_from_slice(&(src_world as u32).to_le_bytes());
                body.extend_from_slice(&(dst_world as u32).to_le_bytes());
                body.extend_from_slice(&env.arrival.to_bits().to_le_bytes());
                body.extend_from_slice(&encode_env_hdr(
                    env.ctx_id,
                    env.src,
                    env.tag,
                    type_name.len(),
                    data.len(),
                ));
                body.extend_from_slice(type_name.as_bytes());
                body.extend_from_slice(data);
                link.send_frame(K_DATA, &body);
            }
            None => {
                // own rank in a multi-process world: no wire to cross
                let mb = &self.mailboxes[dst_world];
                mb.queue.lock().push_back(env);
                mb.cv.notify_all();
            }
        }
    }

    fn match_recv(
        &self,
        global_dst: usize,
        ctx_id: u64,
        src: usize,
        tag: u64,
        stall: &dyn Fn(),
    ) -> (Envelope, usize) {
        let mb = &self.mailboxes[global_dst];
        let mut q = mb.queue.lock();
        loop {
            let searched = q.len();
            if let Some(pos) = q
                .iter()
                .position(|e| e.ctx_id == ctx_id && e.src == src && e.tag == tag)
            {
                let env = q.remove(pos).expect("position valid");
                return (env, searched);
            }
            if mb
                .cv
                .wait_for(
                    &mut q,
                    std::time::Duration::from_millis(crate::stall::stall_ms()),
                )
                .timed_out()
            {
                stall();
            }
        }
    }

    fn probe(&self, global_dst: usize, ctx_id: u64, src: usize, tag: u64) -> bool {
        let q = self.mailboxes[global_dst].queue.lock();
        q.iter()
            .any(|e| e.ctx_id == ctx_id && e.src == src && e.tag == tag)
    }

    fn wait_any(
        &self,
        global_rank: usize,
        chans: &[ChanId],
        start: usize,
        stall: &dyn Fn(),
    ) -> usize {
        for _ in 0..24 {
            if let Some(i) = WorldState::poll_any_from(chans, start) {
                return i;
            }
            std::thread::yield_now();
        }
        let ws = &self.wait_sets[global_rank];
        for c in chans {
            c.attach(ws);
        }
        let found = loop {
            let seen = ws.generation();
            if let Some(i) = WorldState::poll_any_from(chans, start) {
                break i;
            }
            ws.park_past(seen, stall);
        };
        for c in chans {
            c.detach(ws);
        }
        found
    }

    fn make_channel(
        &self,
        _key: ChanKey,
        dst_world: usize,
        _elem_bytes: usize,
        _type_name: &'static str,
        _len_hint: usize,
    ) -> ChanFabric {
        ChanFabric::Sock(SockChanWire {
            route: self.links[self.proc_of(dst_world)].clone(),
            register: self.hosted(dst_world).then(|| self.me()),
        })
    }

    fn drain_in_flight(&self) {
        if self.n_procs == 1 {
            // force everything queued ahead through the self-link first
            if let Some(link) = &self.links[0] {
                if !link.st.lock().dead {
                    let token = self.flush.next.fetch_add(1, Ordering::Relaxed) + 1;
                    link.send_frame(K_FLUSH, &token.to_le_bytes());
                    let deadline = Instant::now() + Duration::from_secs(2);
                    let mut seen = self.flush.seen.lock();
                    while *seen < token {
                        let Some(left) = deadline
                            .checked_duration_since(Instant::now())
                            .filter(|d| !d.is_zero())
                        else {
                            break; // link died mid-drain; fall through to the sweep
                        };
                        self.flush.cv.wait_for(&mut seen, left);
                    }
                }
            }
        }
        for mb in &self.mailboxes {
            mb.queue.lock().clear();
        }
        self.chans.lock().undelivered.clear();
    }

    fn note_rank_panic(&self, rank: Option<usize>) {
        if let Some(r) = rank {
            let _ =
                self.dead_rank
                    .compare_exchange(NO_RANK, r, Ordering::AcqRel, Ordering::Relaxed);
        }
        self.rank_panicked.store(true, Ordering::Release);
    }

    fn clear_rank_panic(&self) {
        // link death is permanent and NOT cleared here: a world whose
        // fabric lost a host cannot start a healthy epoch
        self.rank_panicked.store(false, Ordering::Release);
        self.dead_rank.store(NO_RANK, Ordering::Release);
    }

    fn dead_rank(&self) -> Option<usize> {
        match self.dead_rank.load(Ordering::Acquire) {
            NO_RANK => self.dead_link().map(|(_, blame, _)| blame),
            r => Some(r),
        }
    }

    fn peer_failure(&self) -> Option<String> {
        if let Some((proc, blame, note)) = self.dead_link() {
            return Some(format!(
                "sock link to proc {proc} (rank {blame}) is dead: {note}"
            ));
        }
        if !self.rank_panicked.load(Ordering::Acquire) {
            return None;
        }
        let who = match self.dead_rank() {
            Some(r) => format!(" (rank {r} died)"),
            None => String::new(),
        };
        Some(format!(
            "a peer rank panicked this epoch; abandoning blocked receive{who}"
        ))
    }

    fn sever_link(&self, peer_world: usize) {
        if let Some(link) = &self.links[self.proc_of(peer_world)] {
            link.disconnect();
        }
    }

    fn forensics(&self) -> TransportForensics {
        let links: Vec<_> = self.links.iter().flatten().map(|l| l.status()).collect();
        TransportForensics {
            fabric: "sock",
            mailbox_depths: self
                .mailboxes
                .iter()
                .map(|mb| mb.queue.try_lock().map(|q| q.len()))
                .collect(),
            outbox_depth: links.iter().map(|l| l.outbox).sum(),
            peers: Vec::new(),
            links,
        }
    }
}

impl Drop for SockTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for link in self.links.iter().flatten() {
            link.close();
        }
        for h in self.writer_threads.get_mut().drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.accept_thread.get_mut().take() {
            let _ = h.join();
        }
        if link::is_uds(&self.listener_addr) {
            let _ = std::fs::remove_file(&self.listener_addr);
        }
    }
}

/// Accept thread: poll the (non-blocking) listener, handshake each
/// arrival. Failed handshakes are dropped — a half-dialed peer retries.
fn run_accept(t: Weak<SockTransport>, listener: Listener, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::Acquire) {
        match listener.try_accept() {
            Ok(Some(stream)) => {
                let Some(t) = t.upgrade() else { return };
                let _ = t.handle_accept(stream);
            }
            _ => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Per-connection reader: decode frames, enforce the sequence discipline
/// (duplicates from replay dropped, gaps fatal), dispatch, and — when the
/// stream breaks and this side is the connector — run the reconnect loop.
fn run_reader(
    t: Weak<SockTransport>,
    link: Arc<Link>,
    mut stream: Stream,
    gen: u64,
    _cfg: RetryCfg,
) {
    loop {
        match read_frame(&mut stream) {
            Ok((kind, seq, body)) => {
                link.touch();
                if kind == K_ACK {
                    link.apply_ack(u64::from_le_bytes(body[0..8].try_into().unwrap()));
                    continue;
                }
                let fresh = {
                    let mut st = link.st.lock();
                    if seq <= st.rx_seq {
                        false // duplicate from a replay after reconnect
                    } else {
                        assert_eq!(
                            seq,
                            st.rx_seq + 1,
                            "sock link from proc {}: sequence gap (exactly-once violated)",
                            link.peer_proc
                        );
                        st.rx_seq = seq;
                        st.rx_since_ack += 1;
                        if link.self_loop {
                            // both ends share this state: ack locally
                            st.acked = st.acked.max(seq);
                            while st.replay.front().is_some_and(|(s, _)| *s <= st.acked) {
                                st.replay.pop_front();
                            }
                        } else if st.rx_since_ack >= ACK_EVERY {
                            st.ack_requested = true;
                        }
                        true
                    }
                };
                if fresh {
                    link.cv.notify_all(); // writer may owe an ack
                    let Some(t) = t.upgrade() else { return };
                    t.dispatch(kind, &body);
                }
            }
            Err(_) => {
                let dial = {
                    let st = link.st.lock();
                    if st.shutdown || st.dead || st.reader_gen != gen {
                        return; // replaced or torn down; nothing to heal
                    }
                    link.dial_addr.lock().clone()
                };
                // disconnect() also starts the passive-side loss clock;
                // with no dial address this is the passive side, and the
                // writer's window decides its fate
                link.disconnect();
                if let Some(addr) = dial {
                    let Some(t) = t.upgrade() else { return };
                    t.reconnect(link, &addr);
                }
                return;
            }
        }
    }
}
