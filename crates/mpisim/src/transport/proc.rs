//! Ranks as separate OS processes over the shm fabric.
//!
//! [`ProcWorld::launch`] is the SPMD entry point: rank 0 creates the
//! segment and re-execs the current binary once per peer rank in a hidden
//! worker mode (selected by the `MPISIM_WORKER_RANK` / `MPISIM_WORKER_SEG`
//! environment keys, with the original argv preserved so workers land in
//! the same `main` path). Every process then runs the same program; each
//! [`ProcWorld::run`] call is one epoch, sequenced by a command word in
//! the segment header and closed by an all-ranks barrier.
//!
//! Death containment mirrors PR 3's thread-pool guarantee: a rank that
//! panics raises the fabric-wide flag before dying, and rank 0's watchdog
//! thread raises it for ranks that die *without* unwinding (SIGKILL,
//! `exit`), so every peer blocked in the fabric aborts loudly on its next
//! stall probe instead of deadlocking. Clean exits after the stop command
//! are not deaths.
//!
//! The driver/server split ([`ProcWorld::epoch_job`] / [`ProcWorld::serve`])
//! exists for benchmarks: rank 0 drives many epochs over a fixed job table
//! while workers loop in `serve`, so per-iteration cost is the epoch
//! protocol plus the job itself — no process spawning on the hot path.

use super::shm::segment::{Segment, CMD_STOP};
use super::shm::ShmTransport;
use super::Transport;
use crate::ctx::RankCtx;
use crate::state::WorldState;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Environment keys of the hidden worker mode. Present in a process iff it
/// was spawned as a peer rank by a `ProcWorld` driver.
pub const ENV_WORKER_RANK: &str = "MPISIM_WORKER_RANK";
pub const ENV_WORKER_SEG: &str = "MPISIM_WORKER_SEG";

/// Test hook: `MPISIM_ATTACH_FAIL_ONCE="<rank>:<marker_path>"` makes that
/// worker rank exit before attaching, exactly once (the marker file records
/// the first death), exercising the driver's pre-attach respawn policy.
const ENV_ATTACH_FAIL_ONCE: &str = "MPISIM_ATTACH_FAIL_ONCE";

/// `MPISIM_RESPAWN_MAX`: per-rank cap on pre-attach worker respawns.
const DEFAULT_RESPAWN_MAX: u32 = 2;

fn respawn_max() -> u32 {
    std::env::var("MPISIM_RESPAWN_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_RESPAWN_MAX)
}

/// The world's wait deadline: a `deadline=` clause in `MPISIM_FAULTS`
/// overrides `MPISIM_DEADLINE_MS`.
fn env_deadline() -> Option<u64> {
    crate::transport::fault::FaultPlan::from_env()
        .and_then(|p| p.deadline())
        .or_else(crate::stall::env_deadline_ms)
}

/// Epoch command word: `(job << JOB_SHIFT) | epoch`, or [`CMD_STOP`].
const JOB_SHIFT: u32 = 48;
const EPOCH_MASK: u64 = (1 << JOB_SHIFT) - 1;

/// An SPMD world whose ranks are separate OS processes on one host,
/// communicating over the shared-memory fabric.
///
/// All ranks construct it through [`ProcWorld::launch`] and then execute
/// the same sequence of [`ProcWorld::run`] calls; results are per-rank
/// local (there is no cross-process result gather — ranks exchange what
/// they need through the fabric itself). Dropping it shuts the world
/// down: rank 0 posts the stop command and reaps its children; workers
/// wait for the stop command and exit, never returning to the caller's
/// code after the world.
pub struct ProcWorld {
    state: Arc<WorldState>,
    seg: Arc<Segment>,
    rank: usize,
    epoch: Cell<u64>,
    shutting_down: Arc<AtomicBool>,
    watchdog: Option<std::thread::JoinHandle<()>>,
}

impl ProcWorld {
    /// World rank of this process.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn n_ranks(&self) -> usize {
        self.seg.n_ranks()
    }

    /// True in worker processes (rank != 0).
    pub fn is_worker(&self) -> bool {
        self.rank != 0
    }

    /// Launch (or join) a process world of `n_ranks` ranks.
    ///
    /// In the driver process this creates the fabric segment and spawns
    /// `n_ranks - 1` copies of the current executable (same argv, worker
    /// environment keys added). In a worker process it attaches to the
    /// driver's segment instead. Either way it returns once every rank has
    /// attached. One launch per process execution: the re-exec protocol
    /// cannot nest.
    pub fn launch(n_ranks: usize) -> ProcWorld {
        static LAUNCHED: AtomicBool = AtomicBool::new(false);
        assert!(
            !LAUNCHED.swap(true, Ordering::SeqCst),
            "ProcWorld::launch called twice in one process execution"
        );
        assert!(n_ranks >= 1, "process world needs at least one rank");
        match std::env::var(ENV_WORKER_RANK) {
            Ok(r) => Self::launch_worker(n_ranks, r.parse().expect("worker rank")),
            Err(_) => Self::launch_driver(n_ranks),
        }
    }

    fn launch_worker(n_ranks: usize, rank: usize) -> ProcWorld {
        if let Ok(spec) = std::env::var(ENV_ATTACH_FAIL_ONCE) {
            if let Some((r, marker)) = spec.split_once(':') {
                if r.parse() == Ok(rank)
                    && std::fs::OpenOptions::new()
                        .write(true)
                        .create_new(true)
                        .open(marker)
                        .is_ok()
                {
                    // deterministic pre-attach death for the respawn tests
                    std::process::exit(17);
                }
            }
        }
        let seg_path = std::env::var(ENV_WORKER_SEG).expect("worker mode without segment path");
        let transport = ShmTransport::attach(&seg_path);
        let seg = Arc::clone(transport.segment());
        assert_eq!(
            seg.n_ranks(),
            n_ranks,
            "worker launched for a {n_ranks}-rank world but the segment has {}",
            seg.n_ranks()
        );
        let transport = crate::transport::fault::FaultTransport::wrap_env(
            n_ranks,
            transport as Arc<dyn Transport>,
        );
        let state = WorldState::with_transport_deadline(n_ranks, None, transport, env_deadline());
        seg.pid_slot(rank)
            .store(std::process::id(), Ordering::SeqCst);
        seg.barrier(&|| seg.check_alive()); // attach barrier
        ProcWorld {
            state,
            seg,
            rank,
            epoch: Cell::new(0),
            shutting_down: Arc::new(AtomicBool::new(false)),
            watchdog: None,
        }
    }

    fn launch_driver(n_ranks: usize) -> ProcWorld {
        let transport = ShmTransport::create(n_ranks);
        let seg = Arc::clone(transport.segment());
        let transport = crate::transport::fault::FaultTransport::wrap_env(
            n_ranks,
            transport as Arc<dyn Transport>,
        );
        let state = WorldState::with_transport_deadline(n_ranks, None, transport, env_deadline());
        seg.pid_slot(0).store(std::process::id(), Ordering::SeqCst);

        let exe = std::env::current_exe().expect("current_exe for worker re-exec");
        let spawn_worker = |rank: usize| -> std::process::Child {
            std::process::Command::new(&exe)
                .args(std::env::args_os().skip(1))
                .env(ENV_WORKER_RANK, rank.to_string())
                .env(ENV_WORKER_SEG, seg.path())
                .spawn()
                .unwrap_or_else(|e| panic!("spawn worker rank {rank}: {e}"))
        };
        let children = std::cell::RefCell::new((1..n_ranks).map(spawn_worker).collect::<Vec<_>>());
        let respawns = std::cell::RefCell::new(vec![0u32; n_ranks.saturating_sub(1)]);

        // Attach barrier with a self-healing stall probe. A worker that
        // dies BEFORE storing its pid slot is invisible to the fabric's
        // death detection (zero pid slots are skipped, and the watchdog is
        // not running yet), so the barrier would hang forever; respawn such
        // workers with a capped per-rank budget, aborting loudly past it.
        // Workers that died AFTER attaching are caught by `check_alive`'s
        // pid sweep as usual.
        seg.barrier(&|| {
            seg.check_alive();
            let mut kids = children.borrow_mut();
            let mut used = respawns.borrow_mut();
            for (i, child) in kids.iter_mut().enumerate() {
                let rank = i + 1;
                if seg.pid_slot(rank).load(Ordering::SeqCst) != 0 {
                    continue; // attached; no longer this loop's problem
                }
                if let Ok(Some(status)) = child.try_wait() {
                    assert!(
                        used[i] < respawn_max(),
                        "worker rank {rank} died before attaching ({status}) and \
                         exhausted its respawn budget of {} (MPISIM_RESPAWN_MAX)",
                        respawn_max()
                    );
                    used[i] += 1;
                    eprintln!(
                        "mpisim: worker rank {rank} exited before attaching \
                         ({status}); respawning (attempt {}/{})",
                        used[i],
                        respawn_max()
                    );
                    std::thread::sleep(std::time::Duration::from_millis(20 * used[i] as u64));
                    *child = spawn_worker(rank);
                }
            }
        });
        // every process holds a mapping now; drop the /dev/shm name so the
        // segment cannot outlive the world
        seg.unlink();

        let shutting_down = Arc::new(AtomicBool::new(false));
        let watchdog = std::thread::Builder::new()
            .name("mpisim-proc-watchdog".into())
            .spawn({
                let seg = Arc::clone(&seg);
                let shutting_down = Arc::clone(&shutting_down);
                let children = children.into_inner();
                move || Self::watchdog(seg, shutting_down, children)
            })
            .expect("spawn watchdog thread");
        ProcWorld {
            state,
            seg,
            rank: 0,
            epoch: Cell::new(0),
            shutting_down,
            watchdog: Some(watchdog),
        }
    }

    /// Rank 0's child reaper. While the world runs, a worker that exits for
    /// any reason is a death (panicking workers exit nonzero *after*
    /// raising the fabric flag themselves; this catches SIGKILL and stray
    /// `exit` calls, which leave no flag behind). After the stop command is
    /// posted, exits are expected: give each child a grace period, then
    /// kill stragglers so `drop` cannot hang.
    fn watchdog(
        seg: Arc<Segment>,
        shutting_down: Arc<AtomicBool>,
        mut children: Vec<std::process::Child>,
    ) {
        let mut live = vec![true; children.len()];
        while !shutting_down.load(Ordering::SeqCst) {
            for (i, child) in children.iter_mut().enumerate() {
                if !live[i] {
                    continue;
                }
                if let Ok(Some(status)) = child.try_wait() {
                    live[i] = false;
                    if seg.read_cmd() != CMD_STOP {
                        eprintln!(
                            "mpisim: worker rank {} (pid {}) exited mid-world ({status}); \
                             aborting the epoch",
                            i + 1,
                            child.id()
                        );
                        seg.note_rank_death(i + 1);
                    }
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        for (i, child) in children.iter_mut().enumerate() {
            if !live[i] {
                continue;
            }
            loop {
                if matches!(child.try_wait(), Ok(Some(_))) {
                    break;
                }
                if std::time::Instant::now() >= deadline {
                    eprintln!(
                        "mpisim: worker rank {} ignored the stop command; killing it",
                        i + 1
                    );
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
    }

    /// Run one SPMD epoch: every rank of the world calls `run` with the
    /// same closure (same program, same call sequence) and gets its own
    /// rank's result. Rank 0 opens the epoch by posting the command word;
    /// workers wait for it; an all-ranks barrier closes the epoch.
    ///
    /// A panic in this rank's closure raises the fabric flag (so blocked
    /// peers abort) and then propagates — from worker processes via a
    /// nonzero exit, which rank 0's watchdog also observes.
    pub fn run<F, R>(&self, f: F) -> R
    where
        F: FnOnce(&mut RankCtx) -> R,
    {
        let epoch = self.epoch.get() + 1;
        self.epoch.set(epoch);
        if self.rank == 0 {
            self.seg.post_cmd(epoch); // job index 0: the SPMD closure
        } else {
            let cmd = self.await_cmd(epoch);
            assert!(cmd.is_some(), "driver stopped before epoch {epoch}");
        }
        self.finish_epoch(catch_unwind(AssertUnwindSafe(|| {
            let mut ctx = RankCtx::new(Arc::clone(&self.state), self.rank);
            f(&mut ctx)
        })))
    }

    /// Driver side of the benchmark protocol (rank 0 only): run job `job`
    /// of the server's table as one epoch, executing `f` for rank 0's own
    /// share of the work.
    pub fn epoch_job<F, R>(&self, job: usize, f: F) -> R
    where
        F: FnOnce(&mut RankCtx) -> R,
    {
        assert_eq!(
            self.rank, 0,
            "epoch_job is the driver side; workers serve()"
        );
        assert!(
            (job as u64) < (1 << 15),
            "job index overflows the command word"
        );
        let epoch = self.epoch.get() + 1;
        self.epoch.set(epoch);
        self.seg.post_cmd(((job as u64) << JOB_SHIFT) | epoch);
        self.finish_epoch(catch_unwind(AssertUnwindSafe(|| {
            let mut ctx = RankCtx::new(Arc::clone(&self.state), self.rank);
            f(&mut ctx)
        })))
    }

    /// Server side of the benchmark protocol (workers only): loop epochs,
    /// running `jobs[job]` for each command rank 0 posts, until the stop
    /// command arrives. The caller then drops the world, which exits the
    /// process.
    pub fn serve(&self, jobs: &[&dyn Fn(&mut RankCtx)]) {
        assert!(
            self.rank != 0,
            "serve is the worker side; rank 0 drives epoch_job"
        );
        loop {
            let epoch = self.epoch.get() + 1;
            let Some(job) = self.await_cmd(epoch) else {
                return; // stop command: world is shutting down
            };
            self.epoch.set(epoch);
            let job_fn = jobs
                .get(job)
                .unwrap_or_else(|| panic!("driver posted job {job}, table has {}", jobs.len()));
            self.finish_epoch(catch_unwind(AssertUnwindSafe(|| {
                let mut ctx = RankCtx::new(Arc::clone(&self.state), self.rank);
                job_fn(&mut ctx);
            })));
        }
    }

    /// Wait for the command word to reach `epoch`; `Some(job)` when it
    /// does, `None` on the stop command. Parks with the fabric stall
    /// period, probing for peer death when nothing moves.
    fn await_cmd(&self, epoch: u64) -> Option<usize> {
        let start = std::time::Instant::now();
        loop {
            let cmd = self.seg.read_cmd();
            if cmd == CMD_STOP {
                return None;
            }
            if cmd & EPOCH_MASK == epoch {
                return Some((cmd >> JOB_SHIFT) as usize);
            }
            assert!(
                cmd & EPOCH_MASK < epoch,
                "epoch protocol desync: driver is at {}, this rank expects {epoch}",
                cmd & EPOCH_MASK
            );
            self.seg.park_cmd();
            if self.seg.read_cmd() == cmd {
                self.seg.check_alive(); // nothing moved: probe for death
                self.check_deadline(&start, "epoch-command wait");
            }
        }
    }

    /// Abort with a [`crate::StallReport`] when a blocked epoch-protocol
    /// wait outlives the world's deadline (see `MPISIM_DEADLINE_MS`).
    fn check_deadline(&self, start: &std::time::Instant, kind: &str) {
        if let Some(ms) = self.state.deadline_ms() {
            let waited = start.elapsed().as_millis() as u64;
            if waited >= ms {
                panic!(
                    "wait deadline of {ms} ms (MPISIM_DEADLINE_MS) expired after \
                     {waited} ms blocked in {kind} on rank {}\n{}",
                    self.rank,
                    self.state.stall_report()
                );
            }
        }
    }

    fn finish_epoch<R>(&self, result: std::thread::Result<R>) -> R {
        match result {
            Ok(r) => {
                let start = std::time::Instant::now();
                self.seg.barrier(&|| {
                    self.seg.check_alive();
                    self.check_deadline(&start, "epoch barrier");
                });
                r
            }
            Err(p) => {
                // raise the flag (attributed to this rank) BEFORE dying so
                // peers blocked on this rank's messages abort instead of
                // waiting forever
                self.seg.note_rank_death(self.rank);
                if self.rank != 0 {
                    eprintln!(
                        "mpisim: rank {} panicked; aborting the epoch across the world",
                        self.rank
                    );
                    std::process::exit(101);
                }
                resume_unwind(p);
            }
        }
    }
}

impl Drop for ProcWorld {
    fn drop(&mut self) {
        if self.rank == 0 {
            self.seg.post_cmd(CMD_STOP);
            self.shutting_down.store(true, Ordering::SeqCst);
            if let Some(w) = self.watchdog.take() {
                let _ = w.join();
            }
        } else {
            // hold the process alive until the stop command: rank 0's
            // watchdog and pid sweep treat an early exit as a death
            loop {
                if self.seg.read_cmd() == CMD_STOP {
                    break;
                }
                self.seg.park_cmd();
                self.seg.check_alive();
            }
            // workers never run the program past the world
            std::process::exit(0);
        }
    }
}
