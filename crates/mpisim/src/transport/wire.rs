//! Shared wire encoding of plain-send envelopes.
//!
//! Both byte fabrics — the shm mailbox rings and the socket fabric's
//! framed streams — carry the same envelope image:
//! `[ctx_id: u64][src: u64][tag: u64][name_len: u32][payload_len: u32]`
//! followed by the element type name and the payload bytes, all
//! little-endian. The arrival stamp rides outside this image (in the shm
//! ring's message header, or the socket frame's body prefix).
//!
//! The shm fabric may split one envelope across several ring frames
//! (bounded rings force chunking; see `RecvState::partial`), so
//! [`decode_envelope`] reports how many payload bytes are still
//! outstanding. A stream fabric sends the whole envelope in one frame and
//! asserts the remainder is zero.

use crate::state::{Envelope, Payload};

/// Byte length of the envelope header.
pub(crate) const ENV_HDR: usize = 32;

/// Encode the fixed header of one envelope. `data_len` is the FULL
/// payload length (even when the first frame carries only a prefix).
pub(crate) fn encode_env_hdr(
    ctx_id: u64,
    src: usize,
    tag: u64,
    name_len: usize,
    data_len: usize,
) -> [u8; ENV_HDR] {
    let mut hdr = [0u8; ENV_HDR];
    hdr[0..8].copy_from_slice(&ctx_id.to_le_bytes());
    hdr[8..16].copy_from_slice(&(src as u64).to_le_bytes());
    hdr[16..24].copy_from_slice(&tag.to_le_bytes());
    hdr[24..28].copy_from_slice(&(name_len as u32).to_le_bytes());
    hdr[28..32].copy_from_slice(&(data_len as u32).to_le_bytes());
    hdr
}

/// Parse an envelope's FIRST frame; returns the envelope (payload possibly
/// incomplete) and the byte count still to arrive as continuation frames.
pub(crate) fn decode_envelope(arrival: f64, raw: &[u8]) -> (Envelope, usize) {
    let u64_at = |o: usize| u64::from_le_bytes(raw[o..o + 8].try_into().unwrap());
    let u32_at = |o: usize| u32::from_le_bytes(raw[o..o + 4].try_into().unwrap()) as usize;
    let (name_len, payload_len) = (u32_at(24), u32_at(28));
    let got = raw.len() - ENV_HDR - name_len;
    debug_assert!(got <= payload_len);
    let mut data = Vec::with_capacity(payload_len);
    data.extend_from_slice(&raw[ENV_HDR + name_len..]);
    let env = Envelope {
        ctx_id: u64_at(0),
        src: u64_at(8) as usize,
        tag: u64_at(16),
        arrival,
        payload: Payload::Bytes {
            type_name: String::from_utf8_lossy(&raw[ENV_HDR..ENV_HDR + name_len]).into_owned(),
            data,
        },
    };
    (env, payload_len - got)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_header_roundtrips() {
        let name = "u64";
        let payload = [1u8, 2, 3, 4, 5, 6, 7, 8];
        let hdr = encode_env_hdr(7, 3, 42, name.len(), payload.len());
        let mut raw = hdr.to_vec();
        raw.extend_from_slice(name.as_bytes());
        raw.extend_from_slice(&payload);
        let (env, remaining) = decode_envelope(1.5, &raw);
        assert_eq!(remaining, 0);
        assert_eq!((env.ctx_id, env.src, env.tag), (7, 3, 42));
        assert_eq!(env.arrival, 1.5);
        let Payload::Bytes { data, type_name } = env.payload else {
            panic!("decoded payload is bytes");
        };
        assert_eq!(type_name, "u64");
        assert_eq!(data, payload);
    }

    #[test]
    fn partial_first_frame_reports_outstanding_bytes() {
        let hdr = encode_env_hdr(0, 1, 2, 2, 10);
        let mut raw = hdr.to_vec();
        raw.extend_from_slice(b"u8");
        raw.extend_from_slice(&[9u8; 4]); // 4 of 10 payload bytes
        let (_, remaining) = decode_envelope(0.0, &raw);
        assert_eq!(remaining, 6);
    }
}
