//! Transport abstraction: where a world's bytes actually move.
//!
//! `mpisim`'s matching engine, persistent channels, and completion-driven
//! lifecycle (DESIGN.md §3–§7) are all expressed against a handful of
//! seams in `state.rs`: envelope deposit / matched receive on the plain
//! mailbox path, channel registration, the `wait_any` set-park, and
//! failed-epoch draining. This module lifts those seams into a
//! [`Transport`] trait so the same `RankCtx` programs run over different
//! fabrics:
//!
//! * [`thread::ThreadTransport`] — today's in-process fabric: one mutexed
//!   mailbox per rank, typed payloads moved as `Vec<T>` behind
//!   `Box<dyn Any>`, condvar wakeups. Zero serialization.
//! * [`shm::ShmTransport`] — a cross-process shared-memory fabric: ranks
//!   may live in separate OS processes on one host, mailboxes and
//!   persistent channels are SPSC byte rings inside one `/dev/shm`
//!   segment, and parking uses process-shared futexes. Payloads are
//!   serialized to bytes at the send boundary (plain-old-data element
//!   types only).
//!
//! [`proc::ProcWorld`] runs ranks as re-exec'd worker processes over the
//! shm fabric with the same closure-per-epoch protocol as
//! [`crate::WorldPool`].

pub mod fault;
pub mod proc;
pub mod shm;
pub mod sock;
pub(crate) mod thread;
pub(crate) mod wire;

use crate::stall::{LinkStatus, PeerStatus};
use crate::state::{ChanId, ChanKey, Envelope};
pub(crate) use shm::ring::ShmChanRaw;
pub(crate) use sock::SockChanWire;

/// How [`crate::RankCtx`] must package plain-send payloads for a transport.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum PayloadMode {
    /// In-process: payloads travel as typed `Vec<T>` behind `Box<dyn Any>`.
    Typed,
    /// Cross-process: payloads are serialized to raw bytes at the send
    /// boundary (plain-old-data element types only).
    Bytes,
}

/// The transport operations a [`fault::FaultTransport`] counts and may
/// perturb. `Deposit`/`MatchRecv`/`WaitAny` are intercepted directly by
/// the wrapper; `ChanPush`/`ChanPop` cover persistent-channel traffic,
/// which bypasses the trait (channels are used directly once created) and
/// therefore reports through [`Transport::inject`] from the call sites.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum FaultOp {
    Deposit,
    MatchRecv,
    WaitAny,
    ChanPush,
    ChanPop,
}

/// Best-effort transport snapshot folded into a
/// [`crate::StallReport`]. Depths are `None` where the owning lock was
/// held by a blocked rank (sampling must never deadlock the reporter).
pub(crate) struct TransportForensics {
    /// Which fabric produced the snapshot (`"thread"` / `"shm"` / `"sock"`).
    pub fabric: &'static str,
    pub mailbox_depths: Vec<Option<usize>>,
    pub outbox_depth: usize,
    pub peers: Vec<PeerStatus>,
    /// Per-peer link state (socket fabric only; empty elsewhere).
    pub links: Vec<LinkStatus>,
}

/// Where a persistent channel's wire buffers live, decided by the fabric
/// at registration time ([`Transport::make_channel`]).
pub(crate) enum ChanFabric {
    /// In-process typed channel; no wire buffers at all.
    Local,
    /// SPSC byte ring inside the shared segment.
    Shm(ShmChanRaw),
    /// Socket fabric: a local typed queue on the receiving side plus a
    /// framed-stream route on the sending side (either may be absent,
    /// depending on which side of the channel this process hosts).
    Sock(SockChanWire),
}

/// The fabric a [`crate::state::WorldState`] moves bytes over.
///
/// Object-safe: the world holds an `Arc<dyn Transport>`. Diagnostic
/// context (peer-death checks, the mixed plain/persistent-traffic probes)
/// stays in `WorldState`, which passes it down as the `stall` closure —
/// transports only decide *when* a blocked operation should re-probe
/// (the `MPISIM_STALL_MS` park timeout, default 50 ms), not *what* the
/// probe asserts.
pub(crate) trait Transport: Send + Sync {
    /// Payload packaging this transport requires from senders.
    fn mode(&self) -> PayloadMode;

    /// Which fabric this is (`"thread"` / `"shm"` / `"sock"`), matching
    /// the [`TransportForensics::fabric`] string. Exposed through
    /// [`crate::RankCtx::fabric`] so protocol-selection caches can key
    /// measured timings by the fabric that produced them.
    fn fabric(&self) -> &'static str;

    /// Deposit an envelope in `dst_world`'s mailbox and wake any waiter.
    /// `src_world` identifies the producing rank — the shm fabric routes
    /// each (src, dst) pair over its own single-producer ring.
    fn deposit(&self, src_world: usize, dst_world: usize, env: Envelope);

    /// Blocking matched receive for `global_dst`: first envelope with the
    /// given (ctx, src, tag), plus the queue length that was searched (for
    /// queue-cost charging). Invokes `stall` periodically while blocked.
    fn match_recv(
        &self,
        global_dst: usize,
        ctx_id: u64,
        src: usize,
        tag: u64,
        stall: &dyn Fn(),
    ) -> (Envelope, usize);

    /// Non-blocking probe: would a matched receive complete immediately?
    fn probe(&self, global_dst: usize, ctx_id: u64, src: usize, tag: u64) -> bool;

    /// Park `global_rank` until **some** channel of the set has a message,
    /// returning its index. `start` rotates the scan origin (fairness —
    /// see [`crate::state::WorldState::poll_any`]); `stall` is invoked
    /// periodically while blocked.
    fn wait_any(
        &self,
        global_rank: usize,
        chans: &[ChanId],
        start: usize,
        stall: &dyn Fn(),
    ) -> usize;

    /// Fabric hook for persistent-channel creation: where the channel's
    /// wire buffers live. `dst_world` is the receiving side's world rank
    /// (byte fabrics route the channel over the right peer link);
    /// `len_hint` is the registered per-message element count (0 when
    /// unknown) and sizes preallocated buffers.
    fn make_channel(
        &self,
        key: ChanKey,
        dst_world: usize,
        elem_bytes: usize,
        type_name: &'static str,
        len_hint: usize,
    ) -> ChanFabric;

    /// Discard transport-held in-flight traffic (mailbox envelopes / shm
    /// ring contents). Registry-held channel payloads are drained by the
    /// world via the per-channel drain hooks; both passes together give
    /// the failed-epoch drain guarantee. Quiescent use only: no rank may
    /// be moving traffic concurrently.
    fn drain_in_flight(&self);

    /// Record that a rank of the current epoch panicked (or died).
    /// `Some(rank)` names the victim (first writer wins) so stall
    /// forensics and peer-death aborts can report *who* died; `None`
    /// raises the flag without attribution.
    fn note_rank_panic(&self, rank: Option<usize>);

    /// Clear the panic marker (and any recorded dead rank) at the start
    /// of a fresh epoch.
    fn clear_rank_panic(&self);

    /// The rank recorded via [`Transport::note_rank_panic`], if any.
    fn dead_rank(&self) -> Option<usize>;

    /// If a peer rank died this epoch, the abort message describing the
    /// failure; `None` while all peers are healthy. May have side
    /// effects (the shm fabric records a newly-observed pid death).
    fn peer_failure(&self) -> Option<String>;

    /// Fault-injection hook for operations that bypass the trait
    /// (persistent-channel push/pop). A bare fabric ignores it; a
    /// [`fault::FaultTransport`] counts the op against `rank`'s schedule
    /// and may delay or kill here.
    fn inject(&self, _rank: usize, _op: FaultOp) {}

    /// Sever the connection to `peer_world`'s host mid-epoch (the
    /// `drop=<permille>` fault). Only the socket fabric has connections to
    /// sever; everywhere else this is a no-op. The severed link must heal
    /// itself (reconnect-with-resume) or degrade to a loud peer-death.
    fn sever_link(&self, _peer_world: usize) {}

    /// Snapshot queue depths and peer liveness for a stall report.
    /// Must not block: sample with `try_lock` and report `None` where a
    /// lock is contended.
    fn forensics(&self) -> TransportForensics;
}

/// The shm fabric moves payloads as raw bytes: element types must be
/// plain-old-data. `Clone + Send + 'static` (the [`crate::Elem`] bound)
/// cannot express that, so the gate is a runtime assert at the first
/// boundary crossing — channel creation or plain-send serialization.
pub(crate) fn assert_pod<T>(context: &str) {
    assert!(
        !std::mem::needs_drop::<T>(),
        "{context}: element type {} owns heap memory and cannot cross the \
         shared-memory transport as raw bytes (use plain-old-data elements)",
        std::any::type_name::<T>(),
    );
    assert!(
        std::mem::size_of::<T>() > 0,
        "{context}: zero-sized element type {} has no byte representation \
         on the shared-memory transport",
        std::any::type_name::<T>(),
    );
}

/// Append the concatenation of two byte slices (a possibly-wrapped ring
/// message) to a typed buffer. Sound only for plain-old-data `T`
/// ([`assert_pod`] — enforced at every shm boundary).
pub(crate) fn vec_extend_bytes<T>(buf: &mut Vec<T>, a: &[u8], b: &[u8]) {
    let sz = std::mem::size_of::<T>();
    let total = a.len() + b.len();
    assert_eq!(
        total % sz,
        0,
        "shm payload of {total} bytes is not a whole number of {} elements",
        std::any::type_name::<T>(),
    );
    let add = total / sz;
    buf.reserve(add);
    unsafe {
        let dst = (buf.as_mut_ptr() as *mut u8).add(buf.len() * sz);
        std::ptr::copy_nonoverlapping(a.as_ptr(), dst, a.len());
        std::ptr::copy_nonoverlapping(b.as_ptr(), dst.add(a.len()), b.len());
        buf.set_len(buf.len() + add);
    }
}

/// View a typed slice as raw bytes (the shm send boundary). Sound only
/// for plain-old-data `T`.
pub(crate) fn bytes_of<T>(data: &[T]) -> &[u8] {
    unsafe { std::slice::from_raw_parts(data.as_ptr() as *const u8, std::mem::size_of_val(data)) }
}
