//! `mpisim` — an in-process simulated MPI runtime.
//!
//! The paper's algorithms are expressed entirely in MPI semantics:
//! point-to-point messages, persistent requests
//! (`MPI_Send_init`/`MPI_Recv_init`/`MPI_Start`/`MPI_Wait`), collectives, and
//! distributed-graph topology communicators
//! (`MPI_Dist_graph_create_adjacent`). This crate implements those semantics
//! over OS threads so that every protocol in the `mpi-advance` crate performs
//! *real* data movement and can be validated for correctness.
//!
//! Each rank is a thread running the same SPMD closure with a [`RankCtx`]
//! handle. Message matching follows MPI rules: envelopes carry
//! `(communicator context, source, tag)` and are non-overtaking per
//! (source, destination, tag, communicator).
//!
//! # Virtual time
//!
//! When launched with [`World::run_modeled`], every rank carries a virtual
//! clock driven by a [`perfmodel::CostModel`]: a send stamps the envelope
//! with `departure + msg_time(class, bytes)`; the matching receive advances
//! the receiver's clock to at least that arrival time, plus queue-search
//! overhead. This turns the thread-backed execution into a conservative
//! distributed simulation whose per-rank clocks reflect the modeled cost of
//! the communication actually performed.
//!
//! # Example
//!
//! ```
//! use mpisim::World;
//!
//! let results = World::run(4, |ctx| {
//!     let comm = ctx.comm_world();
//!     let right = (ctx.rank() + 1) % ctx.size();
//!     let left = (ctx.rank() + ctx.size() - 1) % ctx.size();
//!     ctx.send(&comm, right, 7, &[ctx.rank() as u64]);
//!     let got: Vec<u64> = ctx.recv(&comm, left, 7);
//!     got[0]
//! });
//! assert_eq!(results, vec![3, 0, 1, 2]);
//! ```

pub mod collectives;
pub mod comm;
pub mod ctx;
pub mod elem;
pub mod nonblocking;
pub mod partitioned;
pub mod persistent;
pub mod runtime;
pub mod stall;
pub mod state;
pub mod topology;
pub mod transport;

pub use nonblocking::IrecvReq;
pub use partitioned::{PrecvReq, PsendReq};

pub use comm::Comm;
pub use ctx::RankCtx;
pub use elem::Elem;
pub use persistent::{RecvChan, RecvReq, Request, SendChan, SendReq, SharedBuf};
pub use runtime::{EpochError, World, WorldPool};
pub use stall::{LinkStatus, PeerStatus, RankWait, StallReport};
pub use state::{ChanId, ChanRegistrar};
pub use topology::{DistGraphComm, GraphCreateStrategy};
pub use transport::fault::FaultPlan;
pub use transport::proc::ProcWorld;
pub use transport::sock::world::SockWorld;
