//! Collective operations built over point-to-point messages.
//!
//! Every collective draws a fresh tag from the communicator's collective
//! sequence, so back-to-back collectives never cross-match. All members must
//! call collectives in the same order (MPI semantics).

use crate::comm::Comm;
use crate::ctx::RankCtx;
use crate::elem::Elem;

/// Element-wise combining operator used by reductions: `acc ⟵ op(acc, in)`.
pub type ReduceOp<T> = fn(&mut T, &T);

/// Sum for numeric reductions.
pub fn op_sum_f64(acc: &mut f64, x: &f64) {
    *acc += *x;
}

/// Sum for counters.
pub fn op_sum_u64(acc: &mut u64, x: &u64) {
    *acc += *x;
}

/// Max for numeric reductions.
pub fn op_max_f64(acc: &mut f64, x: &f64) {
    if *x > *acc {
        *acc = *x;
    }
}

/// Max for counters.
pub fn op_max_u64(acc: &mut u64, x: &u64) {
    if *x > *acc {
        *acc = *x;
    }
}

impl RankCtx {
    /// `MPI_Barrier`: dissemination algorithm, ⌈log₂ P⌉ rounds.
    pub fn barrier(&mut self, comm: &Comm) {
        let tag = comm.next_coll_tag();
        let n = comm.size();
        if n == 1 {
            return;
        }
        let me = comm.rank();
        let mut dist = 1;
        while dist < n {
            let to = (me + dist) % n;
            let from = (me + n - dist) % n;
            self.send_internal::<u8>(comm, to, tag, &[]);
            let _: Vec<u8> = self.recv_internal(comm, from, tag);
            dist <<= 1;
        }
    }

    /// `MPI_Bcast`: binomial tree from `root`. On non-roots, `buf` is
    /// replaced with the broadcast data.
    pub fn bcast<T: Elem>(&mut self, comm: &Comm, root: usize, buf: &mut Vec<T>) {
        let tag = comm.next_coll_tag();
        let n = comm.size();
        if n == 1 {
            return;
        }
        // Rotate so the root is virtual rank 0.
        let vrank = (comm.rank() + n - root) % n;
        if vrank != 0 {
            // Receive from parent: clear the highest set bit.
            let parent_v = vrank & (vrank - 1);
            let parent = (parent_v + root) % n;
            *buf = self.recv_internal(comm, parent, tag);
        }
        // Forward to children: set bits above the highest set bit of vrank.
        let lowest = if vrank == 0 {
            n.next_power_of_two()
        } else {
            vrank & vrank.wrapping_neg()
        };
        let mut bit = 1;
        while bit < lowest && vrank + bit < n {
            let child = (vrank + bit + root) % n;
            self.send_internal(comm, child, tag, buf);
            bit <<= 1;
        }
    }

    /// `MPI_Reduce` with an element-wise operator; `root` receives the
    /// combined vector, other ranks receive `None`.
    pub fn reduce<T: Elem>(
        &mut self,
        comm: &Comm,
        root: usize,
        data: &[T],
        op: ReduceOp<T>,
    ) -> Option<Vec<T>> {
        let tag = comm.next_coll_tag();
        let n = comm.size();
        let vrank = (comm.rank() + n - root) % n;
        let mut acc: Vec<T> = data.to_vec();
        // Binomial tree combine toward virtual rank 0.
        let mut bit = 1;
        while bit < n {
            if vrank & bit != 0 {
                let parent = ((vrank ^ bit) + root) % n;
                self.send_internal(comm, parent, tag, &acc);
                return None;
            }
            if vrank + bit < n {
                let child = (vrank + bit + root) % n;
                let other: Vec<T> = self.recv_internal(comm, child, tag);
                assert_eq!(other.len(), acc.len(), "reduce length mismatch");
                for (a, b) in acc.iter_mut().zip(other.iter()) {
                    op(a, b);
                }
            }
            bit <<= 1;
        }
        Some(acc)
    }

    /// `MPI_Allreduce` (reduce to rank 0, then broadcast).
    pub fn allreduce<T: Elem>(&mut self, comm: &Comm, data: &[T], op: ReduceOp<T>) -> Vec<T> {
        let mut out = self.reduce(comm, 0, data, op).unwrap_or_default();
        self.bcast(comm, 0, &mut out);
        out
    }

    /// `MPI_Gatherv` to `root`: returns `(concatenated, counts)` on the
    /// root, `None` elsewhere. Contributions may have different lengths.
    pub fn gatherv<T: Elem>(
        &mut self,
        comm: &Comm,
        root: usize,
        mine: &[T],
    ) -> Option<(Vec<T>, Vec<usize>)> {
        let tag = comm.next_coll_tag();
        let n = comm.size();
        if comm.rank() == root {
            let mut counts = vec![0usize; n];
            let mut parts: Vec<Vec<T>> = (0..n).map(|_| Vec::new()).collect();
            parts[root] = mine.to_vec();
            counts[root] = mine.len();
            for r in 0..n {
                if r == root {
                    continue;
                }
                let v: Vec<T> = self.recv_internal(comm, r, tag);
                counts[r] = v.len();
                parts[r] = v;
            }
            let mut all = Vec::with_capacity(counts.iter().sum());
            for p in parts {
                all.extend(p);
            }
            Some((all, counts))
        } else {
            self.send_internal(comm, root, tag, mine);
            None
        }
    }

    /// `MPI_Allgatherv`: every rank receives `(concatenated, counts)` in
    /// rank order.
    pub fn allgatherv<T: Elem>(&mut self, comm: &Comm, mine: &[T]) -> (Vec<T>, Vec<usize>) {
        let gathered = self.gatherv(comm, 0, mine);
        let (mut all, mut counts) = match gathered {
            Some((a, c)) => (a, c),
            None => (Vec::new(), Vec::new()),
        };
        self.bcast(comm, 0, &mut all);
        let mut counts_u64: Vec<u64> = counts.iter().map(|&c| c as u64).collect();
        self.bcast(comm, 0, &mut counts_u64);
        counts = counts_u64.iter().map(|&c| c as usize).collect();
        (all, counts)
    }

    /// `MPI_Allgather` of fixed-size contributions.
    pub fn allgather<T: Elem>(&mut self, comm: &Comm, mine: &[T]) -> Vec<T> {
        let (all, counts) = self.allgatherv(comm, mine);
        debug_assert!(counts.iter().all(|&c| c == mine.len()));
        all
    }

    /// `MPI_Alltoallv`: `send[i]` goes to communicator rank `i`; returns the
    /// vector received from each rank.
    pub fn alltoallv<T: Elem>(&mut self, comm: &Comm, send: &[Vec<T>]) -> Vec<Vec<T>> {
        let tag = comm.next_coll_tag();
        let n = comm.size();
        assert_eq!(send.len(), n, "alltoallv needs one send list per rank");
        for (dst, data) in send.iter().enumerate() {
            self.send_internal(comm, dst, tag, data);
        }
        (0..n)
            .map(|src| self.recv_internal(comm, src, tag))
            .collect()
    }

    /// `MPI_Scan` (inclusive prefix reduction in rank order).
    pub fn scan<T: Elem>(&mut self, comm: &Comm, data: &[T], op: ReduceOp<T>) -> Vec<T> {
        let tag = comm.next_coll_tag();
        let me = comm.rank();
        let mut acc = data.to_vec();
        if me > 0 {
            let prev: Vec<T> = self.recv_internal(comm, me - 1, tag);
            assert_eq!(prev.len(), acc.len(), "scan length mismatch");
            for (a, b) in acc.iter_mut().zip(prev.iter()) {
                // inclusive scan: acc = op(prefix, mine)
                let mine = a.clone();
                *a = b.clone();
                op(a, &mine);
            }
        }
        if me + 1 < comm.size() {
            self.send_internal(comm, me + 1, tag, &acc);
        }
        acc
    }

    /// Exclusive prefix sum of a single `u64` (common for offsets); rank 0
    /// gets 0.
    pub fn exscan_sum(&mut self, comm: &Comm, value: u64) -> u64 {
        let inclusive = self.scan(comm, &[value], op_sum_u64)[0];
        inclusive - value
    }

    /// `MPI_Gather` of fixed-size contributions: root receives them
    /// concatenated in rank order, others get `None`.
    pub fn gather<T: Elem>(&mut self, comm: &Comm, root: usize, mine: &[T]) -> Option<Vec<T>> {
        let len = mine.len();
        self.gatherv(comm, root, mine).map(|(all, counts)| {
            debug_assert!(counts.iter().all(|&c| c == len));
            all
        })
    }

    /// `MPI_Scatterv`: root distributes `parts[i]` to communicator rank
    /// `i`; every rank returns its part.
    pub fn scatterv<T: Elem>(
        &mut self,
        comm: &Comm,
        root: usize,
        parts: Option<&[Vec<T>]>,
    ) -> Vec<T> {
        let tag = comm.next_coll_tag();
        let n = comm.size();
        if comm.rank() == root {
            let parts = parts.expect("root must supply the parts");
            assert_eq!(parts.len(), n, "one part per rank");
            for (r, p) in parts.iter().enumerate() {
                if r != root {
                    self.send_internal(comm, r, tag, p);
                }
            }
            parts[root].clone()
        } else {
            assert!(parts.is_none(), "non-roots pass None");
            self.recv_internal(comm, root, tag)
        }
    }

    /// `MPI_Scatter` of equal chunks: root supplies `n · chunk` elements.
    pub fn scatter<T: Elem>(
        &mut self,
        comm: &Comm,
        root: usize,
        data: Option<&[T]>,
        chunk: usize,
    ) -> Vec<T> {
        let parts: Option<Vec<Vec<T>>> = data.map(|d| {
            assert_eq!(d.len(), comm.size() * chunk, "scatter data size mismatch");
            d.chunks(chunk).map(<[T]>::to_vec).collect()
        });
        self.scatterv(comm, root, parts.as_deref())
    }

    /// `MPI_Reduce_scatter_block`: element-wise reduce `data` (length
    /// `n · chunk`) across all ranks, then scatter equal chunks; rank `r`
    /// receives elements `r·chunk .. (r+1)·chunk` of the reduction.
    pub fn reduce_scatter_block<T: Elem>(
        &mut self,
        comm: &Comm,
        data: &[T],
        chunk: usize,
        op: ReduceOp<T>,
    ) -> Vec<T> {
        assert_eq!(
            data.len(),
            comm.size() * chunk,
            "reduce_scatter data size mismatch"
        );
        let reduced = self.reduce(comm, 0, data, op);
        self.scatter(comm, 0, reduced.as_deref(), chunk)
    }

    /// `MPI_Sendrecv`: exchange with two (possibly different) partners in
    /// one deadlock-free call.
    pub fn sendrecv<T: Elem>(
        &mut self,
        comm: &Comm,
        dst: usize,
        send: &[T],
        src: usize,
        tag: u64,
    ) -> Vec<T> {
        self.send(comm, dst, tag, send);
        self.recv(comm, src, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::World;

    #[test]
    fn barrier_completes_all_sizes() {
        for n in [1, 2, 3, 5, 8, 13] {
            World::run(n, |ctx| {
                let comm = ctx.comm_world();
                for _ in 0..3 {
                    ctx.barrier(&comm);
                }
            });
        }
    }

    #[test]
    fn bcast_all_roots_all_sizes() {
        for n in [1, 2, 3, 6, 9] {
            for root in 0..n {
                let out = World::run(n, move |ctx| {
                    let comm = ctx.comm_world();
                    let mut buf = if ctx.rank() == root {
                        vec![7u32, 8, 9]
                    } else {
                        Vec::new()
                    };
                    ctx.bcast(&comm, root, &mut buf);
                    buf
                });
                assert!(out.iter().all(|v| *v == vec![7, 8, 9]), "n={n} root={root}");
            }
        }
    }

    #[test]
    fn reduce_sum_every_root() {
        for n in [1, 2, 4, 7] {
            for root in 0..n {
                let out = World::run(n, move |ctx| {
                    let comm = ctx.comm_world();
                    ctx.reduce(&comm, root, &[ctx.rank() as u64, 1], op_sum_u64)
                });
                let expect_sum = (n as u64 * (n as u64 - 1)) / 2;
                for (r, res) in out.iter().enumerate() {
                    if r == root {
                        assert_eq!(res.as_ref().unwrap(), &vec![expect_sum, n as u64]);
                    } else {
                        assert!(res.is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_max() {
        let out = World::run(6, |ctx| {
            let comm = ctx.comm_world();
            ctx.allreduce(&comm, &[(ctx.rank() as u64 * 37) % 11], op_max_u64)
        });
        let expect = (0..6u64).map(|r| (r * 37) % 11).max().unwrap();
        assert!(out.iter().all(|v| v[0] == expect));
    }

    #[test]
    fn allgatherv_variable_lengths() {
        let out = World::run(4, |ctx| {
            let comm = ctx.comm_world();
            let mine: Vec<u32> = (0..ctx.rank() as u32).collect();
            ctx.allgatherv(&comm, &mine)
        });
        let expect_data = vec![0u32, 0, 1, 0, 1, 2];
        let expect_counts = vec![0usize, 1, 2, 3];
        for (all, counts) in out {
            assert_eq!(all, expect_data);
            assert_eq!(counts, expect_counts);
        }
    }

    #[test]
    fn alltoallv_transposes() {
        let out = World::run(3, |ctx| {
            let comm = ctx.comm_world();
            // rank r sends [r*10 + d] to rank d
            let send: Vec<Vec<u32>> = (0..3)
                .map(|d| vec![ctx.rank() as u32 * 10 + d as u32])
                .collect();
            ctx.alltoallv(&comm, &send)
        });
        for (d, recvd) in out.iter().enumerate() {
            for (s, v) in recvd.iter().enumerate() {
                assert_eq!(v, &vec![(s * 10 + d) as u32]);
            }
        }
    }

    #[test]
    fn scan_prefix_sums() {
        let out = World::run(5, |ctx| {
            let comm = ctx.comm_world();
            ctx.scan(&comm, &[1u64, ctx.rank() as u64], op_sum_u64)
        });
        for (r, v) in out.iter().enumerate() {
            assert_eq!(v[0], r as u64 + 1);
            assert_eq!(v[1], (0..=r as u64).sum::<u64>());
        }
    }

    #[test]
    fn exscan_offsets() {
        let out = World::run(4, |ctx| {
            let comm = ctx.comm_world();
            ctx.exscan_sum(&comm, (ctx.rank() as u64 + 1) * 10)
        });
        assert_eq!(out, vec![0, 10, 30, 60]);
    }

    #[test]
    fn gather_concatenates_in_rank_order() {
        let out = World::run(5, |ctx| {
            let comm = ctx.comm_world();
            ctx.gather(&comm, 2, &[ctx.rank() as u32, 99])
        });
        for (r, res) in out.iter().enumerate() {
            if r == 2 {
                assert_eq!(
                    res.as_ref().unwrap(),
                    &vec![0, 99, 1, 99, 2, 99, 3, 99, 4, 99]
                );
            } else {
                assert!(res.is_none());
            }
        }
    }

    #[test]
    fn scatterv_distributes_parts() {
        let out = World::run(4, |ctx| {
            let comm = ctx.comm_world();
            let parts: Option<Vec<Vec<u32>>> =
                (ctx.rank() == 1).then(|| (0..4).map(|r| vec![r as u32; r + 1]).collect());
            ctx.scatterv(&comm, 1, parts.as_deref())
        });
        for (r, got) in out.iter().enumerate() {
            assert_eq!(got, &vec![r as u32; r + 1]);
        }
    }

    #[test]
    fn scatter_equal_chunks_all_roots() {
        for root in 0..3 {
            let out = World::run(3, move |ctx| {
                let comm = ctx.comm_world();
                let data: Option<Vec<u64>> = (ctx.rank() == root).then(|| (0..6).collect());
                ctx.scatter(&comm, root, data.as_deref(), 2)
            });
            for (r, got) in out.iter().enumerate() {
                assert_eq!(got, &vec![2 * r as u64, 2 * r as u64 + 1]);
            }
        }
    }

    #[test]
    fn reduce_scatter_block_sums_and_splits() {
        let out = World::run(3, |ctx| {
            let comm = ctx.comm_world();
            // every rank contributes [r, r, r, r, r, r]
            let data = vec![ctx.rank() as u64; 6];
            ctx.reduce_scatter_block(&comm, &data, 2, op_sum_u64)
        });
        // element-wise sum = 0+1+2 = 3 everywhere; each rank gets 2 of them
        for got in out {
            assert_eq!(got, vec![3, 3]);
        }
    }

    #[test]
    fn sendrecv_ring_shift() {
        let out = World::run(5, |ctx| {
            let comm = ctx.comm_world();
            let n = ctx.size();
            let right = (ctx.rank() + 1) % n;
            let left = (ctx.rank() + n - 1) % n;
            ctx.sendrecv(&comm, right, &[ctx.rank() as u64], left, 4)
        });
        assert_eq!(
            out.iter().map(|v| v[0]).collect::<Vec<_>>(),
            vec![4, 0, 1, 2, 3]
        );
    }

    #[test]
    fn consecutive_collectives_do_not_cross_match() {
        let out = World::run(4, |ctx| {
            let comm = ctx.comm_world();
            let a = ctx.allreduce(&comm, &[1u64], op_sum_u64);
            let b = ctx.allreduce(&comm, &[10u64], op_sum_u64);
            ctx.barrier(&comm);
            let c = ctx.allgather(&comm, &[ctx.rank() as u64]);
            (a[0], b[0], c)
        });
        for (a, b, c) in out {
            assert_eq!(a, 4);
            assert_eq!(b, 40);
            assert_eq!(c, vec![0, 1, 2, 3]);
        }
    }
}
