//! Shared world state: mailboxes and the matching engine.

use locality::Topology;
use parking_lot::{Condvar, Mutex};
use perfmodel::CostModel;
use std::any::Any;
use std::collections::VecDeque;
use std::sync::Arc;

/// A message in flight.
pub(crate) struct Envelope {
    /// Communicator context the message belongs to.
    pub ctx_id: u64,
    /// Source rank *within that communicator*.
    pub src: usize,
    pub tag: u64,
    /// Modeled arrival time at the destination (0 when unmodeled).
    pub arrival: f64,
    /// `Vec<T>` behind a type-erased box.
    pub payload: Box<dyn Any + Send>,
    /// Human-readable element type, for mismatch diagnostics.
    pub type_name: &'static str,
}

/// Unexpected-message queue of one rank.
#[derive(Default)]
pub(crate) struct Mailbox {
    pub queue: Mutex<VecDeque<Envelope>>,
    pub cv: Condvar,
}

/// Modeled-time configuration shared by all ranks.
pub(crate) struct ModelCtx {
    pub model: Arc<dyn CostModel>,
    pub topo: Topology,
}

/// State shared by every rank of a world.
pub(crate) struct WorldState {
    pub n_ranks: usize,
    pub mailboxes: Vec<Mailbox>,
    pub model: Option<ModelCtx>,
}

impl WorldState {
    pub fn new(n_ranks: usize, model: Option<ModelCtx>) -> Arc<Self> {
        assert!(n_ranks > 0);
        if let Some(m) = &model {
            assert_eq!(
                m.topo.n_ranks(),
                n_ranks,
                "topology rank count must match world size"
            );
        }
        let mailboxes = (0..n_ranks).map(|_| Mailbox::default()).collect();
        Arc::new(Self {
            n_ranks,
            mailboxes,
            model,
        })
    }

    /// Deposit an envelope in `global_dst`'s mailbox and wake any waiter.
    pub fn deposit(&self, global_dst: usize, env: Envelope) {
        let mb = &self.mailboxes[global_dst];
        let mut q = mb.queue.lock();
        q.push_back(env);
        mb.cv.notify_all();
    }

    /// Blocking matched receive for `global_dst`: first envelope with the
    /// given (ctx, src, tag). Returns the envelope and the queue length that
    /// was searched (for queue-cost charging).
    pub fn match_recv(
        &self,
        global_dst: usize,
        ctx_id: u64,
        src: usize,
        tag: u64,
    ) -> (Envelope, usize) {
        let mb = &self.mailboxes[global_dst];
        let mut q = mb.queue.lock();
        loop {
            let searched = q.len();
            if let Some(pos) = q
                .iter()
                .position(|e| e.ctx_id == ctx_id && e.src == src && e.tag == tag)
            {
                let env = q.remove(pos).expect("position valid");
                return (env, searched);
            }
            mb.cv.wait(&mut q);
        }
    }

    /// Non-blocking probe: would a matched receive complete immediately?
    pub fn probe(&self, global_dst: usize, ctx_id: u64, src: usize, tag: u64) -> bool {
        let q = self.mailboxes[global_dst].queue.lock();
        q.iter()
            .any(|e| e.ctx_id == ctx_id && e.src == src && e.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(ctx_id: u64, src: usize, tag: u64, val: u32) -> Envelope {
        Envelope {
            ctx_id,
            src,
            tag,
            arrival: 0.0,
            payload: Box::new(vec![val]),
            type_name: "u32",
        }
    }

    #[test]
    fn deposit_then_match() {
        let w = WorldState::new(2, None);
        w.deposit(1, env(0, 0, 5, 42));
        let (got, searched) = w.match_recv(1, 0, 0, 5);
        assert_eq!(searched, 1);
        let v = got.payload.downcast::<Vec<u32>>().unwrap();
        assert_eq!(*v, vec![42]);
    }

    #[test]
    fn matching_respects_tag_and_ctx() {
        let w = WorldState::new(1, None);
        w.deposit(0, env(0, 0, 1, 10));
        w.deposit(0, env(1, 0, 2, 20));
        w.deposit(0, env(0, 0, 2, 30));
        // match ctx 0 / tag 2 skips both earlier non-matching envelopes
        let (got, _) = w.match_recv(0, 0, 0, 2);
        let v = got.payload.downcast::<Vec<u32>>().unwrap();
        assert_eq!(*v, vec![30]);
        assert!(w.probe(0, 0, 0, 1));
        assert!(w.probe(0, 1, 0, 2));
        assert!(!w.probe(0, 0, 0, 2));
    }

    #[test]
    fn non_overtaking_same_signature() {
        let w = WorldState::new(1, None);
        w.deposit(0, env(0, 3, 9, 1));
        w.deposit(0, env(0, 3, 9, 2));
        let (a, _) = w.match_recv(0, 0, 3, 9);
        let (b, _) = w.match_recv(0, 0, 3, 9);
        assert_eq!(*a.payload.downcast::<Vec<u32>>().unwrap(), vec![1]);
        assert_eq!(*b.payload.downcast::<Vec<u32>>().unwrap(), vec![2]);
    }

    #[test]
    fn blocking_recv_wakes_on_deposit() {
        let w = WorldState::new(1, None);
        let w2 = Arc::clone(&w);
        let t = std::thread::spawn(move || {
            let (env, _) = w2.match_recv(0, 0, 0, 7);
            *env.payload.downcast::<Vec<u32>>().unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        w.deposit(0, env(0, 0, 7, 99));
        assert_eq!(t.join().unwrap(), vec![99]);
    }
}
