//! Shared world state: mailboxes, the matching engine, and the registry of
//! pre-matched persistent channels.

use locality::Topology;
use parking_lot::{Condvar, Mutex};
use perfmodel::CostModel;
use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A message in flight.
pub(crate) struct Envelope {
    /// Communicator context the message belongs to.
    pub ctx_id: u64,
    /// Source rank *within that communicator*.
    pub src: usize,
    pub tag: u64,
    /// Modeled arrival time at the destination (0 when unmodeled).
    pub arrival: f64,
    /// `Vec<T>` behind a type-erased box.
    pub payload: Box<dyn Any + Send>,
    /// Human-readable element type, for mismatch diagnostics.
    pub type_name: &'static str,
}

/// Unexpected-message queue of one rank.
#[derive(Default)]
pub(crate) struct Mailbox {
    pub queue: Mutex<VecDeque<Envelope>>,
    pub cv: Condvar,
}

/// Modeled-time configuration shared by all ranks.
pub(crate) struct ModelCtx {
    pub model: Arc<dyn CostModel>,
    pub topo: Topology,
}

/// Signature of a pre-matched persistent channel:
/// `(context id, src comm rank, dst comm rank, tag)`.
pub(crate) type ChanKey = (u64, usize, usize, u64);

/// Registry slot: element type name (for mismatch diagnostics), the
/// type-erased channel, its pending-message counter — readable without
/// knowing `T`, so the plain mailbox path can detect mixed traffic — and
/// a typed drain hook so the registry can discard undelivered payloads
/// (after a panicked pool epoch) without knowing `T` either.
type ChanSlot = (
    &'static str,
    Arc<dyn Any + Send + Sync>,
    Arc<AtomicUsize>,
    Arc<dyn Fn() + Send + Sync>,
);

/// The park-point of one rank's blocked `wait_any`: a seq counter bumped
/// (with a wake) by every deposit into a channel the rank watches.
///
/// One `WaitSet` exists per world rank. A receiver that wants to block on
/// a *set* of channels attaches its rank's wait set to each of them and
/// parks here instead of on any single channel's condvar — so the first
/// arrival on **any** watched channel wakes it, and receives complete in
/// delivery order rather than the order the channels were initialized in.
pub(crate) struct WaitSet {
    /// Deposit generation: bumped under the lock by every push into a
    /// watched channel. The parking protocol re-reads it to close the
    /// scan-then-park race (a push between the scan and the park bumps the
    /// generation, so the park returns immediately).
    seq: Mutex<u64>,
    cv: Condvar,
}

impl WaitSet {
    fn new() -> Self {
        Self {
            seq: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Current deposit generation. Read BEFORE scanning the channel set.
    fn generation(&self) -> u64 {
        *self.seq.lock()
    }

    /// Record one deposit and wake any parked receiver.
    fn notify(&self) {
        *self.seq.lock() += 1;
        self.cv.notify_all();
    }

    /// Park until the generation moves past `seen`, invoking `stall_probe`
    /// periodically while blocked (same contract as [`Channel::pop_with`]).
    fn park_past(&self, seen: u64, stall_probe: impl Fn()) {
        let mut seq = self.seq.lock();
        while *seq == seen {
            if self
                .cv
                .wait_for(&mut seq, std::time::Duration::from_millis(50))
                .timed_out()
            {
                stall_probe();
            }
        }
    }
}

/// Type-erased handle to one persistent channel, for completion-driven
/// receives over a **set** of channels ([`crate::RankCtx::poll_any`] /
/// [`crate::RankCtx::wait_any`]). Cloneable and independent of the
/// channel's element type, so one wait set can mix channels of different
/// datatypes (e.g. every receive of a whole collective batch).
///
/// Obtain one from the receive half that owns the channel
/// ([`crate::RecvChan::chan_id`], [`crate::PrecvReq::pending_chan_ids`]).
#[derive(Clone)]
pub struct ChanId {
    /// The channel's signature, for blocked-receive diagnostics (the
    /// mixed plain/persistent-traffic probe).
    key: ChanKey,
    /// The channel's lock-free pending counter (shared with its registry
    /// slot): the poll fast path.
    pending: Arc<AtomicUsize>,
    /// The channel's watcher slot; attaching a rank's [`WaitSet`] routes
    /// every subsequent deposit's wake to that rank's park point.
    watcher: Arc<Mutex<Option<Arc<WaitSet>>>>,
}

impl ChanId {
    /// Would a non-blocking pop on this channel succeed right now?
    pub fn ready(&self) -> bool {
        self.pending.load(Ordering::Relaxed) > 0
    }

    fn attach(&self, ws: &Arc<WaitSet>) {
        let mut watcher = self.watcher.lock();
        // idempotent for the common case (a rank re-parking on the same
        // channel); a channel has a single receiver, so at most one wait
        // set is ever interested
        if watcher.as_ref().is_none_or(|w| !Arc::ptr_eq(w, ws)) {
            *watcher = Some(Arc::clone(ws));
        }
    }

    /// Undo [`ChanId::attach`] once the park is over, so senders stop
    /// paying the watcher wake on every subsequent deposit (channels — and
    /// their watcher slots — live as long as the warm world).
    fn detach(&self, ws: &Arc<WaitSet>) {
        let mut watcher = self.watcher.lock();
        if watcher.as_ref().is_some_and(|w| Arc::ptr_eq(w, ws)) {
            *watcher = None;
        }
    }
}

/// A pre-matched persistent channel: the rendezvous a `send_init` /
/// `recv_init` pair shares, created once at registration time.
///
/// Every iteration's `start`/`wait` goes straight through this slot —
/// a flag (non-empty `pending`) plus a condvar — instead of boxing a fresh
/// `Vec` behind `dyn Any` and linearly scanning the destination's mutexed
/// mailbox. Payload buffers are recycled through `spare`, so the
/// steady-state iteration allocates nothing. The FIFO `pending` queue
/// preserves buffered-send semantics (a sender may run several iterations
/// ahead) and MPI's non-overtaking order for equal signatures.
pub(crate) struct Channel<T> {
    key: ChanKey,
    state: Mutex<ChanState<T>>,
    cv: Condvar,
    /// Pending-message count mirrored outside the typed state (shared with
    /// the registry slot) so the mailbox path can probe it untyped.
    pending_count: Arc<AtomicUsize>,
    /// The receiving rank's [`WaitSet`], once it has parked on a set
    /// containing this channel (see [`ChanId::attach`]).
    watcher: Arc<Mutex<Option<Arc<WaitSet>>>>,
}

struct ChanState<T> {
    /// Delivered-but-unconsumed payloads with their modeled arrival times.
    pending: VecDeque<(Vec<T>, f64)>,
    /// Consumed payload buffers, reused by the next send.
    spare: Vec<Vec<T>>,
}

impl<T: Clone + Send + 'static> Channel<T> {
    fn new(key: ChanKey, pending_count: Arc<AtomicUsize>) -> Self {
        Self {
            key,
            state: Mutex::new(ChanState {
                pending: VecDeque::new(),
                spare: Vec::new(),
            }),
            cv: Condvar::new(),
            pending_count,
            watcher: Arc::new(Mutex::new(None)),
        }
    }

    /// Type-erased handle for set-polling this channel (see [`ChanId`]).
    pub fn id(&self) -> ChanId {
        ChanId {
            key: self.key,
            pending: Arc::clone(&self.pending_count),
            watcher: Arc::clone(&self.watcher),
        }
    }

    /// Deposit one message (buffered semantics: never blocks).
    pub fn push(&self, data: &[T], arrival: f64) {
        self.push_with(arrival, |buf| buf.extend_from_slice(data));
    }

    /// Deposit one message by filling the channel's recycled payload buffer
    /// directly — the zero-copy send path. `fill` receives a cleared spare
    /// buffer and writes the payload into it, so senders gather values
    /// straight into the wire buffer instead of staging them in their own
    /// window first. The channel lock is not held while `fill` runs.
    pub fn push_with(&self, arrival: f64, fill: impl FnOnce(&mut Vec<T>)) {
        let mut buf = self.state.lock().spare.pop().unwrap_or_default();
        buf.clear();
        fill(&mut buf);
        let mut st = self.state.lock();
        st.pending.push_back((buf, arrival));
        self.pending_count.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_all();
        drop(st);
        // wake a receiver parked on a channel SET containing this channel
        // (no-op — one uncontended lock — until the receiver first parks)
        if let Some(ws) = self.watcher.lock().as_ref() {
            ws.notify();
        }
    }

    /// Block until a message is available **without consuming it**,
    /// invoking `stall_probe` periodically while blocked (same contract as
    /// [`Channel::pop_with`]). The completion-driven `wait` parks here on
    /// one *necessary* channel between `test` rounds: cheaper than the
    /// set-park ([`WorldState::wait_any`]) when every pending receive must
    /// complete anyway, because nothing attaches and senders pay no wake.
    pub fn wait_nonempty(&self, stall_probe: impl Fn()) {
        // same yield-spin rationale as pop_with
        for _ in 0..24 {
            if self.pending_count.load(Ordering::Relaxed) > 0 {
                return;
            }
            std::thread::yield_now();
        }
        let mut st = self.state.lock();
        while st.pending.is_empty() {
            if self
                .cv
                .wait_for(&mut st, std::time::Duration::from_millis(50))
                .timed_out()
            {
                stall_probe();
            }
        }
    }

    /// Non-blocking [`Channel::pop_with`]: take the next message if one has
    /// been delivered, `None` otherwise. The completion-driven receive path
    /// (`test`/`wait_any`) drains arrivals through this.
    pub fn try_pop(&self) -> Option<(Vec<T>, f64)> {
        // lock-free empty probe first: `test` loops call this on channels
        // that usually have nothing yet
        if self.pending_count.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let msg = self.state.lock().pending.pop_front()?;
        self.pending_count.fetch_sub(1, Ordering::Relaxed);
        Some(msg)
    }

    /// Block until a message is available and take it off the queue,
    /// invoking `stall_probe` periodically while blocked.
    ///
    /// Deliberately hands the payload buffer out instead of copying into a
    /// caller-provided slice: the receiver must NOT hold its destination
    /// buffer's lock while blocked here (another rank's send may need that
    /// buffer to make progress). Copy after popping, then hand the buffer
    /// back with [`Channel::recycle`]. The receive paths use the probe to
    /// turn an otherwise silent hang — e.g. a plain `send` aimed at a
    /// persistent receive, which lands in the mailbox this channel
    /// bypasses — into a loud panic.
    pub fn pop_with(&self, stall_probe: impl Fn()) -> (Vec<T>, f64) {
        // Yield-spin before parking: in the steady state the matching send
        // is usually a runnable peer away, so cycling the run queue a few
        // times picks the message up for the cost of a sched_yield instead
        // of a futex park + wake round trip (which dominates per-message
        // latency on oversubscribed hosts). The empty-channel probe is the
        // lock-free pending counter, so spinning adds no mutex traffic on
        // the path the sender needs. Bounded, so a genuinely absent sender
        // still lands in the blocking wait below.
        for _ in 0..24 {
            if self.pending_count.load(Ordering::Relaxed) > 0 {
                let mut st = self.state.lock();
                if let Some(msg) = st.pending.pop_front() {
                    self.pending_count.fetch_sub(1, Ordering::Relaxed);
                    return msg;
                }
            }
            std::thread::yield_now();
        }
        let mut st = self.state.lock();
        while st.pending.is_empty() {
            if self
                .cv
                .wait_for(&mut st, std::time::Duration::from_millis(50))
                .timed_out()
            {
                stall_probe();
            }
        }
        let msg = st.pending.pop_front().expect("non-empty after wait");
        self.pending_count.fetch_sub(1, Ordering::Relaxed);
        msg
    }

    /// Return a consumed payload buffer for reuse by the next send.
    pub fn recycle(&self, buf: Vec<T>) {
        self.state.lock().spare.push(buf);
    }

    /// Discard every undelivered payload (buffers go back to the spare
    /// pool). Used to reset a warm world after a panicked epoch.
    pub fn drain_pending(&self) {
        let mut st = self.state.lock();
        while let Some((buf, _)) = st.pending.pop_front() {
            self.pending_count.fetch_sub(1, Ordering::Relaxed);
            st.spare.push(buf);
        }
    }

    /// Would [`Channel::pop_with`] complete without blocking?
    pub fn ready(&self) -> bool {
        !self.state.lock().pending.is_empty()
    }

    /// Signature of this channel, for receive-side diagnostics.
    pub fn key(&self) -> ChanKey {
        self.key
    }
}

/// A held lock over the world's persistent-channel registry: every
/// signature resolved through it shares one lock acquisition, so
/// registering a whole collective — or a whole batch of collectives
/// ([`mpi-advance`'s `NeighborBatch`]) — is a single pass over the
/// registry instead of one contended lock round trip per message.
///
/// Obtain one with [`crate::RankCtx::chan_registrar`]; the registration
/// methods (`send_chan_init`, `recv_init`, `psend_init_parts`, …) mirror
/// the [`crate::RankCtx`] ones. Registration never blocks on traffic, so
/// holding the registry lock across a batch is deadlock-free — but do not
/// call `start`/`wait` (or any `RankCtx` registration method, which takes
/// the same lock) while a registrar is alive.
pub struct ChanRegistrar<'a> {
    guard: parking_lot::MutexGuard<'a, HashMap<ChanKey, ChanSlot>>,
}

impl ChanRegistrar<'_> {
    /// Get-or-create the persistent channel for `key` under the held lock.
    pub(crate) fn channel<T: Clone + Send + 'static>(&mut self, key: ChanKey) -> Arc<Channel<T>> {
        WorldState::channel_in(&mut self.guard, key)
    }
}

/// State shared by every rank of a world.
pub(crate) struct WorldState {
    pub n_ranks: usize,
    pub mailboxes: Vec<Mailbox>,
    pub model: Option<ModelCtx>,
    /// Pre-matched persistent channels, keyed by signature. Entries live
    /// as long as the world (like unmatched mailbox envelopes): the
    /// simulator has no `MPI_Request_free` counterpart, and registered
    /// signatures are bounded by what the world's collectives registered.
    /// A pooled world ([`crate::WorldPool`]) keeps its `WorldState` across
    /// epochs, so re-registering the same signature re-attaches to the
    /// (drained) channel — re-init on a warm world is a lookup, not a
    /// rendezvous.
    channels: Mutex<HashMap<ChanKey, ChanSlot>>,
    /// One park point per world rank for completion-driven receives over
    /// channel sets ([`WorldState::wait_any`]). Lives with the world (like
    /// the channel registry) so pooled epochs reuse it warm.
    wait_sets: Vec<Arc<WaitSet>>,
    /// Set when a rank of the current pool epoch panicked: blocked
    /// receives check it from their stall probes and abort loudly instead
    /// of waiting forever for a message the dead rank will never send.
    rank_panicked: AtomicBool,
}

impl WorldState {
    pub fn new(n_ranks: usize, model: Option<ModelCtx>) -> Arc<Self> {
        assert!(n_ranks > 0);
        if let Some(m) = &model {
            assert_eq!(
                m.topo.n_ranks(),
                n_ranks,
                "topology rank count must match world size"
            );
        }
        let mailboxes = (0..n_ranks).map(|_| Mailbox::default()).collect();
        let wait_sets = (0..n_ranks).map(|_| Arc::new(WaitSet::new())).collect();
        Arc::new(Self {
            n_ranks,
            mailboxes,
            model,
            channels: Mutex::new(HashMap::new()),
            wait_sets,
            rank_panicked: AtomicBool::new(false),
        })
    }

    /// Non-blocking arrival poll over a channel set: index of the first
    /// channel holding a delivered, unconsumed message, else `None`.
    pub fn poll_any(chans: &[ChanId]) -> Option<usize> {
        chans.iter().position(ChanId::ready)
    }

    /// Block `global_rank` until **some** channel of the set has a message,
    /// returning its index. Yield-spins first (same rationale as
    /// [`Channel::pop_with`]), then attaches the rank's [`WaitSet`] to every
    /// channel and futex-parks on the set — one park point for N channels,
    /// woken by whichever deposit lands first, so completion follows
    /// delivery order instead of channel order.
    pub(crate) fn wait_any(&self, global_rank: usize, chans: &[ChanId]) -> usize {
        assert!(!chans.is_empty(), "wait_any on an empty channel set");
        for _ in 0..24 {
            if let Some(i) = Self::poll_any(chans) {
                return i;
            }
            std::thread::yield_now();
        }
        let ws = &self.wait_sets[global_rank];
        for c in chans {
            c.attach(ws);
        }
        let found = loop {
            // generation BEFORE the scan: a deposit racing with the scan
            // bumps it, so the park below returns without sleeping
            let seen = ws.generation();
            if let Some(i) = Self::poll_any(chans) {
                break i;
            }
            ws.park_past(seen, || {
                self.check_peer_alive();
                // keep the mixed plain/persistent misuse loud here too: a
                // plain send aimed at a watched persistent signature lands
                // in the mailbox this set bypasses, and would otherwise
                // hang the parked rank silently
                for c in chans {
                    let (ctx_id, src, _, tag) = c.key;
                    assert!(
                        !self.probe(global_rank, ctx_id, src, tag),
                        "wait_any on channel {:?}: matching message sits in the \
                         plain mailbox — mixing a plain send with a persistent \
                         receive on one signature is unsupported (use send_init \
                         on the sender)",
                        c.key
                    );
                }
            });
        };
        // stop routing deposit wakes to this rank once it is running again
        for c in chans {
            c.detach(ws);
        }
        found
    }

    /// Record that a rank of the current epoch panicked (pool worker).
    pub(crate) fn note_rank_panic(&self) {
        self.rank_panicked.store(true, Ordering::Release);
    }

    /// Clear the panic marker at the start of a fresh epoch.
    pub(crate) fn clear_rank_panic(&self) {
        self.rank_panicked.store(false, Ordering::Release);
    }

    /// Abort a blocked receive if a peer rank already died this epoch —
    /// called from stall probes so a partial-rank panic ends the epoch
    /// loudly instead of deadlocking the world.
    pub(crate) fn check_peer_alive(&self) {
        assert!(
            !self.rank_panicked.load(Ordering::Acquire),
            "a peer rank panicked this epoch; abandoning blocked receive"
        );
    }

    /// Get-or-create the persistent channel for `key` — whichever side
    /// registers first creates it; the other side attaches to the same
    /// slot, completing the match once at init time.
    #[cfg(test)]
    pub fn channel<T: Clone + Send + 'static>(&self, key: ChanKey) -> Arc<Channel<T>> {
        Self::channel_in(&mut self.channels.lock(), key)
    }

    /// Get-or-create against an already-held registry lock — the
    /// bulk-registration path ([`ChanRegistrar`]) resolves many signatures
    /// under one lock acquisition.
    fn channel_in<T: Clone + Send + 'static>(
        map: &mut HashMap<ChanKey, ChanSlot>,
        key: ChanKey,
    ) -> Arc<Channel<T>> {
        let (type_name, any, ..) = map
            .entry(key)
            .or_insert_with(|| {
                let count = Arc::new(AtomicUsize::new(0));
                let chan = Arc::new(Channel::<T>::new(key, count.clone()));
                let drain = {
                    let chan = Arc::clone(&chan);
                    Arc::new(move || chan.drain_pending()) as Arc<dyn Fn() + Send + Sync>
                };
                (
                    std::any::type_name::<T>(),
                    chan as Arc<dyn Any + Send + Sync>,
                    count,
                    drain,
                )
            })
            .clone();
        Arc::downcast::<Channel<T>>(any).unwrap_or_else(|_| {
            panic!(
                "persistent channel {key:?} datatype mismatch: registered {type_name}, \
                 requested {}",
                std::any::type_name::<T>()
            )
        })
    }

    /// Open the channel registry for a bulk registration pass.
    pub(crate) fn chan_registrar(&self) -> ChanRegistrar<'_> {
        ChanRegistrar {
            guard: self.channels.lock(),
        }
    }

    /// Discard all in-flight traffic: every mailbox envelope and every
    /// undelivered persistent-channel payload. Registrations (the channel
    /// registry itself) survive. A pooled world calls this after a
    /// panicked epoch so stale messages cannot leak into the next one.
    pub fn drain_in_flight(&self) {
        for mb in &self.mailboxes {
            mb.queue.lock().clear();
        }
        for (.., drain) in self.channels.lock().values() {
            drain();
        }
    }

    /// Does the persistent channel for `key` exist with messages pending?
    /// Untyped — used by the plain receive path to diagnose mixed traffic.
    pub fn channel_pending(&self, key: &ChanKey) -> bool {
        self.channels
            .lock()
            .get(key)
            .is_some_and(|(_, _, count, _)| count.load(Ordering::Relaxed) > 0)
    }

    /// Deposit an envelope in `global_dst`'s mailbox and wake any waiter.
    pub fn deposit(&self, global_dst: usize, env: Envelope) {
        let mb = &self.mailboxes[global_dst];
        let mut q = mb.queue.lock();
        q.push_back(env);
        mb.cv.notify_all();
    }

    /// Blocking matched receive for `global_dst`: first envelope with the
    /// given (ctx, src, tag). Returns the envelope and the queue length that
    /// was searched (for queue-cost charging). `dst_comm_rank` is the
    /// receiver's rank within the communicator — the channel-signature
    /// coordinate used to diagnose a persistent send aimed at this plain
    /// receive (which would otherwise hang silently: persistent sends
    /// bypass the mailbox).
    pub fn match_recv(
        &self,
        global_dst: usize,
        ctx_id: u64,
        src: usize,
        dst_comm_rank: usize,
        tag: u64,
    ) -> (Envelope, usize) {
        let chan_key: ChanKey = (ctx_id, src, dst_comm_rank, tag);
        let mb = &self.mailboxes[global_dst];
        let mut q = mb.queue.lock();
        loop {
            let searched = q.len();
            if let Some(pos) = q
                .iter()
                .position(|e| e.ctx_id == ctx_id && e.src == src && e.tag == tag)
            {
                let env = q.remove(pos).expect("position valid");
                return (env, searched);
            }
            if mb
                .cv
                .wait_for(&mut q, std::time::Duration::from_millis(50))
                .timed_out()
            {
                self.check_peer_alive();
                assert!(
                    !self.channel_pending(&chan_key),
                    "plain recv from {src} tag {tag}: matching message sits on a \
                     persistent channel — mixing a persistent send with a plain \
                     recv on one signature is unsupported (use recv_init on the \
                     receiver)"
                );
            }
        }
    }

    /// Non-blocking probe: would a matched receive complete immediately?
    pub fn probe(&self, global_dst: usize, ctx_id: u64, src: usize, tag: u64) -> bool {
        let q = self.mailboxes[global_dst].queue.lock();
        q.iter()
            .any(|e| e.ctx_id == ctx_id && e.src == src && e.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(ctx_id: u64, src: usize, tag: u64, val: u32) -> Envelope {
        Envelope {
            ctx_id,
            src,
            tag,
            arrival: 0.0,
            payload: Box::new(vec![val]),
            type_name: "u32",
        }
    }

    #[test]
    fn deposit_then_match() {
        let w = WorldState::new(2, None);
        w.deposit(1, env(0, 0, 5, 42));
        let (got, searched) = w.match_recv(1, 0, 0, 1, 5);
        assert_eq!(searched, 1);
        let v = got.payload.downcast::<Vec<u32>>().unwrap();
        assert_eq!(*v, vec![42]);
    }

    #[test]
    fn matching_respects_tag_and_ctx() {
        let w = WorldState::new(1, None);
        w.deposit(0, env(0, 0, 1, 10));
        w.deposit(0, env(1, 0, 2, 20));
        w.deposit(0, env(0, 0, 2, 30));
        // match ctx 0 / tag 2 skips both earlier non-matching envelopes
        let (got, _) = w.match_recv(0, 0, 0, 0, 2);
        let v = got.payload.downcast::<Vec<u32>>().unwrap();
        assert_eq!(*v, vec![30]);
        assert!(w.probe(0, 0, 0, 1));
        assert!(w.probe(0, 1, 0, 2));
        assert!(!w.probe(0, 0, 0, 2));
    }

    #[test]
    fn non_overtaking_same_signature() {
        let w = WorldState::new(1, None);
        w.deposit(0, env(0, 3, 9, 1));
        w.deposit(0, env(0, 3, 9, 2));
        let (a, _) = w.match_recv(0, 0, 3, 0, 9);
        let (b, _) = w.match_recv(0, 0, 3, 0, 9);
        assert_eq!(*a.payload.downcast::<Vec<u32>>().unwrap(), vec![1]);
        assert_eq!(*b.payload.downcast::<Vec<u32>>().unwrap(), vec![2]);
    }

    #[test]
    fn channel_fifo_and_reuse() {
        let w = WorldState::new(2, None);
        let c = w.channel::<u32>((0, 0, 1, 7));
        assert!(!c.ready());
        c.push(&[1, 2], 0.5);
        c.push(&[3, 4], 1.5);
        assert!(c.ready());
        let (buf, arrival) = c.pop_with(|| {});
        assert_eq!((buf.as_slice(), arrival), ([1, 2].as_slice(), 0.5));
        c.recycle(buf);
        let (buf, arrival) = c.pop_with(|| {});
        assert_eq!((buf.as_slice(), arrival), ([3, 4].as_slice(), 1.5));
        c.recycle(buf);
        assert!(!c.ready());
        // both sides resolve to the same slot
        let c2 = w.channel::<u32>((0, 0, 1, 7));
        c2.push(&[9, 9], 0.0);
        assert!(c.ready());
    }

    #[test]
    fn channel_blocking_pop_wakes_on_push() {
        let w = WorldState::new(1, None);
        let c = w.channel::<u8>((0, 0, 0, 1));
        let c2 = w.channel::<u8>((0, 0, 0, 1));
        let t = std::thread::spawn(move || {
            let (buf, _) = c2.pop_with(|| {});
            buf[0]
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.push(&[42], 0.0);
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn try_pop_is_nonblocking_and_fifo() {
        let w = WorldState::new(1, None);
        let c = w.channel::<u32>((0, 0, 0, 2));
        assert!(c.try_pop().is_none());
        c.push(&[7], 0.25);
        c.push(&[8], 0.75);
        let (buf, arrival) = c.try_pop().expect("message delivered");
        assert_eq!((buf.as_slice(), arrival), ([7].as_slice(), 0.25));
        c.recycle(buf);
        let (buf, _) = c.try_pop().expect("second message delivered");
        assert_eq!(buf.as_slice(), [8].as_slice());
        c.recycle(buf);
        assert!(c.try_pop().is_none());
    }

    #[test]
    fn poll_any_reports_first_ready_channel() {
        let w = WorldState::new(1, None);
        let a = w.channel::<u8>((0, 0, 0, 10));
        let b = w.channel::<u8>((0, 0, 0, 11));
        let ids = [a.id(), b.id()];
        assert_eq!(WorldState::poll_any(&ids), None);
        b.push(&[1], 0.0);
        assert_eq!(WorldState::poll_any(&ids), Some(1));
        a.push(&[2], 0.0);
        assert_eq!(WorldState::poll_any(&ids), Some(0));
    }

    #[test]
    fn wait_any_parks_on_the_set_and_wakes_on_either_channel() {
        // the receiver parks on BOTH channels; a deposit into the second
        // one (registered last) must wake it — the park is on the set, not
        // on any single channel's condvar
        let w = WorldState::new(1, None);
        let a = w.channel::<u8>((0, 0, 0, 20));
        let b = w.channel::<u8>((0, 0, 0, 21));
        let w2 = Arc::clone(&w);
        let (aid, bid) = (a.id(), b.id());
        let t = std::thread::spawn(move || w2.wait_any(0, &[aid, bid]));
        // let the receiver get past the spin phase and genuinely park
        std::thread::sleep(std::time::Duration::from_millis(30));
        b.push(&[9], 0.0);
        assert_eq!(t.join().unwrap(), 1);
        b.try_pop()
            .expect("wait_any leaves the message on the channel");
        // and again for the other channel, now that the wait set is warm
        let (aid, bid) = (a.id(), b.id());
        let w2 = Arc::clone(&w);
        let t = std::thread::spawn(move || w2.wait_any(0, &[aid, bid]));
        std::thread::sleep(std::time::Duration::from_millis(30));
        a.push(&[3], 0.0);
        assert_eq!(t.join().unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "datatype mismatch")]
    fn channel_type_mismatch_panics() {
        let w = WorldState::new(1, None);
        let _ = w.channel::<u32>((0, 0, 0, 3));
        let _ = w.channel::<f64>((0, 0, 0, 3));
    }

    #[test]
    fn blocking_recv_wakes_on_deposit() {
        let w = WorldState::new(1, None);
        let w2 = Arc::clone(&w);
        let t = std::thread::spawn(move || {
            let (env, _) = w2.match_recv(0, 0, 0, 0, 7);
            *env.payload.downcast::<Vec<u32>>().unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        w.deposit(0, env(0, 0, 7, 99));
        assert_eq!(t.join().unwrap(), vec![99]);
    }
}
