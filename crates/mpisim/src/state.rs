//! Shared world state: the matching engine and the registry of pre-matched
//! persistent channels, expressed against a [`Transport`] fabric.
//!
//! `WorldState` owns the *semantics* — signature matching, the channel
//! registry, the mixed plain/persistent-traffic diagnostics, failed-epoch
//! draining — and delegates the *mechanics* of moving bytes (mailboxes,
//! channel storage, parking/wakeups, death detection) to an
//! `Arc<dyn Transport>`: the in-process [`ThreadTransport`] by default, or
//! the cross-process shm fabric ([`crate::transport::shm::ShmTransport`]).

use crate::elem::elem_bytes;
use crate::stall::{RankWait, StallReport};
use crate::transport::shm::ring::ShmChan;
use crate::transport::sock::link::{Link, K_CHAN};
use crate::transport::{
    assert_pod, bytes_of, vec_extend_bytes, ChanFabric, FaultOp, ShmChanRaw, SockChanWire,
    Transport,
};
use locality::Topology;
use parking_lot::{Condvar, Mutex};
use perfmodel::CostModel;
use std::any::Any;
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A plain-send payload, packaged the way the world's transport requires
/// (see [`crate::transport::PayloadMode`]).
pub(crate) enum Payload {
    /// In-process: the `Vec<T>` itself behind a type-erased box. Zero
    /// serialization; any `Elem` type travels.
    Typed {
        data: Box<dyn Any + Send>,
        type_name: &'static str,
    },
    /// Cross-process: raw little-endian bytes plus the element type's name
    /// (carried on the wire, so mismatch diagnostics survive the boundary).
    /// Plain-old-data element types only.
    Bytes { data: Vec<u8>, type_name: String },
}

impl Payload {
    /// Package a payload for the in-process fabric.
    pub fn typed<T: Clone + Send + 'static>(data: Vec<T>) -> Self {
        Payload::Typed {
            data: Box::new(data),
            type_name: std::any::type_name::<T>(),
        }
    }

    /// Package a payload for a byte fabric (serializes now, at the send
    /// boundary). Panics for element types that cannot cross as raw bytes.
    pub fn bytes_from<T>(data: &[T]) -> Self {
        assert_pod::<T>("plain send over the shm transport");
        Payload::Bytes {
            data: bytes_of(data).to_vec(),
            type_name: std::any::type_name::<T>().to_string(),
        }
    }

    /// Recover the typed payload; `Err(sent_type_name)` when the receiver's
    /// element type does not match what the sender packaged.
    pub fn take<T: Clone + Send + 'static>(self) -> Result<Vec<T>, String> {
        match self {
            Payload::Typed { data, type_name } => data
                .downcast::<Vec<T>>()
                .map(|b| *b)
                .map_err(|_| type_name.to_string()),
            Payload::Bytes { data, type_name } => {
                if type_name != std::any::type_name::<T>() {
                    return Err(type_name);
                }
                assert_pod::<T>("plain receive over the shm transport");
                let mut out = Vec::new();
                vec_extend_bytes(&mut out, &data, &[]);
                Ok(out)
            }
        }
    }
}

/// A message in flight.
pub(crate) struct Envelope {
    /// Communicator context the message belongs to.
    pub ctx_id: u64,
    /// Source rank *within that communicator*.
    pub src: usize,
    pub tag: u64,
    /// Modeled arrival time at the destination (0 when unmodeled).
    pub arrival: f64,
    pub payload: Payload,
}

/// Unexpected-message queue of one rank (the thread transport's storage).
#[derive(Default)]
pub(crate) struct Mailbox {
    pub queue: Mutex<VecDeque<Envelope>>,
    pub cv: Condvar,
}

/// Modeled-time configuration shared by all ranks.
pub(crate) struct ModelCtx {
    pub model: Arc<dyn CostModel>,
    pub topo: Topology,
}

/// Signature of a pre-matched persistent channel:
/// `(context id, src comm rank, dst comm rank, tag)`.
pub(crate) type ChanKey = (u64, usize, usize, u64);

/// Registry slot: element type name (for mismatch diagnostics), the
/// type-erased channel, an untyped pending-message probe — so the plain
/// mailbox path can detect mixed traffic without knowing `T` (for shm
/// channels the count lives in the shared ring, hence a closure rather
/// than a bare counter) — and a typed drain hook so the registry can
/// discard undelivered payloads (after a panicked pool epoch) without
/// knowing `T` either.
#[derive(Clone)]
struct ChanSlot {
    type_name: &'static str,
    chan: Arc<dyn Any + Send + Sync>,
    pending: Arc<dyn Fn() -> usize + Send + Sync>,
    drain: Arc<dyn Fn() + Send + Sync>,
}

/// The park-point of one rank's blocked `wait_any` on the thread fabric: a
/// seq counter bumped (with a wake) by every deposit into a channel the
/// rank watches.
///
/// One `WaitSet` exists per world rank. A receiver that wants to block on
/// a *set* of channels attaches its rank's wait set to each of them and
/// parks here instead of on any single channel's condvar — so the first
/// arrival on **any** watched channel wakes it, and receives complete in
/// delivery order rather than the order the channels were initialized in.
/// (The shm fabric's counterpart is the per-rank `ws_seq` futex word plus
/// each ring's watcher slot.)
pub(crate) struct WaitSet {
    /// Deposit generation: bumped under the lock by every push into a
    /// watched channel. The parking protocol re-reads it to close the
    /// scan-then-park race (a push between the scan and the park bumps the
    /// generation, so the park returns immediately).
    seq: Mutex<u64>,
    cv: Condvar,
}

impl WaitSet {
    pub(crate) fn new() -> Self {
        Self {
            seq: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Current deposit generation. Read BEFORE scanning the channel set.
    pub(crate) fn generation(&self) -> u64 {
        *self.seq.lock()
    }

    /// Record one deposit and wake any parked receiver.
    pub(crate) fn notify(&self) {
        *self.seq.lock() += 1;
        self.cv.notify_all();
    }

    /// Park until the generation moves past `seen`, invoking `stall_probe`
    /// periodically while blocked (same contract as [`Channel::pop_with`]).
    pub(crate) fn park_past(&self, seen: u64, stall_probe: impl Fn()) {
        let mut seq = self.seq.lock();
        while *seq == seen {
            if self
                .cv
                .wait_for(
                    &mut seq,
                    std::time::Duration::from_millis(crate::stall::stall_ms()),
                )
                .timed_out()
            {
                stall_probe();
            }
        }
    }
}

/// Type-erased handle to one persistent channel, for completion-driven
/// receives over a **set** of channels ([`crate::RankCtx::poll_any`] /
/// [`crate::RankCtx::wait_any`]). Cloneable and independent of the
/// channel's element type, so one wait set can mix channels of different
/// datatypes (e.g. every receive of a whole collective batch).
///
/// Obtain one from the receive half that owns the channel
/// ([`crate::RecvChan::chan_id`], [`crate::PrecvReq::pending_chan_ids`]).
#[derive(Clone)]
pub struct ChanId {
    /// The channel's signature, for blocked-receive diagnostics (the
    /// mixed plain/persistent-traffic probe).
    pub(crate) key: ChanKey,
    imp: ChanIdImp,
}

#[derive(Clone)]
enum ChanIdImp {
    /// Thread fabric: the channel's lock-free pending counter (the poll
    /// fast path) and its watcher slot for [`WaitSet`] routing.
    Thread {
        pending: Arc<AtomicUsize>,
        watcher: Arc<Mutex<Option<Arc<WaitSet>>>>,
    },
    /// Shm fabric: the ring itself — its message count is the cross-process
    /// poll fast path, its watcher word routes deposit wakes.
    Shm(ShmChanRaw),
}

impl ChanId {
    /// Would a non-blocking pop on this channel succeed right now?
    pub fn ready(&self) -> bool {
        match &self.imp {
            ChanIdImp::Thread { pending, .. } => pending.load(Ordering::Relaxed) > 0,
            ChanIdImp::Shm(raw) => raw.ready(),
        }
    }

    /// Route this channel's deposit wakes to `ws` (thread fabric; see
    /// [`crate::transport::thread::ThreadTransport`]).
    pub(crate) fn attach(&self, ws: &Arc<WaitSet>) {
        let ChanIdImp::Thread { watcher, .. } = &self.imp else {
            unreachable!("WaitSet attach on a non-thread channel");
        };
        let mut watcher = watcher.lock();
        // idempotent for the common case (a rank re-parking on the same
        // channel); a channel has a single receiver, so at most one wait
        // set is ever interested
        if watcher.as_ref().is_none_or(|w| !Arc::ptr_eq(w, ws)) {
            *watcher = Some(Arc::clone(ws));
        }
    }

    /// Undo [`ChanId::attach`] once the park is over, so senders stop
    /// paying the watcher wake on every subsequent deposit (channels — and
    /// their watcher slots — live as long as the warm world).
    pub(crate) fn detach(&self, ws: &Arc<WaitSet>) {
        let ChanIdImp::Thread { watcher, .. } = &self.imp else {
            unreachable!("WaitSet detach on a non-thread channel");
        };
        let mut watcher = watcher.lock();
        if watcher.as_ref().is_some_and(|w| Arc::ptr_eq(w, ws)) {
            *watcher = None;
        }
    }

    /// Route this channel's deposit wakes to world rank `rank`'s futex
    /// park point (shm fabric; see
    /// [`crate::transport::shm::ShmTransport`]).
    pub(crate) fn watch(&self, rank: usize) {
        let ChanIdImp::Shm(raw) = &self.imp else {
            unreachable!("futex watch on a non-shm channel");
        };
        raw.set_watcher(rank);
    }

    /// Undo [`ChanId::watch`] once the park is over.
    pub(crate) fn unwatch(&self, rank: usize) {
        let ChanIdImp::Shm(raw) = &self.imp else {
            unreachable!("futex unwatch on a non-shm channel");
        };
        raw.clear_watcher(rank);
    }
}

/// A pre-matched persistent channel: the rendezvous a `send_init` /
/// `recv_init` pair shares, created once at registration time.
///
/// Every iteration's `start`/`wait` goes straight through this slot
/// instead of boxing a fresh `Vec` behind `dyn Any` and linearly scanning
/// the destination's mutexed mailbox. Payload buffers are recycled, so the
/// steady-state iteration allocates nothing. FIFO delivery preserves
/// buffered-send semantics (a sender may run several iterations ahead) and
/// MPI's non-overtaking order for equal signatures.
///
/// The storage is the world's transport's business: a condvar-guarded
/// in-process queue ([`ThreadChan`]) or an SPSC byte ring inside the
/// shared segment ([`ShmChan`]). The API is identical either way.
pub(crate) struct Channel<T> {
    key: ChanKey,
    imp: ChanImp<T>,
}

enum ChanImp<T> {
    Thread(ThreadChan<T>),
    Shm(ShmChan<T>),
    Sock(SockChan<T>),
}

/// Socket-fabric channel body. The receive side is an ordinary in-process
/// [`ThreadChan`] fed by the link reader thread (via the transport's
/// deliver hook); the send side serializes each payload into a `K_CHAN`
/// frame and hands it to the peer's [`Link`], which owns sequencing,
/// acknowledgement, and replay-on-reconnect. A channel whose two endpoints
/// live in the same process (`route: None`) skips the wire entirely and
/// pushes straight into the local queue — byte-identical semantics, no
/// serialization round trip.
pub(crate) struct SockChan<T> {
    local: Arc<ThreadChan<T>>,
    key: ChanKey,
    route: Option<Arc<Link>>,
    /// Recycled send-side staging buffers (typed payload + frame image),
    /// mirroring the receive side's spare pool so steady-state sends
    /// allocate nothing.
    scratch: Mutex<SockScratch<T>>,
}

/// Spare typed-payload and wire-frame buffers of a [`SockChan`].
type SockScratch<T> = (Vec<Vec<T>>, Vec<Vec<u8>>);

impl<T: Clone + Send + 'static> SockChan<T> {
    fn new(key: ChanKey, route: Option<Arc<Link>>) -> Self {
        Self {
            local: Arc::new(ThreadChan::new()),
            key,
            route,
            scratch: Mutex::new((Vec::new(), Vec::new())),
        }
    }

    fn push_with(&self, arrival: f64, fill: impl FnOnce(&mut Vec<T>)) {
        let Some(link) = &self.route else {
            return self.local.push_with(arrival, fill);
        };
        // Stage the payload, then serialize it into a K_CHAN frame body:
        // [ctx u64][src u64][dst u64][tag u64][arrival f64-bits u64] + data.
        let (mut vals, mut body) = {
            let mut sc = self.scratch.lock();
            (
                sc.0.pop().unwrap_or_default(),
                sc.1.pop().unwrap_or_default(),
            )
        };
        vals.clear();
        fill(&mut vals);
        body.clear();
        let (ctx_id, src, dst, tag) = self.key;
        body.extend_from_slice(&ctx_id.to_le_bytes());
        body.extend_from_slice(&(src as u64).to_le_bytes());
        body.extend_from_slice(&(dst as u64).to_le_bytes());
        body.extend_from_slice(&tag.to_le_bytes());
        body.extend_from_slice(&arrival.to_bits().to_le_bytes());
        body.extend_from_slice(bytes_of(&vals));
        link.send_frame(K_CHAN, &body);
        let mut sc = self.scratch.lock();
        sc.0.push(vals);
        sc.1.push(body);
    }
}

/// The in-process channel body: a flag (non-empty `pending`) plus a
/// condvar, payloads moved as typed `Vec<T>`s.
pub(crate) struct ThreadChan<T> {
    state: Mutex<ChanState<T>>,
    cv: Condvar,
    /// Pending-message count mirrored outside the typed state so poll
    /// paths can probe it lock-free.
    pending_count: Arc<AtomicUsize>,
    /// The receiving rank's [`WaitSet`], once it has parked on a set
    /// containing this channel (see [`ChanId::attach`]).
    watcher: Arc<Mutex<Option<Arc<WaitSet>>>>,
}

struct ChanState<T> {
    /// Delivered-but-unconsumed payloads with their modeled arrival times.
    pending: VecDeque<(Vec<T>, f64)>,
    /// Consumed payload buffers, reused by the next send.
    spare: Vec<Vec<T>>,
}

impl<T: Clone + Send + 'static> ThreadChan<T> {
    fn new() -> Self {
        Self {
            state: Mutex::new(ChanState {
                pending: VecDeque::new(),
                spare: Vec::new(),
            }),
            cv: Condvar::new(),
            pending_count: Arc::new(AtomicUsize::new(0)),
            watcher: Arc::new(Mutex::new(None)),
        }
    }

    fn push_with(&self, arrival: f64, fill: impl FnOnce(&mut Vec<T>)) {
        let mut buf = self.state.lock().spare.pop().unwrap_or_default();
        buf.clear();
        fill(&mut buf);
        let mut st = self.state.lock();
        st.pending.push_back((buf, arrival));
        self.pending_count.fetch_add(1, Ordering::Relaxed);
        self.cv.notify_all();
        drop(st);
        // wake a receiver parked on a channel SET containing this channel
        // (no-op — one uncontended lock — until the receiver first parks)
        if let Some(ws) = self.watcher.lock().as_ref() {
            ws.notify();
        }
    }

    fn wait_nonempty(&self, stall_probe: impl Fn()) {
        // same yield-spin rationale as pop_with
        for _ in 0..24 {
            if self.pending_count.load(Ordering::Relaxed) > 0 {
                return;
            }
            std::thread::yield_now();
        }
        let mut st = self.state.lock();
        while st.pending.is_empty() {
            if self
                .cv
                .wait_for(
                    &mut st,
                    std::time::Duration::from_millis(crate::stall::stall_ms()),
                )
                .timed_out()
            {
                stall_probe();
            }
        }
    }

    fn try_pop(&self) -> Option<(Vec<T>, f64)> {
        // lock-free empty probe first: `test` loops call this on channels
        // that usually have nothing yet
        if self.pending_count.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let msg = self.state.lock().pending.pop_front()?;
        self.pending_count.fetch_sub(1, Ordering::Relaxed);
        Some(msg)
    }

    fn pop_with(&self, stall_probe: impl Fn()) -> (Vec<T>, f64) {
        // Yield-spin before parking: in the steady state the matching send
        // is usually a runnable peer away, so cycling the run queue a few
        // times picks the message up for the cost of a sched_yield instead
        // of a futex park + wake round trip (which dominates per-message
        // latency on oversubscribed hosts). The empty-channel probe is the
        // lock-free pending counter, so spinning adds no mutex traffic on
        // the path the sender needs. Bounded, so a genuinely absent sender
        // still lands in the blocking wait below.
        for _ in 0..24 {
            if self.pending_count.load(Ordering::Relaxed) > 0 {
                let mut st = self.state.lock();
                if let Some(msg) = st.pending.pop_front() {
                    self.pending_count.fetch_sub(1, Ordering::Relaxed);
                    return msg;
                }
            }
            std::thread::yield_now();
        }
        let mut st = self.state.lock();
        while st.pending.is_empty() {
            if self
                .cv
                .wait_for(
                    &mut st,
                    std::time::Duration::from_millis(crate::stall::stall_ms()),
                )
                .timed_out()
            {
                stall_probe();
            }
        }
        let msg = st.pending.pop_front().expect("non-empty after wait");
        self.pending_count.fetch_sub(1, Ordering::Relaxed);
        msg
    }

    fn recycle(&self, buf: Vec<T>) {
        self.state.lock().spare.push(buf);
    }

    fn drain_pending(&self) {
        let mut st = self.state.lock();
        while let Some((buf, _)) = st.pending.pop_front() {
            self.pending_count.fetch_sub(1, Ordering::Relaxed);
            st.spare.push(buf);
        }
    }

    fn ready(&self) -> bool {
        !self.state.lock().pending.is_empty()
    }
}

impl<T: Clone + Send + 'static> Channel<T> {
    fn thread(key: ChanKey) -> Self {
        Self {
            key,
            imp: ChanImp::Thread(ThreadChan::new()),
        }
    }

    fn shm(key: ChanKey, raw: ShmChanRaw) -> Self {
        Self {
            key,
            imp: ChanImp::Shm(ShmChan::new(raw)),
        }
    }

    /// Socket-fabric channel: a local [`ThreadChan`] receive queue plus an
    /// optional wire route. If this process hosts the receiving rank, hook
    /// the transport's deliver table so the link reader thread deserializes
    /// arriving `K_CHAN` frames straight into the local queue.
    fn sock(key: ChanKey, wire: SockChanWire) -> Self {
        assert_pod::<T>("persistent channel over the sock transport");
        let chan = SockChan::<T>::new(key, wire.route);
        if let Some(t) = wire.register {
            let local = Arc::clone(&chan.local);
            t.register_deliver(
                key,
                Arc::new(move |arrival, bytes| {
                    local.push_with(arrival, |buf| vec_extend_bytes(buf, bytes, &[]));
                }),
            );
        }
        Self {
            key,
            imp: ChanImp::Sock(chan),
        }
    }

    /// Type-erased handle for set-polling this channel (see [`ChanId`]).
    pub fn id(&self) -> ChanId {
        let imp = match &self.imp {
            ChanImp::Thread(c) => ChanIdImp::Thread {
                pending: Arc::clone(&c.pending_count),
                watcher: Arc::clone(&c.watcher),
            },
            ChanImp::Shm(c) => ChanIdImp::Shm(c.raw().clone()),
            // the sock receive queue is an in-process ThreadChan, so the
            // thread fabric's poll/park machinery applies verbatim
            ChanImp::Sock(c) => ChanIdImp::Thread {
                pending: Arc::clone(&c.local.pending_count),
                watcher: Arc::clone(&c.local.watcher),
            },
        };
        ChanId { key: self.key, imp }
    }

    /// Deposit one message (buffered semantics: a sender may run many
    /// iterations ahead; the shm ring bounds that depth by its capacity).
    pub fn push(&self, data: &[T], arrival: f64) {
        self.push_with(arrival, |buf| buf.extend_from_slice(data));
    }

    /// Deposit one message by filling the channel's recycled payload buffer
    /// directly — the zero-copy send path. `fill` receives a cleared spare
    /// buffer and writes the payload into it, so senders gather values
    /// straight into the wire buffer instead of staging them in their own
    /// window first. The channel lock is not held while `fill` runs.
    pub fn push_with(&self, arrival: f64, fill: impl FnOnce(&mut Vec<T>)) {
        match &self.imp {
            ChanImp::Thread(c) => c.push_with(arrival, fill),
            ChanImp::Shm(c) => c.push_with(arrival, fill),
            ChanImp::Sock(c) => c.push_with(arrival, fill),
        }
    }

    /// Block until a message is available **without consuming it**,
    /// invoking `stall_probe` periodically while blocked (same contract as
    /// [`Channel::pop_with`]). The completion-driven `wait` parks here on
    /// one *necessary* channel between `test` rounds: cheaper than the
    /// set-park ([`WorldState::wait_any`]) when every pending receive must
    /// complete anyway, because nothing attaches and senders pay no wake.
    pub fn wait_nonempty(&self, stall_probe: impl Fn()) {
        match &self.imp {
            ChanImp::Thread(c) => c.wait_nonempty(stall_probe),
            ChanImp::Shm(c) => c.wait_nonempty(stall_probe),
            ChanImp::Sock(c) => c.local.wait_nonempty(stall_probe),
        }
    }

    /// Non-blocking [`Channel::pop_with`]: take the next message if one has
    /// been delivered, `None` otherwise. The completion-driven receive path
    /// (`test`/`wait_any`) drains arrivals through this.
    pub fn try_pop(&self) -> Option<(Vec<T>, f64)> {
        match &self.imp {
            ChanImp::Thread(c) => c.try_pop(),
            ChanImp::Shm(c) => c.try_pop(),
            ChanImp::Sock(c) => c.local.try_pop(),
        }
    }

    /// Block until a message is available and take it off the queue,
    /// invoking `stall_probe` periodically while blocked.
    ///
    /// Deliberately hands the payload buffer out instead of copying into a
    /// caller-provided slice: the receiver must NOT hold its destination
    /// buffer's lock while blocked here (another rank's send may need that
    /// buffer to make progress). Copy after popping, then hand the buffer
    /// back with [`Channel::recycle`]. The receive paths use the probe to
    /// turn an otherwise silent hang — e.g. a plain `send` aimed at a
    /// persistent receive, which lands in the mailbox this channel
    /// bypasses — into a loud panic.
    pub fn pop_with(&self, stall_probe: impl Fn()) -> (Vec<T>, f64) {
        match &self.imp {
            ChanImp::Thread(c) => c.pop_with(stall_probe),
            ChanImp::Shm(c) => c.pop_with(stall_probe),
            ChanImp::Sock(c) => c.local.pop_with(stall_probe),
        }
    }

    /// Return a consumed payload buffer for reuse by the next send.
    pub fn recycle(&self, buf: Vec<T>) {
        match &self.imp {
            ChanImp::Thread(c) => c.recycle(buf),
            ChanImp::Shm(c) => c.recycle(buf),
            ChanImp::Sock(c) => c.local.recycle(buf),
        }
    }

    /// Discard every undelivered payload (buffers go back to the spare
    /// pool). Used to reset a warm world after a panicked epoch.
    pub fn drain_pending(&self) {
        match &self.imp {
            ChanImp::Thread(c) => c.drain_pending(),
            ChanImp::Shm(c) => c.drain_pending(),
            ChanImp::Sock(c) => c.local.drain_pending(),
        }
    }

    /// Would [`Channel::pop_with`] complete without blocking?
    pub fn ready(&self) -> bool {
        match &self.imp {
            ChanImp::Thread(c) => c.ready(),
            ChanImp::Shm(c) => c.ready(),
            ChanImp::Sock(c) => c.local.ready(),
        }
    }

    /// Delivered-but-unconsumed message count — the untyped mixed-traffic
    /// probe ([`WorldState::channel_pending`]).
    fn pending_len(&self) -> usize {
        match &self.imp {
            ChanImp::Thread(c) => c.pending_count.load(Ordering::Relaxed),
            ChanImp::Shm(c) => c.raw().msg_count(),
            ChanImp::Sock(c) => c.local.pending_count.load(Ordering::Relaxed),
        }
    }

    /// Signature of this channel, for receive-side diagnostics.
    pub fn key(&self) -> ChanKey {
        self.key
    }
}

/// A held lock over the world's persistent-channel registry: every
/// signature resolved through it shares one lock acquisition, so
/// registering a whole collective — or a whole batch of collectives
/// ([`mpi-advance`'s `NeighborBatch`]) — is a single pass over the
/// registry instead of one contended lock round trip per message.
///
/// Obtain one with [`crate::RankCtx::chan_registrar`]; the registration
/// methods (`send_chan_init`, `recv_init`, `psend_init_parts`, …) mirror
/// the [`crate::RankCtx`] ones. Registration never blocks on traffic, so
/// holding the registry lock across a batch is deadlock-free — but do not
/// call `start`/`wait` (or any `RankCtx` registration method, which takes
/// the same lock) while a registrar is alive.
pub struct ChanRegistrar<'a> {
    guard: parking_lot::MutexGuard<'a, HashMap<ChanKey, ChanSlot>>,
    transport: &'a Arc<dyn Transport>,
}

impl ChanRegistrar<'_> {
    /// Get-or-create the persistent channel for `key` under the held lock.
    /// `len_hint` is the registered per-message element count, which sizes
    /// the channel's wire buffers on fabrics that must allocate them up
    /// front (the shm rings); 0 falls back to the fabric minimum.
    /// `dst_world` is the receiving rank's world rank — the routing
    /// coordinate fabrics with per-peer wires (the sock links) key on.
    pub(crate) fn channel_sized<T: Clone + Send + 'static>(
        &mut self,
        key: ChanKey,
        dst_world: usize,
        len_hint: usize,
    ) -> Arc<Channel<T>> {
        WorldState::channel_in(&mut self.guard, self.transport, key, dst_world, len_hint)
    }
}

/// State shared by every rank of a world.
pub(crate) struct WorldState {
    pub n_ranks: usize,
    pub model: Option<ModelCtx>,
    /// The fabric this world moves bytes over.
    transport: Arc<dyn Transport>,
    /// Pre-matched persistent channels, keyed by signature. Entries live
    /// as long as the world (like unmatched mailbox envelopes): the
    /// simulator has no `MPI_Request_free` counterpart, and registered
    /// signatures are bounded by what the world's collectives registered.
    /// A pooled world ([`crate::WorldPool`]) keeps its `WorldState` across
    /// epochs, so re-registering the same signature re-attaches to the
    /// (drained) channel — re-init on a warm world is a lookup, not a
    /// rendezvous.
    channels: Mutex<HashMap<ChanKey, ChanSlot>>,
    /// Per-rank scan rotor for [`WorldState::poll_any`] /
    /// [`WorldState::wait_any`]: each call starts its readiness scan one
    /// position further, so a permanently-hot low-index channel cannot
    /// starve the rest of the set.
    rotors: Vec<AtomicUsize>,
    /// What each locally-hosted rank is currently blocked on, registered
    /// lazily by [`WaitGuard`] once a wait survives its first stall probe.
    /// The raw material of [`WorldState::stall_report`].
    parked: Vec<Mutex<Option<ParkInfo>>>,
    /// Epoch counter mirrored from the pool / proc-world driver, so stall
    /// reports can say *which* epoch wedged (0 for one-shot worlds).
    epoch: AtomicU64,
    /// Hard bound on any single blocked wait, in milliseconds
    /// (`MPISIM_DEADLINE_MS`, or a [`crate::FaultPlan::deadline_ms`]
    /// override). `None` = block indefinitely.
    deadline_ms: Option<u64>,
    /// Which locally-hosted ranks have absorbed the current epoch's
    /// rank-death marker ([`crate::RankCtx::absorb_rank_failure`]).
    /// Absorption is **per rank**: the transport flag itself stays
    /// raised until the next epoch, so a rank that absorbs a tenant's
    /// death cannot steal the abort from a peer still blocked inside a
    /// synchronous wait on the dead tenant's traffic.
    absorbed_failure: Vec<AtomicBool>,
}

/// One registered blocked wait (see [`WorldState::parked`]).
struct ParkInfo {
    kind: &'static str,
    chans: Vec<ChanKey>,
    since: Instant,
}

/// What a [`WaitGuard`] is parked on — borrowed from the caller so guard
/// creation allocates nothing; signatures are materialized only if the
/// wait actually stalls.
pub(crate) enum WaitChans<'a> {
    Keys(&'a [ChanKey]),
    Ids(&'a [ChanId]),
}

/// Deadline + forensics guard around one blocked wait. Created at wait
/// entry, ticked from the transport's stall probe, cleared on drop.
///
/// `tick` upgrades the stall probe from a liveness hack into a deadlock
/// detector: on peer death it aborts with the failure message *plus* a
/// [`StallReport`]; past the world's deadline it aborts with the report
/// instead of blocking forever.
pub(crate) struct WaitGuard<'a> {
    world: &'a WorldState,
    rank: usize,
    kind: &'static str,
    chans: WaitChans<'a>,
    start: Instant,
    registered: Cell<bool>,
}

impl WaitGuard<'_> {
    /// Stall-probe body: register the parked wait (first tick only), then
    /// abort loudly on peer death or deadline expiry.
    pub(crate) fn tick(&self) {
        if !self.registered.get() {
            let chans = match &self.chans {
                WaitChans::Keys(keys) => keys.to_vec(),
                WaitChans::Ids(ids) => ids.iter().map(|c| c.key).collect(),
            };
            *self.world.parked[self.rank].lock() = Some(ParkInfo {
                kind: self.kind,
                chans,
                since: self.start,
            });
            self.registered.set(true);
        }
        // a rank that absorbed the epoch's death marker (service-layer
        // tenant recovery) keeps waiting — its scheduler already knows;
        // everyone else aborts loudly
        if !self.world.absorbed_failure[self.rank].load(Ordering::Acquire) {
            if let Some(msg) = self.world.transport.peer_failure() {
                panic!("{msg}\n{}", self.world.stall_report());
            }
        }
        if let Some(ms) = self.world.deadline_ms {
            let waited = self.start.elapsed().as_millis() as u64;
            if waited >= ms {
                panic!(
                    "wait deadline of {ms} ms (MPISIM_DEADLINE_MS) expired after \
                     {waited} ms blocked in {} on rank {}\n{}",
                    self.kind,
                    self.rank,
                    self.world.stall_report()
                );
            }
        }
    }
}

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        if self.registered.get() {
            *self.world.parked[self.rank].lock() = None;
        }
    }
}

impl WorldState {
    /// Test-only convenience: a thread-fabric world with no wait deadline.
    #[cfg(test)]
    pub fn new(n_ranks: usize, model: Option<ModelCtx>) -> Arc<Self> {
        let transport: Arc<dyn Transport> =
            Arc::new(crate::transport::thread::ThreadTransport::new(n_ranks));
        Self::with_transport_deadline(n_ranks, model, transport, None)
    }

    /// Build a world over an explicit fabric with an explicit wait
    /// deadline (`None` = never). Callers resolve the deadline themselves
    /// (plan override, then `MPISIM_DEADLINE_MS`) — the programmatic
    /// fault-injection entry point ([`crate::World::with_faults`]) must
    /// not mutate the process environment.
    pub fn with_transport_deadline(
        n_ranks: usize,
        model: Option<ModelCtx>,
        transport: Arc<dyn Transport>,
        deadline_ms: Option<u64>,
    ) -> Arc<Self> {
        assert!(n_ranks > 0);
        if let Some(m) = &model {
            assert_eq!(
                m.topo.n_ranks(),
                n_ranks,
                "topology rank count must match world size"
            );
        }
        Arc::new(Self {
            n_ranks,
            model,
            transport,
            channels: Mutex::new(HashMap::new()),
            rotors: (0..n_ranks).map(|_| AtomicUsize::new(0)).collect(),
            parked: (0..n_ranks).map(|_| Mutex::new(None)).collect(),
            epoch: AtomicU64::new(0),
            deadline_ms,
            absorbed_failure: (0..n_ranks).map(|_| AtomicBool::new(false)).collect(),
        })
    }

    /// Open a deadline/forensics guard around one blocked wait. The stall
    /// closure passed to the transport must call [`WaitGuard::tick`].
    pub(crate) fn begin_wait<'a>(
        &'a self,
        rank: usize,
        kind: &'static str,
        chans: WaitChans<'a>,
    ) -> WaitGuard<'a> {
        WaitGuard {
            world: self,
            rank,
            kind,
            chans,
            start: Instant::now(),
            registered: Cell::new(false),
        }
    }

    /// Assemble the forensic dump of the current (apparent) stall: every
    /// locally-registered parked wait, transport queue depths, peer pid
    /// liveness, the epoch id, and the recorded dead rank (if any).
    pub fn stall_report(&self) -> StallReport {
        let f = self.transport.forensics();
        let waits = self
            .parked
            .iter()
            .enumerate()
            .filter_map(|(rank, slot)| {
                slot.try_lock().and_then(|info| {
                    info.as_ref().map(|p| RankWait {
                        rank,
                        kind: p.kind,
                        chans: p.chans.clone(),
                        waited_ms: p.since.elapsed().as_millis() as u64,
                    })
                })
            })
            .collect();
        StallReport {
            epoch: self.epoch.load(Ordering::Relaxed),
            dead_rank: self.transport.dead_rank(),
            waits,
            fabric: f.fabric,
            mailbox_depths: f.mailbox_depths,
            outbox_depth: f.outbox_depth,
            peers: f.peers,
            links: f.links,
        }
    }

    /// Mirror the driver's epoch counter into stall forensics.
    pub(crate) fn set_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::Relaxed);
    }

    /// The world's wait deadline, if one is configured.
    pub(crate) fn deadline_ms(&self) -> Option<u64> {
        self.deadline_ms
    }

    /// Fault-injection hook for ops that bypass the transport trait
    /// (persistent-channel push/pop) — a no-op on bare fabrics.
    pub(crate) fn inject(&self, rank: usize, op: FaultOp) {
        self.transport.inject(rank, op);
    }

    /// Payload packaging the world's transport requires from senders.
    pub(crate) fn payload_mode(&self) -> crate::transport::PayloadMode {
        self.transport.mode()
    }

    /// Which fabric this world moves bytes over (`"thread"` / `"shm"` /
    /// `"sock"`). Stable across the world's lifetime — cache keys built
    /// from it stay valid for every epoch of a pooled world.
    pub(crate) fn fabric(&self) -> &'static str {
        self.transport.fabric()
    }

    /// Readiness scan over a channel set starting at `start` (wrapping):
    /// index of the first channel holding a delivered, unconsumed message,
    /// else `None`. The rotated entry point transports poll with.
    pub(crate) fn poll_any_from(chans: &[ChanId], start: usize) -> Option<usize> {
        let n = chans.len();
        (0..n).map(|i| (start + i) % n).find(|&i| chans[i].ready())
    }

    /// Non-blocking arrival poll over a channel set for `global_rank`:
    /// index of a channel holding a delivered, unconsumed message, else
    /// `None`. The scan origin rotates per call (see
    /// [`WorldState::poll_any_from`]), so repeated polls over a set with
    /// several hot channels visit all of them instead of always reporting
    /// the lowest ready index.
    pub(crate) fn poll_any(&self, global_rank: usize, chans: &[ChanId]) -> Option<usize> {
        if chans.is_empty() {
            return None;
        }
        let start = self.rotors[global_rank].fetch_add(1, Ordering::Relaxed) % chans.len();
        Self::poll_any_from(chans, start)
    }

    /// Block `global_rank` until **some** channel of the set has a message,
    /// returning its index. The transport yield-spins then parks on the
    /// whole set — one park point for N channels, woken by whichever
    /// deposit lands first, so completion follows delivery order instead
    /// of channel order. The stall probe keeps peer death and the mixed
    /// plain/persistent misuse loud while parked.
    pub(crate) fn wait_any(&self, global_rank: usize, chans: &[ChanId]) -> usize {
        assert!(!chans.is_empty(), "wait_any on an empty channel set");
        let start = self.rotors[global_rank].fetch_add(1, Ordering::Relaxed) % chans.len();
        let guard = self.begin_wait(global_rank, "wait_any", WaitChans::Ids(chans));
        let stall = || {
            guard.tick();
            // keep the mixed plain/persistent misuse loud here too: a
            // plain send aimed at a watched persistent signature lands
            // in the mailbox this set bypasses, and would otherwise
            // hang the parked rank silently
            for c in chans {
                let (ctx_id, src, _, tag) = c.key;
                assert!(
                    !self.transport.probe(global_rank, ctx_id, src, tag),
                    "wait_any on channel {:?}: matching message sits in the \
                     plain mailbox — mixing a plain send with a persistent \
                     receive on one signature is unsupported (use send_init \
                     on the sender)",
                    c.key
                );
            }
        };
        self.transport.wait_any(global_rank, chans, start, &stall)
    }

    /// Record that a rank of the current epoch panicked (pool worker).
    /// `Some(rank)` names the victim for stall forensics.
    pub(crate) fn note_rank_panic(&self, rank: Option<usize>) {
        self.transport.note_rank_panic(rank);
    }

    /// Clear the panic marker (and every rank's absorbed-it marker) at
    /// the start of a fresh epoch.
    pub(crate) fn clear_rank_panic(&self) {
        self.transport.clear_rank_panic();
        for a in &self.absorbed_failure {
            a.store(false, Ordering::Release);
        }
    }

    /// Absorb the current rank-death marker **for `rank` only**,
    /// returning the failure message the first time this rank absorbs
    /// it (see [`crate::RankCtx::absorb_rank_failure`]). The transport
    /// flag is left raised — clearing it here would race peers still
    /// blocked in synchronous waits on the dead tenant's traffic, whose
    /// only way out is the abort that flag drives.
    pub(crate) fn absorb_rank_failure(&self, rank: usize) -> Option<String> {
        let msg = self.transport.peer_failure()?;
        if self.absorbed_failure[rank].swap(true, Ordering::AcqRel) {
            return None; // this rank already absorbed the epoch's failure
        }
        Some(msg)
    }

    /// Get-or-create the persistent channel for `key` — whichever side
    /// registers first creates it; the other side attaches to the same
    /// slot, completing the match once at init time.
    #[cfg(test)]
    pub fn channel<T: Clone + Send + 'static>(&self, key: ChanKey) -> Arc<Channel<T>> {
        Self::channel_in(&mut self.channels.lock(), &self.transport, key, key.2, 0)
    }

    /// Get-or-create against an already-held registry lock — the
    /// bulk-registration path ([`ChanRegistrar`]) resolves many signatures
    /// under one lock acquisition. The transport decides where the
    /// channel's wire buffers live (process heap vs. shared segment).
    fn channel_in<T: Clone + Send + 'static>(
        map: &mut HashMap<ChanKey, ChanSlot>,
        transport: &Arc<dyn Transport>,
        key: ChanKey,
        dst_world: usize,
        len_hint: usize,
    ) -> Arc<Channel<T>> {
        let slot = map
            .entry(key)
            .or_insert_with(|| {
                let chan = Arc::new(
                    match transport.make_channel(
                        key,
                        dst_world,
                        elem_bytes::<T>(),
                        std::any::type_name::<T>(),
                        len_hint,
                    ) {
                        ChanFabric::Local => Channel::<T>::thread(key),
                        ChanFabric::Shm(raw) => Channel::<T>::shm(key, raw),
                        ChanFabric::Sock(wire) => Channel::<T>::sock(key, wire),
                    },
                );
                let pending = {
                    let chan = Arc::clone(&chan);
                    Arc::new(move || chan.pending_len()) as Arc<dyn Fn() -> usize + Send + Sync>
                };
                let drain = {
                    let chan = Arc::clone(&chan);
                    Arc::new(move || chan.drain_pending()) as Arc<dyn Fn() + Send + Sync>
                };
                ChanSlot {
                    type_name: std::any::type_name::<T>(),
                    chan: chan as Arc<dyn Any + Send + Sync>,
                    pending,
                    drain,
                }
            })
            .clone();
        let registered = slot.type_name;
        Arc::downcast::<Channel<T>>(slot.chan).unwrap_or_else(|_| {
            panic!(
                "persistent channel {key:?} datatype mismatch: registered {registered}, \
                 requested {}",
                std::any::type_name::<T>()
            )
        })
    }

    /// Open the channel registry for a bulk registration pass.
    pub(crate) fn chan_registrar(&self) -> ChanRegistrar<'_> {
        ChanRegistrar {
            guard: self.channels.lock(),
            transport: &self.transport,
        }
    }

    /// Discard all in-flight traffic: every transport-held envelope
    /// (mailbox queues / shm mailbox rings) and every undelivered
    /// persistent-channel payload, via the per-channel drain hooks —
    /// so the failed-epoch guarantee holds identically on every fabric.
    /// Registrations (the channel registry itself) survive. A pooled world
    /// calls this after a panicked epoch so stale messages cannot leak
    /// into the next one.
    pub fn drain_in_flight(&self) {
        self.transport.drain_in_flight();
        for slot in self.channels.lock().values() {
            (slot.drain)();
        }
    }

    /// Does the persistent channel for `key` exist with messages pending?
    /// Untyped — used by the plain receive path to diagnose mixed traffic.
    pub fn channel_pending(&self, key: &ChanKey) -> bool {
        self.channels
            .lock()
            .get(key)
            .is_some_and(|slot| (slot.pending)() > 0)
    }

    /// Deposit an envelope in `global_dst`'s mailbox and wake any waiter.
    /// `src_world` identifies the producing rank (the shm fabric routes
    /// each (src, dst) pair over its own single-producer ring).
    pub fn deposit(&self, src_world: usize, global_dst: usize, env: Envelope) {
        self.transport.deposit(src_world, global_dst, env);
    }

    /// Blocking matched receive for `global_dst`: first envelope with the
    /// given (ctx, src, tag). Returns the envelope and the queue length that
    /// was searched (for queue-cost charging). `dst_comm_rank` is the
    /// receiver's rank within the communicator — the channel-signature
    /// coordinate used to diagnose a persistent send aimed at this plain
    /// receive (which would otherwise hang silently: persistent sends
    /// bypass the mailbox).
    pub fn match_recv(
        &self,
        global_dst: usize,
        ctx_id: u64,
        src: usize,
        dst_comm_rank: usize,
        tag: u64,
    ) -> (Envelope, usize) {
        let chan_key: ChanKey = (ctx_id, src, dst_comm_rank, tag);
        let keys = [chan_key];
        let guard = self.begin_wait(global_dst, "plain recv", WaitChans::Keys(&keys));
        let stall = || {
            guard.tick();
            assert!(
                !self.channel_pending(&chan_key),
                "plain recv from {src} tag {tag}: matching message sits on a \
                 persistent channel — mixing a persistent send with a plain \
                 recv on one signature is unsupported (use recv_init on the \
                 receiver)"
            );
        };
        self.transport
            .match_recv(global_dst, ctx_id, src, tag, &stall)
    }

    /// Non-blocking probe: would a matched receive complete immediately?
    pub fn probe(&self, global_dst: usize, ctx_id: u64, src: usize, tag: u64) -> bool {
        self.transport.probe(global_dst, ctx_id, src, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(ctx_id: u64, src: usize, tag: u64, val: u32) -> Envelope {
        Envelope {
            ctx_id,
            src,
            tag,
            arrival: 0.0,
            payload: Payload::typed(vec![val]),
        }
    }

    fn take_u32(payload: Payload) -> Vec<u32> {
        payload.take::<u32>().expect("u32 payload")
    }

    #[test]
    fn deposit_then_match() {
        let w = WorldState::new(2, None);
        w.deposit(0, 1, env(0, 0, 5, 42));
        let (got, searched) = w.match_recv(1, 0, 0, 1, 5);
        assert_eq!(searched, 1);
        assert_eq!(take_u32(got.payload), vec![42]);
    }

    #[test]
    fn matching_respects_tag_and_ctx() {
        let w = WorldState::new(1, None);
        w.deposit(0, 0, env(0, 0, 1, 10));
        w.deposit(0, 0, env(1, 0, 2, 20));
        w.deposit(0, 0, env(0, 0, 2, 30));
        // match ctx 0 / tag 2 skips both earlier non-matching envelopes
        let (got, _) = w.match_recv(0, 0, 0, 0, 2);
        assert_eq!(take_u32(got.payload), vec![30]);
        assert!(w.probe(0, 0, 0, 1));
        assert!(w.probe(0, 1, 0, 2));
        assert!(!w.probe(0, 0, 0, 2));
    }

    #[test]
    fn non_overtaking_same_signature() {
        let w = WorldState::new(1, None);
        w.deposit(0, 0, env(0, 3, 9, 1));
        w.deposit(0, 0, env(0, 3, 9, 2));
        let (a, _) = w.match_recv(0, 0, 3, 0, 9);
        let (b, _) = w.match_recv(0, 0, 3, 0, 9);
        assert_eq!(take_u32(a.payload), vec![1]);
        assert_eq!(take_u32(b.payload), vec![2]);
    }

    #[test]
    fn payload_bytes_roundtrip_and_mismatch() {
        let p = Payload::bytes_from(&[1.5f64, -2.25, 8.0]);
        let back = p.take::<f64>().expect("same type roundtrips");
        assert_eq!(back, vec![1.5, -2.25, 8.0]);
        let p = Payload::bytes_from(&[7u32]);
        let err = p.take::<f64>().expect_err("type name mismatch");
        assert_eq!(err, "u32");
    }

    #[test]
    fn channel_fifo_and_reuse() {
        let w = WorldState::new(2, None);
        let c = w.channel::<u32>((0, 0, 1, 7));
        assert!(!c.ready());
        c.push(&[1, 2], 0.5);
        c.push(&[3, 4], 1.5);
        assert!(c.ready());
        let (buf, arrival) = c.pop_with(|| {});
        assert_eq!((buf.as_slice(), arrival), ([1, 2].as_slice(), 0.5));
        c.recycle(buf);
        let (buf, arrival) = c.pop_with(|| {});
        assert_eq!((buf.as_slice(), arrival), ([3, 4].as_slice(), 1.5));
        c.recycle(buf);
        assert!(!c.ready());
        // both sides resolve to the same slot
        let c2 = w.channel::<u32>((0, 0, 1, 7));
        c2.push(&[9, 9], 0.0);
        assert!(c.ready());
    }

    #[test]
    fn channel_blocking_pop_wakes_on_push() {
        let w = WorldState::new(1, None);
        let c = w.channel::<u8>((0, 0, 0, 1));
        let c2 = w.channel::<u8>((0, 0, 0, 1));
        let t = std::thread::spawn(move || {
            let (buf, _) = c2.pop_with(|| {});
            buf[0]
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.push(&[42], 0.0);
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn try_pop_is_nonblocking_and_fifo() {
        let w = WorldState::new(1, None);
        let c = w.channel::<u32>((0, 0, 0, 2));
        assert!(c.try_pop().is_none());
        c.push(&[7], 0.25);
        c.push(&[8], 0.75);
        let (buf, arrival) = c.try_pop().expect("message delivered");
        assert_eq!((buf.as_slice(), arrival), ([7].as_slice(), 0.25));
        c.recycle(buf);
        let (buf, _) = c.try_pop().expect("second message delivered");
        assert_eq!(buf.as_slice(), [8].as_slice());
        c.recycle(buf);
        assert!(c.try_pop().is_none());
    }

    #[test]
    fn poll_any_from_scans_from_the_start_position() {
        let w = WorldState::new(1, None);
        let a = w.channel::<u8>((0, 0, 0, 10));
        let b = w.channel::<u8>((0, 0, 0, 11));
        let ids = [a.id(), b.id()];
        assert_eq!(WorldState::poll_any_from(&ids, 0), None);
        b.push(&[1], 0.0);
        assert_eq!(WorldState::poll_any_from(&ids, 0), Some(1));
        a.push(&[2], 0.0);
        // both ready: the start position picks the winner
        assert_eq!(WorldState::poll_any_from(&ids, 0), Some(0));
        assert_eq!(WorldState::poll_any_from(&ids, 1), Some(1));
    }

    #[test]
    fn poll_any_rotation_visits_every_hot_channel() {
        // two channels permanently hot: the rotating scan start must
        // surface BOTH across consecutive polls — a fixed first-ready scan
        // would report index 0 forever and starve channel 1
        let w = WorldState::new(1, None);
        let a = w.channel::<u8>((0, 0, 0, 30));
        let b = w.channel::<u8>((0, 0, 0, 31));
        a.push(&[1], 0.0);
        b.push(&[2], 0.0);
        let ids = [a.id(), b.id()];
        let seen: std::collections::HashSet<usize> = (0..4)
            .map(|_| w.poll_any(0, &ids).expect("both channels are hot"))
            .collect();
        assert_eq!(
            seen.len(),
            2,
            "rotating poll_any must visit both hot channels"
        );
    }

    #[test]
    fn wait_any_parks_on_the_set_and_wakes_on_either_channel() {
        // the receiver parks on BOTH channels; a deposit into the second
        // one (registered last) must wake it — the park is on the set, not
        // on any single channel's condvar
        let w = WorldState::new(1, None);
        let a = w.channel::<u8>((0, 0, 0, 20));
        let b = w.channel::<u8>((0, 0, 0, 21));
        let w2 = Arc::clone(&w);
        let (aid, bid) = (a.id(), b.id());
        let t = std::thread::spawn(move || w2.wait_any(0, &[aid, bid]));
        // let the receiver get past the spin phase and genuinely park
        std::thread::sleep(std::time::Duration::from_millis(30));
        b.push(&[9], 0.0);
        assert_eq!(t.join().unwrap(), 1);
        b.try_pop()
            .expect("wait_any leaves the message on the channel");
        // and again for the other channel, now that the wait set is warm
        let (aid, bid) = (a.id(), b.id());
        let w2 = Arc::clone(&w);
        let t = std::thread::spawn(move || w2.wait_any(0, &[aid, bid]));
        std::thread::sleep(std::time::Duration::from_millis(30));
        a.push(&[3], 0.0);
        assert_eq!(t.join().unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "datatype mismatch")]
    fn channel_type_mismatch_panics() {
        let w = WorldState::new(1, None);
        let _ = w.channel::<u32>((0, 0, 0, 3));
        let _ = w.channel::<f64>((0, 0, 0, 3));
    }

    #[test]
    fn blocking_recv_wakes_on_deposit() {
        let w = WorldState::new(1, None);
        let w2 = Arc::clone(&w);
        let t = std::thread::spawn(move || {
            let (env, _) = w2.match_recv(0, 0, 0, 0, 7);
            take_u32(env.payload)
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        w.deposit(0, 0, env(0, 0, 7, 99));
        assert_eq!(t.join().unwrap(), vec![99]);
    }
}
