//! Stress/soak tests of the simulated MPI runtime: randomized traffic,
//! nested communicators, collective batteries across world sizes.

use mpisim::collectives::{op_max_u64, op_sum_f64, op_sum_u64};
use mpisim::World;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Randomized point-to-point soak: every rank sends a deterministic random
/// schedule of messages; receivers know the schedule (same seed) and check
/// every payload.
#[test]
fn randomized_p2p_soak() {
    const N: usize = 8;
    const MSGS: usize = 200;
    // schedule[k] = (src, dst, tag, len) — generated identically everywhere
    let schedule: Vec<(usize, usize, u64, usize)> = {
        let mut rng = StdRng::seed_from_u64(2024);
        (0..MSGS)
            .map(|_| {
                let src = rng.gen_range(0..N);
                let mut dst = rng.gen_range(0..N);
                if dst == src {
                    dst = (dst + 1) % N;
                }
                (src, dst, rng.gen_range(0..8u64), rng.gen_range(1..64usize))
            })
            .collect()
    };
    let payload = |k: usize, len: usize| -> Vec<u64> {
        (0..len as u64).map(|i| (k as u64) << 16 | i).collect()
    };

    World::run(N, |ctx| {
        let comm = ctx.comm_world();
        // send in schedule order; receive in schedule order (per-source
        // FIFO per tag keeps this deterministic)
        for (k, &(src, dst, tag, len)) in schedule.iter().enumerate() {
            if ctx.rank() == src {
                ctx.send(&comm, dst, tag, &payload(k, len));
            }
        }
        for (k, &(src, dst, tag, len)) in schedule.iter().enumerate() {
            if ctx.rank() == dst {
                let got: Vec<u64> = ctx.recv(&comm, src, tag);
                assert_eq!(got, payload(k, len), "message {k} corrupted");
            }
        }
    });
}

/// All collectives on every world size 1..=9, with value checks.
#[test]
fn collective_battery_all_sizes() {
    for n in 1..=9usize {
        World::run(n, move |ctx| {
            let comm = ctx.comm_world();
            let me = ctx.rank() as u64;

            let sum = ctx.allreduce(&comm, &[me + 1], op_sum_u64);
            assert_eq!(sum[0], (n as u64 * (n as u64 + 1)) / 2);

            let max = ctx.allreduce(&comm, &[me * me], op_max_u64);
            assert_eq!(max[0], ((n as u64 - 1) * (n as u64 - 1)));

            let gathered = ctx.allgather(&comm, &[me]);
            assert_eq!(gathered, (0..n as u64).collect::<Vec<_>>());

            let (all, counts) = ctx.allgatherv(&comm, &vec![me; ctx.rank() % 3]);
            assert_eq!(counts, (0..n).map(|r| r % 3).collect::<Vec<_>>());
            assert_eq!(all.len(), counts.iter().sum::<usize>());

            let prefix = ctx.scan(&comm, &[1u64], op_sum_u64);
            assert_eq!(prefix[0], me + 1);

            let off = ctx.exscan_sum(&comm, 2);
            assert_eq!(off, me * 2);

            ctx.barrier(&comm);

            let fsum = ctx.allreduce(&comm, &[0.5f64], op_sum_f64);
            assert!((fsum[0] - n as f64 * 0.5).abs() < 1e-12);
        });
    }
}

/// Collectives on split sub-communicators run independently and correctly.
#[test]
fn collectives_on_subcommunicators() {
    World::run(12, |ctx| {
        let comm = ctx.comm_world();
        let color = (ctx.rank() % 3) as u64;
        let sub = ctx.comm_split(&comm, color, ctx.rank() as u64);
        assert_eq!(sub.size(), 4);
        // sum of world ranks within the color group
        let s = ctx.allreduce(&sub, &[ctx.rank() as u64], op_sum_u64);
        let expect: u64 = (0..12u64).filter(|r| r % 3 == color).sum();
        assert_eq!(s[0], expect);
        // and a nested split of the split
        let sub2 = ctx.comm_split(&sub, (sub.rank() % 2) as u64, 0);
        assert_eq!(sub2.size(), 2);
        ctx.barrier(&sub2);
    });
}

/// Large payloads survive intact (exercise buffering, not just tiny
/// messages).
#[test]
fn large_payload_roundtrip() {
    World::run(2, |ctx| {
        let comm = ctx.comm_world();
        let n = 1 << 18; // 256k doubles = 2 MB
        if ctx.rank() == 0 {
            let data: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
            ctx.send(&comm, 1, 0, &data);
        } else {
            let got: Vec<f64> = ctx.recv(&comm, 0, 0);
            assert_eq!(got.len(), n);
            assert_eq!(got[12345], 12345.0 * 0.25);
            assert_eq!(got[n - 1], (n - 1) as f64 * 0.25);
        }
    });
}

/// Many persistent exchanges interleaved with collectives do not
/// cross-match.
#[test]
fn persistent_and_collectives_interleaved() {
    use mpisim::persistent::shared_buf;
    World::run(4, |ctx| {
        let comm = ctx.comm_world();
        let peer = ctx.rank() ^ 1;
        let sbuf = shared_buf(vec![0u64; 1]);
        let rbuf = shared_buf(vec![0u64; 1]);
        let send = ctx.send_init(&comm, peer, 5, sbuf.clone(), 0, 1);
        let mut recv = ctx.recv_init(&comm, peer, 5, rbuf.clone(), 0, 1);
        for it in 0..20u64 {
            sbuf.write()[0] = ctx.rank() as u64 * 1000 + it;
            send.start(ctx);
            recv.start();
            // a collective in the middle of the exchange
            let total = ctx.allreduce(&comm, &[it], op_sum_u64);
            assert_eq!(total[0], it * 4);
            recv.wait(ctx);
            assert_eq!(rbuf.read()[0], peer as u64 * 1000 + it);
        }
    });
}

/// Modeled worlds accumulate strictly increasing clocks under traffic, and
/// collective clocks grow with world size.
#[test]
fn modeled_clocks_accumulate() {
    use locality::Topology;
    use perfmodel::PostalModel;
    use std::sync::Arc;
    let max_clock = |n: usize, rounds: usize| -> f64 {
        let topo = Topology::block_nodes(n, 4);
        let model = Arc::new(PostalModel::new(1e-6, 1e-9));
        World::run_modeled(topo, model, move |ctx| {
            let comm = ctx.comm_world();
            for _ in 0..rounds {
                ctx.allreduce(&comm, &[1u64], op_sum_u64);
            }
            ctx.clock()
        })
        .into_iter()
        .fold(0.0, f64::max)
    };
    let t1 = max_clock(8, 1);
    let t5 = max_clock(8, 5);
    assert!(t5 > 4.0 * t1 && t5 < 6.0 * t1, "t1={t1} t5={t5}");
    assert!(max_clock(16, 1) > max_clock(2, 1));
}
