//! Process-global accumulation of measured timings for model refitting.
//!
//! Every probe a tuned request measures is also an observation of the
//! real machine: "an iteration that moves `m` messages / `b` bytes took
//! `t` seconds". Pooled here, those observations feed
//! [`perfmodel::fit_postal`] so patterns that were never probed still
//! benefit from a better-calibrated model.
//!
//! Refitting is strictly *opt-in and read-only*: nothing here mutates
//! the model `Backend::Auto` consults. Selection silently shifting
//! under a running process (or under a test suite whose parallel tests
//! would race on the global pool) is exactly the nondeterminism the
//! equivalence suite exists to rule out. Callers that want the fitted
//! parameters build a model from [`fitted_params`] explicitly.

use parking_lot::Mutex;
use perfmodel::{fit_postal, ClassParams, FitObs, FittedParams};

static OBSERVATIONS: Mutex<Vec<FitObs>> = Mutex::new(Vec::new());

/// Record one measured iteration: `msgs`/`bytes` from the plan's static
/// stats, `secs` from the probe timer. Non-finite or non-positive
/// durations are dropped (a virtual-clock world that charged nothing
/// has nothing to teach the fit).
pub fn record_observation(msgs: f64, bytes: f64, secs: f64) {
    if secs.is_finite() && secs > 0.0 && msgs.is_finite() && bytes.is_finite() {
        OBSERVATIONS.lock().push(FitObs { msgs, bytes, secs });
    }
}

/// Observations recorded so far, process-wide.
pub fn observation_count() -> usize {
    OBSERVATIONS.lock().len()
}

/// Drop all recorded observations (test isolation).
pub fn clear_observations() {
    OBSERVATIONS.lock().clear();
}

/// Least-squares postal parameters over everything recorded so far, or
/// `None` while the pool is too thin or degenerate to fit.
pub fn fitted_params() -> Option<FittedParams> {
    let obs = OBSERVATIONS.lock();
    fit_postal(&obs)
}

/// The fitted-vs-default report (DESIGN.md §11): what the measurements
/// say the machine looks like, relative to the baked-in parameters.
pub fn refit_report(default: &ClassParams) -> String {
    match fitted_params() {
        Some(f) => f.delta_report(default),
        None => format!(
            "no refit available ({} observation(s) — need at least two \
             spanning different message/byte mixes)",
            observation_count()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole surface: the pool is process-global,
    // so separate #[test] fns would race under the parallel harness.
    #[test]
    fn record_fit_report_clear() {
        clear_observations();
        let d = ClassParams::new(1.0e-6, 1.0e-10);
        assert!(refit_report(&d).contains("no refit available"));

        record_observation(f64::NAN, 8.0, 1.0e-6); // dropped
        record_observation(4.0, 64.0, 0.0); // dropped
        record_observation(4.0, 1024.0, 2.0e-6 * 4.0 + 2.0e-10 * 1024.0);
        record_observation(16.0, 512.0, 2.0e-6 * 16.0 + 2.0e-10 * 512.0);
        record_observation(2.0, 65536.0, 2.0e-6 * 2.0 + 2.0e-10 * 65536.0);
        assert_eq!(observation_count(), 3);

        let f = fitted_params().expect("well-conditioned");
        assert!((f.alpha - 2.0e-6).abs() < 1e-12, "alpha={}", f.alpha);
        assert!((f.beta - 2.0e-10).abs() < 1e-16, "beta={}", f.beta);
        assert!(refit_report(&d).contains("2.00x default"));

        clear_observations();
        assert_eq!(observation_count(), 0);
    }
}
