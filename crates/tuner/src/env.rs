//! Tuning policy + the `MPISIM_TUNE_*` / `MPISIM_PROFILE_DIR` knobs.
//!
//! Parsing follows the contract the stall/deadline knobs established:
//! pure parse functions unit-testable without touching process
//! environment, and env readers that abort naming the offending token
//! and the accepted grammar instead of silently falling back.

use std::path::PathBuf;
use std::sync::OnceLock;

/// How `Backend::Tuned` spends its measurement phase.
#[derive(Debug, Clone, PartialEq)]
pub struct TunePolicy {
    /// Total probe iterations before the winner locks in
    /// (`MPISIM_TUNE_PROBE_ITERS`, default 12). Clamped up so every
    /// candidate is measured at least once.
    pub probe_iters: usize,
    /// A candidate is probed only if the model ranks its cost within
    /// this factor of the model's best (`MPISIM_TUNE_FACTOR`, default
    /// 2.0, must be ≥ 1.0). 1.0 degenerates to trusting the model.
    pub factor: f64,
    /// Directory of the persistent profile cache
    /// (`MPISIM_PROFILE_DIR`); `None` disables persistence.
    pub profile_dir: Option<PathBuf>,
    /// Spot-check budget for cached winners (`MPISIM_TUNE_RECHECK`,
    /// default 0 = trust a cached winner forever). When positive, a
    /// profile-cache hit does not lock the winner in: the request runs
    /// the cached winner for this many warm-up iterations, then re-runs
    /// the normal probe schedule and re-publishes — so a winner the
    /// fabric has drifted away from is evicted instead of trusted
    /// forever.
    pub recheck_iters: usize,
    /// The consumer's model-refit generation (`MPISIM_TUNE_FIT_VERSION`,
    /// default 0). Cached entries measured under an older generation are
    /// treated as misses (re-probe, re-publish at this generation):
    /// bumping the version after a model refit evicts winners the old
    /// model crowned.
    pub fit_version: u64,
}

impl Default for TunePolicy {
    fn default() -> Self {
        Self {
            probe_iters: 12,
            factor: 2.0,
            profile_dir: None,
            recheck_iters: 0,
            fit_version: 0,
        }
    }
}

impl TunePolicy {
    /// The process-wide policy from the environment, read once. Tests
    /// needing a specific policy should build one programmatically (the
    /// builder methods below) — process environment is shared state.
    pub fn from_env() -> Self {
        static POLICY: OnceLock<TunePolicy> = OnceLock::new();
        POLICY
            .get_or_init(|| {
                let mut p = TunePolicy::default();
                if let Ok(v) = std::env::var("MPISIM_TUNE_PROBE_ITERS") {
                    p.probe_iters = parse_probe_iters("MPISIM_TUNE_PROBE_ITERS", &v)
                        .unwrap_or_else(|e| panic!("{e}"));
                }
                if let Ok(v) = std::env::var("MPISIM_TUNE_FACTOR") {
                    p.factor =
                        parse_factor("MPISIM_TUNE_FACTOR", &v).unwrap_or_else(|e| panic!("{e}"));
                }
                if let Ok(v) = std::env::var("MPISIM_PROFILE_DIR") {
                    p.profile_dir = Some(
                        parse_profile_dir("MPISIM_PROFILE_DIR", &v)
                            .unwrap_or_else(|e| panic!("{e}")),
                    );
                }
                if let Ok(v) = std::env::var("MPISIM_TUNE_RECHECK") {
                    p.recheck_iters = parse_recheck_iters("MPISIM_TUNE_RECHECK", &v)
                        .unwrap_or_else(|e| panic!("{e}"));
                }
                if let Ok(v) = std::env::var("MPISIM_TUNE_FIT_VERSION") {
                    p.fit_version = parse_fit_version("MPISIM_TUNE_FIT_VERSION", &v)
                        .unwrap_or_else(|e| panic!("{e}"));
                }
                p
            })
            .clone()
    }

    /// Builder: replace the probe-iteration budget.
    pub fn with_probe_iters(mut self, iters: usize) -> Self {
        self.probe_iters = iters;
        self
    }

    /// Builder: replace the candidate-admission factor.
    pub fn with_factor(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "tune factor must be a finite value >= 1.0, got {factor}"
        );
        self.factor = factor;
        self
    }

    /// Builder: attach a profile-cache directory.
    pub fn with_profile_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.profile_dir = Some(dir.into());
        self
    }

    /// Builder: replace the cached-winner spot-check budget (0 = trust
    /// a cached winner forever).
    pub fn with_recheck_iters(mut self, iters: usize) -> Self {
        self.recheck_iters = iters;
        self
    }

    /// Builder: replace the model-refit generation consulted entries
    /// must match.
    pub fn with_fit_version(mut self, version: u64) -> Self {
        self.fit_version = version;
        self
    }
}

/// Parse `MPISIM_TUNE_PROBE_ITERS`: a positive iteration count.
pub fn parse_probe_iters(var: &str, value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        Ok(_) => Err(format!(
            "{var}={value:?}: must be a positive number of probe iterations \
             (0 would never measure anything; unset the variable to use the \
             default, e.g. {var}=12)"
        )),
        Err(_) => Err(format!(
            "{var}={value:?}: expected a positive number of probe iterations \
             (e.g. {var}=12)"
        )),
    }
}

/// Parse `MPISIM_TUNE_FACTOR`: a finite float ≥ 1.0.
pub fn parse_factor(var: &str, value: &str) -> Result<f64, String> {
    match value.trim().parse::<f64>() {
        Ok(f) if f.is_finite() && f >= 1.0 => Ok(f),
        Ok(_) => Err(format!(
            "{var}={value:?}: must be a finite factor >= 1.0 (candidates \
             within this multiple of the model's best cost are probed, \
             e.g. {var}=2.0)"
        )),
        Err(_) => Err(format!(
            "{var}={value:?}: expected a decimal factor >= 1.0 (e.g. {var}=2.0)"
        )),
    }
}

/// Parse `MPISIM_TUNE_RECHECK`: a non-negative warm-up iteration count
/// (0 disables spot-checking — the default).
pub fn parse_recheck_iters(var: &str, value: &str) -> Result<usize, String> {
    value.trim().parse::<usize>().map_err(|_| {
        format!(
            "{var}={value:?}: expected a non-negative number of spot-check \
             warm-up iterations (0 trusts cached winners forever, \
             e.g. {var}=8)"
        )
    })
}

/// Parse `MPISIM_TUNE_FIT_VERSION`: a non-negative refit generation.
pub fn parse_fit_version(var: &str, value: &str) -> Result<u64, String> {
    value.trim().parse::<u64>().map_err(|_| {
        format!(
            "{var}={value:?}: expected a non-negative model-refit \
             generation number (cached winners measured under an older \
             generation are re-probed, e.g. {var}=1)"
        )
    })
}

/// Parse `MPISIM_PROFILE_DIR`: a non-empty directory path. Existence is
/// not checked here — the cache creates the directory on first write and
/// degrades to "no cached answer" when it cannot.
pub fn parse_profile_dir(var: &str, value: &str) -> Result<PathBuf, String> {
    let trimmed = value.trim();
    if trimmed.is_empty() {
        return Err(format!(
            "{var}={value:?}: expected a directory path for the persistent \
             profile cache (e.g. {var}=/tmp/mpisim-profiles); unset the \
             variable to disable persistence"
        ));
    }
    Ok(PathBuf::from(trimmed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_iters_grammar() {
        assert_eq!(parse_probe_iters("V", "8"), Ok(8));
        assert_eq!(parse_probe_iters("V", " 3 "), Ok(3));
        let zero = parse_probe_iters("V", "0").unwrap_err();
        assert!(zero.contains("V=\"0\""), "{zero}");
        assert!(zero.contains("V=12"), "{zero}");
        let junk = parse_probe_iters("V", "many").unwrap_err();
        assert!(junk.contains("V=\"many\""), "{junk}");
    }

    #[test]
    fn factor_grammar() {
        assert_eq!(parse_factor("V", "1.5"), Ok(1.5));
        assert_eq!(parse_factor("V", "1"), Ok(1.0));
        for bad in ["0.5", "-2", "nan", "inf", "fast"] {
            let err = parse_factor("V", bad).unwrap_err();
            assert!(err.contains(&format!("V={bad:?}")), "{err}");
            assert!(err.contains(">= 1.0"), "{err}");
        }
    }

    #[test]
    fn profile_dir_grammar() {
        assert_eq!(
            parse_profile_dir("V", "/tmp/x"),
            Ok(PathBuf::from("/tmp/x"))
        );
        let err = parse_profile_dir("V", "   ").unwrap_err();
        assert!(err.contains("directory path"), "{err}");
        assert!(err.contains("V=\"   \""), "{err}");
    }

    #[test]
    fn recheck_grammar() {
        assert_eq!(parse_recheck_iters("V", "0"), Ok(0));
        assert_eq!(parse_recheck_iters("V", " 8 "), Ok(8));
        let err = parse_recheck_iters("V", "forever").unwrap_err();
        assert!(err.contains("V=\"forever\""), "{err}");
        assert!(err.contains("V=8"), "{err}");
    }

    #[test]
    fn fit_version_grammar() {
        assert_eq!(parse_fit_version("V", "0"), Ok(0));
        assert_eq!(parse_fit_version("V", "3"), Ok(3));
        let err = parse_fit_version("V", "-1").unwrap_err();
        assert!(err.contains("V=\"-1\""), "{err}");
        assert!(err.contains("generation"), "{err}");
    }

    #[test]
    fn builder_clamps_nothing_but_validates_factor() {
        let p = TunePolicy::default()
            .with_probe_iters(4)
            .with_factor(3.0)
            .with_profile_dir("/tmp/cache")
            .with_recheck_iters(6)
            .with_fit_version(2);
        assert_eq!(p.probe_iters, 4);
        assert_eq!(p.factor, 3.0);
        assert_eq!(
            p.profile_dir.as_deref(),
            Some(std::path::Path::new("/tmp/cache"))
        );
        assert_eq!(p.recheck_iters, 6);
        assert_eq!(p.fit_version, 2);
        // the untouched defaults: no spot-checking, generation 0
        let d = TunePolicy::default();
        assert_eq!(d.recheck_iters, 0);
        assert_eq!(d.fit_version, 0);
    }

    #[test]
    #[should_panic(expected = ">= 1.0")]
    fn builder_rejects_sub_unit_factor() {
        let _ = TunePolicy::default().with_factor(0.5);
    }
}
