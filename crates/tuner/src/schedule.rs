//! The round-robin probe schedule of one tuned request.
//!
//! Iteration `i < probe_iters` runs candidate `i % n_candidates`; after
//! that the schedule is exhausted and [`ProbeSchedule::winner`] names
//! the candidate with the lowest median measured time. Medians (not
//! means) so one cold-start or preempted outlier sample cannot steal
//! the decision.

/// Measurement plan + recorded samples for one tuned request.
#[derive(Debug, Clone)]
pub struct ProbeSchedule {
    probe_iters: usize,
    samples: Vec<Vec<f64>>,
}

impl ProbeSchedule {
    /// A schedule probing `n_candidates` for `probe_iters` total
    /// iterations. Clamped up so every candidate is measured at least
    /// once — a budget below the candidate count could crown an
    /// unmeasured winner.
    pub fn new(n_candidates: usize, probe_iters: usize) -> Self {
        assert!(n_candidates > 0, "a probe schedule needs candidates");
        Self {
            probe_iters: probe_iters.max(n_candidates),
            samples: vec![Vec::new(); n_candidates],
        }
    }

    /// Number of candidates under measurement.
    pub fn n_candidates(&self) -> usize {
        self.samples.len()
    }

    /// Total probe iterations before the winner locks in.
    pub fn probe_iters(&self) -> usize {
        self.probe_iters
    }

    /// Which candidate iteration `iter` (0-based) must run, or `None`
    /// once the probe budget is spent.
    pub fn candidate_for(&self, iter: usize) -> Option<usize> {
        (iter < self.probe_iters).then_some(iter % self.samples.len())
    }

    /// True once iteration `iter` is past the probe phase.
    pub fn done(&self, iter: usize) -> bool {
        iter >= self.probe_iters
    }

    /// Record one measured start→wait duration for `candidate`.
    pub fn record(&mut self, candidate: usize, secs: f64) {
        self.samples[candidate].push(secs);
    }

    /// Per-candidate median measured seconds; `INFINITY` where no sample
    /// was recorded (a candidate that never ran must never win).
    pub fn medians(&self) -> Vec<f64> {
        self.samples.iter().map(|s| median(s)).collect()
    }

    /// Fewest samples recorded for any candidate — the confidence count
    /// behind the weakest median, and the profile cache's merge
    /// tiebreaker.
    pub fn min_samples(&self) -> usize {
        self.samples.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Index of the winning candidate: lowest median, ties broken toward
    /// the lowest index (candidates arrive model-ranked, so a tie falls
    /// back to the model's preference).
    pub fn winner(&self) -> usize {
        let medians = self.medians();
        let mut best = 0;
        for (i, &m) in medians.iter().enumerate().skip(1) {
            if m < medians[best] {
                best = i;
            }
        }
        best
    }
}

fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return f64::INFINITY;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("probe samples are finite"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_then_done() {
        let s = ProbeSchedule::new(3, 7);
        let order: Vec<_> = (0..7).map(|i| s.candidate_for(i).unwrap()).collect();
        assert_eq!(order, [0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(s.candidate_for(7), None);
        assert!(s.done(7) && !s.done(6));
    }

    #[test]
    fn budget_clamped_to_candidate_count() {
        let s = ProbeSchedule::new(4, 1);
        assert_eq!(s.probe_iters(), 4);
        // every candidate gets exactly one probe
        let order: Vec<_> = (0..4).map(|i| s.candidate_for(i).unwrap()).collect();
        assert_eq!(order, [0, 1, 2, 3]);
    }

    #[test]
    fn winner_is_lowest_median_not_lowest_mean() {
        let mut s = ProbeSchedule::new(2, 6);
        // candidate 0: median 2.0 but one huge outlier → mean 35
        for t in [2.0, 2.0, 101.0] {
            s.record(0, t);
        }
        // candidate 1: median 3.0, mean 3.0
        for t in [3.0, 3.0, 3.0] {
            s.record(1, t);
        }
        assert_eq!(s.winner(), 0);
        assert_eq!(s.medians(), [2.0, 3.0]);
    }

    #[test]
    fn unmeasured_candidate_cannot_win() {
        let mut s = ProbeSchedule::new(3, 3);
        s.record(1, 5.0);
        assert_eq!(s.winner(), 1);
        assert!(s.medians()[0].is_infinite() && s.medians()[2].is_infinite());
    }

    #[test]
    fn tie_breaks_toward_model_order() {
        let mut s = ProbeSchedule::new(2, 2);
        s.record(0, 4.0);
        s.record(1, 4.0);
        assert_eq!(s.winner(), 0);
    }

    #[test]
    fn even_sample_count_takes_midpoint() {
        let mut s = ProbeSchedule::new(1, 4);
        for t in [1.0, 3.0, 2.0, 10.0] {
            s.record(0, t);
        }
        assert_eq!(s.medians(), [2.5]);
    }
}
