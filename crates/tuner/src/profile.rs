//! The persistent profile cache: measured winners on disk.
//!
//! One JSON-lines file (`profiles.jsonl`) per cache directory; each line
//! is a flat object carrying a format version, the cache key, the
//! measured winner, and the per-candidate median timings:
//!
//! ```text
//! {"v":1,"pattern":"9a3f…","topo":"07c1…","bucket":7,"fabric":"thread",
//!  "winner":"PartialNeighbor","probes":3,"t_StandardHypre":1.2e-3,…}
//! ```
//!
//! The JSON is hand-rolled: the vendored `serde` stand-in is a no-op
//! marker (nothing serializes at runtime — see `vendor/README.md`), and
//! the flat string/number shape here needs no more than a line writer
//! and a tolerant scanner.
//!
//! Failure semantics (DESIGN.md §11): the cache is an accelerator, never
//! a dependency. An unreadable directory, a corrupt line, a partial
//! write from a crashed process, an entry from a different format
//! version — all degrade to "no cached answer" on read and a reported
//! (but non-fatal) error on write. Nothing in here panics on IO.
//!
//! Concurrent writers merge: `publish` takes a lock file, re-reads the
//! current contents, folds its entry in (same key → the entry backed by
//! more probes wins), and atomically renames a freshly written temp file
//! over the old one. Two processes publishing different keys both
//! survive; a reader never observes a half-written file.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Format version of `profiles.jsonl` lines. Entries written by any
/// other version are ignored on read (and preserved on write only if
/// they parse, which they do not — a version bump starts a fresh cache
/// in place).
pub const PROFILE_VERSION: u64 = 1;

/// What a profile entry is keyed by. Two runs agree on a key exactly
/// when the measured winner of one is meaningful for the other.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProfileKey {
    /// `CommPattern::pattern_signature()` — order-independent over the
    /// (src, dst, len) triples.
    pub pattern_sig: u64,
    /// Topology-shape signature (rank → region layout).
    pub topo_sig: u64,
    /// `log2` bucket of the pattern's mean per-message payload bytes
    /// (see [`size_bucket`]): timings depend on message size, but not so
    /// finely that every byte count needs its own entry.
    pub size_bucket: u32,
    /// Which fabric produced the measurement (`"thread"`/`"shm"`/`"sock"`).
    pub fabric: String,
}

/// One measured result: the winning protocol and the per-candidate
/// median seconds that crowned it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    pub key: ProfileKey,
    /// Name of the winning protocol (`Protocol::name()`).
    pub winner: String,
    /// Samples behind the weakest candidate median — the merge
    /// tiebreaker (more probes = more trustworthy entry).
    pub probes: u64,
    /// `(protocol name, median seconds)` for every probed candidate.
    pub medians: Vec<(String, f64)>,
    /// Model-refit generation the entry was measured under (see
    /// `TunePolicy::fit_version`): a consumer whose model has moved past
    /// this generation treats the entry as stale and re-probes instead of
    /// trusting it forever. Written as `"fitv"`; absent on entries from
    /// before the field existed, which read back as generation 0 — a
    /// minor-version addition, not a format bump.
    pub fit_ver: u64,
}

/// `log2` size bucket of a mean per-message byte count (0 bytes → 0).
pub fn size_bucket(mean_msg_bytes: u64) -> u32 {
    if mean_msg_bytes == 0 {
        0
    } else {
        64 - mean_msg_bytes.leading_zeros()
    }
}

/// Handle on one on-disk cache directory.
#[derive(Debug, Clone)]
pub struct ProfileCache {
    dir: PathBuf,
}

impl ProfileCache {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    fn file(&self) -> PathBuf {
        self.dir.join("profiles.jsonl")
    }

    /// The cached entry for `key`, or `None` (not cached, unreadable
    /// file, corrupt line, other version — all the same answer).
    pub fn lookup(&self, key: &ProfileKey) -> Option<ProfileEntry> {
        read_entries(&self.file())
            .into_iter()
            .find(|e| &e.key == key)
    }

    /// Merge `entry` into the cache. Best-effort: the error names what
    /// went wrong for logs/tests, and callers must treat it as a missed
    /// optimization, not a failure.
    pub fn publish(&self, entry: &ProfileEntry) -> Result<(), String> {
        fs::create_dir_all(&self.dir)
            .map_err(|e| format!("profile cache: create {:?}: {e}", self.dir))?;
        let _lock = LockFile::acquire(&self.dir.join("profiles.lock"))?;
        let mut entries = read_entries(&self.file());
        match entries.iter_mut().find(|e| e.key == entry.key) {
            // an entry backed by at least as many probes replaces the old
            // one (later run, same confidence or better); a thinner entry
            // must not clobber a fatter one
            Some(old) if entry.probes >= old.probes => *old = entry.clone(),
            Some(_) => {}
            None => entries.push(entry.clone()),
        }
        let tmp = self
            .dir
            .join(format!("profiles.jsonl.tmp-{}", std::process::id()));
        let mut out = String::new();
        for e in &entries {
            out.push_str(&write_line(e));
            out.push('\n');
        }
        fs::write(&tmp, out).map_err(|e| format!("profile cache: write {tmp:?}: {e}"))?;
        fs::rename(&tmp, self.file()).map_err(|e| format!("profile cache: rename {tmp:?}: {e}"))?;
        Ok(())
    }
}

/// Exclusive advisory lock via `create_new`. A lock older than
/// [`STALE_LOCK`] is presumed left by a crashed process and broken;
/// failing to acquire within the retry budget is an error (the caller's
/// publish is best-effort anyway).
struct LockFile {
    path: PathBuf,
}

const STALE_LOCK: Duration = Duration::from_secs(5);

impl LockFile {
    fn acquire(path: &Path) -> Result<Self, String> {
        for _ in 0..400 {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(path)
            {
                Ok(_) => {
                    return Ok(Self {
                        path: path.to_path_buf(),
                    })
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .is_some_and(|age| age > STALE_LOCK);
                    if stale {
                        let _ = fs::remove_file(path);
                    } else {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
                Err(e) => return Err(format!("profile cache: lock {path:?}: {e}")),
            }
        }
        Err(format!("profile cache: lock {path:?}: timed out"))
    }
}

impl Drop for LockFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Keep written strings inside the grammar the scanner accepts (no
/// quotes, backslashes, or control characters). Protocol names and
/// fabric tags are plain identifiers, so this never fires in practice.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_graphic() && c != '"' && c != '\\' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn write_line(e: &ProfileEntry) -> String {
    let mut line = format!(
        "{{\"v\":{PROFILE_VERSION},\"pattern\":\"{:016x}\",\"topo\":\"{:016x}\",\
         \"bucket\":{},\"fabric\":\"{}\",\"winner\":\"{}\",\"probes\":{},\
         \"fitv\":{}",
        e.key.pattern_sig,
        e.key.topo_sig,
        e.key.size_bucket,
        sanitize(&e.key.fabric),
        sanitize(&e.winner),
        e.probes,
        e.fit_ver,
    );
    for (name, secs) in &e.medians {
        line.push_str(&format!(",\"t_{}\":{:e}", sanitize(name), secs));
    }
    line.push('}');
    line
}

#[derive(Debug, PartialEq)]
enum Val {
    Str(String),
    Num(f64),
}

/// Tolerant scan of one flat JSON object line into key/value pairs.
/// Anything outside the grammar → `None` (the line is skipped).
fn parse_line(line: &str) -> Option<Vec<(String, Val)>> {
    let body = line.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut pairs = Vec::new();
    let mut rest = body.trim_start();
    while !rest.is_empty() {
        rest = rest.strip_prefix('"')?;
        let q = rest.find('"')?;
        let key = rest[..q].to_string();
        rest = rest[q + 1..].trim_start().strip_prefix(':')?.trim_start();
        let val = if let Some(s) = rest.strip_prefix('"') {
            let q = s.find('"')?;
            rest = &s[q + 1..];
            Val::Str(s[..q].to_string())
        } else {
            let end = rest.find(',').unwrap_or(rest.len());
            let token = rest[..end].trim();
            rest = &rest[end..];
            Val::Num(token.parse::<f64>().ok()?)
        };
        pairs.push((key, val));
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
            if rest.is_empty() {
                return None; // trailing comma
            }
        } else if !rest.is_empty() {
            return None;
        }
    }
    Some(pairs)
}

fn entry_of(pairs: Vec<(String, Val)>) -> Option<ProfileEntry> {
    let mut version = None;
    let mut pattern = None;
    let mut topo = None;
    let mut bucket = None;
    let mut fabric = None;
    let mut winner = None;
    let mut probes = None;
    let mut fit_ver = 0;
    let mut medians = Vec::new();
    for (k, v) in pairs {
        match (k.as_str(), v) {
            ("v", Val::Num(n)) => version = Some(n as u64),
            ("pattern", Val::Str(s)) => pattern = u64::from_str_radix(&s, 16).ok(),
            ("topo", Val::Str(s)) => topo = u64::from_str_radix(&s, 16).ok(),
            ("bucket", Val::Num(n)) if n >= 0.0 => bucket = Some(n as u32),
            ("fabric", Val::Str(s)) => fabric = Some(s),
            ("winner", Val::Str(s)) => winner = Some(s),
            ("probes", Val::Num(n)) if n >= 0.0 => probes = Some(n as u64),
            ("fitv", Val::Num(n)) if n >= 0.0 => fit_ver = n as u64,
            (t, Val::Num(n)) if t.starts_with("t_") => medians.push((t[2..].to_string(), n)),
            // unknown fields are ignored: minor-version additions must
            // not invalidate old readers
            _ => {}
        }
    }
    if version != Some(PROFILE_VERSION) {
        return None;
    }
    Some(ProfileEntry {
        key: ProfileKey {
            pattern_sig: pattern?,
            topo_sig: topo?,
            size_bucket: bucket?,
            fabric: fabric?,
        },
        winner: winner?,
        probes: probes?,
        medians,
        fit_ver,
    })
}

fn read_entries(path: &Path) -> Vec<ProfileEntry> {
    let Ok(text) = fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| parse_line(l).and_then(entry_of))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "tuner-profile-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn entry(pattern: u64, winner: &str, probes: u64) -> ProfileEntry {
        ProfileEntry {
            key: ProfileKey {
                pattern_sig: pattern,
                topo_sig: 0xfeed,
                size_bucket: 7,
                fabric: "thread".into(),
            },
            winner: winner.into(),
            probes,
            medians: vec![("StandardHypre".into(), 1.5e-3), (winner.into(), 0.9e-3)],
            fit_ver: 0,
        }
    }

    #[test]
    fn fit_version_round_trips_and_defaults_to_zero() {
        let dir = tmpdir("fitver");
        let cache = ProfileCache::new(&dir);
        let mut e = entry(0x777, "PartialNeighbor", 3);
        e.fit_ver = 4;
        cache.publish(&e).unwrap();
        assert_eq!(cache.lookup(&e.key).unwrap().fit_ver, 4);
        // a line written before the field existed parses as generation 0
        let legacy = write_line(&e).replace(",\"fitv\":4", "");
        fs::write(dir.join("profiles.jsonl"), format!("{legacy}\n")).unwrap();
        assert_eq!(cache.lookup(&e.key).unwrap().fit_ver, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_trip() {
        let dir = tmpdir("roundtrip");
        let cache = ProfileCache::new(&dir);
        let e = entry(0xabc, "PartialNeighbor", 3);
        cache.publish(&e).unwrap();
        assert_eq!(cache.lookup(&e.key), Some(e.clone()));
        // a different bucket is a different key
        let mut other = e.key.clone();
        other.size_bucket = 9;
        assert_eq!(cache.lookup(&other), None);
        // a different fabric is a different key
        let mut other = e.key.clone();
        other.fabric = "shm".into();
        assert_eq!(cache.lookup(&other), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_lines_are_skipped_not_fatal() {
        let dir = tmpdir("corrupt");
        let cache = ProfileCache::new(&dir);
        let e = entry(0x111, "FullNeighbor", 2);
        cache.publish(&e).unwrap();
        // simulate a torn write + garbage from another tool
        let mut text = fs::read_to_string(dir.join("profiles.jsonl")).unwrap();
        text.push_str("{\"v\":1,\"pattern\":\"zz not hex\n");
        text.push_str("complete garbage\n");
        text.push_str("{\"v\":1,\"pattern\":\"22\",\"truncat");
        fs::write(dir.join("profiles.jsonl"), text).unwrap();
        assert_eq!(cache.lookup(&e.key), Some(e.clone()));
        // publishing over the corrupt file drops only the bad lines
        let e2 = entry(0x222, "StandardNeighbor", 2);
        cache.publish(&e2).unwrap();
        assert_eq!(cache.lookup(&e.key), Some(e));
        assert_eq!(cache.lookup(&e2.key), Some(e2));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_is_ignored() {
        let dir = tmpdir("version");
        let cache = ProfileCache::new(&dir);
        let e = entry(0x333, "PartialNeighbor", 4);
        let future = write_line(&e).replacen("\"v\":1", "\"v\":999", 1);
        fs::write(dir.join("profiles.jsonl"), format!("{future}\n")).unwrap();
        assert_eq!(cache.lookup(&e.key), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_keeps_better_probed_entry() {
        let dir = tmpdir("merge");
        let cache = ProfileCache::new(&dir);
        cache.publish(&entry(0x444, "FullNeighbor", 5)).unwrap();
        // thinner entry for the same key must not clobber
        cache.publish(&entry(0x444, "StandardHypre", 2)).unwrap();
        let got = cache.lookup(&entry(0x444, "", 0).key).unwrap();
        assert_eq!(got.winner, "FullNeighbor");
        assert_eq!(got.probes, 5);
        // equally-probed (a later, same-confidence run) replaces
        cache.publish(&entry(0x444, "PartialNeighbor", 5)).unwrap();
        let got = cache.lookup(&entry(0x444, "", 0).key).unwrap();
        assert_eq!(got.winner, "PartialNeighbor");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_merge_not_clobber() {
        let dir = tmpdir("concurrent");
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let dir = dir.clone();
                std::thread::spawn(move || {
                    ProfileCache::new(&dir)
                        .publish(&entry(0x1000 + i, "PartialNeighbor", 1))
                        .unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let cache = ProfileCache::new(&dir);
        for i in 0..8u64 {
            assert!(
                cache.lookup(&entry(0x1000 + i, "", 0).key).is_some(),
                "entry {i} lost to a concurrent writer"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_is_broken() {
        let dir = tmpdir("stalelock");
        let lock = dir.join("profiles.lock");
        fs::write(&lock, b"").unwrap();
        // age the lock beyond STALE_LOCK by backdating mtime via utimes
        // is unavailable in std; instead verify the live-lock path: a
        // fresh lock blocks until released, then publish succeeds
        let cache = ProfileCache::new(&dir);
        let dir2 = dir.clone();
        let unlocker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            let _ = fs::remove_file(dir2.join("profiles.lock"));
        });
        cache.publish(&entry(0x555, "FullNeighbor", 1)).unwrap();
        unlocker.join().unwrap();
        assert!(cache.lookup(&entry(0x555, "", 0).key).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_lookup_is_none_and_publish_creates() {
        let dir =
            std::env::temp_dir().join(format!("tuner-profile-missing-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let cache = ProfileCache::new(&dir);
        assert_eq!(cache.lookup(&entry(0x666, "", 0).key), None);
        cache.publish(&entry(0x666, "FullNeighbor", 1)).unwrap();
        assert!(cache.lookup(&entry(0x666, "", 0).key).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_bucket_is_log2() {
        assert_eq!(size_bucket(0), 0);
        assert_eq!(size_bucket(1), 1);
        assert_eq!(size_bucket(8), 4);
        assert_eq!(size_bucket(9), 4);
        assert_eq!(size_bucket(1 << 20), 21);
    }
}
