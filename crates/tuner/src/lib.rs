//! Online protocol autotuning (DESIGN.md §11).
//!
//! The analytic selection in `core::collective::select` picks a protocol
//! from `perfmodel`'s cost estimates at init time; a mispredicted
//! parameter picks the wrong protocol forever. This crate holds the
//! pieces that replace trust with measurement:
//!
//! * [`TunePolicy`] — how many probe iterations to spend, how close to
//!   the model's best a candidate must rank to be probed at all, and
//!   where (if anywhere) the persistent profile cache lives. Defaults
//!   come from the `MPISIM_TUNE_*` / `MPISIM_PROFILE_DIR` environment
//!   knobs with the same abort-naming-the-token contract as the
//!   `MPISIM_STALL_MS` family.
//! * [`ProbeSchedule`] — the round-robin measurement plan: which
//!   candidate runs on which iteration, the recorded samples, and the
//!   median-based winner once every probe is in.
//! * [`ProfileCache`] — a versioned JSON-lines store mapping
//!   `(pattern signature, topology signature, size bucket, fabric)` to
//!   the measured winner, written with atomic renames and merged (not
//!   clobbered) across concurrent writers. Unreadable or corrupt state
//!   degrades to "no cached answer", never an abort.
//! * [`refit`] — a process-global accumulator of measured iteration
//!   timings feeding `perfmodel`'s least-squares parameter fit, with a
//!   fitted-vs-default delta report.
//!
//! The crate is deliberately below `core` in the dependency order: it
//! knows nothing about plans, routings, or requests. `core`'s
//! `Backend::Tuned` owns the wiring.

mod env;
mod profile;
mod refit;
mod schedule;

pub use env::{
    parse_factor, parse_fit_version, parse_probe_iters, parse_profile_dir, parse_recheck_iters,
    TunePolicy,
};
pub use profile::{size_bucket, ProfileCache, ProfileEntry, ProfileKey, PROFILE_VERSION};
pub use refit::{
    clear_observations, fitted_params, observation_count, record_observation, refit_report,
};
pub use schedule::ProbeSchedule;
