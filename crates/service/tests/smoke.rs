//! Crate-level smoke tests: the service round-trips an AMG relaxation
//! job against its serial reference on every fabric. The full acceptance
//! suite (kill isolation, deadline attribution, dup-comm proptests)
//! lives in the umbrella crate's `tests/serve.rs` (`make test-serve`).

use std::f64::consts::FRAC_PI_4;
use std::sync::Arc;

use amg::{Hierarchy, HierarchyOptions, JacobiJob};
use locality::Topology;
use mpisim::World;
use service::{JobSpec, SolveService};
use sparse::gen::diffusion_2d_7pt;

const RANKS: usize = 4;

fn jobs(k: usize) -> Vec<Arc<JacobiJob>> {
    let a = diffusion_2d_7pt(16, 8, 0.001, FRAC_PI_4);
    let n = a.n_rows();
    let h = Hierarchy::setup(a, HierarchyOptions::default());
    (0..k)
        .map(|j| {
            let seed = 0.11 + 0.12 * j as f64;
            let rhs: Vec<f64> = (0..n).map(|i| (seed * i as f64).cos()).collect();
            Arc::new(JacobiJob::relaxation(&h, RANKS, &rhs, 0.8, 5))
        })
        .collect()
}

fn check(mut svc: SolveService, jobs: &[Arc<JacobiJob>], label: &str) {
    for (k, j) in jobs.iter().enumerate() {
        svc.submit(JobSpec::new(
            format!("tenant-{k}"),
            Topology::block_nodes(RANKS, 2),
            Arc::clone(j) as _,
        ));
    }
    let reports = svc.run_pending();
    assert_eq!(reports.len(), jobs.len(), "{label}");
    for (k, rep) in reports.iter().enumerate() {
        let got = rep.outcome.as_ref().expect(label);
        assert_eq!(got, &jobs[k].reference_results(), "{label}: tenant {k}");
    }
}

#[test]
fn two_tenants_match_reference() {
    check(SolveService::new(RANKS), &jobs(2), "thread");
}

#[test]
fn two_tenants_match_reference_on_shm_and_sock() {
    let jobs = jobs(2);
    check(
        SolveService::with_pool(World::pool_shm(RANKS)),
        &jobs,
        "shm",
    );
    check(
        SolveService::with_pool(World::pool_sock(RANKS)),
        &jobs,
        "sock",
    );
}
