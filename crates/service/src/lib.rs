//! The **solve service**: a multi-tenant job scheduler on one warm
//! [`WorldPool`] (DESIGN.md §12).
//!
//! The paper's collectives amortize setup across many iterations of one
//! solver; this crate amortizes the *world* across many solvers. A
//! [`SolveService`] owns a warm pool and accepts a stream of independent
//! jobs — each its own right-hand side and/or hierarchy, packaged as a
//! [`JobLogic`]. `run_pending` schedules every queued job onto the pool
//! in **one epoch**: per-rank, each admitted job becomes a task on the
//! futures layer's [`ProgressDriver`], so K tenants' halo exchanges are
//! in flight at once and the rank parks exactly once — on the union of
//! every tenant's wake set — instead of serializing job after job.
//!
//! Isolation is per job, on three axes:
//!
//! * **channels** — every job drives a [`Comm::dup_for`] duplicate of the
//!   world communicator keyed by its globally-unique job id, so its
//!   channel keys (and tag leases) can never alias another tenant's, or
//!   a failed tenant's stale traffic from an earlier epoch;
//! * **panics** — each task is wrapped in
//!   [`CatchPanic`](mpi_advance::future::CatchPanic): a seeded `kill=`
//!   fault (or plain bug) inside one tenant resolves that task to `Err`,
//!   the scheduler absorbs the transport-level death flag
//!   ([`RankCtx::absorb_rank_failure`]) and broadcasts a cancel token on
//!   the job's control channels, and every *other* tenant's result stays
//!   byte-identical to a solo run;
//! * **stalls** — a wait-deadline abort while parked degrades to failing
//!   the rank's still-running jobs *with job attribution* (the deadline
//!   dump names every tenant it takes down), not to a hung world.
//!
//! Admission control bounds how many jobs a rank *drives* concurrently
//! ([`SolveService::max_concurrent`]); registration is never bounded —
//! every queued job's channels are registered (and barrier-synchronized)
//! at epoch start, so a fast rank can deposit into job k's channels while
//! a slow rank is still driving job 0.

mod jobs;
mod scheduler;

use std::sync::Arc;

use locality::Topology;
use mpi_advance::tagspace::{TagLease, TagSpace};
use mpi_advance::{Backend, CommPattern, EntryId, NeighborBatch, NeighborRequest};
use mpisim::{RankCtx, World, WorldPool};

/// Globally-unique job identifier, assigned at submit time and never
/// reused — it keys the job's [`mpisim::Comm::dup_for`] communicator
/// stream, so channels of distinct jobs (across all epochs of the
/// service) can never alias.
pub type JobId = u64;

/// What a job computes: its communication shape plus a per-rank state
/// machine. One batch entry per pattern; each of the [`JobLogic::iters`]
/// iterations posts every entry and folds each entry's arrived ghost
/// values into the rank state the moment they land.
pub trait JobLogic: Send + Sync {
    /// One halo pattern per batch entry.
    fn patterns(&self) -> Vec<CommPattern>;
    /// Whole-batch iterations the job runs.
    fn iters(&self) -> usize;
    /// Build rank `rank`'s worker state (called on the rank thread).
    fn rank_state(&self, rank: usize) -> Box<dyn RankState>;
}

/// A job's rank-local worker. `absorb` must be independent of the order
/// entries retire within one iteration (entries may complete in delivery
/// order) for the job's result to be deterministic under multi-tenancy.
pub trait RankState {
    /// Entry `e`'s send values for iteration `iter`, aligned with
    /// `req.input_index()`.
    fn input(&mut self, iter: usize, e: EntryId, req: &dyn NeighborRequest) -> Vec<f64>;
    /// Entry `e`'s ghost values for iteration `iter` arrived, aligned
    /// with `req.output_index()`.
    fn absorb(&mut self, iter: usize, e: EntryId, req: &dyn NeighborRequest, output: &[f64]);
    /// The rank's result, after the last iteration.
    fn finish(self: Box<Self>) -> Vec<f64>;
}

/// One tenant's submission: a name (for failure attribution), the
/// topology its batch plans against, the backend every entry runs on,
/// and the logic itself.
pub struct JobSpec {
    pub name: String,
    pub topo: Topology,
    pub backend: Backend,
    pub logic: Arc<dyn JobLogic>,
}

impl JobSpec {
    /// A job with the default model-driven backend ([`Backend::Auto`]).
    pub fn new(name: impl Into<String>, topo: Topology, logic: Arc<dyn JobLogic>) -> Self {
        Self {
            name: name.into(),
            topo,
            backend: Backend::Auto,
            logic,
        }
    }

    /// Override the backend every entry of the job runs on.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

/// Why a job failed: which ranks reported it and the first message.
#[derive(Debug, Clone)]
pub struct JobError {
    /// Ranks that reported the failure, ascending.
    pub ranks: Vec<usize>,
    /// The lowest-ranked failure's message.
    pub message: String,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed on ranks {:?}: {}", self.ranks, self.message)
    }
}

/// One job's outcome: per-rank results (indexed by rank) or the failure.
/// A failure is *this job's alone* — the reports of the other jobs in the
/// same epoch are unaffected.
pub struct JobReport {
    pub id: JobId,
    pub name: String,
    pub outcome: Result<Vec<Vec<f64>>, JobError>,
}

pub(crate) struct QueuedJob {
    pub(crate) id: JobId,
    pub(crate) name: String,
    pub(crate) topo: Topology,
    pub(crate) backend: Backend,
    pub(crate) logic: Arc<dyn JobLogic>,
}

/// The multi-tenant scheduler: a warm [`WorldPool`], a job queue, and an
/// admission window. See the crate docs for the isolation contract.
pub struct SolveService {
    pool: WorldPool,
    max_concurrent: usize,
    /// Monotone job-id source; ids are never reused across epochs.
    next_id: JobId,
    queue: Vec<QueuedJob>,
    /// One leased tag span for the epoch's per-peer cancel-token
    /// channels (they live on a dedicated dup'd communicator, so one
    /// channel per peer serves every job).
    ctl_lease: TagLease,
}

impl SolveService {
    /// A service on a fresh warm pool of `n_ranks` thread-fabric ranks.
    pub fn new(n_ranks: usize) -> Self {
        Self::with_pool(World::pool(n_ranks))
    }

    /// A service on an existing warm pool (any fabric, any fault plan).
    pub fn with_pool(pool: WorldPool) -> Self {
        Self {
            pool,
            max_concurrent: usize::MAX,
            next_id: 1,
            queue: Vec::new(),
            ctl_lease: TagSpace::global().lease_for(1, "service-ctl"),
        }
    }

    /// Bound how many jobs each rank drives concurrently (default:
    /// unbounded). `1` serializes tenants — the bench baseline.
    pub fn max_concurrent(mut self, k: usize) -> Self {
        assert!(k >= 1, "the admission window must admit at least one job");
        self.max_concurrent = k;
        self
    }

    /// The warm pool (e.g. to check its size).
    pub fn pool(&self) -> &WorldPool {
        &self.pool
    }

    /// Queue a job for the next `run_pending` epoch.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        assert_eq!(
            spec.topo.n_ranks(),
            self.pool.n_ranks(),
            "job topology must match the pool's world size"
        );
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push(QueuedJob {
            id,
            name: spec.name,
            topo: spec.topo,
            backend: spec.backend,
            logic: spec.logic,
        });
        id
    }

    /// Run every queued job in one epoch on the warm pool and report each
    /// job's outcome, in submission order. Tenant failures are isolated
    /// per job; only a failure the scheduler itself cannot attribute (a
    /// rank dying outside any task) fails the epoch, and then *every*
    /// queued job reports that epoch error.
    pub fn run_pending(&mut self) -> Vec<JobReport> {
        let queued = std::mem::take(&mut self.queue);
        if queued.is_empty() {
            return Vec::new();
        }
        let n_ranks = self.pool.n_ranks();
        let patterns: Vec<Vec<CommPattern>> = queued.iter().map(|q| q.logic.patterns()).collect();
        let batches: Vec<NeighborBatch<'_>> = queued
            .iter()
            .zip(&patterns)
            .map(|(q, pats)| {
                let mut b = NeighborBatch::new(&q.topo);
                for p in pats {
                    b = b.entry(p, q.backend);
                }
                b
            })
            .collect();
        // Resolve every batch's plan and tag leases HERE, on the
        // submitting thread, before any rank observes it: resolution
        // leases spans from the process-global TagSpace, and per-rank
        // resolution order would not be deterministic.
        for b in &batches {
            let _ = b.tag_bases();
        }
        let ctl_base = self.ctl_lease.entry_base(0);
        // the control communicator needs its own never-reused stream id;
        // it shares the job-id namespace
        let ctl_stream = self.next_id;
        self.next_id += 1;
        let max_concurrent = self.max_concurrent;
        let outcome = self.pool.try_run(|ctx: &mut RankCtx| {
            scheduler::drive_rank(ctx, &queued, &batches, ctl_stream, ctl_base, max_concurrent)
        });
        match outcome {
            Ok(per_rank) => {
                type RankRows = Vec<(usize, Result<Vec<f64>, String>)>;
                let mut per_job: Vec<RankRows> = (0..queued.len()).map(|_| Vec::new()).collect();
                for (r, rr) in per_rank.into_iter().enumerate() {
                    assert_eq!(rr.len(), queued.len());
                    for (j, res) in rr.into_iter().enumerate() {
                        per_job[j].push((r, res));
                    }
                }
                queued
                    .iter()
                    .zip(per_job)
                    .map(|(q, rows)| {
                        let mut oks = Vec::with_capacity(n_ranks);
                        let mut errs: Vec<(usize, String)> = Vec::new();
                        for (r, res) in rows {
                            match res {
                                Ok(x) => oks.push(x),
                                Err(m) => errs.push((r, m)),
                            }
                        }
                        let outcome = if errs.is_empty() {
                            Ok(oks)
                        } else {
                            Err(JobError {
                                ranks: errs.iter().map(|(r, _)| *r).collect(),
                                message: errs[0].1.clone(),
                            })
                        };
                        JobReport {
                            id: q.id,
                            name: q.name.clone(),
                            outcome,
                        }
                    })
                    .collect()
            }
            Err(e) => {
                // Unattributable epoch failure: every job of the epoch
                // reports it (and the pool stays warm for the next one).
                let err = JobError {
                    ranks: e.failures.iter().map(|(r, _)| *r).collect(),
                    message: format!("epoch failed: {e}"),
                };
                queued
                    .iter()
                    .map(|q| JobReport {
                        id: q.id,
                        name: q.name.clone(),
                        outcome: Err(err.clone()),
                    })
                    .collect()
            }
        }
    }
}
