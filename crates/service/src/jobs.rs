//! Built-in job shapes: the AMG solve phase as a tenant.
//!
//! `amg` keeps its job struct framework-free; this adapter wires
//! [`amg::JacobiJob`] (all-levels damped-Jacobi relaxation, one batch
//! entry per hierarchy level) into the service's [`JobLogic`] trait, so
//! an AMG solve submits directly:
//!
//! ```ignore
//! let job = JacobiJob::relaxation(&hierarchy, n_ranks, &rhs, 0.8, 10);
//! service.submit(JobSpec::new("tenant-a", topo, Arc::new(job)));
//! ```

use amg::{JacobiJob, JacobiRankState};
use mpi_advance::{CommPattern, EntryId, NeighborRequest};

use crate::{JobLogic, RankState};

impl JobLogic for JacobiJob {
    fn patterns(&self) -> Vec<CommPattern> {
        JacobiJob::patterns(self)
    }

    fn iters(&self) -> usize {
        self.sweeps()
    }

    fn rank_state(&self, rank: usize) -> Box<dyn RankState> {
        Box::new(JacobiJob::rank_state(self, rank))
    }
}

impl RankState for JacobiRankState {
    fn input(&mut self, _iter: usize, e: EntryId, req: &dyn NeighborRequest) -> Vec<f64> {
        JacobiRankState::input(self, e, req)
    }

    fn absorb(&mut self, _iter: usize, e: EntryId, req: &dyn NeighborRequest, output: &[f64]) {
        JacobiRankState::absorb(self, e, req, output)
    }

    fn finish(self: Box<Self>) -> Vec<f64> {
        JacobiRankState::finish(*self)
    }
}
