//! The per-rank drive loop: registration, admission, overlap, and the
//! failure-isolation protocol (DESIGN.md §12).
//!
//! Epoch prologue (every rank, before anything is driven):
//!
//! 1. duplicate the world communicator once per job
//!    ([`Comm::dup_for`] keyed by the job's global id), plus once for
//!    the epoch's control fabric;
//! 2. `init_all` **every** job's batch session (registration is not
//!    admission-controlled);
//! 3. register one cancel-token receive channel per peer on the control
//!    communicator — a token names its job ([`encode_token`]), so the
//!    channel count (and the park set it joins) stays O(ranks), not
//!    O(jobs × ranks);
//! 4. barrier — after this, every channel any peer may deposit into
//!    exists on every fabric.
//!
//! Then the loop: admit queued jobs into the window, poll runnable tasks
//! (each a [`CatchPanic`]-wrapped job body), drain cancel tokens, and
//! park once on the union of every pending task's watched channels plus
//! the per-peer cancel channels.
//!
//! Failure protocol: a tenant panic on this rank resolves its task to
//! `Err` — the scheduler absorbs the transport death flag and broadcasts
//! the job's cancel token to every peer. A peer parked in `wait_any`
//! aborts with a peer-death panic instead: the scheduler catches it,
//! absorbs the flag, and re-parks — the cancel token (the control
//! channels are always in the park set) then attributes the failure to
//! exactly one job. Only when
//! nothing attributes the abort — a wait-deadline stall, or peer-death
//! panics repeating with no token ever arriving — does the rank fail its
//! still-running jobs wholesale, naming each one in the deadline dump.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use mpi_advance::future::{panic_text, with_ctx, CatchPanic, EntryFuture, ProgressDriver};
use mpi_advance::{BatchRequest, NeighborBatch};
use mpisim::{ChanId, Comm, RankCtx, RecvChan};

use crate::{JobLogic, QueuedJob};

/// Peer-death park aborts absorbed without an attributing cancel token
/// before the rank gives up and fails its running jobs. Each absorb
/// marks the death as handled *for this rank* (the world flag stays up
/// for peers still blocked on the dead tenant's traffic) and re-parks;
/// a healthy peer's scheduler sends the token within one scheduling
/// round, so this bound only trips when the failing rank's scheduler
/// itself is gone.
const MAX_ABSORB_RETRIES: usize = 64;

/// One job's async body: `iters` iterations of start-all /
/// retire-entries-as-they-land, folding each entry's ghost values into
/// the rank state. Owns its session, so the future is `'static` and one
/// tenant's state can never alias another's.
async fn run_job(
    logic: Arc<dyn JobLogic>,
    mut session: BatchRequest,
    rank: usize,
    iters: usize,
) -> Vec<f64> {
    let mut state = logic.rank_state(rank);
    let n = session.len();
    let mut outputs: Vec<Vec<f64>> = (0..n)
        .map(|e| vec![f64::NAN; session.entry(e).output_index().len()])
        .collect();
    for iter in 0..iters {
        let inputs: Vec<Vec<f64>> = (0..n)
            .map(|e| state.input(iter, e, session.entry(e)))
            .collect();
        with_ctx(|ctx| session.start_all(ctx, &inputs));
        for _ in 0..n {
            let e = EntryFuture::new(&mut session, &mut outputs).await;
            state.absorb(iter, e, session.entry(e), &outputs[e]);
        }
    }
    state.finish()
}

/// A cancel token: which job failed, and on which rank.
fn encode_token(job: usize, rank: usize) -> u64 {
    ((job as u64) << 32) | rank as u64
}

fn decode_token(tok: u64) -> (usize, usize) {
    ((tok >> 32) as usize, (tok & 0xffff_ffff) as usize)
}

/// Send `job`'s cancel token to every peer on the epoch's per-peer
/// control channels. Deposits never block, so this is safe mid-recovery.
fn broadcast_cancel(ctx: &mut RankCtx, ctl: &Comm, ctl_base: u64, rank: usize, job: usize) {
    let n_ranks = ctl.size();
    for dst in (0..n_ranks).filter(|&d| d != rank) {
        let chan = ctx.send_chan_init::<u64>(ctl, dst, ctl_base, 1);
        chan.start_with(ctx, |buf| {
            buf.clear();
            buf.push(encode_token(job, rank));
        });
    }
}

/// Drive every queued job on this rank; returns each job's local result,
/// indexed like `jobs`.
pub(crate) fn drive_rank(
    ctx: &mut RankCtx,
    jobs: &[QueuedJob],
    batches: &[NeighborBatch<'_>],
    ctl_stream: u64,
    ctl_base: u64,
    max_concurrent: usize,
) -> Vec<Result<Vec<f64>, String>> {
    let world = ctx.comm_world();
    let rank = ctx.rank();
    let n_ranks = world.size();
    let n = jobs.len();

    // -- prologue: communicators, registration, cancel fabric, barrier --
    let comms: Vec<Comm> = jobs.iter().map(|q| world.dup_for(q.id)).collect();
    let ctl_comm = world.dup_for(ctl_stream);
    let mut sessions: Vec<Option<BatchRequest>> = batches
        .iter()
        .zip(&comms)
        .map(|(b, c)| Some(b.init_all(ctx, c)))
        .collect();
    let mut ctl: Vec<RecvChan<u64>> = (0..n_ranks)
        .filter(|&s| s != rank)
        .map(|s| {
            let mut r = ctx.recv_chan_init::<u64>(&ctl_comm, s, ctl_base, 1);
            r.start();
            r
        })
        .collect();
    ctx.barrier(&world);

    // -- the drive loop --
    let mut driver: ProgressDriver<'_, Result<Vec<f64>, String>> = ProgressDriver::new();
    let mut results: Vec<Option<Result<Vec<f64>, String>>> = (0..n).map(|_| None).collect();
    let mut task_of: Vec<Option<usize>> = vec![None; n];
    let mut job_of_task: Vec<usize> = Vec::new();
    let mut running: Vec<usize> = Vec::new();
    let mut next_admit = 0usize;
    let mut completed: Vec<usize> = Vec::new();
    let mut absorb_retries = 0usize;
    // the park set beyond the tasks' own watches: the per-peer cancel
    // channels (fixed for the whole epoch)
    let ctl_watch: Vec<ChanId> = ctl.iter().map(|rc| rc.chan_id()).collect();
    // drain cancel tokens only when a park could have been woken by one
    // (or periodically, as a safety valve while tasks stay runnable) —
    // scanning every peer channel on every poll round is pure overhead
    // in the fault-free common case
    let mut drain_due = false;
    let mut rounds = 0usize;

    loop {
        // admit queued jobs into the window (skipping any cancelled
        // before they ever ran on this rank)
        while running.len() < max_concurrent && next_admit < n {
            let j = next_admit;
            next_admit += 1;
            if results[j].is_some() {
                continue;
            }
            let session = sessions[j].take().expect("session admitted once");
            let iters = jobs[j].logic.iters();
            let t = driver.spawn(CatchPanic::new(run_job(
                Arc::clone(&jobs[j].logic),
                session,
                rank,
                iters,
            )));
            task_of[j] = Some(t);
            job_of_task.push(j);
            running.push(j);
        }
        if running.is_empty() {
            if next_admit >= n {
                break;
            }
            continue;
        }

        completed.clear();
        driver.poll_runnable(ctx, &mut completed);
        let mut progressed = !completed.is_empty();
        for &t in &completed {
            let j = job_of_task[t];
            let res = driver.take_result(t).expect("completed task has a result");
            if res.is_err() {
                // A tenant died on THIS rank (seeded kill= fault or plain
                // bug). The fault path raised the world death flag before
                // panicking; absorb it so peers' and siblings' waits stop
                // aborting, then tell every peer to cancel this one job.
                ctx.absorb_rank_failure();
                broadcast_cancel(ctx, &ctl_comm, ctl_base, rank, j);
            }
            results[j] = Some(res);
            running.retain(|&x| x != j);
        }

        // drain cancel tokens: a peer's scheduler contained some job's
        // failure there (a token for an already-resolved job is stale —
        // several ranks may dump the same job — and is dropped)
        rounds += 1;
        if drain_due || rounds.is_multiple_of(64) {
            drain_due = false;
            for rc in &mut ctl {
                while let Some(tok) = rc.try_take(ctx) {
                    rc.start();
                    let (j, src) = decode_token(tok[0]);
                    if results[j].is_some() {
                        continue;
                    }
                    if let Some(t) = task_of[j] {
                        driver.cancel(t);
                    }
                    running.retain(|&x| x != j);
                    results[j] = Some(Err(format!(
                        "job {:?} cancelled: tenant failed on rank {src}",
                        jobs[j].name
                    )));
                    progressed = true;
                }
            }
        }
        if progressed {
            absorb_retries = 0;
            continue;
        }
        if driver.has_runnable() {
            continue;
        }

        // park on every pending task's watches + the per-peer cancel
        // channels, catching the two abort paths (peer death, deadline)
        match catch_unwind(AssertUnwindSafe(|| driver.park(ctx, &ctl_watch))) {
            Ok(()) => {
                absorb_retries = 0;
                drain_due = true;
            }
            Err(payload) => {
                let msg = panic_text(payload);
                let absorbed = ctx.absorb_rank_failure();
                if absorbed.is_some() && absorb_retries < MAX_ABSORB_RETRIES {
                    // a peer's tenant died; its scheduler sends the
                    // cancel token on that job's watched control channel
                    // — re-park and let the token attribute the failure
                    absorb_retries += 1;
                    drain_due = true;
                    continue;
                }
                // deadline stall (or repeated unattributed death): the
                // dump fails every running job on this rank BY NAME
                let names: Vec<&str> = running.iter().map(|&j| jobs[j].name.as_str()).collect();
                for &j in &running {
                    broadcast_cancel(ctx, &ctl_comm, ctl_base, rank, j);
                    results[j] = Some(Err(format!(
                        "job {:?} failed while rank {rank} was parked \
                         (jobs running here: {names:?}): {msg}",
                        jobs[j].name
                    )));
                    if let Some(t) = task_of[j] {
                        driver.cancel(t);
                    }
                }
                running.clear();
            }
        }
    }

    results
        .into_iter()
        .enumerate()
        .map(|(j, r)| r.unwrap_or_else(|| Err(format!("job {:?} was never driven", jobs[j].name))))
        .collect()
}
