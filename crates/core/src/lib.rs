//! `mpi-advance` — persistent neighborhood collectives with locality-aware
//! aggregation (the paper's contribution).
//!
//! The library mirrors the role of the MPI Advance repository: it sits *on
//! top of* an MPI layer (here the `mpisim` runtime) and provides optimized
//! implementations of the persistent `MPI_Neighbor_alltoallv`:
//!
//! * [`Protocol::StandardNeighbor`] — wraps persistent point-to-point
//!   messages (paper §3.1, Algorithms 1–3);
//! * [`Protocol::PartialNeighbor`] — three-step locality-aware aggregation:
//!   intra-region redistribution, one message per region pair, final
//!   intra-region redistribution (paper §3.2, Algorithms 4–6);
//! * [`Protocol::FullNeighbor`] — aggregation plus removal of duplicate
//!   values between region pairs, enabled by the per-value-indices API
//!   extension (paper §3.3);
//! * [`Protocol::StandardHypre`] — the baseline: persistent point-to-point
//!   as Hypre 2.28 implements it (no topology communicator).
//!
//! Two consumers share the planner: [`exec`] posts real persistent messages
//! on `mpisim` (correctness, wall-clock benches), and [`analytic`] evaluates
//! modeled cost and message statistics at paper scale (2048 ranks).

pub mod agg;
pub mod analytic;
pub mod collective;
pub mod exec;
pub mod exec_partitioned;
pub mod pattern;
pub mod stats;

pub use agg::{AssignStrategy, Plan, PlanMsg, Slot};
pub use analytic::{init_time, iteration_time, IterationCost};
pub use collective::{choose_protocol, Protocol};
pub use exec::PersistentNeighbor;
pub use exec_partitioned::PartitionedNeighbor;
pub use pattern::CommPattern;
pub use stats::PlanStats;

#[cfg(test)]
mod proptests;
