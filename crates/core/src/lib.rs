//! `mpi-advance` — persistent neighborhood collectives with locality-aware
//! aggregation (the paper's contribution).
//!
//! The library mirrors the role of the MPI Advance repository: it sits *on
//! top of* an MPI layer (here the `mpisim` runtime) and provides optimized
//! implementations of the persistent `MPI_Neighbor_alltoallv`:
//!
//! * [`Protocol::StandardNeighbor`] — wraps persistent point-to-point
//!   messages (paper §3.1, Algorithms 1–3);
//! * [`Protocol::PartialNeighbor`] — three-step locality-aware aggregation:
//!   intra-region redistribution, one message per region pair, final
//!   intra-region redistribution (paper §3.2, Algorithms 4–6);
//! * [`Protocol::FullNeighbor`] — aggregation plus removal of duplicate
//!   values between region pairs, enabled by the per-value-indices API
//!   extension (paper §3.3);
//! * [`Protocol::StandardHypre`] — the baseline: persistent point-to-point
//!   as Hypre 2.28 implements it (no topology communicator).
//!
//! The public entry point is [`NeighborAlltoallv`]: a builder taking a
//! [`CommPattern`] and a [`locality::Topology`] (plus an optional cost
//! model and leader-assignment strategy) that yields one [`NeighborRequest`]
//! with `start`/`wait`/`start_wait` semantics. The backend is an explicit
//! [`Protocol`], [`Backend::Partitioned`] (§5's combination), or
//! [`Backend::Auto`] — model-driven selection performed at init time, as §5
//! prescribes.
//!
//! Under the hood, [`routing`] derives each rank's staging copy maps once;
//! [`exec`] posts plain persistent messages on `mpisim` and
//! [`exec_partitioned`] posts partitioned inter-region messages, both from
//! the same routing. [`analytic`] evaluates modeled cost and message
//! statistics at paper scale (2048 ranks).

pub mod agg;
pub mod analytic;
pub mod collective;
pub mod exec;
mod exec_common;
pub mod exec_partitioned;
pub mod neighbor;
pub mod pattern;
pub mod routing;
pub mod stats;

pub use agg::{AssignStrategy, Plan, PlanMsg, SlotArena, SlotRef};
pub use analytic::{init_time, iteration_time, IterationCost};
pub use collective::{choose_protocol, Protocol};
pub use exec::PersistentNeighbor;
pub use exec_partitioned::PartitionedNeighbor;
pub use neighbor::{Backend, NeighborAlltoallv, NeighborRequest};
pub use pattern::CommPattern;
pub use routing::RankRouting;
pub use stats::PlanStats;

#[cfg(test)]
mod proptests;
