//! `mpi-advance` — persistent neighborhood collectives with locality-aware
//! aggregation (the paper's contribution).
//!
//! The library mirrors the role of the MPI Advance repository: it sits *on
//! top of* an MPI layer (here the `mpisim` runtime) and provides optimized
//! implementations of the persistent `MPI_Neighbor_alltoallv`:
//!
//! * [`Protocol::StandardNeighbor`] — wraps persistent point-to-point
//!   messages (paper §3.1, Algorithms 1–3);
//! * [`Protocol::PartialNeighbor`] — three-step locality-aware aggregation:
//!   intra-region redistribution, one message per region pair, final
//!   intra-region redistribution (paper §3.2, Algorithms 4–6);
//! * [`Protocol::FullNeighbor`] — aggregation plus removal of duplicate
//!   values between region pairs, enabled by the per-value-indices API
//!   extension (paper §3.3);
//! * [`Protocol::StandardHypre`] — the baseline: persistent point-to-point
//!   as Hypre 2.28 implements it (no topology communicator).
//!
//! The front door is the **batch/session API**, [`NeighborBatch`]: a
//! builder taking a [`locality::Topology`] and N `(CommPattern, Backend)`
//! entries — e.g. every AMG level's halo pattern — that plans, tags, and
//! stages all of them as one session. One fused routing sweep derives all
//! ranks × all entries; `init_all` registers every entry's channels in a
//! single pass over the runtime's registry and returns the entries as
//! [`NeighborRequest`]s with `start`/`wait`/`start_wait` semantics. The
//! single-collective builder, [`NeighborAlltoallv`], is a one-entry batch
//! internally — use it when exactly one pattern is live. Each entry's
//! backend is an explicit [`Protocol`], [`Backend::Partitioned`] (§5's
//! combination), or [`Backend::Auto`] — model-driven selection performed
//! at init time, as §5 prescribes.
//!
//! Under the hood, [`routing`] derives each rank's staging copy maps once;
//! [`exec`] posts plain persistent messages on `mpisim` and
//! [`exec_partitioned`] posts partitioned inter-region messages, both from
//! the same routing; [`tagspace`] leases each live collective a private
//! tag namespace. [`analytic`] evaluates modeled cost and message
//! statistics at paper scale (2048 ranks).

pub mod agg;
pub mod analytic;
pub mod batch;
pub mod collective;
pub mod exec;
mod exec_common;
pub mod exec_partitioned;
pub mod future;
pub mod neighbor;
pub mod pattern;
pub mod routing;
pub mod stats;
pub mod tagspace;
pub mod tune;

pub use agg::{AssignStrategy, Plan, PlanMsg, SlotArena, SlotRef};
pub use analytic::{init_time, iteration_time, IterationCost};
pub use batch::{BatchRequest, EntryId, NeighborBatch};
pub use collective::{choose_protocol, Protocol};
pub use exec::PersistentNeighbor;
pub use exec_partitioned::PartitionedNeighbor;
pub use future::{block_on, BatchFuture, EntryFuture, NeighborFuture, ProgressDriver};
pub use neighbor::{Backend, NeighborAlltoallv, NeighborRequest};
pub use pattern::CommPattern;
pub use routing::RankRouting;
pub use stats::PlanStats;
pub use tune::{fitted_auto_model, topology_signature};
pub use tuner::TunePolicy;

#[cfg(test)]
mod proptests;
