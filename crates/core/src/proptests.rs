//! Property-based tests over random communication patterns.

use crate::agg::verify::verify_plan;
use crate::agg::{AssignStrategy, Plan};
use crate::analytic::iteration_time;
use crate::pattern::CommPattern;
use crate::routing::RankRouting;
use crate::stats::PlanStats;
use locality::Topology;
use perfmodel::LocalityModel;
use proptest::prelude::*;

/// Random pattern over `n` ranks: each rank sends to a few random peers a
/// few indices drawn from its own index space (indices globally unique by
/// construction: rank r owns [r·K, (r+1)·K)).
fn arb_pattern(n: usize) -> impl Strategy<Value = CommPattern> {
    const K: usize = 32;
    prop::collection::vec(
        prop::collection::vec((0usize..n, prop::collection::vec(0usize..K, 1..6)), 0..5),
        n..=n,
    )
    .prop_map(move |raw| {
        let mut sends: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); n];
        for (src, list) in raw.into_iter().enumerate() {
            let mut per_dst: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
            for (dst, idx) in list {
                if dst == src {
                    continue;
                }
                per_dst
                    .entry(dst)
                    .or_default()
                    .extend(idx.iter().map(|&i| src * K + i));
            }
            for (dst, mut idx) in per_dst {
                idx.sort_unstable();
                idx.dedup();
                sends[src].push((dst, idx));
            }
        }
        CommPattern::new(n, sends)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every protocol's plan delivers every (value, destination) demand
    /// exactly once, for random patterns, region sizes, and strategies.
    #[test]
    fn plans_route_exactly(
        pattern in arb_pattern(12),
        ppn in 1usize..7,
        dedup in any::<bool>(),
        lb in any::<bool>(),
    ) {
        let topo = Topology::block_nodes(12, ppn);
        let strategy = if lb { AssignStrategy::LoadBalanced } else { AssignStrategy::RoundRobin };
        verify_plan(&pattern, &Plan::standard(&pattern, &topo), &topo);
        verify_plan(&pattern, &Plan::aggregated(&pattern, &topo, dedup, strategy), &topo);
    }

    /// Aggregation never sends more inter-region messages than standard,
    /// and dedup never moves more inter-region bytes than partial.
    #[test]
    fn aggregation_reduces_global_traffic(pattern in arb_pattern(16), ppn in 2usize..6) {
        let topo = Topology::block_nodes(16, ppn);
        let st = PlanStats::of(&Plan::standard(&pattern, &topo));
        let partial = PlanStats::of(&Plan::aggregated(&pattern, &topo, false, AssignStrategy::LoadBalanced));
        let full = PlanStats::of(&Plan::aggregated(&pattern, &topo, true, AssignStrategy::LoadBalanced));
        prop_assert!(partial.total_global_msgs <= st.total_global_msgs);
        prop_assert!(full.total_global_msgs == partial.total_global_msgs);
        prop_assert!(full.total_global_bytes <= partial.total_global_bytes);
        // partial moves exactly the standard inter-region volume
        prop_assert_eq!(partial.total_global_bytes, st.total_global_bytes);
    }

    /// The modeled iteration time of the dynamic selector is the minimum of
    /// the candidates (sanity of `choose_protocol`).
    #[test]
    fn selector_picks_minimum(pattern in arb_pattern(8), ppn in 1usize..5) {
        let topo = Topology::block_nodes(8, ppn);
        let model = LocalityModel::lassen();
        let (winner, t) = crate::collective::choose_protocol(&pattern, &topo, &model);
        for p in crate::collective::Protocol::ALL {
            let plan = p.plan(&pattern, &topo);
            let tp = iteration_time(&plan, &topo, &model, p.is_wrapped()).total;
            prop_assert!(t <= tp + 1e-15, "{winner} ({t}) beaten by {p} ({tp})");
        }
    }

    /// The single-sweep `RankRouting::build_all` produces routings
    /// byte-identical to the per-rank `RankRouting::build` path, for every
    /// protocol over random patterns, region sizes, and strategies.
    #[test]
    fn build_all_matches_per_rank_build(
        pattern in arb_pattern(12),
        ppn in 1usize..7,
        dedup in any::<bool>(),
        lb in any::<bool>(),
    ) {
        let topo = Topology::block_nodes(12, ppn);
        let strategy = if lb { AssignStrategy::LoadBalanced } else { AssignStrategy::RoundRobin };
        for plan in [
            Plan::standard(&pattern, &topo),
            Plan::aggregated(&pattern, &topo, dedup, strategy),
        ] {
            let all = RankRouting::build_all(&pattern, &plan, 4096);
            prop_assert_eq!(all.len(), 12);
            for (me, routing) in all.iter().enumerate() {
                let single = RankRouting::build(&pattern, &plan, me, 4096);
                prop_assert_eq!(routing, &single, "rank {} diverged", me);
            }
        }
    }

    /// Load-balanced leader assignment never has a worse max send volume
    /// than round-robin.
    #[test]
    fn load_balance_no_worse(pattern in arb_pattern(16), ppn in 2usize..6) {
        let topo = Topology::block_nodes(16, ppn);
        let rr = Plan::aggregated(&pattern, &topo, true, AssignStrategy::RoundRobin);
        let lb = Plan::aggregated(&pattern, &topo, true, AssignStrategy::LoadBalanced);
        let max_vol = |plan: &Plan| {
            let mut v = vec![0usize; 16];
            for m in &plan.g_step {
                v[m.src] += m.n_values();
            }
            v.into_iter().max().unwrap_or(0)
        };
        prop_assert!(max_vol(&lb) <= max_vol(&rr));
    }
}
