//! `NeighborBatch`: plan, tag, and stage many collectives as one.
//!
//! The paper's workload is never a single collective: an AMG solve keeps
//! one persistent `Neighbor_alltoallv` live *per level*, plus residual and
//! restriction exchanges — many simultaneously live patterns on one
//! communicator. Driving each through its own [`crate::NeighborAlltoallv`]
//! builder pays a full planning-and-routing pass per pattern and leans on
//! a global tag allocator to keep them apart. `NeighborBatch` is the
//! session that owns the whole set:
//!
//! ```
//! use locality::Topology;
//! use mpi_advance::{Backend, CommPattern, NeighborBatch, Protocol};
//! use mpisim::World;
//!
//! let fine = CommPattern::example_2_1();
//! let coarse = CommPattern::example_2_1();
//! let topo = Topology::block_nodes(8, 4);
//! let batch = NeighborBatch::new(&topo)
//!     .entry(&fine, Backend::Protocol(Protocol::FullNeighbor))
//!     .entry(&coarse, Backend::Auto);
//! let ok = World::run(8, |ctx| {
//!     let comm = ctx.comm_world();
//!     let mut session = batch.init_all(ctx, &comm);
//!     let inputs: Vec<Vec<f64>> = session
//!         .requests()
//!         .iter()
//!         .map(|r| r.input_index().iter().map(|&i| i as f64).collect())
//!         .collect();
//!     let mut outputs: Vec<Vec<f64>> = session
//!         .requests()
//!         .iter()
//!         .map(|r| vec![0.0; r.output_index().len()])
//!         .collect();
//!     // post every entry, then retire them as their traffic lands
//!     session.start_all(ctx, &inputs);
//!     let mut ok = true;
//!     while session.in_flight() > 0 {
//!         let e = session.wait_any(ctx, &mut outputs);
//!         ok &= session
//!             .entry(e)
//!             .output_index()
//!             .iter()
//!             .zip(&outputs[e])
//!             .all(|(&i, &v)| v == i as f64);
//!     }
//!     ok
//! });
//! assert!(ok.into_iter().all(|b| b));
//! ```
//!
//! What the session fuses, relative to N independent builders:
//!
//! * **Planning** — every entry's backend resolves up front, in one place,
//!   sharing one default cost model.
//! * **Tags** — one [`crate::tagspace::TagLease`] of N spans is carved
//!   into per-entry namespaces; nothing touches a global counter per
//!   entry, and exhaustion of the (re-usable) tag space is a loud panic.
//! * **Routing** — one [`RankRouting::build_all_batch`] sweep derives all
//!   ranks × all entries' routings together, and lays out one staging
//!   arena per rank covering every plain entry's g sends (one allocation
//!   per batch instead of one per request).
//! * **Registration** — [`NeighborBatch::init_all`] opens the world's
//!   channel registry once ([`mpisim::ChanRegistrar`]) and registers every
//!   entry's channels in a single pass, instead of one lock round trip per
//!   message.
//!
//! Each rank gets back a [`BatchRequest`] session: its entries as
//! [`crate::NeighborRequest`] trait objects, in batch order — the same
//! objects the single-collective builder returns
//! ([`crate::NeighborAlltoallv`] is a one-entry batch internally),
//! byte-identical on the wire to N independent inits — plus the
//! completion-driven verbs ([`BatchRequest::start_all`],
//! [`BatchRequest::test_any`], [`BatchRequest::wait_any`],
//! [`BatchRequest::wait_all`]) that drive the whole set as one session and
//! retire entries in **delivery order**.

use crate::agg::AssignStrategy;
use crate::collective::select::{candidates_within, choose_with};
use crate::collective::Protocol;
use crate::exec::PersistentNeighbor;
use crate::exec_partitioned::PartitionedNeighbor;
use crate::neighbor::{Backend, NeighborRequest};
use crate::pattern::CommPattern;
use crate::routing::{BatchEntryPlan, BatchRankRouting, RankRouting};
use crate::stats::{PlanStats, VALUE_BYTES};
use crate::tagspace::{TagLease, TagSpace, SPAN};
use crate::tune::{topology_signature, PublishSpec, TunedCandidate, TunedNeighbor};
use crate::Plan;
use locality::Topology;
use mpisim::persistent::shared_buf;
use mpisim::{ChanId, Comm, RankCtx};
use perfmodel::{CostModel, LocalityModel};
use std::sync::{Arc, Mutex, OnceLock};
use tuner::{size_bucket, ProfileCache, ProfileKey, TunePolicy};

pub(crate) struct PlainRequest {
    pub(crate) inner: PersistentNeighbor,
    pub(crate) protocol: Protocol,
    /// Requests outlive their builder; holding the lease keeps the tag
    /// span from being re-used while this request's channels are live.
    pub(crate) _lease: Option<Arc<TagLease>>,
}

impl NeighborRequest for PlainRequest {
    fn input_index(&self) -> &[usize] {
        self.inner.input_index()
    }
    fn output_index(&self) -> &[usize] {
        self.inner.output_index()
    }
    fn start(&mut self, ctx: &mut RankCtx, input: &[f64]) {
        self.inner.start(ctx, input);
    }
    fn test(&mut self, ctx: &mut RankCtx, output: &mut [f64]) -> bool {
        self.inner.test(ctx, output)
    }
    fn pending_chans(&self, out: &mut Vec<ChanId>) {
        self.inner.pending_chans(out);
    }
    fn wait(&mut self, ctx: &mut RankCtx, output: &mut [f64]) {
        self.inner.wait(ctx, output);
    }
    fn protocol(&self) -> Protocol {
        self.protocol
    }
    fn is_partitioned(&self) -> bool {
        false
    }
}

pub(crate) struct PartitionedRequest {
    pub(crate) inner: PartitionedNeighbor,
    pub(crate) protocol: Protocol,
    /// See [`PlainRequest::_lease`].
    pub(crate) _lease: Option<Arc<TagLease>>,
}

impl NeighborRequest for PartitionedRequest {
    fn input_index(&self) -> &[usize] {
        self.inner.input_index()
    }
    fn output_index(&self) -> &[usize] {
        self.inner.output_index()
    }
    fn start(&mut self, ctx: &mut RankCtx, input: &[f64]) {
        self.inner.start(ctx, input);
    }
    fn test(&mut self, ctx: &mut RankCtx, output: &mut [f64]) -> bool {
        self.inner.test(ctx, output)
    }
    fn pending_chans(&self, out: &mut Vec<ChanId>) {
        self.inner.pending_chans(out);
    }
    fn wait(&mut self, ctx: &mut RankCtx, output: &mut [f64]) {
        self.inner.wait(ctx, output);
    }
    fn protocol(&self) -> Protocol {
        self.protocol
    }
    fn is_partitioned(&self) -> bool {
        true
    }
}

struct EntrySpec<'a> {
    pattern: &'a CommPattern,
    backend: Backend,
    strategy: AssignStrategy,
}

/// The resolved half of a batch: plans, carved tags, and every rank's
/// routing, computed once and shared by all ranks' `init_all`.
///
/// A [`Backend::Tuned`] entry **expands**: one routing (and tag span)
/// per shortlisted candidate, all laid out in the same fused sweep, so
/// the probe phase hot-swaps between fully-initialized executors. The
/// `routings` / arena windows are therefore in *expanded* order;
/// [`ExpandedEntry`] maps each batch entry to its slots. `plans` and
/// `tag_bases` stay per-entry (a tuned entry reports its model-best
/// candidate until measurement says otherwise).
struct ResolvedBatch {
    plans: Vec<(Protocol, Plan)>,
    tag_bases: Vec<u64>,
    routings: Vec<BatchRankRouting>,
    /// Held by the batch AND cloned into every request it initializes:
    /// the span frees (and its base becomes re-usable) only when the
    /// batch and all of its live requests are gone.
    lease: Option<Arc<TagLease>>,
    expanded: Vec<ExpandedEntry>,
}

/// One entry's slice of the expanded candidate order.
struct ExpandedEntry {
    /// First expanded slot (single-candidate entries own exactly this
    /// one; tuned entries own `candidates.len()` consecutive slots).
    start: usize,
    tuned: Option<TunedResolution>,
}

/// The resolution-time half of one tuned entry's machinery.
struct TunedResolution {
    /// `(protocol, max msgs/iter, max inter-region bytes/iter)` per
    /// candidate, model-ranked cheapest first — probe order and
    /// tie-break order.
    candidates: Vec<(Protocol, f64, f64)>,
    /// Tag-span base of the decision reduction's control messages.
    ctl_base: u64,
    policy: TunePolicy,
    pattern_sig: u64,
    topo_sig: u64,
    size_bucket: u32,
    /// One profile-cache consult per process **per fabric** (measured
    /// winners are fabric-specific, and one batch may be reused across
    /// fabrics): every in-process rank reads the same memoized answer,
    /// so all ranks register the same channels. (Cross-process worlds
    /// must share `MPISIM_PROFILE_DIR` state *or* all miss — a mixed
    /// consult would diverge registrations; see DESIGN.md §11.)
    consult: Mutex<Vec<(String, Option<usize>)>>,
}

/// A session of persistent neighborhood collectives planned, tagged, and
/// staged together. See the [module docs](self) for the full contract;
/// construction mirrors [`crate::NeighborAlltoallv`] (SPMD-agreed inputs,
/// deterministic resolution, every rank shares the builder).
pub struct NeighborBatch<'a> {
    topo: &'a Topology,
    entries: Vec<EntrySpec<'a>>,
    model: Option<&'a dyn CostModel>,
    tune_policy: Option<TunePolicy>,
    pinned_tag_base: Option<u64>,
    resolved: OnceLock<ResolvedBatch>,
}

impl<'a> NeighborBatch<'a> {
    /// An empty session over `topo`. Add collectives with
    /// [`NeighborBatch::entry`].
    pub fn new(topo: &'a Topology) -> Self {
        Self {
            topo,
            entries: Vec::new(),
            model: None,
            tune_policy: None,
            pinned_tag_base: None,
            resolved: OnceLock::new(),
        }
    }

    /// Append one collective (e.g. one AMG level's halo pattern) with the
    /// default leader-assignment strategy.
    pub fn entry(self, pattern: &'a CommPattern, backend: Backend) -> Self {
        self.entry_with(pattern, backend, AssignStrategy::LoadBalanced)
    }

    /// Append one collective with an explicit leader-assignment strategy.
    pub fn entry_with(
        mut self,
        pattern: &'a CommPattern,
        backend: Backend,
        strategy: AssignStrategy,
    ) -> Self {
        assert_eq!(
            pattern.n_ranks,
            self.topo.n_ranks(),
            "pattern/topology rank count mismatch"
        );
        self.entries.push(EntrySpec {
            pattern,
            backend,
            strategy,
        });
        self.resolved = OnceLock::new();
        self
    }

    /// Cost model driving every [`Backend::Auto`] entry (default: the
    /// Lassen-calibrated locality model).
    pub fn cost_model(mut self, model: &'a dyn CostModel) -> Self {
        self.model = Some(model);
        self.resolved = OnceLock::new();
        self
    }

    /// Tuning policy for every [`Backend::Tuned`] entry (default: the
    /// process-wide `MPISIM_TUNE_*` / `MPISIM_PROFILE_DIR` environment,
    /// read once per process). Tests needing an isolated cache directory
    /// or probe budget set it here instead of mutating the environment.
    pub fn tune_policy(mut self, policy: TunePolicy) -> Self {
        self.tune_policy = Some(policy);
        self.resolved = OnceLock::new();
        self
    }

    /// Pin the batch's tag namespace explicitly instead of leasing one:
    /// entry `i` uses `base + i · SPAN`. The pinned range is registered
    /// with the process-wide [`TagSpace`], so leases taken afterwards
    /// never overlap it; collisions against other pins, hand-registered
    /// tags, or leases already live stay the caller's contract.
    pub fn tag_base(mut self, base: u64) -> Self {
        self.pinned_tag_base = Some(base);
        self.resolved = OnceLock::new();
        self
    }

    /// Number of collectives in the session.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every entry's resolved `(protocol, plan)`, in batch order — the
    /// planning half of init, exposed for statistics and tests.
    /// Deterministic and computed once per batch. A [`Backend::Tuned`]
    /// entry reports its model-best candidate here; the measured winner
    /// is a runtime property (ask the live request's `protocol()`).
    pub fn plans(&self) -> &[(Protocol, Plan)] {
        &self.resolved().plans
    }

    /// The tag base carved for each entry, in batch order.
    pub fn tag_bases(&self) -> &[u64] {
        &self.resolved().tag_bases
    }

    /// `MPI_Neighbor_alltoallv_init` × N, as one operation: allocate this
    /// rank's shared staging arena, open the channel registry once, and
    /// register every entry's requests in a single pass. Returns the
    /// rank's [`BatchRequest`] session — every entry's request in batch
    /// order, plus the completion-driven verbs (`start_all`, `test_any`,
    /// `wait_any`, `wait_all`) that drive them as one set.
    pub fn init_all(&self, ctx: &RankCtx, comm: &Comm) -> BatchRequest {
        let resolved = self.resolved();
        for (_, plan) in &resolved.plans {
            assert_eq!(plan.n_ranks, comm.size(), "plan/communicator size mismatch");
        }
        let requests: Vec<Box<dyn NeighborRequest>> = if resolved.plans.is_empty() {
            Vec::new()
        } else {
            let br = &resolved.routings[comm.rank()];
            let arena = shared_buf(vec![0.0f64; br.arena_len]);
            // clone this rank's routings (the bulk of the per-init
            // allocation work) BEFORE taking the registry lock: only
            // channel resolution itself runs inside the world-wide
            // critical section. Expanded order; each slot inits at most
            // once per init_all (a cached tuned winner leaves its losing
            // candidates' slots untouched).
            let mut routings: Vec<Option<RankRouting>> =
                br.entries.iter().cloned().map(Some).collect();
            let mut reg = ctx.chan_registrar();
            self.entries
                .iter()
                .zip(&resolved.expanded)
                .enumerate()
                .map(|(i, (spec, ex))| {
                    let protocol = resolved.plans[i].0;
                    match (&spec.backend, &ex.tuned) {
                        (Backend::Partitioned(_), _) => Box::new(PartitionedRequest {
                            inner: PartitionedNeighbor::from_routing_in(
                                routings[ex.start].take().expect("expanded slot inits once"),
                                &mut reg,
                                comm,
                            ),
                            protocol,
                            _lease: resolved.lease.clone(),
                        })
                            as Box<dyn NeighborRequest>,
                        (_, None) => Box::new(PlainRequest {
                            inner: PersistentNeighbor::from_routing_in(
                                routings[ex.start].take().expect("expanded slot inits once"),
                                &mut reg,
                                comm,
                                arena.clone(),
                                br.arena_off[ex.start].expect("plain entry has an arena window"),
                            ),
                            protocol,
                            _lease: resolved.lease.clone(),
                        }),
                        (_, Some(tr)) => {
                            // one cache consult per process per fabric,
                            // memoized: every rank — and every later
                            // epoch on a pooled world — sees the same
                            // answer, so channel registration never
                            // diverges mid-process
                            let fabric = ctx.fabric();
                            let winner = {
                                let mut consults =
                                    tr.consult.lock().expect("consult lock unpoisoned");
                                match consults.iter().find(|(f, _)| f == fabric) {
                                    Some(&(_, w)) => w,
                                    None => {
                                        let w = tr.policy.profile_dir.as_ref().and_then(|dir| {
                                            let key = ProfileKey {
                                                pattern_sig: tr.pattern_sig,
                                                topo_sig: tr.topo_sig,
                                                size_bucket: tr.size_bucket,
                                                fabric: fabric.to_string(),
                                            };
                                            // unreadable/corrupt/missing
                                            // cache, a winner outside
                                            // today's shortlist (admission
                                            // factor changed), or an entry
                                            // measured under an older
                                            // model-refit generation
                                            // (policy.fit_version moved on)
                                            // → probe
                                            ProfileCache::new(dir)
                                                .lookup(&key)
                                                .filter(|e| e.fit_ver >= tr.policy.fit_version)
                                                .and_then(|e| {
                                                    tr.candidates
                                                        .iter()
                                                        .position(|(p, _, _)| p.name() == e.winner)
                                                })
                                        });
                                        consults.push((fabric.to_string(), w));
                                        w
                                    }
                                }
                            };
                            match winner {
                                // warm start: the cache already knows the
                                // winner — register only its channels and
                                // skip the probe phase entirely
                                Some(w) if tr.policy.recheck_iters == 0 => Box::new(PlainRequest {
                                    inner: PersistentNeighbor::from_routing_in(
                                        routings[ex.start + w]
                                            .take()
                                            .expect("expanded slot inits once"),
                                        &mut reg,
                                        comm,
                                        arena.clone(),
                                        br.arena_off[ex.start + w]
                                            .expect("plain entry has an arena window"),
                                    ),
                                    protocol: tr.candidates[w].0,
                                    _lease: resolved.lease.clone(),
                                })
                                    as Box<dyn NeighborRequest>,
                                // no usable cached winner → full probe; a
                                // cached winner under a positive spot-check
                                // budget (`recheck_iters`) → warm-start the
                                // tuned request: run the winner for the
                                // warm-up window, then re-probe and
                                // re-publish, so a stale winner is evicted
                                // instead of trusted forever
                                warm => {
                                    let candidates: Vec<TunedCandidate> = tr
                                        .candidates
                                        .iter()
                                        .enumerate()
                                        .map(|(c, &(protocol, msgs, bytes))| {
                                            let slot = ex.start + c;
                                            TunedCandidate {
                                                inner: Some(PersistentNeighbor::from_routing_in(
                                                    routings[slot]
                                                        .take()
                                                        .expect("expanded slot inits once"),
                                                    &mut reg,
                                                    comm,
                                                    arena.clone(),
                                                    br.arena_off[slot]
                                                        .expect("plain entry has an arena window"),
                                                )),
                                                protocol,
                                                msgs,
                                                bytes,
                                            }
                                        })
                                        .collect();
                                    let publish =
                                        tr.policy.profile_dir.as_ref().map(|dir| PublishSpec {
                                            cache: ProfileCache::new(dir),
                                            key: ProfileKey {
                                                pattern_sig: tr.pattern_sig,
                                                topo_sig: tr.topo_sig,
                                                size_bucket: tr.size_bucket,
                                                fabric: fabric.to_string(),
                                            },
                                            fit_ver: tr.policy.fit_version,
                                        });
                                    let tuned = TunedNeighbor::new(
                                        candidates,
                                        tr.policy.probe_iters,
                                        tr.ctl_base,
                                        comm.clone(),
                                        publish,
                                        resolved.lease.clone(),
                                    );
                                    Box::new(match warm {
                                        Some(w) => tuned.warm_start(w, tr.policy.recheck_iters),
                                        None => tuned,
                                    })
                                }
                            }
                        }
                    }
                })
                .collect()
        };
        let n = requests.len();
        BatchRequest {
            requests,
            in_flight: vec![false; n],
            ready: std::collections::VecDeque::new(),
            chan_scratch: Vec::new(),
        }
    }

    fn resolved(&self) -> &ResolvedBatch {
        self.resolved.get_or_init(|| self.resolve())
    }

    fn resolve(&self) -> ResolvedBatch {
        let default_model;
        let model: &dyn CostModel = match self.model {
            Some(m) => m,
            None => {
                default_model = LocalityModel::lassen();
                &default_model
            }
        };
        // the policy is only materialized when a tuned entry exists, so
        // batches without one never read the MPISIM_TUNE_* environment
        let policy: Option<TunePolicy> = self
            .entries
            .iter()
            .any(|e| matches!(e.backend, Backend::Tuned))
            .then(|| {
                self.tune_policy
                    .clone()
                    .unwrap_or_else(TunePolicy::from_env)
            });

        // each entry's candidate list: exactly one plan for explicit /
        // Partitioned / Auto backends, the model's shortlist for Tuned
        // (a one-candidate shortlist needs no measurement and collapses
        // back to a plain entry)
        let per_entry: Vec<(Vec<(Protocol, Plan)>, bool)> = self
            .entries
            .iter()
            .map(|e| match e.backend {
                Backend::Protocol(p) => (
                    vec![(p, p.plan_with(e.pattern, self.topo, e.strategy))],
                    false,
                ),
                Backend::Partitioned(p) => {
                    let plan = p.plan_with(e.pattern, self.topo, e.strategy);
                    assert!(
                        plan.aggregated,
                        "Backend::Partitioned needs an aggregating protocol, got {p}"
                    );
                    (vec![(p, plan)], false)
                }
                Backend::Auto => {
                    let (p, plan, _) =
                        choose_with(&Protocol::ALL, e.pattern, self.topo, model, e.strategy);
                    (vec![(p, plan)], false)
                }
                Backend::Tuned => {
                    let pol = policy.as_ref().expect("policy exists for tuned entries");
                    let cands: Vec<(Protocol, Plan)> = candidates_within(
                        &Protocol::ALL,
                        e.pattern,
                        self.topo,
                        model,
                        e.strategy,
                        pol.factor,
                    )
                    .into_iter()
                    .map(|(p, plan, _)| (p, plan))
                    .collect();
                    let tuned = cands.len() > 1;
                    (cands, tuned)
                }
            })
            .collect();

        // one lease (or registered pin): a private namespace per expanded
        // candidate, plus one control span per tuned entry for the
        // decision reduction
        let expanded_total: usize = per_entry.iter().map(|(c, _)| c.len()).sum();
        let tuned_count = per_entry.iter().filter(|(_, t)| *t).count();
        let total_spans = (expanded_total + tuned_count) as u64;
        let (span_bases, lease): (Vec<u64>, Option<Arc<TagLease>>) = match self.pinned_tag_base {
            _ if total_spans == 0 => (Vec::new(), None),
            Some(base) => (
                (0..total_spans).map(|i| base + i * SPAN).collect(),
                Some(Arc::new(TagSpace::global().pin(base, total_spans))),
            ),
            None => {
                let lease = TagSpace::global().lease_for(
                    total_spans,
                    &format!("NeighborBatch[{} entries]", self.entries.len()),
                );
                (
                    (0..total_spans as usize)
                        .map(|i| lease.entry_base(i))
                        .collect(),
                    Some(Arc::new(lease)),
                )
            }
        };

        // one fused sweep derives all ranks × all expanded candidates'
        // routings and lays out the per-rank shared staging arena
        let mut entry_plans: Vec<BatchEntryPlan> = Vec::with_capacity(expanded_total);
        let mut expanded: Vec<ExpandedEntry> = Vec::with_capacity(self.entries.len());
        let mut next = 0usize;
        let mut next_ctl = expanded_total; // ctl spans follow the expanded spans
        for (e, (cands, is_tuned)) in self.entries.iter().zip(&per_entry) {
            let start = next;
            for (_, plan) in cands {
                entry_plans.push(BatchEntryPlan {
                    pattern: e.pattern,
                    plan,
                    tag_base: span_bases[next],
                    shared_arena: !matches!(e.backend, Backend::Partitioned(_)),
                });
                next += 1;
            }
            let tuned = is_tuned.then(|| {
                let mean_bytes = ((e.pattern.total_slots() * VALUE_BYTES) as u64)
                    .checked_div(e.pattern.total_msgs() as u64)
                    .unwrap_or(0);
                let ctl_base = span_bases[next_ctl];
                next_ctl += 1;
                TunedResolution {
                    candidates: cands
                        .iter()
                        .map(|(p, plan)| {
                            let st = PlanStats::of(plan);
                            (
                                *p,
                                (st.max_local_msgs + st.max_global_msgs) as f64,
                                st.max_global_bytes as f64,
                            )
                        })
                        .collect(),
                    ctl_base,
                    policy: policy.clone().expect("policy exists for tuned entries"),
                    pattern_sig: e.pattern.pattern_signature(),
                    topo_sig: topology_signature(self.topo),
                    size_bucket: size_bucket(mean_bytes),
                    consult: Mutex::new(Vec::new()),
                }
            });
            expanded.push(ExpandedEntry { start, tuned });
        }
        let routings = RankRouting::build_all_batch(&entry_plans);
        drop(entry_plans); // release the borrows on per_entry's plans

        let tag_bases: Vec<u64> = expanded.iter().map(|ex| span_bases[ex.start]).collect();
        let plans: Vec<(Protocol, Plan)> = per_entry
            .into_iter()
            .map(|(mut cands, _)| cands.swap_remove(0))
            .collect();

        ResolvedBatch {
            plans,
            tag_bases,
            routings,
            lease,
            expanded,
        }
    }
}

/// Index of one collective within its batch, in entry order.
pub type EntryId = usize;

/// One rank's **live session** over an initialized [`NeighborBatch`]: the
/// entries' [`NeighborRequest`]s in batch order, plus the
/// completion-driven verbs that drive them as one set.
///
/// The session model is `MPI_Startall` / `MPI_Testany` / `MPI_Waitany` /
/// `MPI_Waitall` lifted to whole collectives: [`BatchRequest::start_all`]
/// posts every entry's iteration, and [`BatchRequest::wait_any`] retires
/// **whichever entry's traffic lands first** — it parks on the union of
/// all in-flight entries' pending channels, drains arrivals via each
/// entry's `test`, and returns the first entry that completes. An AMG
/// V-cycle smooths each level the moment its halo exchange finishes
/// instead of serializing on whichever level is slowest.
pub struct BatchRequest {
    requests: Vec<Box<dyn NeighborRequest>>,
    /// Entries with a started, not-yet-completed iteration.
    in_flight: Vec<bool>,
    /// Completed-but-unreported entries: each `test_any` round sweeps
    /// EVERY in-flight entry (so all drainable traffic drains and all
    /// fireable forwards fire before control returns to the caller's
    /// compute), then reports completions one at a time from this queue.
    ready: std::collections::VecDeque<EntryId>,
    /// Scratch for the union pending-channel set `wait_any` parks on.
    chan_scratch: Vec<ChanId>,
}

impl BatchRequest {
    /// Number of entries in the session.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Number of entries with a started iteration not yet retired by the
    /// caller (through [`BatchRequest::test_any`] /
    /// [`BatchRequest::wait_any`]) — the `while session.in_flight() > 0`
    /// retire-loop condition. Includes entries whose traffic has already
    /// completed but whose id has not been reported yet.
    pub fn in_flight(&self) -> usize {
        self.in_flight.iter().filter(|&&f| f).count() + self.ready.len()
    }

    /// The entries' requests, in batch order.
    pub fn requests(&self) -> &[Box<dyn NeighborRequest>] {
        &self.requests
    }

    /// Mutable access to the entries — for driving one entry individually
    /// through its own `start`/`test`/`wait`. Iterations driven that way
    /// bypass the session's in-flight tracking: mix the two styles per
    /// *iteration*, not per entry mid-iteration.
    pub fn requests_mut(&mut self) -> &mut [Box<dyn NeighborRequest>] {
        &mut self.requests
    }

    /// Dissolve the session into its requests (batch order).
    pub fn into_requests(self) -> Vec<Box<dyn NeighborRequest>> {
        self.requests
    }

    /// One entry's request.
    pub fn entry(&self, e: EntryId) -> &dyn NeighborRequest {
        &*self.requests[e]
    }

    /// `MPI_Start` for one entry: begin its iteration with `input` (aligned
    /// with its `input_index()`) and track it as in flight.
    pub fn start(&mut self, ctx: &mut RankCtx, e: EntryId, input: &[f64]) {
        assert!(
            !self.in_flight[e] && !self.ready.contains(&e),
            "entry {e} started again before its iteration was retired"
        );
        self.requests[e].start(ctx, input);
        self.in_flight[e] = true;
    }

    /// `MPI_Startall`: begin one iteration of **every** entry.
    /// `inputs[e]` is entry `e`'s input (aligned with its `input_index()`).
    pub fn start_all(&mut self, ctx: &mut RankCtx, inputs: &[Vec<f64>]) {
        assert_eq!(
            inputs.len(),
            self.requests.len(),
            "one input per batch entry"
        );
        for (e, input) in inputs.iter().enumerate() {
            self.start(ctx, e, input);
        }
    }

    /// `MPI_Testany`: non-blocking progress across every in-flight entry.
    /// Sweeps **all** of them — draining whatever payloads have arrived
    /// and firing any forwards whose inputs just completed, so the whole
    /// session makes maximal progress before control returns to the
    /// caller's compute — then retires one completed entry (its ghost
    /// values are in `outputs[e]`) and returns its id. Entries that
    /// completed in the same sweep are reported by subsequent calls, in
    /// completion order. `None` means no entry is complete *yet*; entries
    /// never started are never returned.
    pub fn test_any(&mut self, ctx: &mut RankCtx, outputs: &mut [Vec<f64>]) -> Option<EntryId> {
        assert_eq!(
            outputs.len(),
            self.requests.len(),
            "one output per batch entry"
        );
        for (e, req) in self.requests.iter_mut().enumerate() {
            if self.in_flight[e] && req.test(ctx, &mut outputs[e]) {
                self.in_flight[e] = false;
                self.ready.push_back(e);
            }
        }
        self.ready.pop_front()
    }

    /// Append every in-flight entry's pending channels to `out`: the
    /// union wake set [`BatchRequest::wait_any`] parks on, exposed so an
    /// external executor (`mpi_advance::future::ProgressDriver`) can park
    /// once across several sessions and wake the right one.
    pub fn pending_chans(&self, out: &mut Vec<ChanId>) {
        for (e, req) in self.requests.iter().enumerate() {
            if self.in_flight[e] {
                req.pending_chans(out);
            }
        }
    }

    /// `MPI_Waitany`: block until **some** in-flight entry completes and
    /// return its id (its ghost values are in `outputs[e]`). Completion is
    /// in **delivery order**: between [`BatchRequest::test_any`] rounds the
    /// call parks on the union of all in-flight entries' pending channels,
    /// so whichever entry's traffic lands first retires first — the
    /// overlap loop `while let Some(e) = ... { compute on e }` never idles
    /// on a slow entry while a fast one is already complete.
    ///
    /// Panics if nothing is in flight (there is nothing to wait for).
    pub fn wait_any(&mut self, ctx: &mut RankCtx, outputs: &mut [Vec<f64>]) -> EntryId {
        assert!(self.in_flight() > 0, "wait_any with no entry in flight");
        loop {
            if let Some(e) = self.test_any(ctx, outputs) {
                return e;
            }
            let mut chans = std::mem::take(&mut self.chan_scratch);
            chans.clear();
            for (e, req) in self.requests.iter().enumerate() {
                if self.in_flight[e] {
                    req.pending_chans(&mut chans);
                }
            }
            ctx.wait_any(&chans);
            self.chan_scratch = chans;
        }
    }

    /// `MPI_Waitall`: retire every in-flight entry (a `wait_any` loop, so
    /// entries still complete in delivery order).
    pub fn wait_all(&mut self, ctx: &mut RankCtx, outputs: &mut [Vec<f64>]) {
        while self.in_flight() > 0 {
            self.wait_any(ctx, outputs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tagspace;
    use mpisim::World;

    fn patterns() -> (CommPattern, CommPattern, Topology) {
        let a = CommPattern::example_2_1();
        let b = CommPattern::new(
            8,
            vec![
                vec![(1, vec![0]), (5, vec![0, 1])],
                vec![(4, vec![10]), (6, vec![11])],
                vec![(7, vec![20, 21])],
                vec![],
                vec![(0, vec![40]), (1, vec![40]), (2, vec![41])],
                vec![(6, vec![50])],
                vec![(3, vec![60]), (0, vec![61])],
                vec![],
            ],
        );
        (a, b, Topology::block_nodes(8, 4))
    }

    /// Drive every entry of `batch` for two interleaved iterations through
    /// the session verbs (`start_all`, then a `wait_any` retire loop) and
    /// check all ghost values deliver, every entry exactly once.
    fn deliver_all(batch: &NeighborBatch, n_ranks: usize) {
        let ok = World::run(n_ranks, |ctx| {
            let comm = ctx.comm_world();
            let mut session = batch.init_all(ctx, &comm);
            let mut ok = true;
            for it in 0..2u64 {
                // start every entry before waiting on any: live-together,
                // the shape the session exists for
                let inputs: Vec<Vec<f64>> = session
                    .requests()
                    .iter()
                    .map(|r| {
                        r.input_index()
                            .iter()
                            .map(|&i| (i as f64) + it as f64 * 0.5)
                            .collect()
                    })
                    .collect();
                let mut outputs: Vec<Vec<f64>> = session
                    .requests()
                    .iter()
                    .map(|r| vec![f64::NAN; r.output_index().len()])
                    .collect();
                session.start_all(ctx, &inputs);
                let mut retired = vec![false; session.len()];
                while session.in_flight() > 0 {
                    let e = session.wait_any(ctx, &mut outputs);
                    ok &= !std::mem::replace(&mut retired[e], true);
                    ok &= session
                        .entry(e)
                        .output_index()
                        .iter()
                        .zip(&outputs[e])
                        .all(|(&i, &v)| v == (i as f64) + it as f64 * 0.5);
                }
                ok &= retired.iter().all(|&r| r);
            }
            ok
        });
        assert!(ok.into_iter().all(|b| b), "a batch entry failed to deliver");
    }

    #[test]
    fn mixed_backend_batch_delivers() {
        let (a, b, topo) = patterns();
        let batch = NeighborBatch::new(&topo)
            .entry(&a, Backend::Protocol(Protocol::StandardNeighbor))
            .entry(&b, Backend::Partitioned(Protocol::FullNeighbor))
            .entry(&a, Backend::Auto)
            .entry(&b, Backend::Protocol(Protocol::PartialNeighbor));
        assert_eq!(batch.len(), 4);
        deliver_all(&batch, 8);
    }

    #[test]
    fn same_pattern_many_entries_share_the_arena() {
        // several entries over the same region pairs: one arena per rank
        // backs all of them, at distinct windows
        let (a, _, topo) = patterns();
        let batch = NeighborBatch::new(&topo)
            .entry(&a, Backend::Protocol(Protocol::FullNeighbor))
            .entry(&a, Backend::Protocol(Protocol::FullNeighbor))
            .entry(&a, Backend::Protocol(Protocol::PartialNeighbor));
        batch.plans();
        let resolved = batch.resolved.get().unwrap();
        for br in &resolved.routings {
            let mut offs: Vec<usize> = br.arena_off.iter().map(|o| o.unwrap()).collect();
            let total: usize = br
                .entries
                .iter()
                .map(|r| r.g_sends.iter().map(|g| g.len).sum::<usize>())
                .sum();
            assert_eq!(br.arena_len, total);
            offs.dedup();
            assert!(offs.windows(2).all(|w| w[0] < w[1]), "windows must ascend");
        }
        deliver_all(&batch, 8);
    }

    #[test]
    fn entries_get_disjoint_tag_spans() {
        let (a, b, topo) = patterns();
        let batch = NeighborBatch::new(&topo)
            .entry(&a, Backend::Auto)
            .entry(&b, Backend::Auto)
            .entry(&a, Backend::Auto);
        let bases = batch.tag_bases();
        assert_eq!(bases.len(), 3);
        for w in bases.windows(2) {
            assert_eq!(w[1] - w[0], tagspace::SPAN, "contiguous per-entry spans");
        }
    }

    #[test]
    fn live_requests_pin_their_tag_span() {
        // requests outlive their builder: the tag span must stay leased —
        // and never be handed to a new collective — until the requests
        // drop too, or a successor batch would attach to the live
        // requests' channels and cross-deliver
        let (a, _, topo) = patterns();
        let batch_a =
            NeighborBatch::new(&topo).entry(&a, Backend::Protocol(Protocol::StandardNeighbor));
        let base_a = batch_a.tag_bases()[0];
        let reqs = World::run(8, |ctx| {
            let comm = ctx.comm_world();
            batch_a.init_all(ctx, &comm).into_requests()
        });
        drop(batch_a);
        // builder gone, requests live: the base must NOT be re-leased
        let batch_b = NeighborBatch::new(&topo).entry(&a, Backend::Auto);
        assert_ne!(
            batch_b.tag_bases()[0],
            base_a,
            "tag span re-leased while its requests are still live"
        );
        drop(reqs);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let topo = Topology::block_nodes(4, 2);
        let batch = NeighborBatch::new(&topo);
        let counts = World::run(4, |ctx| {
            let comm = ctx.comm_world();
            batch.init_all(ctx, &comm).len()
        });
        assert!(counts.into_iter().all(|c| c == 0));
    }

    #[test]
    #[should_panic(expected = "pattern/topology rank count mismatch")]
    fn rank_count_mismatch_rejected_at_entry() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(4, 2);
        let _ = NeighborBatch::new(&topo).entry(&pattern, Backend::Auto);
    }

    #[test]
    fn batch_on_a_pooled_world_reinitializes_warm() {
        let (a, b, topo) = patterns();
        let batch = NeighborBatch::new(&topo)
            .entry(&a, Backend::Protocol(Protocol::FullNeighbor))
            .entry(&b, Backend::Partitioned(Protocol::PartialNeighbor));
        let pool = World::pool(8);
        for _ in 0..3 {
            let ok = pool.run(|ctx| {
                let comm = ctx.comm_world();
                let mut session = batch.init_all(ctx, &comm);
                session.requests_mut().iter_mut().all(|r| {
                    let input: Vec<f64> = r.input_index().iter().map(|&i| i as f64).collect();
                    let mut output = vec![f64::NAN; r.output_index().len()];
                    r.start_wait(ctx, &input, &mut output);
                    r.output_index()
                        .iter()
                        .zip(&output)
                        .all(|(&i, &v)| v == i as f64)
                })
            });
            assert!(ok.into_iter().all(|b| b));
        }
    }

    #[test]
    fn test_any_reports_progress_without_blocking() {
        // with no traffic sent for entry 0's iteration... all entries'
        // sends fire in start, so instead: pin non-blocking semantics by
        // calling test_any before/after start_all and between completions
        let (a, b, topo) = patterns();
        let batch = NeighborBatch::new(&topo)
            .entry(&a, Backend::Protocol(Protocol::FullNeighbor))
            .entry(&b, Backend::Protocol(Protocol::StandardNeighbor));
        let ok = World::run(8, |ctx| {
            let comm = ctx.comm_world();
            let mut session = batch.init_all(ctx, &comm);
            let mut outputs: Vec<Vec<f64>> = session
                .requests()
                .iter()
                .map(|r| vec![f64::NAN; r.output_index().len()])
                .collect();
            // nothing in flight: test_any must be None, not a panic
            assert_eq!(session.test_any(ctx, &mut outputs), None);
            let inputs: Vec<Vec<f64>> = session
                .requests()
                .iter()
                .map(|r| r.input_index().iter().map(|&i| i as f64).collect())
                .collect();
            session.start_all(ctx, &inputs);
            assert_eq!(session.in_flight(), 2);
            // drive to completion on test_any alone (no parking): both
            // entries must retire exactly once
            let mut retired = [false, false];
            while session.in_flight() > 0 {
                if let Some(e) = session.test_any(ctx, &mut outputs) {
                    assert!(!std::mem::replace(&mut retired[e], true));
                } else {
                    std::thread::yield_now();
                }
            }
            let mut ok = retired.iter().all(|&r| r);
            for (e, out) in outputs.iter().enumerate() {
                ok &= session
                    .entry(e)
                    .output_index()
                    .iter()
                    .zip(out)
                    .all(|(&i, &v)| v == i as f64);
            }
            ok
        });
        assert!(ok.into_iter().all(|b| b));
    }

    #[test]
    #[should_panic(expected = "wait_any with no entry in flight")]
    fn wait_any_without_started_entries_panics() {
        let (a, _, topo) = patterns();
        let batch = NeighborBatch::new(&topo).entry(&a, Backend::Auto);
        World::run(8, |ctx| {
            let comm = ctx.comm_world();
            let mut session = batch.init_all(ctx, &comm);
            let mut outputs = vec![vec![0.0; session.entry(0).output_index().len()]];
            session.wait_any(ctx, &mut outputs);
        });
    }
}
