//! Leased tag namespaces for concurrently live collectives.
//!
//! Every live collective needs a private tag range on its communicator:
//! the routing layer lays out `tag_base + step·4096 + seq` per message and
//! the partitioned transport folds `(partition + 1) << 20` on top, so one
//! collective occupies up to [`SPAN`] tags. The old allocator was a global
//! atomic counter that silently wrapped after [`CAPACITY`] allocations —
//! the 512th *live* collective would re-use the first one's range and
//! cross-deliver without a diagnostic.
//!
//! This module replaces it with a real allocator:
//!
//! * [`TagSpace::lease`] hands out a contiguous range of spans
//!   ([`TagLease`]) — one span per collective, N spans for an N-entry
//!   [`crate::NeighborBatch`] — so a batch carves its entries' namespaces
//!   from one lease instead of N atomic fetches.
//! * Dropping a lease returns its range to a free list keyed by span
//!   count; a churny workload (collectives created and dropped per solve)
//!   re-uses the same handful of bases forever instead of marching toward
//!   the wrap.
//! * Exhaustion is **loud**: holding more than [`CAPACITY`] spans live at
//!   once panics with a diagnostic instead of silently aliasing tag space.
//!
//! * Hand-picked bases remain possible ([`TagSpace::pin`], what the
//!   `tag_base` builder setters use): a pinned range is registered with
//!   the allocator so later leases skip it — a pin inside the leaseable
//!   range `[SPAN, 2³⁹)` cannot silently alias a future lease. Collisions
//!   between pins, or with leases taken before the pin, stay the caller's
//!   contract.
//!
//! Ranges freed with one span count are only re-used by leases of the same
//! span count (exact-size free lists, no splitting/merging) — fresh space
//! is consumed otherwise, which the exhaustion check still bounds.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Tags per leased span: room for the four step namespaces (`step·4096 +
/// seq`) plus up to 1023 partition sub-tags (`(partition + 1) << 20`).
pub const SPAN: u64 = 1 << 30;
/// Partitioned requests need `tag < 2^39` (half the simulator's user tag
/// space); leases live in `[SPAN, WRAP)`, keeping `[0, SPAN)` free for
/// hand-picked bases.
const WRAP: u64 = 1 << 39;
/// Spans that can be simultaneously live: 511.
pub const CAPACITY: u64 = WRAP / SPAN - 1;

/// A pool of tag spans. One process-global instance backs every
/// builder-allocated base ([`TagSpace::global`]); tests create private
/// pools so exhausting one cannot poison unrelated collectives.
#[derive(Default)]
pub struct TagSpace {
    state: Mutex<PoolState>,
}

#[derive(Default)]
struct PoolState {
    /// Bump pointer over never-used space, in spans from [`SPAN`].
    next: u64,
    /// Freed ranges by exact span count.
    free: HashMap<u64, Vec<u64>>,
    /// Spans currently leased, for the exhaustion diagnostic.
    live: u64,
    /// Caller-pinned tag ranges (`[start, end)`, raw tags): the bump
    /// pointer skips them so a lease never aliases a pinned collective.
    pinned: Vec<(u64, u64)>,
}

/// An exclusively held contiguous range of tag spans — allocator-chosen
/// ([`TagSpace::lease`], returned to the free list on drop) or
/// caller-pinned ([`TagSpace::pin`], unregistered from the pinned set on
/// drop).
pub struct TagLease {
    pool: Arc<TagSpace>,
    base: u64,
    spans: u64,
    pinned: bool,
}

impl TagSpace {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// The process-global pool behind builder-allocated tag bases.
    pub fn global() -> &'static Arc<TagSpace> {
        static GLOBAL: OnceLock<Arc<TagSpace>> = OnceLock::new();
        GLOBAL.get_or_init(TagSpace::new)
    }

    /// Lease `spans` contiguous spans. Panics when the pool cannot satisfy
    /// the request — more than [`CAPACITY`] spans live, or no fresh space
    /// and no freed range of exactly `spans` spans.
    pub fn lease(self: &Arc<Self>, spans: u64) -> TagLease {
        self.lease_for(spans, "collective")
    }

    /// [`TagSpace::lease`] with a named owner: the exhaustion panic then
    /// says WHOSE lease pushed the pool over — with hundreds of live
    /// collectives, "tag space exhausted" alone doesn't tell the caller
    /// which batch to drop.
    pub fn lease_for(self: &Arc<Self>, spans: u64, owner: &str) -> TagLease {
        assert!(spans > 0, "a lease needs at least one span");
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let base = if let Some(base) = st.free.get_mut(&spans).and_then(|v| v.pop()) {
            base
        } else {
            // bump allocation, skipping any caller-pinned range
            loop {
                let start = SPAN + st.next * SPAN;
                let end = start + spans * SPAN;
                match st
                    .pinned
                    .iter()
                    .filter(|&&(ps, pe)| ps < end && start < pe)
                    .map(|&(_, pe)| pe)
                    .max()
                {
                    // place the candidate just past the pin (strictly
                    // advances: the pin's end lies beyond the old start)
                    Some(pe) => st.next = (pe - SPAN).div_ceil(SPAN),
                    None => break,
                }
            }
            assert!(
                st.next + spans <= CAPACITY,
                "tag space exhausted leasing for {owner}: {} spans live, {spans} \
                 more requested (capacity {CAPACITY}); too many simultaneously \
                 live collectives — drop finished builders/batches so their \
                 leases free",
                st.live,
            );
            let b = SPAN + st.next * SPAN;
            st.next += spans;
            b
        };
        st.live += spans;
        TagLease {
            pool: Arc::clone(self),
            base,
            spans,
            pinned: false,
        }
    }

    /// Register a caller-pinned range of `spans` spans at `base`: future
    /// leases will never overlap it (the caller still owns collisions
    /// between pins, and against leases taken *before* the pin). Held
    /// until the returned lease drops.
    pub fn pin(self: &Arc<Self>, base: u64, spans: u64) -> TagLease {
        assert!(spans > 0, "a pin needs at least one span");
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.pinned.push((base, base + spans * SPAN));
        TagLease {
            pool: Arc::clone(self),
            base,
            spans,
            pinned: true,
        }
    }

    /// Spans currently leased (diagnostics/tests).
    pub fn live_spans(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .live
    }
}

impl TagLease {
    /// First tag of the lease.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of contiguous spans held.
    pub fn spans(&self) -> u64 {
        self.spans
    }

    /// Tag base of the `i`-th span — how a batch carves one namespace per
    /// entry out of its single lease.
    pub fn entry_base(&self, i: usize) -> u64 {
        assert!((i as u64) < self.spans, "entry {i} outside the lease");
        self.base + (i as u64) * SPAN
    }
}

impl Drop for TagLease {
    fn drop(&mut self) {
        // recover the state even if a panic (e.g. the exhaustion
        // diagnostic) poisoned the mutex — the pool's invariants are
        // simple counters mutated atomically under the lock
        let mut st = self
            .pool
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if self.pinned {
            let range = (self.base, self.base + self.spans * SPAN);
            if let Some(i) = st.pinned.iter().position(|&r| r == range) {
                st.pinned.swap_remove(i);
            }
        } else {
            st.live -= self.spans;
            st.free.entry(self.spans).or_default().push(self.base);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_are_disjoint_while_live() {
        let pool = TagSpace::new();
        let leases: Vec<TagLease> = (0..8).map(|_| pool.lease(1)).collect();
        let mut bases: Vec<u64> = leases.iter().map(TagLease::base).collect();
        bases.sort_unstable();
        bases.dedup();
        assert_eq!(bases.len(), 8, "live leases must not share a base");
        assert_eq!(pool.live_spans(), 8);
    }

    #[test]
    fn freed_bases_are_reused() {
        let pool = TagSpace::new();
        let first = pool.lease(1).base();
        // churn far past the old allocator's 511-live capacity: with
        // drop-time reuse the pool never consumes fresh space
        for _ in 0..10_000 {
            assert_eq!(pool.lease(1).base(), first);
        }
        assert_eq!(pool.live_spans(), 0);
    }

    #[test]
    fn batch_lease_carves_contiguous_entry_bases() {
        let pool = TagSpace::new();
        let lease = pool.lease(4);
        for i in 0..4 {
            assert_eq!(lease.entry_base(i), lease.base() + i as u64 * SPAN);
        }
        // the next lease must not overlap any of the four entry spans
        let other = pool.lease(1);
        assert!(other.base() >= lease.base() + 4 * SPAN);
    }

    #[test]
    #[should_panic(expected = "entry 2 outside the lease")]
    fn entry_base_outside_lease_panics() {
        let pool = TagSpace::new();
        pool.lease(2).entry_base(2);
    }

    #[test]
    fn leases_skip_pinned_ranges() {
        let pool = TagSpace::new();
        // pin squarely inside the leaseable range, wider than one span
        let pin = pool.pin(2 * SPAN, 3);
        for _ in 0..4 {
            let l = pool.lease(1);
            let (ls, le) = (l.base(), l.base() + SPAN);
            assert!(
                le <= 2 * SPAN || ls >= 5 * SPAN,
                "lease [{ls}, {le}) overlaps the pinned range"
            );
            std::mem::forget(l); // keep live so the next lease advances
        }
        drop(pin);
        // once the pin is gone, the skipped space is NOT reclaimed (bump
        // pointer already moved past) — but new pins can take it again
        let repin = pool.pin(2 * SPAN, 3);
        assert_eq!(repin.entry_base(0), 2 * SPAN);
    }

    /// Regression for the pre-batch `alloc_tag_base` hazard: the global
    /// atomic wrapped after [`CAPACITY`] allocations, so the 512th *live*
    /// collective silently aliased the first one's tag range. The
    /// allocator must refuse loudly instead — and the diagnostic must say
    /// WHOSE lease overflowed the pool, how big it was, and how many spans
    /// were already live, so the caller knows which batch to drop.
    #[test]
    fn span_512_live_panics_instead_of_wrapping() {
        let pool = TagSpace::new();
        let _live: Vec<TagLease> = (0..CAPACITY - 1).map(|_| pool.lease(1)).collect();
        let pool2 = Arc::clone(&pool);
        // a 3-span batch lease where only 1 span remains (the old
        // allocator handed back base 0's span here)
        let err = std::thread::spawn(move || {
            let _overflow = pool2.lease_for(3, "NeighborBatch[3 entries]");
        })
        .join()
        .expect_err("overflow lease must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a formatted message");
        for needle in [
            "tag space exhausted",
            "NeighborBatch[3 entries]",
            &format!("{} spans live", CAPACITY - 1),
            "3 more requested",
        ] {
            assert!(msg.contains(needle), "diagnostic {msg:?} lacks {needle:?}");
        }
    }
}
