//! `Backend::Tuned`: measured protocol selection (DESIGN.md §11).
//!
//! [`Backend::Auto`] trusts the cost model; a mis-calibrated parameter
//! picks the wrong protocol forever. The tuned executor replaces trust
//! with measurement: for the first `probe_iters` iterations it
//! round-robins the model's shortlist of candidates
//! ([`crate::collective::select::candidates_within`]), timing each
//! iteration's Start→Wait on the actual fabric; at the first iteration
//! past the probe budget every rank agrees on the measured winner and
//! the request hot-swaps to it — same `NeighborRequest` object, no API
//! change, byte-identical delivery throughout (every candidate moves the
//! same values, only the wire schedule differs).
//!
//! **Agreement.** Ranks must lock in the *same* winner or their channel
//! traffic diverges. Local medians go through an allreduce-max over a
//! dedicated control tag span (`max` per candidate: a candidate is as
//! slow as its slowest rank — the pessimistic consensus the collective's
//! completion semantics imply), then every rank picks the argmin, ties
//! toward the model's preferred order. The reduction is a hand-rolled
//! dissemination exchange rather than `mpisim`'s built-in collectives:
//! those sequence tags through the `Comm`'s own counter, and the tuned
//! request — which outlives its init-time `Comm` clone — must not couple
//! its tag stream to whatever collectives the application runs.
//!
//! **Ordering contract.** The decision runs inside `start()`, so tuned
//! requests inherit MPI's collective-order rule: every rank starts the
//! same tuned request's iterations in the same order relative to other
//! tuned requests on the communicator ([`crate::BatchRequest::start_all`]
//! satisfies this; so does any SPMD iteration loop). Deadlock-freedom at
//! the decision point follows from the sends being buffered deposits: a
//! rank can only reach iteration K once every peer's K-1 traffic is
//! deposited, so every rank reaches `start(K)` and the reduction runs.
//!
//! **Timing.** Wall-clock (`Instant`) on real fabrics; the deterministic
//! virtual clock ([`mpisim::RankCtx::clock`]) in modeled worlds, so CI
//! can pin convergence tests without flaking on scheduler noise.

use crate::collective::Protocol;
use crate::exec::PersistentNeighbor;
use crate::neighbor::NeighborRequest;
use crate::tagspace::TagLease;
use locality::Topology;
use mpisim::{ChanId, Comm, RankCtx};
use std::sync::Arc;
use std::time::Instant;
use tuner::{ProbeSchedule, ProfileCache, ProfileEntry, ProfileKey};

/// Stable hash of the topology shape (rank → region layout): two runs
/// share profile-cache entries exactly when their region structure
/// matches. Same splitmix64 mixer as
/// [`crate::CommPattern::pattern_signature`]; here the fold is
/// order-dependent because rank identity is part of the shape.
pub fn topology_signature(topo: &Topology) -> u64 {
    fn mix(mut x: u64) -> u64 {
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58476d1ce4e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    }
    let mut acc =
        mix(0x2545f4914f6cdd1d ^ (topo.n_ranks() as u64) ^ ((topo.n_regions() as u64) << 32));
    for r in 0..topo.n_ranks() {
        acc = mix(acc ^ mix(((r as u64) << 32) | topo.region_of(r) as u64));
    }
    acc
}

/// Opt-in fitted selection model: the tuner's pooled probe observations
/// ([`tuner::fitted_params`]) packaged as a [`perfmodel::PostalModel`]
/// ready for [`crate::batch::NeighborBatch::cost_model`] with
/// [`crate::Backend::Auto`]. `None` until enough observations accumulate
/// to fit. The default model is **never** silently replaced — a caller
/// that wants measured parameters constructs this model and passes it
/// explicitly:
///
/// ```ignore
/// let fitted = mpi_advance::fitted_auto_model();
/// let batch = NeighborBatch::new(&topo)
///     .entry(&pattern, Backend::Auto)
///     .cost_model(fitted.as_ref().expect("observations recorded"));
/// ```
pub fn fitted_auto_model() -> Option<perfmodel::PostalModel> {
    tuner::fitted_params().map(|f| perfmodel::PostalModel::new(f.alpha, f.beta))
}

/// A monotonic timestamp on whichever clock the world runs on.
enum Stamp {
    Wall(Instant),
    Virtual(f64),
}

impl Stamp {
    fn now(ctx: &RankCtx) -> Self {
        if ctx.is_modeled() {
            Stamp::Virtual(ctx.clock())
        } else {
            Stamp::Wall(Instant::now())
        }
    }

    fn elapsed(&self, ctx: &RankCtx) -> f64 {
        match self {
            Stamp::Wall(t0) => t0.elapsed().as_secs_f64(),
            Stamp::Virtual(t0) => (ctx.clock() - t0).max(0.0),
        }
    }
}

/// One protocol under measurement: its live executor (dropped if it
/// loses) and the plan statistics its timings feed to the model refit.
pub(crate) struct TunedCandidate {
    pub(crate) inner: Option<PersistentNeighbor>,
    pub(crate) protocol: Protocol,
    /// Max-over-ranks messages per iteration (local + inter-region).
    pub(crate) msgs: f64,
    /// Max-over-ranks inter-region bytes per iteration.
    pub(crate) bytes: f64,
}

/// Where the decision gets published once it is made (rank 0 only).
pub(crate) struct PublishSpec {
    pub(crate) cache: ProfileCache,
    pub(crate) key: ProfileKey,
    /// Refit generation stamped onto the published entry
    /// (`TunePolicy::fit_version`).
    pub(crate) fit_ver: u64,
}

/// The measured-selection request behind [`crate::Backend::Tuned`]. See
/// the [module docs](self) for the probe/decide/hot-swap lifecycle.
pub(crate) struct TunedNeighbor {
    candidates: Vec<TunedCandidate>,
    schedule: ProbeSchedule,
    /// Completed probe iterations (equal on every rank: one per
    /// start→wait cycle, and ranks drive those in SPMD lockstep).
    iter: usize,
    active: usize,
    decided: bool,
    /// The probe being timed: `(candidate, start stamp)`, taken when the
    /// iteration's `test` completes.
    probe: Option<(usize, Stamp)>,
    /// Base of the control tag span the decision reduction runs over.
    ctl_base: u64,
    comm: Comm,
    publish: Option<PublishSpec>,
    /// Remaining spot-check warm-up iterations: the cached winner runs
    /// untimed for this many iterations before the probe schedule
    /// re-measures every candidate (see `TunePolicy::recheck_iters`).
    warm_left: usize,
    /// A warm-up iteration is in flight (its completing `test` must
    /// decrement `warm_left`, not close a probe timing).
    warm_iter: bool,
    _lease: Option<Arc<TagLease>>,
}

impl TunedNeighbor {
    pub(crate) fn new(
        candidates: Vec<TunedCandidate>,
        probe_iters: usize,
        ctl_base: u64,
        comm: Comm,
        publish: Option<PublishSpec>,
        lease: Option<Arc<TagLease>>,
    ) -> Self {
        assert!(!candidates.is_empty(), "a tuned request needs candidates");
        debug_assert!(
            candidates.iter().all(|c| {
                let first = candidates[0].inner.as_ref().unwrap();
                let inner = c.inner.as_ref().unwrap();
                inner.input_index() == first.input_index()
                    && inner.output_index() == first.output_index()
            }),
            "candidates over one pattern expose one index order"
        );
        let schedule = ProbeSchedule::new(candidates.len(), probe_iters);
        Self {
            candidates,
            schedule,
            iter: 0,
            active: 0,
            decided: false,
            probe: None,
            ctl_base,
            comm,
            publish,
            warm_left: 0,
            warm_iter: false,
            _lease: lease,
        }
    }

    /// Spot-check mode for a profile-cache hit: run cached `winner` for
    /// `iters` warm-up iterations (untimed — the early iterations of the
    /// solve see the cached answer, not a probe), then fall into the
    /// normal probe schedule, re-decide, and re-publish. The re-published
    /// entry carries at least as many probes as the original, so the
    /// cache's merge rule lets it replace a stale winner.
    pub(crate) fn warm_start(mut self, winner: usize, iters: usize) -> Self {
        assert!(winner < self.candidates.len(), "warm winner out of range");
        self.active = winner;
        self.warm_left = iters;
        self
    }

    fn active_req(&self) -> &PersistentNeighbor {
        self.candidates[self.active]
            .inner
            .as_ref()
            .expect("active candidate is live")
    }

    fn active_req_mut(&mut self) -> &mut PersistentNeighbor {
        self.candidates[self.active]
            .inner
            .as_mut()
            .expect("active candidate is live")
    }

    /// Lock in the measured winner: agree on per-candidate medians,
    /// hot-swap to the argmin, drop the losers (their channels idle but
    /// their memory goes), and publish the result from rank 0.
    fn decide(&mut self, ctx: &mut RankCtx) {
        let mut medians = self.schedule.medians();
        allreduce_max(ctx, &self.comm, self.ctl_base, &mut medians);
        let mut winner = 0;
        for (i, &m) in medians.iter().enumerate().skip(1) {
            if m < medians[winner] {
                winner = i;
            }
        }
        self.active = winner;
        self.decided = true;
        for (i, c) in self.candidates.iter_mut().enumerate() {
            if i != winner {
                c.inner = None;
            }
        }
        if self.comm.rank() == 0 {
            if let Some(p) = &self.publish {
                let entry = ProfileEntry {
                    key: p.key.clone(),
                    winner: self.candidates[winner].protocol.name().to_string(),
                    probes: self.schedule.min_samples() as u64,
                    medians: self
                        .candidates
                        .iter()
                        .zip(&medians)
                        .map(|(c, &m)| (c.protocol.name().to_string(), m))
                        .collect(),
                    fit_ver: p.fit_ver,
                };
                // best-effort by design: a read-only cache directory must
                // cost a repeat probe elsewhere, never abort a solve
                let _ = p.cache.publish(&entry);
            }
        }
    }
}

impl NeighborRequest for TunedNeighbor {
    fn input_index(&self) -> &[usize] {
        self.active_req().input_index()
    }

    fn output_index(&self) -> &[usize] {
        self.active_req().output_index()
    }

    fn start(&mut self, ctx: &mut RankCtx, input: &[f64]) {
        if !self.decided {
            if self.warm_left > 0 {
                // spot-check warm-up: the cached winner runs untimed
                self.warm_iter = true;
            } else {
                match self.schedule.candidate_for(self.iter) {
                    Some(c) => {
                        self.active = c;
                        self.probe = Some((c, Stamp::now(ctx)));
                    }
                    None => self.decide(ctx),
                }
            }
        }
        self.active_req_mut().start(ctx, input);
    }

    fn test(&mut self, ctx: &mut RankCtx, output: &mut [f64]) -> bool {
        let done = self.active_req_mut().test(ctx, output);
        if done {
            if self.warm_iter {
                self.warm_iter = false;
                self.warm_left -= 1;
            } else if let Some((c, t0)) = self.probe.take() {
                // first completing test of a probed iteration: close the timing
                let secs = t0.elapsed(ctx);
                self.schedule.record(c, secs);
                let cand = &self.candidates[c];
                tuner::record_observation(cand.msgs, cand.bytes, secs);
                self.iter += 1;
            }
        }
        done
    }

    fn pending_chans(&self, out: &mut Vec<ChanId>) {
        self.active_req().pending_chans(out);
    }

    fn protocol(&self) -> Protocol {
        self.candidates[self.active].protocol
    }

    fn is_partitioned(&self) -> bool {
        false
    }

    fn is_probing(&self) -> bool {
        !self.decided
    }
}

/// Element-wise allreduce-max over `vals`, dissemination-style: round
/// `r` sends to `(me + 2^r) % n` on tag `ctl_base + r`. `max` is
/// idempotent and commutative, so after ⌈log₂ n⌉ rounds every rank
/// holds the global maxima — duplicate contributions along the
/// dissemination paths are harmless.
fn allreduce_max(ctx: &mut RankCtx, comm: &Comm, ctl_base: u64, vals: &mut [f64]) {
    let n = comm.size();
    let me = comm.rank();
    let mut dist = 1usize;
    let mut round = 0u64;
    while dist < n {
        let dst = (me + dist) % n;
        let src = (me + n - dist) % n;
        ctx.send(comm, dst, ctl_base + round, vals);
        let incoming: Vec<f64> = ctx.recv(comm, src, ctl_base + round);
        assert_eq!(incoming.len(), vals.len(), "ctl span crosstalk");
        for (v, inc) in vals.iter_mut().zip(incoming) {
            *v = v.max(inc);
        }
        dist <<= 1;
        round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::World;

    #[test]
    fn topology_signature_is_stable_and_shape_sensitive() {
        let a = Topology::block_nodes(8, 4);
        assert_eq!(topology_signature(&a), topology_signature(&a));
        assert_eq!(
            topology_signature(&a),
            topology_signature(&Topology::block_nodes(8, 4)),
            "equal shapes, equal signatures"
        );
        assert_ne!(
            topology_signature(&a),
            topology_signature(&Topology::block_nodes(8, 2)),
            "region size is part of the shape"
        );
        assert_ne!(
            topology_signature(&a),
            topology_signature(&Topology::block_nodes(16, 4)),
            "rank count is part of the shape"
        );
    }

    #[test]
    fn allreduce_max_agrees_on_every_rank() {
        for n in [1usize, 2, 3, 5, 8] {
            let results = World::run(n, move |ctx| {
                let comm = ctx.comm_world();
                let me = ctx.rank() as f64;
                // vals[0]: rank id (max = n-1); vals[1]: inverted (max = n)
                let mut vals = [me, (n as f64) - me];
                allreduce_max(ctx, &comm, 1 << 20, &mut vals);
                vals
            });
            for v in results {
                assert_eq!(v, [(n - 1) as f64, n as f64], "n={n}");
            }
        }
    }
}
