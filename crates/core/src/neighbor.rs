//! The unified `NeighborAlltoallv` entry point.
//!
//! The paper presents its optimizations as a *drop-in API*: one persistent
//! `MPI_Neighbor_alltoallv_init`-style call behind which the
//! Standard/Partial/Full locality-aware protocols — and §5's partitioned
//! and dynamically-selected variants — are interchangeable. This module is
//! that call for the Rust reproduction:
//!
//! ```
//! use locality::Topology;
//! use mpi_advance::{Backend, CommPattern, NeighborAlltoallv, Protocol};
//! use mpisim::World;
//!
//! let pattern = CommPattern::example_2_1();
//! let topo = Topology::block_nodes(8, 4);
//! let coll = NeighborAlltoallv::new(&pattern, &topo)
//!     .backend(Backend::Protocol(Protocol::FullNeighbor));
//! let ok = World::run(8, |ctx| {
//!     let comm = ctx.comm_world();
//!     let mut req = coll.init(ctx, &comm);
//!     let input: Vec<f64> = req.input_index().iter().map(|&i| i as f64).collect();
//!     let mut output = vec![0.0; req.output_index().len()];
//!     req.start_wait(ctx, &input, &mut output);
//!     req.output_index().iter().zip(&output).all(|(&i, &v)| v == i as f64)
//! });
//! assert!(ok.into_iter().all(|b| b));
//! ```
//!
//! Every rank constructs the same builder (deterministic planning makes the
//! SPMD agreement trivial) and gets back a [`NeighborRequest`] trait object
//! whose `start`/`wait`/`start_wait` drive the collective without exposing
//! which protocol — or which executor — runs underneath.

use crate::agg::AssignStrategy;
use crate::collective::select::choose_with;
use crate::collective::Protocol;
use crate::exec::PersistentNeighbor;
use crate::exec_partitioned::PartitionedNeighbor;
use crate::pattern::CommPattern;
use crate::routing::RankRouting;
use crate::Plan;
use locality::Topology;
use mpisim::{Comm, RankCtx};
use perfmodel::{CostModel, LocalityModel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Which execution strategy backs the collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The given protocol on the plain persistent executor.
    Protocol(Protocol),
    /// §5's combination: the given (aggregating) protocol with partitioned
    /// inter-region messages, overlapping staging with injection.
    Partitioned(Protocol),
    /// Model-driven selection at init time (§5): evaluate every protocol's
    /// plan under the cost model and run the cheapest.
    #[default]
    Auto,
}

/// A started-or-startable persistent neighborhood collective of one rank —
/// the object `MPI_Neighbor_alltoallv_init` would return.
pub trait NeighborRequest {
    /// Global indices whose values the caller provides to `start`, in order.
    fn input_index(&self) -> &[usize];

    /// Global indices `wait` produces, in order.
    fn output_index(&self) -> &[usize];

    /// `MPI_Start`: begin one iteration with the current `input` values.
    fn start(&mut self, ctx: &mut RankCtx, input: &[f64]);

    /// `MPI_Wait`: complete the iteration, delivering ghost values into
    /// `output` (aligned with [`NeighborRequest::output_index`]).
    fn wait(&mut self, ctx: &mut RankCtx, output: &mut [f64]);

    /// One full iteration: `start` immediately followed by `wait`.
    fn start_wait(&mut self, ctx: &mut RankCtx, input: &[f64], output: &mut [f64]) {
        self.start(ctx, input);
        self.wait(ctx, output);
    }

    /// The protocol whose plan this request executes (the selection result
    /// under [`Backend::Auto`]).
    fn protocol(&self) -> Protocol;

    /// Whether inter-region messages run as partitioned sends.
    fn is_partitioned(&self) -> bool;
}

struct PlainRequest {
    inner: PersistentNeighbor,
    protocol: Protocol,
}

impl NeighborRequest for PlainRequest {
    fn input_index(&self) -> &[usize] {
        self.inner.input_index()
    }
    fn output_index(&self) -> &[usize] {
        self.inner.output_index()
    }
    fn start(&mut self, ctx: &mut RankCtx, input: &[f64]) {
        self.inner.start(ctx, input);
    }
    fn wait(&mut self, ctx: &mut RankCtx, output: &mut [f64]) {
        self.inner.wait(ctx, output);
    }
    fn protocol(&self) -> Protocol {
        self.protocol
    }
    fn is_partitioned(&self) -> bool {
        false
    }
}

struct PartitionedRequest {
    inner: PartitionedNeighbor,
    protocol: Protocol,
}

impl NeighborRequest for PartitionedRequest {
    fn input_index(&self) -> &[usize] {
        self.inner.input_index()
    }
    fn output_index(&self) -> &[usize] {
        self.inner.output_index()
    }
    fn start(&mut self, ctx: &mut RankCtx, input: &[f64]) {
        self.inner.start(ctx, input);
    }
    fn wait(&mut self, ctx: &mut RankCtx, output: &mut [f64]) {
        self.inner.wait(ctx, output);
    }
    fn protocol(&self) -> Protocol {
        self.protocol
    }
    fn is_partitioned(&self) -> bool {
        true
    }
}

/// Spacing of automatically allocated tag bases: room for the four step
/// namespaces plus up to 1023 partition sub-tags (the partitioned
/// transport offsets by `(partition + 1) << 20`).
const AUTO_TAG_SPAN: u64 = 1 << 30;
/// Partitioned requests need `tag < 2^39` (half the simulator's user tag
/// space); wrap the allocator below that.
const AUTO_TAG_WRAP: u64 = 1 << 39;
static NEXT_AUTO_TAG: AtomicU64 = AtomicU64::new(AUTO_TAG_SPAN);

/// A fresh tag base, distinct from every other auto-allocated one (until
/// 511 are simultaneously live) and from small hand-picked bases.
fn alloc_tag_base() -> u64 {
    let n = NEXT_AUTO_TAG.fetch_add(AUTO_TAG_SPAN, Ordering::Relaxed);
    AUTO_TAG_SPAN + (n - AUTO_TAG_SPAN) % (AUTO_TAG_WRAP - AUTO_TAG_SPAN)
}

/// Builder for one persistent neighborhood collective.
///
/// Defaults: [`Backend::Auto`] with the Lassen locality model,
/// load-balanced leader assignment, and a tag base allocated so that
/// concurrently live collectives never share tag space. Ranks agree on
/// the base because they share the builder (or, in a real multi-process
/// setting, construct builders in the same SPMD order — the same
/// determinism planning already relies on). Use the `tag_base` setter to
/// pin it explicitly instead.
pub struct NeighborAlltoallv<'a> {
    pattern: &'a CommPattern,
    topo: &'a Topology,
    backend: Backend,
    strategy: AssignStrategy,
    model: Option<&'a dyn CostModel>,
    tag_base: u64,
    /// Planning is deterministic and rank-independent, so it runs once per
    /// builder and is shared by every rank's `init` (SPMD closures capture
    /// the builder by reference).
    resolved: OnceLock<(Protocol, Plan)>,
    /// Every rank's routing, derived from the plan in a single
    /// [`RankRouting::build_all`] sweep on the first `init` and shared by
    /// all ranks — whole-world init is O(plan + ranks), not O(ranks × plan).
    routings: OnceLock<Vec<RankRouting>>,
}

impl<'a> NeighborAlltoallv<'a> {
    pub fn new(pattern: &'a CommPattern, topo: &'a Topology) -> Self {
        assert_eq!(
            pattern.n_ranks,
            topo.n_ranks(),
            "pattern/topology rank count mismatch"
        );
        Self {
            pattern,
            topo,
            backend: Backend::Auto,
            strategy: AssignStrategy::LoadBalanced,
            model: None,
            tag_base: alloc_tag_base(),
            resolved: OnceLock::new(),
            routings: OnceLock::new(),
        }
    }

    /// Choose the execution backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self.resolved = OnceLock::new();
        self.routings = OnceLock::new();
        self
    }

    /// Shorthand for `backend(Backend::Protocol(p))`.
    pub fn protocol(self, p: Protocol) -> Self {
        self.backend(Backend::Protocol(p))
    }

    /// Leader-assignment strategy for aggregating protocols.
    pub fn strategy(mut self, strategy: AssignStrategy) -> Self {
        self.strategy = strategy;
        self.resolved = OnceLock::new();
        self.routings = OnceLock::new();
        self
    }

    /// Cost model driving [`Backend::Auto`] selection (default: the
    /// Lassen-calibrated locality model).
    pub fn cost_model(mut self, model: &'a dyn CostModel) -> Self {
        self.model = Some(model);
        self.resolved = OnceLock::new();
        self.routings = OnceLock::new();
        self
    }

    /// Tag namespace base, isolating concurrent collectives on the same
    /// communicator (use a distinct base per live collective, e.g. per AMG
    /// level).
    pub fn tag_base(mut self, tag_base: u64) -> Self {
        self.tag_base = tag_base;
        // routings bake tags in; the plan itself is tag-independent
        self.routings = OnceLock::new();
        self
    }

    /// Resolve the backend to a concrete protocol and plan — the planning
    /// half of init, exposed for statistics and modeled evaluation.
    /// Deterministic (every rank resolves identically) and computed once
    /// per builder.
    pub fn plan(&self) -> (Protocol, Plan) {
        self.resolved().clone()
    }

    fn resolved(&self) -> &(Protocol, Plan) {
        self.resolved.get_or_init(|| self.resolve())
    }

    fn resolve(&self) -> (Protocol, Plan) {
        match self.backend {
            Backend::Protocol(p) => (p, p.plan_with(self.pattern, self.topo, self.strategy)),
            Backend::Partitioned(p) => {
                let plan = p.plan_with(self.pattern, self.topo, self.strategy);
                assert!(
                    plan.aggregated,
                    "Backend::Partitioned needs an aggregating protocol, got {p}"
                );
                (p, plan)
            }
            Backend::Auto => {
                let default_model;
                let model = match self.model {
                    Some(m) => m,
                    None => {
                        default_model = LocalityModel::lassen();
                        &default_model
                    }
                };
                let (p, plan, _) = choose_with(
                    &Protocol::ALL,
                    self.pattern,
                    self.topo,
                    model,
                    self.strategy,
                );
                (p, plan)
            }
        }
    }

    /// `MPI_Neighbor_alltoallv_init`: register this rank's persistent
    /// requests and return the collective as a [`NeighborRequest`].
    ///
    /// The first `init` derives **every** rank's routing in one
    /// [`RankRouting::build_all`] sweep of the shared plan; each rank then
    /// registers requests from its precomputed slice, so whole-world init
    /// is O(plan + ranks) instead of every rank re-scanning the plan.
    pub fn init(&self, ctx: &RankCtx, comm: &Comm) -> Box<dyn NeighborRequest> {
        let (protocol, plan) = self.resolved();
        assert_eq!(plan.n_ranks, comm.size(), "plan/communicator size mismatch");
        let routing = self
            .routings
            .get_or_init(|| RankRouting::build_all(self.pattern, plan, self.tag_base))[comm.rank()]
        .clone();
        match self.backend {
            Backend::Partitioned(_) => Box::new(PartitionedRequest {
                inner: PartitionedNeighbor::from_routing(routing, ctx, comm),
                protocol: *protocol,
            }),
            _ => Box::new(PlainRequest {
                inner: PersistentNeighbor::from_routing(routing, ctx, comm),
                protocol: *protocol,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::World;

    fn deliver_all(pattern: &CommPattern, topo: &Topology, backend: Backend) {
        let coll = NeighborAlltoallv::new(pattern, topo).backend(backend);
        let ok = World::run(pattern.n_ranks, |ctx| {
            let comm = ctx.comm_world();
            let mut req = coll.init(ctx, &comm);
            let mut ok = true;
            for it in 0..2u64 {
                let input: Vec<f64> = req
                    .input_index()
                    .iter()
                    .map(|&i| (i as f64) + it as f64 * 0.5)
                    .collect();
                let mut output = vec![f64::NAN; req.output_index().len()];
                req.start_wait(ctx, &input, &mut output);
                ok &= req
                    .output_index()
                    .iter()
                    .zip(&output)
                    .all(|(&i, &v)| v == (i as f64) + it as f64 * 0.5);
            }
            ok
        });
        assert!(ok.into_iter().all(|b| b), "{backend:?} failed to deliver");
    }

    #[test]
    fn every_backend_delivers_example_2_1() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        for p in Protocol::ALL {
            deliver_all(&pattern, &topo, Backend::Protocol(p));
        }
        for p in [Protocol::PartialNeighbor, Protocol::FullNeighbor] {
            deliver_all(&pattern, &topo, Backend::Partitioned(p));
        }
        deliver_all(&pattern, &topo, Backend::Auto);
    }

    #[test]
    fn auto_resolves_to_the_model_minimum() {
        let topo = Topology::block_nodes(16, 4);
        let pattern = CommPattern::all_to_all_regions(&topo);
        let model = LocalityModel::lassen();
        let coll = NeighborAlltoallv::new(&pattern, &topo).cost_model(&model);
        let (selected, _) = coll.plan();
        let (expected, _) = crate::collective::choose_protocol(&pattern, &topo, &model);
        assert_eq!(selected, expected);
    }

    #[test]
    fn auto_request_reports_its_protocol() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        let coll = NeighborAlltoallv::new(&pattern, &topo);
        let (expected, _) = coll.plan();
        let protos = World::run(8, |ctx| {
            let comm = ctx.comm_world();
            let req = coll.init(ctx, &comm);
            assert!(!req.is_partitioned());
            req.protocol()
        });
        assert!(protos.into_iter().all(|p| p == expected));
    }

    #[test]
    fn default_tag_bases_do_not_collide() {
        // two collectives built without an explicit tag_base, interleaved
        // on the same communicator, must not cross-deliver
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        let coll_a = NeighborAlltoallv::new(&pattern, &topo).protocol(Protocol::StandardNeighbor);
        let coll_b = NeighborAlltoallv::new(&pattern, &topo).protocol(Protocol::FullNeighbor);
        let ok = World::run(8, |ctx| {
            let comm = ctx.comm_world();
            let mut a = coll_a.init(ctx, &comm);
            let mut b = coll_b.init(ctx, &comm);
            let input_a: Vec<f64> = a.input_index().iter().map(|&i| i as f64).collect();
            let input_b: Vec<f64> = b.input_index().iter().map(|&i| 1000.0 + i as f64).collect();
            let mut out_a = vec![0.0; a.output_index().len()];
            let mut out_b = vec![0.0; b.output_index().len()];
            a.start(ctx, &input_a);
            b.start(ctx, &input_b);
            b.wait(ctx, &mut out_b);
            a.wait(ctx, &mut out_a);
            let ok_a = a
                .output_index()
                .iter()
                .zip(&out_a)
                .all(|(&i, &v)| v == i as f64);
            let ok_b = b
                .output_index()
                .iter()
                .zip(&out_b)
                .all(|(&i, &v)| v == 1000.0 + i as f64);
            ok_a && ok_b
        });
        assert!(ok.into_iter().all(|b| b));
    }

    #[test]
    #[should_panic(expected = "aggregating protocol")]
    fn partitioned_rejects_standard_protocols() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        NeighborAlltoallv::new(&pattern, &topo)
            .backend(Backend::Partitioned(Protocol::StandardHypre))
            .plan();
    }
}
