//! The unified `NeighborAlltoallv` entry point.
//!
//! The paper presents its optimizations as a *drop-in API*: one persistent
//! `MPI_Neighbor_alltoallv_init`-style call behind which the
//! Standard/Partial/Full locality-aware protocols — and §5's partitioned
//! and dynamically-selected variants — are interchangeable. This module is
//! that call for the Rust reproduction:
//!
//! ```
//! use locality::Topology;
//! use mpi_advance::{Backend, CommPattern, NeighborAlltoallv, Protocol};
//! use mpisim::World;
//!
//! let pattern = CommPattern::example_2_1();
//! let topo = Topology::block_nodes(8, 4);
//! let coll = NeighborAlltoallv::new(&pattern, &topo)
//!     .backend(Backend::Protocol(Protocol::FullNeighbor));
//! let ok = World::run(8, |ctx| {
//!     let comm = ctx.comm_world();
//!     let mut req = coll.init(ctx, &comm);
//!     let input: Vec<f64> = req.input_index().iter().map(|&i| i as f64).collect();
//!     let mut output = vec![0.0; req.output_index().len()];
//!     req.start_wait(ctx, &input, &mut output);
//!     req.output_index().iter().zip(&output).all(|(&i, &v)| v == i as f64)
//! });
//! assert!(ok.into_iter().all(|b| b));
//! ```
//!
//! Every rank constructs the same builder (deterministic planning makes the
//! SPMD agreement trivial) and gets back a [`NeighborRequest`] trait object
//! whose `start`/`wait`/`start_wait` drive the collective without exposing
//! which protocol — or which executor — runs underneath.
//!
//! A workload that keeps **several** collectives live at once (every AMG
//! level, plus residual/restriction exchanges) should construct one
//! [`crate::NeighborBatch`] instead: the batch plans, tags, and stages all
//! of them as one session. `NeighborAlltoallv` is, internally, exactly a
//! single-entry batch — same planning, same tag leasing, same executors.

use crate::agg::AssignStrategy;
use crate::batch::NeighborBatch;
use crate::collective::Protocol;
use crate::pattern::CommPattern;
use crate::Plan;
use locality::Topology;
use mpisim::{ChanId, Comm, RankCtx};
use perfmodel::CostModel;
use std::sync::OnceLock;

/// Which execution strategy backs the collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The given protocol on the plain persistent executor.
    Protocol(Protocol),
    /// §5's combination: the given (aggregating) protocol with partitioned
    /// inter-region messages, overlapping staging with injection.
    Partitioned(Protocol),
    /// Model-driven selection at init time (§5): evaluate every protocol's
    /// plan under the cost model and run the cheapest.
    #[default]
    Auto,
    /// Measured selection (DESIGN.md §11): probe the model's shortlist of
    /// candidates for the first `probe_iters` iterations, timing each on
    /// the actual fabric, then hot-swap to the measured winner — same
    /// request object, byte-identical delivery throughout. A persistent
    /// profile cache ([`tuner::ProfileCache`], `MPISIM_PROFILE_DIR`) lets
    /// warmed processes skip the probe phase entirely. Tuning knobs come
    /// from [`tuner::TunePolicy`] (the `MPISIM_TUNE_*` environment, or
    /// the batch's `tune_policy` setter).
    Tuned,
}

/// A started-or-startable persistent neighborhood collective of one rank —
/// the object `MPI_Neighbor_alltoallv_init` would return.
///
/// The lifecycle is **completion-driven**: `start` posts the iteration,
/// [`NeighborRequest::test`] makes non-blocking progress (draining and
/// scattering whatever payloads have been delivered, in arrival order),
/// and `wait` is a `test` loop that parks on the request's pending channel
/// **set** between rounds — so receives complete in delivery order, and a
/// caller (e.g. [`crate::BatchRequest::wait_any`]) can retire whichever of
/// many live collectives finishes first instead of serializing on init
/// order.
///
/// `Send` so a rank's requests can move with its work (e.g. be returned
/// from one pool epoch and driven in a later one); like real persistent
/// requests they hold tag space and matched channels until dropped.
pub trait NeighborRequest: Send {
    /// Global indices whose values the caller provides to `start`, in order.
    fn input_index(&self) -> &[usize];

    /// Global indices `wait` produces, in order.
    fn output_index(&self) -> &[usize];

    /// `MPI_Start`: begin one iteration with the current `input` values.
    fn start(&mut self, ctx: &mut RankCtx, input: &[f64]);

    /// `MPI_Test`: non-blocking progress on the current iteration. Drains
    /// every payload that has arrived, scatters its ghost values into
    /// `output` (aligned with [`NeighborRequest::output_index`]), advances
    /// any internal step (e.g. firing final-redistribution forwards once
    /// their inputs are in), and returns whether the iteration has fully
    /// completed. Once complete — or on an inactive request — it is a
    /// no-op returning `true`.
    fn test(&mut self, ctx: &mut RankCtx, output: &mut [f64]) -> bool;

    /// Append a [`ChanId`] for every receive the current iteration still
    /// waits on — the set to park on ([`RankCtx::wait_any`]) between
    /// [`NeighborRequest::test`] calls. Empty iff the iteration needs no
    /// further arrivals (one more `test` then completes it).
    fn pending_chans(&self, out: &mut Vec<ChanId>);

    /// `MPI_Wait`: complete the iteration, delivering ghost values into
    /// `output` (aligned with [`NeighborRequest::output_index`]). The
    /// default drives [`NeighborRequest::test`] to completion, parking on
    /// the pending channel set between rounds.
    fn wait(&mut self, ctx: &mut RankCtx, output: &mut [f64]) {
        let mut chans = Vec::new();
        while !self.test(ctx, output) {
            chans.clear();
            self.pending_chans(&mut chans);
            // empty set = no arrival needed: the next test advances a
            // phase (or completes) on its own, so don't park
            if !chans.is_empty() {
                ctx.wait_any(&chans);
            }
        }
    }

    /// One full iteration: `start` immediately followed by `wait`.
    fn start_wait(&mut self, ctx: &mut RankCtx, input: &[f64], output: &mut [f64]) {
        self.start(ctx, input);
        self.wait(ctx, output);
    }

    /// The protocol whose plan this request executes (the selection result
    /// under [`Backend::Auto`]; under [`Backend::Tuned`], the candidate
    /// the *current* iteration runs — the measured winner once probing
    /// ends).
    fn protocol(&self) -> Protocol;

    /// Whether inter-region messages run as partitioned sends.
    fn is_partitioned(&self) -> bool;

    /// Whether the request is still measuring candidates — `true` only
    /// for a [`Backend::Tuned`] request before its winner locks in (a
    /// profile-cache hit skips the probe phase, so this reports `false`
    /// from the first iteration).
    fn is_probing(&self) -> bool {
        false
    }
}

/// Builder for one persistent neighborhood collective.
///
/// Defaults: [`Backend::Auto`] with the Lassen locality model,
/// load-balanced leader assignment, and a tag namespace leased from the
/// process-wide [`crate::tagspace::TagSpace`] so that concurrently live
/// collectives never share tag space (the lease frees — and its base is
/// re-used — when the builder drops). Ranks agree on the base because
/// they share the builder (or, in a real multi-process setting, construct
/// builders in the same SPMD order — the same determinism planning
/// already relies on). Use the `tag_base` setter to pin it explicitly
/// instead.
///
/// Internally this is a single-entry [`NeighborBatch`]; many live
/// collectives should be one batch.
pub struct NeighborAlltoallv<'a> {
    pattern: &'a CommPattern,
    topo: &'a Topology,
    backend: Backend,
    strategy: AssignStrategy,
    model: Option<&'a dyn CostModel>,
    tune: Option<tuner::TunePolicy>,
    tag_base: Option<u64>,
    /// The single-entry batch realizing this builder, constructed on first
    /// use and shared by every rank's `init` (SPMD closures capture the
    /// builder by reference). Resolution — planning, tag leasing, the
    /// whole-world routing sweep — happens once, inside the batch.
    batch: OnceLock<NeighborBatch<'a>>,
}

impl<'a> NeighborAlltoallv<'a> {
    pub fn new(pattern: &'a CommPattern, topo: &'a Topology) -> Self {
        assert_eq!(
            pattern.n_ranks,
            topo.n_ranks(),
            "pattern/topology rank count mismatch"
        );
        Self {
            pattern,
            topo,
            backend: Backend::Auto,
            strategy: AssignStrategy::LoadBalanced,
            model: None,
            tune: None,
            tag_base: None,
            batch: OnceLock::new(),
        }
    }

    /// Choose the execution backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self.batch = OnceLock::new();
        self
    }

    /// Shorthand for `backend(Backend::Protocol(p))`.
    pub fn protocol(self, p: Protocol) -> Self {
        self.backend(Backend::Protocol(p))
    }

    /// Leader-assignment strategy for aggregating protocols.
    pub fn strategy(mut self, strategy: AssignStrategy) -> Self {
        self.strategy = strategy;
        self.batch = OnceLock::new();
        self
    }

    /// Cost model driving [`Backend::Auto`] selection (default: the
    /// Lassen-calibrated locality model).
    pub fn cost_model(mut self, model: &'a dyn CostModel) -> Self {
        self.model = Some(model);
        self.batch = OnceLock::new();
        self
    }

    /// Tuning policy for [`Backend::Tuned`] (default: the process-wide
    /// `MPISIM_TUNE_*` / `MPISIM_PROFILE_DIR` environment).
    pub fn tune_policy(mut self, policy: tuner::TunePolicy) -> Self {
        self.tune = Some(policy);
        self.batch = OnceLock::new();
        self
    }

    /// Tag namespace base, isolating concurrent collectives on the same
    /// communicator. Pinning replaces the leased base; the caller owns
    /// collision avoidance.
    pub fn tag_base(mut self, tag_base: u64) -> Self {
        self.tag_base = Some(tag_base);
        self.batch = OnceLock::new();
        self
    }

    fn batch(&self) -> &NeighborBatch<'a> {
        self.batch.get_or_init(|| {
            let mut b =
                NeighborBatch::new(self.topo).entry_with(self.pattern, self.backend, self.strategy);
            if let Some(m) = self.model {
                b = b.cost_model(m);
            }
            if let Some(t) = &self.tune {
                b = b.tune_policy(t.clone());
            }
            if let Some(t) = self.tag_base {
                b = b.tag_base(t);
            }
            b
        })
    }

    /// Resolve the backend to a concrete protocol and plan — the planning
    /// half of init, exposed for statistics and modeled evaluation.
    /// Deterministic (every rank resolves identically) and computed once
    /// per builder.
    pub fn plan(&self) -> (Protocol, Plan) {
        self.batch().plans()[0].clone()
    }

    /// `MPI_Neighbor_alltoallv_init`: register this rank's persistent
    /// requests and return the collective as a [`NeighborRequest`].
    ///
    /// The first `init` derives **every** rank's routing in one
    /// [`crate::RankRouting::build_all`] sweep of the shared plan; each
    /// rank then registers requests from its precomputed slice, so
    /// whole-world init is O(plan + ranks) instead of every rank
    /// re-scanning the plan.
    pub fn init(&self, ctx: &RankCtx, comm: &Comm) -> Box<dyn NeighborRequest> {
        self.batch()
            .init_all(ctx, comm)
            .into_requests()
            .pop()
            .expect("single-entry batch yields one request")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::World;
    use perfmodel::LocalityModel;

    fn deliver_all(pattern: &CommPattern, topo: &Topology, backend: Backend) {
        let coll = NeighborAlltoallv::new(pattern, topo).backend(backend);
        let ok = World::run(pattern.n_ranks, |ctx| {
            let comm = ctx.comm_world();
            let mut req = coll.init(ctx, &comm);
            let mut ok = true;
            for it in 0..2u64 {
                let input: Vec<f64> = req
                    .input_index()
                    .iter()
                    .map(|&i| (i as f64) + it as f64 * 0.5)
                    .collect();
                let mut output = vec![f64::NAN; req.output_index().len()];
                req.start_wait(ctx, &input, &mut output);
                ok &= req
                    .output_index()
                    .iter()
                    .zip(&output)
                    .all(|(&i, &v)| v == (i as f64) + it as f64 * 0.5);
            }
            ok
        });
        assert!(ok.into_iter().all(|b| b), "{backend:?} failed to deliver");
    }

    #[test]
    fn every_backend_delivers_example_2_1() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        for p in Protocol::ALL {
            deliver_all(&pattern, &topo, Backend::Protocol(p));
        }
        for p in [Protocol::PartialNeighbor, Protocol::FullNeighbor] {
            deliver_all(&pattern, &topo, Backend::Partitioned(p));
        }
        deliver_all(&pattern, &topo, Backend::Auto);
    }

    #[test]
    fn auto_resolves_to_the_model_minimum() {
        let topo = Topology::block_nodes(16, 4);
        let pattern = CommPattern::all_to_all_regions(&topo);
        let model = LocalityModel::lassen();
        let coll = NeighborAlltoallv::new(&pattern, &topo).cost_model(&model);
        let (selected, _) = coll.plan();
        let (expected, _) = crate::collective::choose_protocol(&pattern, &topo, &model);
        assert_eq!(selected, expected);
    }

    #[test]
    fn auto_request_reports_its_protocol() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        let coll = NeighborAlltoallv::new(&pattern, &topo);
        let (expected, _) = coll.plan();
        let protos = World::run(8, |ctx| {
            let comm = ctx.comm_world();
            let req = coll.init(ctx, &comm);
            assert!(!req.is_partitioned());
            req.protocol()
        });
        assert!(protos.into_iter().all(|p| p == expected));
    }

    #[test]
    fn default_tag_bases_do_not_collide() {
        // two collectives built without an explicit tag_base, interleaved
        // on the same communicator, must not cross-deliver
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        let coll_a = NeighborAlltoallv::new(&pattern, &topo).protocol(Protocol::StandardNeighbor);
        let coll_b = NeighborAlltoallv::new(&pattern, &topo).protocol(Protocol::FullNeighbor);
        let ok = World::run(8, |ctx| {
            let comm = ctx.comm_world();
            let mut a = coll_a.init(ctx, &comm);
            let mut b = coll_b.init(ctx, &comm);
            let input_a: Vec<f64> = a.input_index().iter().map(|&i| i as f64).collect();
            let input_b: Vec<f64> = b.input_index().iter().map(|&i| 1000.0 + i as f64).collect();
            let mut out_a = vec![0.0; a.output_index().len()];
            let mut out_b = vec![0.0; b.output_index().len()];
            a.start(ctx, &input_a);
            b.start(ctx, &input_b);
            b.wait(ctx, &mut out_b);
            a.wait(ctx, &mut out_a);
            let ok_a = a
                .output_index()
                .iter()
                .zip(&out_a)
                .all(|(&i, &v)| v == i as f64);
            let ok_b = b
                .output_index()
                .iter()
                .zip(&out_b)
                .all(|(&i, &v)| v == 1000.0 + i as f64);
            ok_a && ok_b
        });
        assert!(ok.into_iter().all(|b| b));
    }

    #[test]
    #[should_panic(expected = "aggregating protocol")]
    fn partitioned_rejects_standard_protocols() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        NeighborAlltoallv::new(&pattern, &topo)
            .backend(Backend::Partitioned(Protocol::StandardHypre))
            .plan();
    }
}
