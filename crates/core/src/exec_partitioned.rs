//! Partitioned locality-aware neighborhood collective — the combination the
//! paper's §5 proposes: "large messages have been optimized separately with
//! both locality-aware methods and partitioned communication. The
//! combination of these optimizations, partitioning locality-aware
//! messages, can have an even large impact".
//!
//! The routing is the *same* [`RankRouting`] the plain executor uses — the
//! origin-major `g` layout's partition bounds become real partitioned
//! requests here. Each inter-region message is a partitioned send whose
//! partitions are the contributions of the individual staging ranks. As
//! each intra-region `s` message arrives at the sending leader, that
//! partition is marked ready and injected immediately
//! (`MPI_Pready`-style), overlapping the intra-region redistribution with
//! inter-region injection instead of serializing `s` before `g`.
//!
//! Staging is zero-copy here too: every s-step receive is registered
//! directly into its partition's window of the partitioned send buffer,
//! so a staged contribution lands wire-ready — `wait` then `pready` with
//! no assembly copy. The ℓ/s/r steps share the gather/scatter channel
//! execs with the plain executor. Only the partitioned g receive keeps a
//! registered window: partitions complete independently into one buffer,
//! and the r-step forwards read from that window after `wait`.

use crate::agg::Plan;
use crate::exec_common::{
    register_r_sends, register_recvs, register_sends, RSendExec, RecvExec, SendExec,
};
use crate::pattern::CommPattern;
use crate::routing::{PartSource, RankRouting};
use mpisim::persistent::shared_buf;
use mpisim::{ChanId, ChanRegistrar, Comm, PrecvReq, PsendReq, RankCtx, RecvReq, SharedBuf};

struct GSend {
    req: PsendReq<f64>,
    buf: SharedBuf<f64>,
    /// Partitions fed by this rank's own input:
    /// (partition index, input position per slot).
    input_parts: Vec<(usize, Vec<usize>)>,
}

struct GRecv {
    req: PrecvReq<f64>,
    buf: SharedBuf<f64>,
    outputs: Vec<(usize, usize)>,
}

struct SRecv {
    /// Registered directly into the partition's window of the g send
    /// buffer — staged data arrives wire-ready.
    req: RecvReq<f64>,
    /// Which g send and partition this staging message fills.
    g_send: usize,
    partition: usize,
}

/// The partitioned persistent neighborhood collective of one rank.
pub struct PartitionedNeighbor {
    input_index: Vec<usize>,
    output_index: Vec<usize>,
    local_sends: Vec<SendExec>,
    local_recvs: Vec<RecvExec>,
    s_sends: Vec<SendExec>,
    s_recvs: Vec<SRecv>,
    g_sends: Vec<GSend>,
    g_recvs: Vec<GRecv>,
    r_sends: Vec<RSendExec>,
    r_recvs: Vec<RecvExec>,
    /// Per-iteration completion state, reset by `start` (see
    /// [`crate::exec::PersistentNeighbor`]'s twin fields): a g receive is
    /// done when **all** of its partitions have arrived and its ghost
    /// slots are scattered.
    local_done: Vec<bool>,
    g_done: Vec<bool>,
    r_started: bool,
    r_done: Vec<bool>,
    done: bool,
}

impl PartitionedNeighbor {
    /// Register this rank's requests for an **aggregated** plan
    /// (three-step, with or without dedup). All routing is fixed here;
    /// iterations only move values. Prefer [`crate::NeighborAlltoallv`]
    /// with `Backend::Partitioned`.
    pub fn from_plan(
        pattern: &CommPattern,
        plan: &Plan,
        ctx: &RankCtx,
        comm: &Comm,
        tag_base: u64,
    ) -> Self {
        assert!(
            plan.aggregated,
            "partitioned execution applies to aggregated plans"
        );
        assert_eq!(plan.n_ranks, comm.size(), "plan/communicator size mismatch");
        let routing = RankRouting::build(pattern, plan, comm.rank(), tag_base);
        Self::from_routing(routing, ctx, comm)
    }

    /// Register requests from a precomputed routing.
    pub fn from_routing(routing: RankRouting, ctx: &RankCtx, comm: &Comm) -> Self {
        Self::from_routing_in(routing, &mut ctx.chan_registrar(), comm)
    }

    /// Register requests from a precomputed routing, resolving every
    /// channel through the caller's held [`ChanRegistrar`] — the path a
    /// [`crate::NeighborBatch`] uses to register all entries in one pass
    /// over the registry. The partitioned g buffers stay per-message (a
    /// partitioned send covers its whole buffer), so no batch arena is
    /// taken.
    pub(crate) fn from_routing_in(
        routing: RankRouting,
        reg: &mut ChanRegistrar,
        comm: &Comm,
    ) -> Self {
        let local_sends = register_sends(routing.local_sends, reg, comm);
        let local_recvs = register_recvs(routing.local_recvs, reg, comm);
        let s_sends = register_sends(routing.s_sends, reg, comm);
        // g sends first: the staging receives alias their buffers
        let g_sends: Vec<GSend> = routing
            .g_sends
            .into_iter()
            .map(|g| {
                let buf = shared_buf(vec![0.0f64; g.len]);
                let req = reg.psend_init_parts(comm, g.dst, g.tag, buf.clone(), g.bounds);
                let input_parts = g
                    .parts
                    .into_iter()
                    .enumerate()
                    .filter_map(|(pidx, part)| match part.source {
                        PartSource::Input(positions) => Some((pidx, positions)),
                        PartSource::Staged { .. } => None,
                    })
                    .collect();
                GSend {
                    req,
                    buf,
                    input_parts,
                }
            })
            .collect();
        let s_recvs = routing
            .s_recvs
            .into_iter()
            .map(|r| {
                let gs = &g_sends[r.g_send];
                let win = gs.req.partition_range(r.partition);
                // hard check: an oversized staging receive would overrun
                // into the next partition of the send buffer
                assert_eq!(win.len(), r.len, "staging/partition length mismatch");
                SRecv {
                    req: reg.recv_init(comm, r.src, r.tag, gs.buf.clone(), win.start, r.len),
                    g_send: r.g_send,
                    partition: r.partition,
                }
            })
            .collect();
        let g_recvs: Vec<GRecv> = routing
            .g_recvs
            .into_iter()
            .map(|r| {
                let buf = shared_buf(vec![0.0f64; r.len]);
                let req = reg.precv_init_parts(comm, r.src, r.tag, buf.clone(), r.bounds);
                GRecv {
                    req,
                    buf,
                    outputs: r.outputs,
                }
            })
            .collect();
        let r_sends = register_r_sends(routing.r_sends, reg, comm);
        let r_recvs = register_recvs(routing.r_recvs, reg, comm);
        let (n_local, n_g, n_r) = (local_recvs.len(), g_recvs.len(), r_recvs.len());
        Self {
            input_index: routing.input_index,
            output_index: routing.output_index,
            local_sends,
            local_recvs,
            s_sends,
            s_recvs,
            g_sends,
            g_recvs,
            r_sends,
            r_recvs,
            local_done: vec![false; n_local],
            g_done: vec![false; n_g],
            r_started: false,
            r_done: vec![false; n_r],
            // inactive until the first start: test/wait are no-ops, as on
            // an inactive persistent MPI request
            done: true,
        }
    }

    pub fn input_index(&self) -> &[usize] {
        &self.input_index
    }

    pub fn output_index(&self) -> &[usize] {
        &self.output_index
    }

    /// Start one iteration: ℓ and s go out; each g partition is injected
    /// the moment its staging data is available.
    pub fn start(&mut self, ctx: &mut RankCtx, input: &[f64]) {
        assert_eq!(input.len(), self.input_index.len(), "input length mismatch");

        // fresh iteration for the completion-driven state machine
        self.local_done.fill(false);
        self.g_done.fill(false);
        self.r_started = false;
        self.r_done.fill(false);
        self.done = false;

        for send in &self.local_sends {
            send.start_gather(ctx, input);
        }
        for recv in &mut self.local_recvs {
            recv.req.start();
        }

        for send in &self.s_sends {
            send.start_gather(ctx, input);
        }

        // open the partitioned g requests and inject the leader's own data
        for gs in &mut self.g_sends {
            gs.req.start();
            for (pidx, positions) in &gs.input_parts {
                {
                    let mut g = gs.buf.write();
                    let range = gs.req.partition_range(*pidx);
                    for (i, &p) in range.zip(positions.iter()) {
                        g[i] = input[p];
                    }
                }
                gs.req.pready(ctx, *pidx);
            }
        }
        for gr in &mut self.g_recvs {
            gr.req.start();
        }

        // as staged data arrives — directly in its partition window of the
        // aliased send buffer — inject the corresponding partition. This is
        // the overlap the §5 combination buys: no partition waits for
        // staging messages it does not depend on, and no assembly copy
        // stands between arrival and injection.
        for sr in &mut self.s_recvs {
            sr.req.start();
        }
        for sr in &mut self.s_recvs {
            sr.req.wait(ctx);
            self.g_sends[sr.g_send].req.pready(ctx, sr.partition);
        }
        for gs in &self.g_sends {
            gs.req.wait();
        }
    }

    /// `MPI_Test`: non-blocking progress. Drains whatever partitions and
    /// payloads have arrived (a g receive completes — and scatters — when
    /// its **last** partition lands), opens the r step once every g buffer
    /// is assembled, and reports iteration done-ness. No-op `true` once
    /// complete.
    pub fn test(&mut self, ctx: &mut RankCtx, output: &mut [f64]) -> bool {
        assert_eq!(
            output.len(),
            self.output_index.len(),
            "output length mismatch"
        );
        if self.done {
            return true;
        }

        for (recv, done) in self.local_recvs.iter_mut().zip(&mut self.local_done) {
            if !*done {
                *done = recv.try_scatter(ctx, output);
            }
        }

        for (gr, done) in self.g_recvs.iter_mut().zip(&mut self.g_done) {
            if *done {
                continue;
            }
            if gr.req.try_wait(ctx) {
                let guard = gr.buf.read();
                for &(pos, out) in &gr.outputs {
                    output[out] = guard[pos];
                }
                *done = true;
            }
        }

        if !self.r_started && self.g_done.iter().all(|&d| d) {
            // hold one read guard per g buffer across all r forwards
            let g_bufs: Vec<_> = self.g_recvs.iter().map(|g| g.buf.read()).collect();
            for send in &self.r_sends {
                send.start_gather_from(ctx, |g_msg, pos| g_bufs[g_msg][pos]);
            }
            drop(g_bufs);
            for recv in &mut self.r_recvs {
                recv.req.start();
            }
            self.r_started = true;
        }
        if self.r_started {
            for (recv, done) in self.r_recvs.iter_mut().zip(&mut self.r_done) {
                if !*done {
                    *done = recv.try_scatter(ctx, output);
                }
            }
        }

        self.done =
            self.r_started && self.local_done.iter().all(|&d| d) && self.r_done.iter().all(|&d| d);
        self.done
    }

    /// Append a [`ChanId`] per receive channel the iteration is still
    /// blocked on: ℓ channels, every unarrived partition of each pending g
    /// receive, and (once opened) the r channels.
    pub fn pending_chans(&self, out: &mut Vec<ChanId>) {
        for (recv, done) in self.local_recvs.iter().zip(&self.local_done) {
            if !done {
                out.push(recv.req.chan_id());
            }
        }
        for (gr, done) in self.g_recvs.iter().zip(&self.g_done) {
            if !done {
                gr.req.pending_chan_ids(out);
            }
        }
        if self.r_started {
            for (recv, done) in self.r_recvs.iter().zip(&self.r_done) {
                if !done {
                    out.push(recv.req.chan_id());
                }
            }
        }
    }

    /// Complete the iteration: loop [`test`] (delivery-order draining),
    /// parking on one necessary channel between rounds (see
    /// [`crate::exec::PersistentNeighbor::wait`] for why one suffices).
    ///
    /// [`test`]: PartitionedNeighbor::test
    pub fn wait(&mut self, ctx: &mut RankCtx, output: &mut [f64]) {
        while !self.test(ctx, output) {
            self.park_on_necessary(ctx);
        }
    }

    /// Block until the first still-pending receive of the current phase
    /// has a delivered message (partitioned g receives park on their first
    /// unarrived partition). No-op if nothing is pending.
    fn park_on_necessary(&self, ctx: &RankCtx) {
        for (recv, done) in self.local_recvs.iter().zip(&self.local_done) {
            if !done {
                recv.req.wait_ready(ctx);
                return;
            }
        }
        for (gr, done) in self.g_recvs.iter().zip(&self.g_done) {
            if !done {
                gr.req.wait_ready(ctx);
                return;
            }
        }
        if self.r_started {
            for (recv, done) in self.r_recvs.iter().zip(&self.r_done) {
                if !done {
                    recv.req.wait_ready(ctx);
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::Protocol;
    use locality::Topology;
    use mpisim::World;

    fn roundtrip(pattern: &CommPattern, topo: &Topology, dedup: bool) {
        let n = pattern.n_ranks;
        let protocol = if dedup {
            Protocol::FullNeighbor
        } else {
            Protocol::PartialNeighbor
        };
        let plan = protocol.plan(pattern, topo);
        let results = World::run(n, |ctx| {
            let comm = ctx.comm_world();
            let mut nb = PartitionedNeighbor::from_plan(pattern, &plan, ctx, &comm, 50);
            let mut got = Vec::new();
            for it in 0..3u64 {
                let input: Vec<f64> = nb
                    .input_index()
                    .iter()
                    .map(|&i| (10 * i + it as usize) as f64)
                    .collect();
                let mut output = vec![f64::NAN; nb.output_index().len()];
                nb.start(ctx, &input);
                nb.wait(ctx, &mut output);
                got.push(output);
            }
            got
        });
        for (rank, iters) in results.iter().enumerate() {
            let idx = pattern.dst_indices(rank);
            for (it, vals) in iters.iter().enumerate() {
                for (&i, &v) in idx.iter().zip(vals) {
                    assert_eq!(v, (10 * i + it) as f64, "rank {rank} iter {it} index {i}");
                }
            }
        }
    }

    #[test]
    fn partitioned_delivers_example_2_1() {
        let pattern = CommPattern::example_2_1();
        let topo = Topology::block_nodes(8, 4);
        roundtrip(&pattern, &topo, false);
        roundtrip(&pattern, &topo, true);
    }

    #[test]
    fn partitioned_delivers_dense_pattern() {
        let topo = Topology::block_nodes(16, 4);
        let pattern = CommPattern::all_to_all_regions(&topo);
        roundtrip(&pattern, &topo, false);
        roundtrip(&pattern, &topo, true);
    }

    #[test]
    fn partitioned_delivers_amg_level() {
        use sparse::gen::diffusion::paper_problem;
        use sparse::{build_comm_pkgs, Partition};
        let a = paper_problem(32, 16);
        let part = Partition::block(a.n_rows(), 12);
        let pattern = CommPattern::from_comm_pkgs(&build_comm_pkgs(&a, &part));
        let topo = Topology::block_nodes(12, 4);
        roundtrip(&pattern, &topo, true);
    }
}
